//! Certified double-precision results (Section VII-A): compiling to
//! double-double endpoints keeps error accumulation so small that the
//! resulting interval pins down the correctly rounded double — here on a
//! dot product with the Section VI-B reduction transformation.
//!
//! ```sh
//! cargo run --release --example certified_dot
//! ```

use igen::compiler::{Compiler, Config, Precision};
use igen::interp::Interp;
use igen::interval::{DdI, SumAcc64, SumAccDd, F64I};

fn main() {
    // A dot product with the reduction pragma.
    let src = r#"
        double dot(double* x, double* y, double* out) {
            double s = 0.0;
            #pragma igen reduce s
            for (int i = 0; i < 1000; i++)
                s = s + x[i] * y[i];
            out[0] = s;
            return s;
        }
    "#;

    // Awkward data: large cancellations.
    let xs: Vec<f64> = (0..1000)
        .map(|i| (i as f64 * 0.7).sin() * 1e6 * if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    let ys: Vec<f64> = (0..1000).map(|i| 1.0 / (i as f64 + 1.5)).collect();

    // Double-precision interval pipeline.
    let cfg64 = Config { reductions: true, ..Config::default() };
    let out64 = Compiler::new(cfg64).compile_str(src).expect("compiles");
    let mut run64 = Interp::new(&igen::cfront::parse(&out64.c_source).unwrap());
    let xi: Vec<F64I> = xs.iter().map(|&v| F64I::point(v)).collect();
    let yi: Vec<F64I> = ys.iter().map(|&v| F64I::point(v)).collect();
    let (xp, yp, op) =
        (run64.alloc_interval(&xi), run64.alloc_interval(&yi), run64.alloc_interval(&[F64I::ZERO]));
    let r64 = run64.call("dot", vec![xp, yp, op]).expect("runs").as_interval().unwrap();

    // Double-double pipeline.
    let cfg_dd = Config { precision: Precision::Dd, reductions: true, ..Config::default() };
    let out_dd = Compiler::new(cfg_dd).compile_str(src).expect("compiles dd");
    let mut run_dd = Interp::new(&igen::cfront::parse(&out_dd.c_source).unwrap());
    let xd: Vec<DdI> = xs.iter().map(|&v| DdI::point_f64(v)).collect();
    let yd: Vec<DdI> = ys.iter().map(|&v| DdI::point_f64(v)).collect();
    let (xp, yp, op) =
        (run_dd.alloc_ddi(&xd), run_dd.alloc_ddi(&yd), run_dd.alloc_ddi(&[DdI::ZERO]));
    let rdd = run_dd.call("dot", vec![xp, yp, op]).expect("runs dd").as_ddi().unwrap();

    println!("double   intervals: {r64}");
    println!("  certified bits: {:.1} / 53", r64.certified_bits());
    println!("dd       intervals: {rdd}");
    println!("  certified bits: {:.1} / 106", rdd.certified_bits());
    match rdd.certified_f64() {
        Some(v) => println!("  CERTIFIED double-precision result: {v:.17}"),
        None => println!("  (interval too wide to certify a unique double)"),
    }

    // The same computation through the runtime accumulators directly
    // (what the generated code calls).
    let mut acc = SumAcc64::new(F64I::ZERO);
    let mut acc_dd = SumAccDd::new(DdI::ZERO);
    for i in 0..1000 {
        acc.accumulate(&(xi[i] * yi[i]));
        acc_dd.accumulate(&(xd[i] * yd[i]));
    }
    assert_eq!(acc.reduce().lo(), r64.lo());
    assert_eq!(acc.reduce().hi(), r64.hi());
    println!("\nruntime accumulators agree with the compiled pipeline ✓");
    let _ = acc_dd.reduce();
    assert!(rdd.certified_f64().is_some(), "dd certifies the double result");
}
