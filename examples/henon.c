double henon_map(double x, double y, int iterations) {
    double a = 1.05;
    double b = 0.3;
    for (int i = 0; i < iterations; i++) {
        double xi = x;
        double yi = y;
        x = 1 - a * xi * xi + yi;
        y = b * xi;
    }
    return x;
}
