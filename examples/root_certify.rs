//! Certified root isolation with interval branch-and-bound.
//!
//! A classic application of sound interval arithmetic (and of the sound
//! code IGen emits): isolate *all* roots of a function on a domain with a
//! mathematical guarantee. Evaluating `f` over an interval `X` gives an
//! enclosure `F(X)` of the true range; if `F(X)` excludes zero, `X`
//! provably contains no root — floating-point rounding included. Boxes
//! where the three-valued sign test is [`TBool::Unknown`] are bisected.
//!
//! The function here is `f(x) = sin(x) * (x*x - 2)` on [-3, 3]: its
//! roots are -√2, 0, and √2 (sin's only zero in range is x = 0).
//!
//! ```sh
//! cargo run --example root_certify
//! ```

use igen::interval::elem::sin_interval;
use igen::interval::F64I;

/// `F(X) ⊇ { sin(x)·(x² − 2) : x ∈ X }` — every FP rounding is outward.
/// `sqr` (not `x.mul(x)`) keeps `x²` nonnegative on boxes straddling
/// zero — the dependency-aware square prunes more boxes per bisection.
fn f(x: &F64I) -> F64I {
    let x2 = x.sqr();
    let shifted = x2.sub(&F64I::point(2.0));
    sin_interval(x).mul(&shifted)
}

fn main() {
    let domain = F64I::new(-3.0, 3.0).unwrap();
    let tol = 1e-12;

    // Branch and bound: keep only boxes whose range enclosure straddles 0.
    let mut work = vec![domain];
    let mut roots: Vec<F64I> = Vec::new();
    let mut discarded = 0usize;
    while let Some(x) = work.pop() {
        let fx = f(&x);
        // Certified sign: if 0 ∉ F(X) there is NO root in X, period.
        if !fx.contains(0.0) {
            discarded += 1;
            continue;
        }
        if x.width() <= tol {
            // Merge adjacent candidate boxes into one enclosure.
            match roots.last_mut() {
                Some(last) if last.hi() >= x.lo() => *last = last.join(&x),
                _ => roots.push(x),
            }
            continue;
        }
        let m = x.mid();
        // Split at the midpoint; the shared endpoint keeps the union exact.
        work.push(F64I::new(m, x.hi()).unwrap());
        work.push(F64I::new(x.lo(), m).unwrap());
    }

    println!("domain    : {domain}");
    println!("f(x)      : sin(x) * (x^2 - 2)");
    println!("discarded : {discarded} boxes certified root-free");
    println!("candidates: {} enclosures of width <= {tol:e}", roots.len());
    for r in &roots {
        println!("  root in {r}  (width {:.3e})", r.width());
    }

    // Check against the known roots.
    let expected = [-(2.0f64.sqrt()), 0.0, 2.0f64.sqrt()];
    assert_eq!(roots.len(), expected.len(), "exactly three isolated roots");
    for (r, want) in roots.iter().zip(expected) {
        assert!(r.contains(want), "enclosure {r} must contain the true root {want}");
    }
    println!("\nall three analytic roots (-sqrt(2), 0, sqrt(2)) certified ✓");
}
