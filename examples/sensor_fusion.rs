//! Cyber-physical example (the Section IV-C motivation): inputs come from
//! sensors with known resolution, expressed with IGen's language
//! extensions — `double:0.05` parameter tolerances and `…t` tolerance
//! literals — and a safety check whose branch can become *undecidable*,
//! signalling an exception instead of silently guessing.
//!
//! ```sh
//! cargo run --example sensor_fusion
//! ```

use igen::compiler::{Compiler, Config};
use igen::interp::{Interp, RtError, Value};

fn main() {
    // A complementary filter fusing a gyroscope rate (resolution 0.05)
    // and an accelerometer angle (resolution 0.5 degrees), then a safety
    // envelope check. The constant 0.98 carries an empirical calibration
    // tolerance of ±0.001 (the `t` literal).
    let src = r#"
        double fuse(double:0.05 gyro_rate, double:0.5 accel_angle, double angle, double dt) {
            double alpha = 0.98 + 0.001t;
            double predicted = angle + gyro_rate * dt;
            double fused = alpha * predicted + (1.0 - alpha) * accel_angle;
            return fused;
        }

        double check_envelope(double fused) {
            double limit = 30.0;
            if (fused > limit) {
                return 1.0;
            }
            return 0.0;
        }
    "#;

    let out = Compiler::new(Config::default()).compile_str(src).expect("compiles");
    println!("=== transformed ===\n{}", out.c_source);

    let tu = igen::cfront::parse(&out.c_source).expect("reparses");
    let mut run = Interp::new(&tu);

    // Sensors report plain doubles; the tolerances are applied inside.
    let fused = run
        .call("fuse", vec![Value::F64(1.2), Value::F64(24.0), Value::F64(25.0), Value::F64(0.01)])
        .expect("fuse")
        .as_interval()
        .unwrap();
    println!("fused angle enclosure: {fused}");
    println!("width from sensor tolerances: {:.4} degrees", fused.width());

    // Far from the limit: the check is decidable.
    let verdict = run
        .call("check_envelope", vec![Value::Interval(fused)])
        .expect("check")
        .as_interval()
        .unwrap();
    println!(
        "envelope exceeded: {} (check_envelope returned {verdict})",
        if verdict.contains(1.0) { "yes" } else { "no" }
    );

    // Near the limit the interval straddles it: IGen's default policy
    // signals an exception rather than taking an unsound branch.
    let near = igen::interval::F64I::new(29.9, 30.1).expect("ordered");
    match run.call("check_envelope", vec![Value::Interval(near)]) {
        Err(RtError::UnknownBranch) => {
            println!("near the limit: branch undecidable -> exception signalled (sound!)")
        }
        other => panic!("expected an exception, got {other:?}"),
    }
}
