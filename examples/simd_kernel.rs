//! The Section V pipeline end-to-end: generate a C implementation of an
//! Intel intrinsic from its XML specification, compile it to interval
//! code, and compile a user kernel that *uses* intrinsics.
//!
//! ```sh
//! cargo run --example simd_kernel
//! ```

use igen::compiler::{compile_intrinsics, Compiler, Config};
use igen::interp::Interp;
use igen::interval::F64I;
use igen::simdgen::{corpus_specs, generate_c};

fn main() {
    // 1. Fig. 5: the generated C implementation of _mm256_add_pd.
    let specs = corpus_specs();
    let add = specs.iter().find(|s| s.name == "_mm256_add_pd").expect("in corpus");
    println!("=== XML operation (Intel pseudo-language) ===\n{}\n", add.operation);
    let f = generate_c(add).expect("generates");
    println!("=== generated C (SIMD2C) ===\n{}", igen::cfront::print_function(&f));

    // 2. Fig. 4 bottom: IGen compiles the generated C to interval code.
    let intr = compile_intrinsics(&Config::default()).expect("intrinsics compile");
    let interval_impl = intr
        .c_source
        .lines()
        .skip_while(|l| !l.contains("_c_mm256_add_pd"))
        .take_while(|l| !l.starts_with('}'))
        .collect::<Vec<_>>()
        .join("\n");
    println!("=== interval implementation (excerpt) ===\n{interval_impl}\n}}\n");
    println!(
        "{} intrinsics generated; {} skipped (manual implementation required): {:?}\n",
        corpus_specs().len() - intr.skipped.len(),
        intr.skipped.len(),
        intr.skipped.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>()
    );

    // 3. A user kernel with intrinsics in the input (an axpy), compiled
    //    and executed soundly.
    let src = r#"
        void axpy4(double* x, double* y, double* out) {
            __m256d vx = _mm256_loadu_pd(x);
            __m256d vy = _mm256_loadu_pd(y);
            __m256d p = _mm256_mul_pd(vx, vy);
            __m256d r = _mm256_add_pd(p, vx);
            _mm256_storeu_pd(out, r);
        }
    "#;
    let out = Compiler::new(Config::default()).compile_str(src).expect("compiles");
    println!("=== transformed user kernel ===\n{}", out.c_source);
    println!("intrinsics recognized: {:?}", out.intrinsics_used);

    let mut run = Interp::new(&igen::cfront::parse(&out.c_source).unwrap());
    let x = [0.1, 0.2, 0.3, 0.4].map(F64I::point);
    let y = [1.5, -2.5, 3.5, -4.5].map(F64I::point);
    let (xp, yp, op) =
        (run.alloc_interval(&x), run.alloc_interval(&y), run.alloc_interval(&[F64I::ZERO; 4]));
    run.call("axpy4", vec![xp, yp, op.clone()]).expect("runs");
    // Table II: each f64 lane becomes one interval; a __m256d load moves
    // four packed intervals (m256di_2 = two AVX registers).
    let packed = run.read_interval(&op, 4);
    for (k, iv) in packed.iter().enumerate() {
        let expect = x[k].hi() * y[k].hi() + x[k].hi();
        println!("lane {k}: {iv}  (float: {expect})");
        assert!(iv.contains(expect));
    }
}
