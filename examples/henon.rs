//! The dependency-problem study of Section VII-C on the Hénon map:
//! double intervals lose all bits by ~130 iterations, double-double
//! extends the horizon, affine arithmetic stays flat (and costs orders of
//! magnitude more).
//!
//! ```sh
//! cargo run --release --example henon
//! ```

use igen::interval::{DdI, F64I};
use igen::kernels::{henon, henon_affine};

fn main() {
    println!("Henon map x' = 1 - 1.05 x^2 + y, y' = 0.3 x   (certified bits)");
    println!("{:>6} {:>8} {:>8} {:>8}", "iters", "f64i", "ddi", "affine");
    for iters in [10, 50, 90, 130, 170] {
        let f: F64I = henon(iters);
        let d: DdI = henon(iters);
        let a = henon_affine(iters);
        println!(
            "{iters:>6} {:>8.0} {:>8.0} {:>8.0}",
            f.certified_bits(),
            d.certified_bits(),
            a.certified_bits()
        );
    }
    println!();
    let x170: DdI = henon(170);
    println!("ddi after 170 iterations: {x170}");
    println!("still certifies {:.0} bits where plain intervals have 0 —", x170.certified_bits());
    println!("and affine arithmetic holds ~46 bits indefinitely, at 2-3 orders of");
    println!("magnitude higher cost (run `table6_affine` for the timings).");
}
