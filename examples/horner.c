double poly(double x) {
    return 1.0 + 0.5 * (x * x) + 0.25 * (x * x) * (x * x);
}
