//! Quickstart: compile a floating-point C function to sound interval C
//! and run both versions.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use igen::compiler::{Compiler, Config};
use igen::interp::{Interp, Value};
use igen::interval::F64I;

fn main() {
    // The paper's running example (Fig. 2).
    let src = r#"
        double foo(double a, double b) {
            double c;
            c = a + b + 0.1;
            if (c > a) {
                c = a * c;
            }
            return c;
        }
    "#;

    // 1. Compile: C with doubles -> C with sound intervals.
    let out = Compiler::new(Config::default()).compile_str(src).expect("compiles");
    println!("=== IGen output ===\n{}", out.c_source);

    // 2. Run the original (float) and the transformed (interval) program.
    let mut float_run = Interp::from_source(src).expect("parses");
    let transformed = igen::cfront::parse(&out.c_source).expect("output parses");
    let mut interval_run = Interp::new(&transformed);

    let (a, b) = (1.0, 2.0);
    let f = float_run
        .call("foo", vec![Value::F64(a), Value::F64(b)])
        .expect("float run")
        .as_f64()
        .unwrap();
    let i = interval_run
        .call("foo", vec![Value::Interval(F64I::point(a)), Value::Interval(F64I::point(b))])
        .expect("interval run")
        .as_interval()
        .unwrap();

    println!("float  result: {f:.17}");
    println!("sound  result: {i}");
    println!("contains float run: {}", i.contains(f));
    println!("certified bits:     {:.1} / 53", i.certified_bits());
    assert!(i.contains(f));
}
