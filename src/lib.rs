//! Facade crate for the IGen reproduction workspace.
//!
//! Re-exports every member crate under a short name; see the README for a
//! tour and `DESIGN.md` for the system inventory.

pub use igen_affine as affine;
pub use igen_baselines as baselines;
pub use igen_batch as batch;
pub use igen_cfront as cfront;
pub use igen_core as compiler;
pub use igen_dd as dd;
pub use igen_interp as interp;
pub use igen_interval as interval;
pub use igen_ir as ir;
pub use igen_kernels as kernels;
pub use igen_mpf as mpf;
pub use igen_round as round;
pub use igen_session as session;
pub use igen_simdgen as simdgen;
pub use igen_telemetry as telemetry;
pub use igen_vm as vm;
