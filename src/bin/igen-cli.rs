//! `igen-cli` — the command-line front of the IGen compiler (Fig. 1):
//! reads a C file with floating-point computations, writes the equivalent
//! sound interval C.
//!
//! ```text
//! igen-cli input.c [-o igen_input.c] [--precision f32|f64|dd]
//!                  [--reductions] [--join-branches] [--intrinsics]
//! ```

use igen::compiler::{BranchPolicy, Compiler, Config, OutputVec, Precision};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: igen-cli <input.c> [options]\n\
         \n\
         options:\n\
           -o <file>           output path (default: igen_<input>.c)\n\
           --precision <p>     target endpoint precision: f32 | f64 (default) | dd\n\
           --reductions        enable the reduction accuracy transformation\n\
                               (requires `#pragma igen reduce` annotations)\n\
           --join-branches     compute both branches of undecidable ifs and\n\
                               join the results (default: signal exception)\n\
           --sqr-rewrite       lower `v * v` to the dependency-aware square\n\
                               (tighter enclosures when v straddles zero)\n\
           --vectorize <c>     ss (default) | sv | vv: the Fig. 8 register-\n\
                               packing configuration recorded in the output\n\
           --intrinsics        also emit igen_simd.c (interval implementations\n\
                               of the SIMD intrinsics corpus)\n\
           --report            print detected reductions (Polly-style) and\n\
                               warnings to stderr"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut cfg = Config::default();
    let mut emit_intrinsics = false;
    let mut report = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => {
                i += 1;
                output = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--precision" => {
                i += 1;
                cfg.precision = match args.get(i).map(String::as_str) {
                    Some("f32") => Precision::F32,
                    Some("f64") => Precision::F64,
                    Some("dd") => Precision::Dd,
                    _ => usage(),
                };
            }
            "--reductions" => cfg.reductions = true,
            "--sqr-rewrite" => cfg.sqr_rewrite = true,
            "--vectorize" => {
                i += 1;
                cfg.vectorize = match args.get(i).map(String::as_str) {
                    Some("ss") => OutputVec::Scalar,
                    Some("sv") => OutputVec::Sse,
                    Some("vv") => OutputVec::Avx,
                    _ => usage(),
                };
            }
            "--join-branches" => cfg.branch_policy = BranchPolicy::JoinBranches,
            "--intrinsics" => emit_intrinsics = true,
            "--report" => report = true,
            "-h" | "--help" => usage(),
            a if a.starts_with('-') => {
                eprintln!("unknown option {a}");
                usage()
            }
            a => {
                if input.replace(a.to_string()).is_some() {
                    usage()
                }
            }
        }
        i += 1;
    }
    let Some(input) = input else { usage() };

    let src = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("igen-cli: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = match Compiler::new(cfg).compile_str(&src) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("igen-cli: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if report {
        for w in &out.warnings {
            eprintln!("warning: {w}");
        }
        for r in &out.reductions {
            eprintln!("{}", r.polly_style_report());
        }
        if !out.intrinsics_used.is_empty() {
            eprintln!("intrinsics used: {}", out.intrinsics_used.join(", "));
        }
    }
    let out_path = output.unwrap_or_else(|| {
        let stem = std::path::Path::new(&input)
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_else(|| input.clone());
        format!("igen_{stem}")
    });
    if let Err(e) = std::fs::write(&out_path, &out.c_source) {
        eprintln!("igen-cli: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");
    // Ship the runtime interface alongside (Fig. 2 line 1 includes it).
    std::fs::write("igen_lib.h", igen::compiler::runtime_header(&cfg)).expect("write igen_lib.h");
    eprintln!("wrote igen_lib.h");

    if emit_intrinsics {
        match igen::compiler::compile_intrinsics(&cfg) {
            Ok(intr) => {
                std::fs::write("igen_simd.c", &intr.c_source).expect("write igen_simd.c");
                eprintln!(
                    "wrote igen_simd.c ({} skipped: {})",
                    intr.skipped.len(),
                    intr.skipped.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>().join(", ")
                );
            }
            Err(e) => {
                eprintln!("igen-cli: intrinsics generation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
