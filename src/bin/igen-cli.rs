//! `igen-cli` — the command-line front of the IGen compiler (Fig. 1):
//! reads a C file with floating-point computations, writes the equivalent
//! sound interval C.
//!
//! ```text
//! igen-cli compile input.c [-o igen_input.c] [--precision f32|f64|dd]
//!                  [--opt-level 0|1|2] [--emit-ir] [--dump-passes]
//!                  [--verify-passes] [--reductions] [--join-branches]
//!                  [--intrinsics] [--metrics] [--trace-out <path>]
//! igen-cli batch <dot|mvm|gemm|henon|ffnn> [--threads N] [--batch N]
//!                [--size N] [--iters N] [--seq-threshold N]
//!                [--metrics] [--trace-out <path>]
//! igen-cli report <trace.jsonl>...
//! ```
//!
//! The `compile` subcommand name is optional for backward compatibility:
//! `igen-cli input.c` behaves identically.
//!
//! `--metrics` prints the human telemetry summary to stderr after the
//! run; `--trace-out` writes the raw JSON-lines trace. Both need a build
//! with the `telemetry` feature to record anything (a disabled build
//! notes this and produces an empty trace). `report` re-renders one or
//! more trace files — concatenated traces merge, so a compile trace and
//! a run trace can be reported together.

use igen::compiler::{BranchPolicy, Compiler, Config, OptLevel, OutputVec, Precision};
use std::process::ExitCode;
use std::time::Instant;

/// `--metrics` / `--trace-out` state shared by the compile and batch
/// modes: turns recording on up front, then writes/prints on `finish`.
struct Telemetry {
    metrics: bool,
    trace_out: Option<String>,
}

impl Telemetry {
    fn start(metrics: bool, trace_out: Option<String>) -> Telemetry {
        if metrics || trace_out.is_some() {
            if !igen::telemetry::COMPILED_IN {
                eprintln!(
                    "igen-cli: note: built without the `telemetry` feature — \
                     the trace will be empty (rebuild with `--features telemetry`)"
                );
            }
            igen::telemetry::set_recording(true);
        }
        Telemetry { metrics, trace_out }
    }

    /// Stops recording and emits the trace/summary. Fails only on an
    /// unwritable `--trace-out` path.
    fn finish(self) -> Result<(), ExitCode> {
        if !self.metrics && self.trace_out.is_none() {
            return Ok(());
        }
        igen::telemetry::set_recording(false);
        let snap = igen::telemetry::snapshot();
        if let Some(path) = &self.trace_out {
            if let Err(e) = std::fs::write(path, snap.to_jsonl()) {
                eprintln!("igen-cli: cannot write {path}: {e}");
                return Err(ExitCode::FAILURE);
            }
            eprintln!("wrote {path}");
        }
        if self.metrics {
            eprint!("{}", igen::telemetry::render_report(&snap));
        }
        Ok(())
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: igen-cli [compile] <input.c> [options]\n\
         \n\
         options:\n\
           -o <file>           output path (default: igen_<input>.c)\n\
           --precision <p>     target endpoint precision: f32 | f64 (default) | dd\n\
           --opt-level <n>     IR optimization level 0 | 1 | 2 (default: 0;\n\
                               0 is byte-identical to the unoptimized output)\n\
           --emit-ir           print the optimized interval IR to stdout\n\
           --dump-passes       print the per-pass op-count/cost report to stdout\n\
           --verify-passes     differentially re-execute each pass's before/after\n\
                               IR under the reference interpreter\n\
           --reductions        enable the reduction accuracy transformation\n\
                               (requires `#pragma igen reduce` annotations)\n\
           --join-branches     compute both branches of undecidable ifs and\n\
                               join the results (default: signal exception)\n\
           --sqr-rewrite       lower `v * v` to the dependency-aware square\n\
                               (tighter enclosures when v straddles zero)\n\
           --vectorize <c>     ss (default) | sv | vv: the Fig. 8 register-\n\
                               packing configuration recorded in the output\n\
           --intrinsics        also emit igen_simd.c (interval implementations\n\
                               of the SIMD intrinsics corpus)\n\
           --report            print detected reductions (Polly-style) and\n\
                               warnings to stderr\n\
           --metrics           print the telemetry summary to stderr after the\n\
                               run (needs a `--features telemetry` build)\n\
           --trace-out <file>  write the telemetry trace as JSON lines\n\
         \n\
         batch mode (parallel batch evaluation over the interval runtime):\n\
           igen-cli batch <dot|mvm|gemm|henon|ffnn> [options]\n\
           --threads <n>       worker threads (default: all cores; 0 = all)\n\
           --batch <n>         batch items (default: 256)\n\
           --size <n>          per-item problem size (default: 256)\n\
           --iters <n>         Hénon iterations (default: 100)\n\
           --seq-threshold <n> below this many items stay sequential\n\
           --metrics, --trace-out as above\n\
         \n\
         report mode (render recorded traces):\n\
           igen-cli report <trace.jsonl>...   merge + summarize trace files"
    );
    std::process::exit(2)
}

fn batch_usage() -> ! {
    eprintln!(
        "usage: igen-cli batch <dot|mvm|gemm|henon|ffnn> [--threads N] [--batch N]\n\
         \x20                [--size N] [--iters N] [--seq-threshold N]\n\
         \x20                [--metrics] [--trace-out <file>]"
    );
    std::process::exit(2)
}

/// `igen-cli report`: parses one or more JSON-lines traces (merging
/// duplicate counters/histograms) and prints the human summary.
fn run_report(args: &[String]) -> ExitCode {
    if args.is_empty() || args.iter().any(|a| a.starts_with('-')) {
        eprintln!("usage: igen-cli report <trace.jsonl>...");
        return ExitCode::from(2);
    }
    let mut all = String::new();
    for path in args {
        match std::fs::read_to_string(path) {
            Ok(s) => {
                all.push_str(&s);
                if !s.ends_with('\n') {
                    all.push('\n');
                }
            }
            Err(e) => {
                eprintln!("igen-cli: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match igen::telemetry::Snapshot::from_jsonl(&all) {
        Ok(snap) => {
            print!("{}", igen::telemetry::render_report(&snap));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("igen-cli: bad trace: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `igen-cli batch <kernel>`: runs one batched kernel through
/// `igen-batch` at 1 thread and at the configured thread count, checks
/// the two results are bit-identical, and prints the throughput.
fn run_batch(args: &[String]) -> ExitCode {
    use igen::batch::{self, BatchConfig, BatchF64I};
    use igen::kernels::ffnn::Ffnn;
    use igen::kernels::{linalg, workload};

    let Some(kernel) = args.first() else { batch_usage() };
    let mut threads = 0usize; // 0 = all cores
    let mut batch = 256usize;
    let mut size = 256usize;
    let mut iters = 100usize;
    let mut seq_threshold: Option<usize> = None;
    let mut metrics = false;
    let mut trace_out: Option<String> = None;
    let mut i = 1;
    let num = |args: &[String], i: &mut usize| -> usize {
        *i += 1;
        args.get(*i).and_then(|s| s.parse().ok()).unwrap_or_else(|| batch_usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => threads = num(args, &mut i),
            "--batch" => batch = num(args, &mut i),
            "--size" => size = num(args, &mut i),
            "--iters" => iters = num(args, &mut i),
            "--seq-threshold" => seq_threshold = Some(num(args, &mut i)),
            "--metrics" => metrics = true,
            "--trace-out" => {
                i += 1;
                trace_out = Some(args.get(i).cloned().unwrap_or_else(|| batch_usage()));
            }
            a => {
                eprintln!("igen-cli: unknown batch option '{a}' (see igen-cli --help)");
                std::process::exit(2)
            }
        }
        i += 1;
    }
    let tel = Telemetry::start(metrics, trace_out);
    let mut cfg = BatchConfig::new().with_threads(threads);
    if let Some(t) = seq_threshold {
        cfg = cfg.with_seq_threshold(t);
    }
    let seq = BatchConfig::new().with_threads(1);
    let mut rng = workload::rng(0xba7c);
    let inputs = |rng: &mut _, n: usize| {
        BatchF64I::from_intervals(&workload::intervals_1ulp(&workload::random_points(
            rng, n, -2.0, 2.0,
        )))
    };

    // Each arm: (total interval ops, one-thread time, n-thread time, identical?)
    let (iops, t1, tn, same) = match kernel.as_str() {
        "dot" => {
            let xs = inputs(&mut rng, batch * size);
            let ys = inputs(&mut rng, batch * size);
            let t = Instant::now();
            let a = batch::dot_batch(&seq, size, &xs, &ys);
            let t1 = t.elapsed();
            let t = Instant::now();
            let b = batch::dot_batch(&cfg, size, &xs, &ys);
            (batch as u64 * linalg::dot_iops(size), t1, t.elapsed(), a == b)
        }
        "mvm" => {
            let a_mat = inputs(&mut rng, size * size).to_intervals();
            let xs = inputs(&mut rng, batch * size);
            let ys = inputs(&mut rng, batch * size);
            let t = Instant::now();
            let a = batch::mvm_batch(&seq, size, size, &a_mat, &xs, &ys);
            let t1 = t.elapsed();
            let t = Instant::now();
            let b = batch::mvm_batch(&cfg, size, size, &a_mat, &xs, &ys);
            (batch as u64 * 2 * (size * size) as u64, t1, t.elapsed(), a == b)
        }
        "gemm" => {
            let a_mat = inputs(&mut rng, size * size).to_intervals();
            let b_mat = inputs(&mut rng, size * size).to_intervals();
            let c0 = inputs(&mut rng, size * size).to_intervals();
            let mut c1 = c0.clone();
            let t = Instant::now();
            batch::gemm_row_blocks(&seq, size, size, size, &a_mat, &b_mat, &mut c1, 4);
            let t1 = t.elapsed();
            let mut cn = c0.clone();
            let t = Instant::now();
            batch::gemm_row_blocks(&cfg, size, size, size, &a_mat, &b_mat, &mut cn, 4);
            (linalg::gemm_iops(size), t1, t.elapsed(), c1 == cn)
        }
        "henon" => {
            let x0s = inputs(&mut rng, batch);
            let y0s = inputs(&mut rng, batch);
            let t = Instant::now();
            let a = batch::henon_ensemble(&seq, iters, &x0s, &y0s);
            let t1 = t.elapsed();
            let t = Instant::now();
            let b = batch::henon_ensemble(&cfg, iters, &x0s, &y0s);
            (batch as u64 * igen::kernels::henon_iops(iters), t1, t.elapsed(), a == b)
        }
        "ffnn" => {
            let width = size.clamp(4, 64);
            let net = Ffnn::synthetic(width, 7);
            let ins: Vec<Vec<f64>> = (0..batch as u64).map(Ffnn::synthetic_input).collect();
            let t = Instant::now();
            let a: Vec<Vec<igen::interval::F64I>> = batch::ffnn_batch(&seq, &net, &ins);
            let t1 = t.elapsed();
            let t = Instant::now();
            let b: Vec<Vec<igen::interval::F64I>> = batch::ffnn_batch(&cfg, &net, &ins);
            (batch as u64 * net.iops(), t1, t.elapsed(), a == b)
        }
        k => {
            eprintln!(
                "igen-cli: unknown batch kernel '{k}' (expected dot, mvm, gemm, henon or ffnn)"
            );
            return ExitCode::from(2);
        }
    };

    if !same {
        eprintln!("igen-cli: batch result diverged from the single-thread path");
        return ExitCode::FAILURE;
    }
    let mops = |t: std::time::Duration| iops as f64 / t.as_secs_f64() / 1e6;
    println!(
        "{kernel}: batch={batch} size={size} threads={}\n\
         1 thread : {t1:>12.3?}  {:>9.1} M iops/s\n\
         {} threads: {tn:>12.3?}  {:>9.1} M iops/s  ({:.2}x)\n\
         results bit-identical across thread counts: yes",
        cfg.threads(),
        mops(t1),
        cfg.threads(),
        mops(tn),
        t1.as_secs_f64() / tn.as_secs_f64(),
    );
    if let Err(code) = tel.finish() {
        return code;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("batch") {
        return run_batch(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("report") {
        return run_report(&args[1..]);
    }
    // `compile` is the canonical subcommand; the bare form stays accepted.
    match args.first().map(String::as_str) {
        Some("compile") => {
            args.remove(0);
        }
        // A bare first argument that cannot be a C input file (no extension,
        // no path separator) is a misspelled subcommand, not an input.
        Some(a) if !a.starts_with('-') && !a.contains('.') && !a.contains('/') => {
            eprintln!("igen-cli: unknown subcommand '{a}' (expected compile, batch or report)");
            return ExitCode::from(2);
        }
        _ => {}
    }
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut cfg = Config::default();
    let mut emit_intrinsics = false;
    let mut report = false;
    let mut emit_ir = false;
    let mut dump_passes = false;
    let mut metrics = false;
    let mut trace_out: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => {
                i += 1;
                output = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--precision" => {
                i += 1;
                cfg.precision = match args.get(i).map(String::as_str) {
                    Some("f32") => Precision::F32,
                    Some("f64") => Precision::F64,
                    Some("dd") => Precision::Dd,
                    _ => usage(),
                };
            }
            "--opt-level" => {
                i += 1;
                cfg.opt_level = match args.get(i).map(String::as_str) {
                    Some("0") => OptLevel::O0,
                    Some("1") => OptLevel::O1,
                    Some("2") => OptLevel::O2,
                    _ => usage(),
                };
            }
            "--emit-ir" => emit_ir = true,
            "--dump-passes" => dump_passes = true,
            "--verify-passes" => cfg.verify_passes = true,
            "--reductions" => cfg.reductions = true,
            "--sqr-rewrite" => cfg.sqr_rewrite = true,
            "--vectorize" => {
                i += 1;
                cfg.vectorize = match args.get(i).map(String::as_str) {
                    Some("ss") => OutputVec::Scalar,
                    Some("sv") => OutputVec::Sse,
                    Some("vv") => OutputVec::Avx,
                    _ => usage(),
                };
            }
            "--join-branches" => cfg.branch_policy = BranchPolicy::JoinBranches,
            "--intrinsics" => emit_intrinsics = true,
            "--report" => report = true,
            "--metrics" => metrics = true,
            "--trace-out" => {
                i += 1;
                trace_out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "-h" | "--help" => usage(),
            a if a.starts_with('-') => {
                eprintln!("igen-cli: unknown option '{a}' (see igen-cli --help)");
                return ExitCode::from(2);
            }
            a => {
                if input.replace(a.to_string()).is_some() {
                    usage()
                }
            }
        }
        i += 1;
    }
    let Some(input) = input else { usage() };
    let tel = Telemetry::start(metrics, trace_out);

    let src = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("igen-cli: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = match Compiler::new(cfg).compile_str(&src) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("igen-cli: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if report {
        for w in &out.warnings {
            eprintln!("warning: {w}");
        }
        for r in &out.reductions {
            eprintln!("{}", r.polly_style_report());
        }
        if !out.intrinsics_used.is_empty() {
            eprintln!("intrinsics used: {}", out.intrinsics_used.join(", "));
        }
    }
    if emit_ir {
        print!("{}", igen::ir::dump_unit(&out.ir));
    }
    if dump_passes {
        print!("{}", out.opt_report.render());
    }
    let out_path = output.unwrap_or_else(|| {
        let stem = std::path::Path::new(&input)
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_else(|| input.clone());
        format!("igen_{stem}")
    });
    if let Err(e) = std::fs::write(&out_path, &out.c_source) {
        eprintln!("igen-cli: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");
    // Ship the runtime interface alongside (Fig. 2 line 1 includes it).
    std::fs::write("igen_lib.h", igen::compiler::runtime_header(&cfg)).expect("write igen_lib.h");
    eprintln!("wrote igen_lib.h");

    if emit_intrinsics {
        match igen::compiler::compile_intrinsics(&cfg) {
            Ok(intr) => {
                std::fs::write("igen_simd.c", &intr.c_source).expect("write igen_simd.c");
                eprintln!(
                    "wrote igen_simd.c ({} skipped: {})",
                    intr.skipped.len(),
                    intr.skipped.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>().join(", ")
                );
            }
            Err(e) => {
                eprintln!("igen-cli: intrinsics generation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(code) = tel.finish() {
        return code;
    }
    ExitCode::SUCCESS
}
