//! `igen-cli` — the command-line front of the IGen compiler (Fig. 1):
//! reads a C file with floating-point computations, writes the equivalent
//! sound interval C.
//!
//! ```text
//! igen-cli compile input.c [-o igen_input.c] [--precision f32|f64|dd]
//!                  [--opt-level 0|1|2] [--emit-ir] [--dump-passes]
//!                  [--verify-passes] [--reductions] [--join-branches]
//!                  [--intrinsics] [--metrics] [--trace-out <path>]
//! igen-cli run <input.c> [--fn NAME] [--batch N] [--threads N]
//!              [--opt-level 0|1|2] [--precision f64|dd] [--arg name=INT]
//!              [--len name=N] [--size N] [--seed N] [--emit-bytecode]
//!              [--no-peephole] [--tile N] [--metrics] [--trace-out <path>]
//! igen-cli batch <dot|mvm|gemm|henon|ffnn> [--threads N] [--batch N]
//!                [--size N] [--iters N] [--seq-threshold N]
//!                [--metrics] [--trace-out <path>]
//! igen-cli profile <input.c> [--fn NAME] [--batch N] [--opt-level 0|1|2]
//!                  [--precision f64|dd] [--top N] [--trace-out <path>] ...
//! igen-cli serve [--socket <path>] [--workers N] [--deadline-ms N]
//!                [--cache-cap N] [--queue-cap N] [--record]
//! igen-cli report <trace.jsonl>...
//! ```
//!
//! `run` compiles a C function once into register bytecode and executes
//! it over a generated input batch on the multi-threaded packed path,
//! verifying bit identity against the single-thread run and against the
//! differential interpreter before reporting throughput. The
//! source→bytecode pipeline itself lives in `igen-session`
//! ([`igen::session::compile_uncached`]); `run` and `profile` are thin
//! clients over it, and `serve` keeps it resident behind a compile
//! cache for request/response use.
//!
//! The `compile` subcommand name is optional for backward compatibility:
//! `igen-cli input.c` behaves identically.
//!
//! `--metrics` prints the human telemetry summary to stderr after the
//! run; `--trace-out` writes the raw JSON-lines trace. Both need a build
//! with the `telemetry` feature to record anything (a disabled build
//! notes this and produces an empty trace). `report` re-renders one or
//! more trace files — concatenated traces merge, so a compile trace and
//! a run trace can be reported together.

use igen::compiler::{BranchPolicy, Config, OptLevel, OutputVec, Precision};
use igen::session::{compile_uncached, BindRequest, CompileRequest, Flags};
use std::process::ExitCode;
use std::time::Instant;

/// `--metrics` / `--trace-out` state shared by the compile and batch
/// modes: turns recording on up front, then writes/prints on `finish`.
struct Telemetry {
    metrics: bool,
    trace_out: Option<String>,
}

impl Telemetry {
    fn start(metrics: bool, trace_out: Option<String>) -> Telemetry {
        if metrics || trace_out.is_some() {
            if !igen::telemetry::COMPILED_IN {
                eprintln!(
                    "igen-cli: note: built without the `telemetry` feature — \
                     the trace will be empty (rebuild with `--features telemetry`)"
                );
            }
            igen::telemetry::set_recording(true);
        }
        Telemetry { metrics, trace_out }
    }

    /// Stops recording and emits the trace/summary. Fails only on an
    /// unwritable `--trace-out` path.
    fn finish(self) -> Result<(), ExitCode> {
        if !self.metrics && self.trace_out.is_none() {
            return Ok(());
        }
        igen::telemetry::set_recording(false);
        let snap = igen::telemetry::snapshot();
        if let Some(path) = &self.trace_out {
            if let Err(e) = std::fs::write(path, snap.to_jsonl()) {
                eprintln!("igen-cli: cannot write {path}: {e}");
                return Err(ExitCode::FAILURE);
            }
            eprintln!("wrote {path}");
        }
        if self.metrics {
            eprint!("{}", igen::telemetry::render_report(&snap));
        }
        Ok(())
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: igen-cli [compile] <input.c> [options]\n\
         \n\
         options:\n\
           -o <file>           output path (default: igen_<input>.c)\n\
           --precision <p>     target endpoint precision: f32 | f64 (default) | dd\n\
           --opt-level <n>     IR optimization level 0 | 1 | 2 (default: 0;\n\
                               0 is byte-identical to the unoptimized output)\n\
           --emit-ir           print the optimized interval IR to stdout\n\
           --dump-passes       print the per-pass op-count/cost report to stdout\n\
           --verify-passes     differentially re-execute each pass's before/after\n\
                               IR under the reference interpreter\n\
           --reductions        enable the reduction accuracy transformation\n\
                               (requires `#pragma igen reduce` annotations)\n\
           --join-branches     compute both branches of undecidable ifs and\n\
                               join the results (default: signal exception)\n\
           --sqr-rewrite       lower `v * v` to the dependency-aware square\n\
                               (tighter enclosures when v straddles zero)\n\
           --vectorize <c>     ss (default) | sv | vv: the Fig. 8 register-\n\
                               packing configuration recorded in the output\n\
           --intrinsics        also emit igen_simd.c (interval implementations\n\
                               of the SIMD intrinsics corpus)\n\
           --report            print detected reductions (Polly-style) and\n\
                               warnings to stderr\n\
           --metrics           print the telemetry summary to stderr after the\n\
                               run (needs a `--features telemetry` build)\n\
           --trace-out <file>  write the telemetry trace as JSON lines\n\
         \n\
         run mode (compile once to bytecode, execute over an input batch):\n\
           igen-cli run <input.c> [options]\n\
           --fn <name>         function to compile (default: the only function)\n\
           --batch <n>         batch items (default: 64)\n\
           --threads <n>       worker threads (default: all cores; 0 = all)\n\
           --opt-level <n>     IR optimization level (default: 2)\n\
           --precision <p>     f64 (default) | dd\n\
           --arg <name=INT>    fix an integer parameter (loop bounds, sizes)\n\
           --len <name=N>      elements behind a pointer parameter\n\
           --size <n>          default pointer-parameter length (default: 8)\n\
           --seed <n>          input generator seed\n\
           --emit-bytecode     print the executed instruction dump to stdout\n\
           --no-peephole       skip the bytecode peephole pass (run the raw\n\
                               SSA lowering; same bits, more instructions)\n\
           --tile <n>          packed groups per executor tile (default: 8;\n\
                               0 = default; never changes a result bit)\n\
           --metrics, --trace-out as above\n\
         \n\
         batch mode (parallel batch evaluation over the interval runtime):\n\
           igen-cli batch <dot|mvm|gemm|henon|ffnn> [options]\n\
           --threads <n>       worker threads (default: all cores; 0 = all)\n\
           --batch <n>         batch items (default: 256)\n\
           --size <n>          per-item problem size (default: 256)\n\
           --iters <n>         Hénon iterations (default: 100)\n\
           --seq-threshold <n> below this many items stay sequential\n\
           --metrics, --trace-out as above\n\
         \n\
         profile mode (width-provenance blame report):\n\
           igen-cli profile <input.c> [options]\n\
           --fn, --batch, --threads, --opt-level, --precision, --arg,\n\
           --len, --size, --seed, --no-peephole, --tile as in run mode\n\
           --top <n>           sites per blame table (default: 8)\n\
           --trace-out <file>  write the full telemetry trace (profile\n\
                               records included) as JSON lines\n\
           Runs the function over a generated batch with per-instruction\n\
           profiling (needs a `--features telemetry` build), verifies the\n\
           profiled outputs are bit-identical to the unprofiled run, and\n\
           ranks source sites by time share and by width amplification.\n\
         \n\
         serve mode (always-on JSON-lines interval service):\n\
           igen-cli serve [options]\n\
           --socket <path>     serve a Unix socket instead of stdio\n\
           --workers <n>       worker threads (default: all cores; 0 = all)\n\
           --deadline-ms <n>   default per-request queue deadline (0 = none;\n\
                               a request's own deadline_ms overrides)\n\
           --cache-cap <n>     compiled-program cache capacity (default: 64)\n\
           --queue-cap <n>     pending-request bound (default: 64); a full\n\
                               queue answers 'queue full' instead of stalling\n\
           --record            record telemetry spans while serving (trace\n\
                               memory grows unboundedly; prefer the metrics\n\
                               request kind for steady-state observability)\n\
           One JSON request per line on stdin (or per connection on the\n\
           socket), one JSON response per line: kinds compile, run,\n\
           profile, metrics, ping, shutdown. Compiled programs are\n\
           verified once, cached, and shared across requests.\n\
         \n\
         report mode (render recorded traces):\n\
           igen-cli report <trace.jsonl>...   merge + summarize trace files"
    );
    std::process::exit(2)
}

fn batch_usage() -> ! {
    eprintln!(
        "usage: igen-cli batch <dot|mvm|gemm|henon|ffnn> [--threads N] [--batch N]\n\
         \x20                [--size N] [--iters N] [--seq-threshold N]\n\
         \x20                [--metrics] [--trace-out <file>]"
    );
    std::process::exit(2)
}

/// `igen-cli report`: parses one or more JSON-lines traces (merging
/// duplicate counters/histograms) and prints the human summary.
fn run_report(args: &[String]) -> ExitCode {
    if args.is_empty() || args.iter().any(|a| a.starts_with('-')) {
        eprintln!("usage: igen-cli report <trace.jsonl>...");
        return ExitCode::from(2);
    }
    let mut all = String::new();
    for path in args {
        match std::fs::read_to_string(path) {
            Ok(s) => {
                all.push_str(&s);
                if !s.ends_with('\n') {
                    all.push('\n');
                }
            }
            Err(e) => {
                eprintln!("igen-cli: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match igen::telemetry::Snapshot::from_jsonl(&all) {
        Ok(snap) => {
            print!("{}", igen::telemetry::render_report(&snap));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("igen-cli: bad trace: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `igen-cli batch <kernel>`: runs one batched kernel through
/// `igen-batch` at 1 thread and at the configured thread count, checks
/// the two results are bit-identical, and prints the throughput.
fn run_batch(args: &[String]) -> ExitCode {
    use igen::batch::{self, BatchConfig, BatchF64I};
    use igen::kernels::ffnn::Ffnn;
    use igen::kernels::{linalg, workload};

    let mut f = Flags::new(args);
    let Some(kernel) = f.next() else { batch_usage() };
    let mut threads = 0usize; // 0 = all cores
    let mut batch = 256usize;
    let mut size = 256usize;
    let mut iters = 100usize;
    let mut seq_threshold: Option<usize> = None;
    let mut metrics = false;
    let mut trace_out: Option<String> = None;
    // This mode's historical behavior: any missing/unparsable value
    // prints the batch usage text, so the Flags messages are unused.
    let num = |f: &mut Flags| -> usize { f.parse(" ", " ").unwrap_or_else(|_| batch_usage()) };
    while let Some(a) = f.next() {
        match a {
            "--threads" => threads = num(&mut f),
            "--batch" => batch = num(&mut f),
            "--size" => size = num(&mut f),
            "--iters" => iters = num(&mut f),
            "--seq-threshold" => seq_threshold = Some(num(&mut f)),
            "--metrics" => metrics = true,
            "--trace-out" => {
                trace_out = Some(f.next().unwrap_or_else(|| batch_usage()).to_string());
            }
            a => {
                eprintln!("igen-cli: unknown batch option '{a}' (see igen-cli --help)");
                std::process::exit(2)
            }
        }
    }
    let tel = Telemetry::start(metrics, trace_out);
    let mut cfg = BatchConfig::new().with_threads(threads);
    if let Some(t) = seq_threshold {
        cfg = cfg.with_seq_threshold(t);
    }
    let seq = BatchConfig::new().with_threads(1);
    let mut rng = workload::rng(0xba7c);
    let inputs = |rng: &mut _, n: usize| {
        BatchF64I::from_intervals(&workload::intervals_1ulp(&workload::random_points(
            rng, n, -2.0, 2.0,
        )))
    };

    // Each arm: (total interval ops, one-thread time, n-thread time, identical?)
    let (iops, t1, tn, same) = match kernel {
        "dot" => {
            let xs = inputs(&mut rng, batch * size);
            let ys = inputs(&mut rng, batch * size);
            let t = Instant::now();
            let a = batch::dot_batch(&seq, size, &xs, &ys);
            let t1 = t.elapsed();
            let t = Instant::now();
            let b = batch::dot_batch(&cfg, size, &xs, &ys);
            (batch as u64 * linalg::dot_iops(size), t1, t.elapsed(), a == b)
        }
        "mvm" => {
            let a_mat = inputs(&mut rng, size * size).to_intervals();
            let xs = inputs(&mut rng, batch * size);
            let ys = inputs(&mut rng, batch * size);
            let t = Instant::now();
            let a = batch::mvm_batch(&seq, size, size, &a_mat, &xs, &ys);
            let t1 = t.elapsed();
            let t = Instant::now();
            let b = batch::mvm_batch(&cfg, size, size, &a_mat, &xs, &ys);
            (batch as u64 * 2 * (size * size) as u64, t1, t.elapsed(), a == b)
        }
        "gemm" => {
            let a_mat = inputs(&mut rng, size * size).to_intervals();
            let b_mat = inputs(&mut rng, size * size).to_intervals();
            let c0 = inputs(&mut rng, size * size).to_intervals();
            let mut c1 = c0.clone();
            let t = Instant::now();
            batch::gemm_row_blocks(&seq, size, size, size, &a_mat, &b_mat, &mut c1, 4);
            let t1 = t.elapsed();
            let mut cn = c0.clone();
            let t = Instant::now();
            batch::gemm_row_blocks(&cfg, size, size, size, &a_mat, &b_mat, &mut cn, 4);
            (linalg::gemm_iops(size), t1, t.elapsed(), c1 == cn)
        }
        "henon" => {
            let x0s = inputs(&mut rng, batch);
            let y0s = inputs(&mut rng, batch);
            let t = Instant::now();
            let a = batch::henon_ensemble(&seq, iters, &x0s, &y0s);
            let t1 = t.elapsed();
            let t = Instant::now();
            let b = batch::henon_ensemble(&cfg, iters, &x0s, &y0s);
            (batch as u64 * igen::kernels::henon_iops(iters), t1, t.elapsed(), a == b)
        }
        "ffnn" => {
            let width = size.clamp(4, 64);
            let net = Ffnn::synthetic(width, 7);
            let ins: Vec<Vec<f64>> = (0..batch as u64).map(Ffnn::synthetic_input).collect();
            let t = Instant::now();
            let a: Vec<Vec<igen::interval::F64I>> = batch::ffnn_batch(&seq, &net, &ins);
            let t1 = t.elapsed();
            let t = Instant::now();
            let b: Vec<Vec<igen::interval::F64I>> = batch::ffnn_batch(&cfg, &net, &ins);
            (batch as u64 * net.iops(), t1, t.elapsed(), a == b)
        }
        k => {
            eprintln!(
                "igen-cli: unknown batch kernel '{k}' (expected dot, mvm, gemm, henon or ffnn)"
            );
            return ExitCode::from(2);
        }
    };

    if !same {
        eprintln!("igen-cli: batch result diverged from the single-thread path");
        return ExitCode::FAILURE;
    }
    let mops = |t: std::time::Duration| iops as f64 / t.as_secs_f64() / 1e6;
    println!(
        "{kernel}: batch={batch} size={size} threads={}\n\
         1 thread : {t1:>12.3?}  {:>9.1} M iops/s\n\
         {} threads: {tn:>12.3?}  {:>9.1} M iops/s  ({:.2}x)\n\
         results bit-identical across thread counts: yes",
        cfg.threads(),
        mops(t1),
        cfg.threads(),
        mops(tn),
        t1.as_secs_f64() / tn.as_secs_f64(),
    );
    if let Err(code) = tel.finish() {
        return code;
    }
    ExitCode::SUCCESS
}

/// Prints a one-line usage error and exits 2 — the shape every
/// subcommand's diagnostics share.
fn fail2(msg: String) -> ExitCode {
    eprintln!("igen-cli: {msg}");
    ExitCode::from(2)
}

/// Unwraps a flag-parse result, exiting 2 with the one-line message on
/// failure (keeps the `while let` loops below readable).
macro_rules! flag {
    ($e:expr) => {
        match $e {
            Ok(v) => v,
            Err(msg) => return fail2(msg),
        }
    };
}

/// Compiles `req` through the shared session pipeline, mapping
/// [`igen::session::SessionError`] onto the CLI's historical exit
/// codes: usage errors (bad `--fn`, missing `--arg`) exit 2,
/// compile/lowering failures exit 1 — with byte-identical messages.
fn compile_unit(req: &CompileRequest) -> Result<igen::session::CompiledUnit, ExitCode> {
    match compile_uncached(req, false) {
        Ok(unit) => Ok(unit),
        Err(e) if e.is_usage() => Err(fail2(e.to_string())),
        Err(e) => {
            eprintln!("igen-cli: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// `igen-cli run <input.c>`: compiles one function into register
/// bytecode via the `igen-session` pipeline and executes it over a
/// generated input batch on the packed multi-threaded path, pinning the
/// result against both the single-thread run and the differential
/// interpreter before reporting throughput.
fn run_run(args: &[String]) -> ExitCode {
    use igen::batch::{BatchConfig, BatchDdI, BatchF64I};
    use igen::kernels::workload;

    let mut input: Option<String> = None;
    let mut fn_name: Option<String> = None;
    let mut batch = 64usize;
    let mut threads = 0usize; // 0 = all cores
    let mut size = 8usize;
    let mut seed = 0x16e0u64;
    let mut emit_bytecode = false;
    let mut no_peephole = false;
    let mut tile = 0usize; // 0 = default tile size
    let mut metrics = false;
    let mut trace_out: Option<String> = None;
    let mut cfg = Config { opt_level: OptLevel::O2, ..Config::default() };
    let mut int_args: Vec<(String, i64)> = Vec::new();
    let mut lens: Vec<(String, usize)> = Vec::new();

    let mut f = Flags::new(args);
    while let Some(a) = f.next() {
        match a {
            "--fn" => fn_name = Some(flag!(f.value("--fn", "a function name")).to_string()),
            "--batch" => batch = flag!(f.parse("--batch", "a count")),
            "--threads" => threads = flag!(f.parse("--threads", "a count")),
            "--size" => size = flag!(f.parse("--size", "a count")),
            "--seed" => seed = flag!(f.parse("--seed", "an integer")),
            "--opt-level" => {
                cfg.opt_level = match f.next() {
                    Some("0") => OptLevel::O0,
                    Some("1") => OptLevel::O1,
                    Some("2") => OptLevel::O2,
                    _ => return fail2("--opt-level needs 0, 1 or 2".into()),
                };
            }
            "--precision" => {
                cfg.precision = match f.next() {
                    Some("f64") => Precision::F64,
                    Some("dd") => Precision::Dd,
                    _ => return fail2("run supports --precision f64 or dd".into()),
                };
            }
            "--arg" => int_args.push(flag!(f.pair("--arg", "name=integer"))),
            "--len" => lens.push(flag!(f.pair("--len", "name=count"))),
            "--emit-bytecode" => emit_bytecode = true,
            "--no-peephole" => no_peephole = true,
            "--tile" => tile = flag!(f.parse("--tile", "a group count")),
            "--metrics" => metrics = true,
            "--trace-out" => trace_out = Some(flag!(f.value("--trace-out", "a path")).to_string()),
            "-h" | "--help" => usage(),
            a if a.starts_with('-') => {
                return fail2(format!("unknown run option '{a}' (see igen-cli --help)"));
            }
            a => {
                if input.replace(a.to_string()).is_some() {
                    return fail2("run takes one input file".into());
                }
            }
        }
    }
    let Some(input) = input else {
        return fail2("run needs an input file (see igen-cli --help)".into());
    };
    if batch == 0 {
        return fail2("--batch must be at least 1".into());
    }
    let tel = Telemetry::start(metrics, trace_out);

    let src = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => return fail2(format!("cannot read {input}: {e}")),
    };
    let unit = match compile_unit(&CompileRequest {
        source: src.into(),
        origin: input.clone(),
        fn_name,
        cfg,
        bind: BindRequest::FromParams { int_args, lens, size },
        peephole: !no_peephole,
    }) {
        Ok(u) => u,
        Err(code) => return code,
    };
    // Either lowering path feeds --emit-bytecode the program that
    // actually executes below.
    if emit_bytecode {
        print!("{}", unit.batch.program().dump());
    }
    let fn_name = &unit.fn_name;
    let nin = unit.n_inputs();
    let nout = unit.n_outputs();
    let n_insns = unit.batch.program().insns.len();
    let check_items = batch.min(8);
    let mut rng = workload::rng(seed);

    // Execute: differential interpreter check on a prefix, then the
    // 1-thread vs N-thread bit-identity run over the full batch.
    let seq = BatchConfig::new().with_threads(1).with_seq_threshold(0).with_tile_groups(tile);
    let par = BatchConfig::new().with_threads(threads).with_seq_threshold(0).with_tile_groups(tile);
    let (t1, tn, same) = match cfg.precision {
        Precision::Dd => {
            let ivals = workload::dd_intervals_1ulp(&mut rng, batch * nin, -2.0, 2.0);
            if let Err(e) = igen::compiler::verify_bit_identity_dd(
                &unit.out,
                unit.batch.program(),
                &unit.bind,
                &ivals[..check_items * nin],
            ) {
                eprintln!("igen-cli: {fn_name}: {e}");
                return ExitCode::FAILURE;
            }
            let soa = BatchDdI::from_intervals(&ivals);
            let t = Instant::now();
            let a = unit.batch.run_dd(&seq, &soa);
            let t1 = t.elapsed();
            let t = Instant::now();
            let b = unit.batch.run_dd(&par, &soa);
            (t1, t.elapsed(), a == b)
        }
        _ => {
            let pts = workload::random_points(&mut rng, batch * nin, -2.0, 2.0);
            let ivals = workload::intervals_1ulp(&pts);
            if let Err(e) = igen::compiler::verify_bit_identity(
                &unit.out,
                unit.batch.program(),
                &unit.bind,
                &ivals[..check_items * nin],
            ) {
                eprintln!("igen-cli: {fn_name}: {e}");
                return ExitCode::FAILURE;
            }
            let soa = BatchF64I::from_intervals(&ivals);
            let t = Instant::now();
            let a = unit.batch.run(&seq, &soa);
            let t1 = t.elapsed();
            let t = Instant::now();
            let b = unit.batch.run(&par, &soa);
            (t1, t.elapsed(), a == b)
        }
    };
    if !same {
        eprintln!("igen-cli: batched result diverged from the single-thread path");
        return ExitCode::FAILURE;
    }
    let eff_threads = par.threads();
    println!(
        "{fn_name}: {n_insns} insns, {nin} inputs -> {nout} outputs per item\n\
         batch={batch} threads={eff_threads}\n\
         1 thread : {t1:>12.3?}\n\
         {eff_threads} threads: {tn:>12.3?}  ({:.2}x)\n\
         differential interpreter check: ok ({check_items} items)\n\
         results bit-identical across thread counts: yes",
        t1.as_secs_f64() / tn.as_secs_f64(),
    );
    if let Err(code) = tel.finish() {
        return code;
    }
    ExitCode::SUCCESS
}

/// `igen-cli profile <input.c>`: compiles one function (again via the
/// shared `igen-session` pipeline), runs it over a generated input
/// batch with per-instruction width-provenance profiling, verifies the
/// profiled outputs are bit-identical to the unprofiled run (at 1
/// thread and at `--threads`), and prints a blame report — the source
/// sites costing the most time and amplifying enclosure width the most.
fn run_profile(args: &[String]) -> ExitCode {
    use igen::batch::{BatchConfig, BatchDdI, BatchF64I};
    use igen::kernels::workload;

    let mut input: Option<String> = None;
    let mut fn_name: Option<String> = None;
    let mut batch = 64usize;
    let mut threads = 4usize;
    let mut size = 8usize;
    let mut seed = 0x16e0u64;
    let mut top = 8usize;
    let mut no_peephole = false;
    let mut tile = 0usize;
    let mut trace_out: Option<String> = None;
    let mut cfg = Config { opt_level: OptLevel::O2, ..Config::default() };
    let mut int_args: Vec<(String, i64)> = Vec::new();
    let mut lens: Vec<(String, usize)> = Vec::new();

    let mut f = Flags::new(args);
    while let Some(a) = f.next() {
        match a {
            "--fn" => fn_name = Some(flag!(f.value("--fn", "a function name")).to_string()),
            "--batch" => batch = flag!(f.parse("--batch", "a count")),
            "--threads" => threads = flag!(f.parse("--threads", "a count")),
            "--size" => size = flag!(f.parse("--size", "a count")),
            "--seed" => seed = flag!(f.parse("--seed", "an integer")),
            "--top" => top = flag!(f.parse("--top", "a count")),
            "--opt-level" => {
                cfg.opt_level = match f.next() {
                    Some("0") => OptLevel::O0,
                    Some("1") => OptLevel::O1,
                    Some("2") => OptLevel::O2,
                    _ => return fail2("--opt-level needs 0, 1 or 2".into()),
                };
            }
            "--precision" => {
                cfg.precision = match f.next() {
                    Some("f64") => Precision::F64,
                    Some("dd") => Precision::Dd,
                    _ => return fail2("profile supports --precision f64 or dd".into()),
                };
            }
            "--arg" => int_args.push(flag!(f.pair("--arg", "name=integer"))),
            "--len" => lens.push(flag!(f.pair("--len", "name=count"))),
            "--no-peephole" => no_peephole = true,
            "--tile" => tile = flag!(f.parse("--tile", "a group count")),
            "--trace-out" => trace_out = Some(flag!(f.value("--trace-out", "a path")).to_string()),
            "-h" | "--help" => usage(),
            a if a.starts_with('-') => {
                return fail2(format!("unknown profile option '{a}' (see igen-cli --help)"));
            }
            a => {
                if input.replace(a.to_string()).is_some() {
                    return fail2("profile takes one input file".into());
                }
            }
        }
    }
    let Some(input) = input else {
        return fail2("profile needs an input file (see igen-cli --help)".into());
    };
    if batch == 0 {
        return fail2("--batch must be at least 1".into());
    }
    if !igen::telemetry::COMPILED_IN {
        eprintln!(
            "igen-cli: note: built without the `telemetry` feature — \
             the run is verified but no profile can be recorded \
             (rebuild with `--features telemetry`)"
        );
    }

    let src = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => return fail2(format!("cannot read {input}: {e}")),
    };
    let unit = match compile_unit(&CompileRequest {
        source: src.as_str().into(),
        origin: input.clone(),
        fn_name,
        cfg,
        bind: BindRequest::FromParams { int_args, lens, size },
        peephole: !no_peephole,
    }) {
        Ok(u) => u,
        Err(code) => return code,
    };
    let fn_name = unit.fn_name.clone();
    let prog = unit.batch.program();
    let known_sites = prog.debug.sites.iter().filter(|s| s.is_known()).count();
    let n_insns = prog.insns.len();
    let nin = unit.n_inputs();
    let mut rng = workload::rng(seed);

    // Reference runs first (unprofiled, recording off): 1 thread and
    // --threads; then the profiled sequential run, which must match
    // both bit for bit.
    let seq = BatchConfig::new().with_threads(1).with_seq_threshold(0).with_tile_groups(tile);
    let par = BatchConfig::new().with_threads(threads).with_seq_threshold(0).with_tile_groups(tile);
    let same = match cfg.precision {
        Precision::Dd => {
            let ivals = workload::dd_intervals_1ulp(&mut rng, batch * nin, -2.0, 2.0);
            let soa = BatchDdI::from_intervals(&ivals);
            let a = unit.batch.run_dd(&seq, &soa);
            let b = unit.batch.run_dd(&par, &soa);
            igen::telemetry::set_recording(true);
            let mut prof = igen::telemetry::UnitProfiler::start(&fn_name, n_insns);
            let c = unit.batch.run_dd_profiled(&seq, &soa, &mut prof);
            prof.finish();
            a == b && a == c
        }
        _ => {
            let pts = workload::random_points(&mut rng, batch * nin, -2.0, 2.0);
            let ivals = workload::intervals_1ulp(&pts);
            let soa = BatchF64I::from_intervals(&ivals);
            let a = unit.batch.run(&seq, &soa);
            let b = unit.batch.run(&par, &soa);
            igen::telemetry::set_recording(true);
            let mut prof = igen::telemetry::UnitProfiler::start(&fn_name, n_insns);
            let c = unit.batch.run_profiled(&seq, &soa, &mut prof);
            prof.finish();
            a == b && a == c
        }
    };
    igen::telemetry::set_recording(false);
    if !same {
        eprintln!("igen-cli: profiled run diverged from the unprofiled run");
        return ExitCode::FAILURE;
    }

    let snap = igen::telemetry::snapshot();
    if let Some(path) = &trace_out {
        if let Err(e) = std::fs::write(path, snap.to_jsonl()) {
            eprintln!("igen-cli: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    let rows: Vec<_> = snap.profiles.iter().filter(|r| r.unit == fn_name).collect();
    println!(
        "{fn_name}: {n_insns} insns ({known_sites} with source locations), \
         batch={batch}, profiled outputs bit-identical to unprofiled: yes"
    );
    if rows.is_empty() {
        println!("no profile recorded (telemetry not compiled in)");
        return ExitCode::SUCCESS;
    }
    print!("{}", render_blame(&rows, &src, &input, top));
    ExitCode::SUCCESS
}

/// `igen-cli serve`: the always-on interval service — a persistent
/// worker pool over the `igen-session` compile cache, speaking the
/// JSON-lines protocol on stdio or a Unix socket (see
/// `igen::session::service`).
fn run_serve(args: &[String]) -> ExitCode {
    use igen::session::{serve_lines, Service, ServiceConfig};

    let mut cfg = ServiceConfig::default();
    let mut socket: Option<String> = None;
    let mut record = false;
    let mut f = Flags::new(args);
    while let Some(a) = f.next() {
        match a {
            "--socket" => socket = Some(flag!(f.value("--socket", "a path")).to_string()),
            "--workers" => cfg.workers = flag!(f.parse("--workers", "a count")),
            "--deadline-ms" => {
                cfg.deadline_ms = flag!(f.parse("--deadline-ms", "a count in milliseconds"));
            }
            "--cache-cap" => cfg.cache_cap = flag!(f.parse("--cache-cap", "a count")),
            "--queue-cap" => cfg.queue_cap = flag!(f.parse("--queue-cap", "a count")),
            "--record" => record = true,
            "-h" | "--help" => usage(),
            a => return fail2(format!("unknown serve option '{a}' (see igen-cli --help)")),
        }
    }
    if record {
        if !igen::telemetry::COMPILED_IN {
            eprintln!(
                "igen-cli: note: built without the `telemetry` feature — \
                 --record will trace nothing (rebuild with `--features telemetry`)"
            );
        }
        igen::telemetry::set_recording(true);
    }
    let svc = Service::start(cfg);
    let served = match socket {
        #[cfg(unix)]
        Some(path) => igen::session::serve_unix(&svc, std::path::Path::new(&path)),
        #[cfg(not(unix))]
        Some(_) => {
            eprintln!("igen-cli: --socket needs a unix platform (use stdio)");
            return ExitCode::from(2);
        }
        None => serve_lines(&svc, std::io::stdin().lock(), std::io::stdout()).map(|_| ()),
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("igen-cli: serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Renders the ranked blame tables: top sites by execution-time share
/// and by mean width amplification, each naming (and excerpting) the
/// source line it came from.
fn render_blame(
    rows: &[&igen::telemetry::ProfileRec],
    src: &str,
    input: &str,
    top: usize,
) -> String {
    use std::fmt::Write as _;
    let lines: Vec<&str> = src.lines().collect();
    let file = std::path::Path::new(input)
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_else(|| input.to_string());
    let excerpt = |line: u32| -> String {
        let text =
            if line > 0 { lines.get(line as usize - 1).map_or("", |l| l.trim()) } else { "" };
        let mut t = text.to_string();
        if t.len() > 48 {
            t.truncate(47);
            t.push('…');
        }
        t
    };
    let source = |r: &igen::telemetry::ProfileRec| -> String {
        if r.line > 0 {
            format!("{file}:{}:{}  {}", r.line, r.col, excerpt(r.line))
        } else {
            "(no source site)".to_string()
        }
    };
    let total_ns: u64 = rows.iter().map(|r| r.total_ns).sum();
    let mut out = String::new();

    let mut by_time: Vec<&&igen::telemetry::ProfileRec> = rows.iter().collect();
    by_time.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.site.cmp(&b.site)));
    let _ = writeln!(out, "hot sites by time:");
    let _ = writeln!(out, "  rank  time%      time  op       count  source");
    for (i, r) in by_time.iter().take(top).enumerate() {
        let share = if total_ns > 0 { 100.0 * r.total_ns as f64 / total_ns as f64 } else { 0.0 };
        let _ = writeln!(
            out,
            "  {:>4}  {:>4.1}%  {:>7}  {:<7}  {:>5}  {}",
            i + 1,
            share,
            format_ns(r.total_ns),
            r.op,
            r.count,
            source(r),
        );
    }

    let mut by_amp: Vec<&&igen::telemetry::ProfileRec> =
        rows.iter().filter(|r| r.mean_amp_log2().is_some()).collect();
    by_amp.sort_by(|a, b| {
        let (wa, wb) = (a.mean_amp_log2().unwrap_or(0.0), b.mean_amp_log2().unwrap_or(0.0));
        wb.partial_cmp(&wa).unwrap_or(std::cmp::Ordering::Equal).then(a.site.cmp(&b.site))
    });
    let _ = writeln!(out, "width amplification (log2 out/in per sample):");
    let _ = writeln!(out, "  rank     amp  op       count  source");
    for (i, r) in by_amp.iter().take(top).enumerate() {
        let _ = writeln!(
            out,
            "  {:>4}  2^{:+.1}  {:<7}  {:>5}  {}",
            i + 1,
            r.mean_amp_log2().unwrap_or(0.0),
            r.op,
            r.count,
            source(r),
        );
    }
    out
}

/// Compact duration rendering for the blame table (ns → µs → ms).
fn format_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("batch") => return run_batch(&args[1..]),
        Some("run") => return run_run(&args[1..]),
        Some("profile") => return run_profile(&args[1..]),
        Some("serve") => return run_serve(&args[1..]),
        Some("report") => return run_report(&args[1..]),
        // `compile` is the canonical subcommand; the bare form stays accepted.
        Some("compile") => {
            args.remove(0);
        }
        // A bare first argument that cannot be a C input file (no extension,
        // no path separator) is a misspelled subcommand, not an input.
        Some(a) if !a.starts_with('-') && !a.contains('.') && !a.contains('/') => {
            eprintln!(
                "igen-cli: unknown subcommand '{a}' \
                 (expected compile, run, batch, profile, serve or report)"
            );
            return ExitCode::from(2);
        }
        _ => {}
    }
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut cfg = Config::default();
    let mut emit_intrinsics = false;
    let mut report = false;
    let mut emit_ir = false;
    let mut dump_passes = false;
    let mut metrics = false;
    let mut trace_out: Option<String> = None;

    let mut f = Flags::new(&args);
    while let Some(a) = f.next() {
        match a {
            "-o" => output = Some(f.next().unwrap_or_else(|| usage()).to_string()),
            "--precision" => {
                cfg.precision = match f.next() {
                    Some("f32") => Precision::F32,
                    Some("f64") => Precision::F64,
                    Some("dd") => Precision::Dd,
                    _ => usage(),
                };
            }
            "--opt-level" => {
                cfg.opt_level = match f.next() {
                    Some("0") => OptLevel::O0,
                    Some("1") => OptLevel::O1,
                    Some("2") => OptLevel::O2,
                    _ => usage(),
                };
            }
            "--emit-ir" => emit_ir = true,
            "--dump-passes" => dump_passes = true,
            "--verify-passes" => cfg.verify_passes = true,
            "--reductions" => cfg.reductions = true,
            "--sqr-rewrite" => cfg.sqr_rewrite = true,
            "--vectorize" => {
                cfg.vectorize = match f.next() {
                    Some("ss") => OutputVec::Scalar,
                    Some("sv") => OutputVec::Sse,
                    Some("vv") => OutputVec::Avx,
                    _ => usage(),
                };
            }
            "--join-branches" => cfg.branch_policy = BranchPolicy::JoinBranches,
            "--intrinsics" => emit_intrinsics = true,
            "--report" => report = true,
            "--metrics" => metrics = true,
            "--trace-out" => trace_out = Some(f.next().unwrap_or_else(|| usage()).to_string()),
            "-h" | "--help" => usage(),
            a if a.starts_with('-') => {
                eprintln!("igen-cli: unknown option '{a}' (see igen-cli --help)");
                return ExitCode::from(2);
            }
            a => {
                if input.replace(a.to_string()).is_some() {
                    usage()
                }
            }
        }
    }
    let Some(input) = input else { usage() };
    let tel = Telemetry::start(metrics, trace_out);

    let src = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("igen-cli: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = match igen::compiler::Compiler::new(cfg).compile_str(&src) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("igen-cli: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if report {
        for w in &out.warnings {
            eprintln!("warning: {w}");
        }
        for r in &out.reductions {
            eprintln!("{}", r.polly_style_report());
        }
        if !out.intrinsics_used.is_empty() {
            eprintln!("intrinsics used: {}", out.intrinsics_used.join(", "));
        }
    }
    if emit_ir {
        print!("{}", igen::ir::dump_unit(&out.ir));
    }
    if dump_passes {
        print!("{}", out.opt_report.render());
    }
    let out_path = output.unwrap_or_else(|| {
        let stem = std::path::Path::new(&input)
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_else(|| input.clone());
        format!("igen_{stem}")
    });
    if let Err(e) = std::fs::write(&out_path, &out.c_source) {
        eprintln!("igen-cli: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");
    // Ship the runtime interface alongside (Fig. 2 line 1 includes it).
    std::fs::write("igen_lib.h", igen::compiler::runtime_header(&cfg)).expect("write igen_lib.h");
    eprintln!("wrote igen_lib.h");

    if emit_intrinsics {
        match igen::compiler::compile_intrinsics(&cfg) {
            Ok(intr) => {
                std::fs::write("igen_simd.c", &intr.c_source).expect("write igen_simd.c");
                eprintln!(
                    "wrote igen_simd.c ({} skipped: {})",
                    intr.skipped.len(),
                    intr.skipped.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>().join(", ")
                );
            }
            Err(e) => {
                eprintln!("igen-cli: intrinsics generation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(code) = tel.finish() {
        return code;
    }
    ExitCode::SUCCESS
}
