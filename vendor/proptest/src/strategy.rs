//! Generation-only strategies: the value-producing half of proptest's
//! `Strategy` abstraction (no shrink trees).

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no intermediate `ValueTree`: strategies
/// produce final values directly, and failing cases are reported without
/// shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, regenerating locally on
    /// rejection (bounded; panics if the predicate is almost never true).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }

    /// Recursive strategies: `recurse` receives the strategy for the
    /// previous depth level and returns the strategy for composite
    /// values. Levels are stacked `depth` times; every level also keeps a
    /// chance of producing a base-level value so sizes vary.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
        Self::Value: 'static,
    {
        let base: BoxedStrategy<Self::Value> = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            let composite = recurse(level.clone()).boxed();
            // 1 part base to 3 parts composite keeps generation depth-
            // bounded by construction while still varying sizes.
            level = Union::new(vec![(1u32, base.clone()), (3u32, composite)]).boxed();
        }
        level
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.gen_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 consecutive values", self.reason);
    }
}

/// Weighted choice between same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        Union { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone(), total: self.total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.gen_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted");
    }
}

// ---- numeric ranges ----------------------------------------------------

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn gen_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- tuples ------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---- any::<T>() --------------------------------------------------------

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<f64>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range `f64`s: special values, random bit patterns (hitting NaNs,
/// infinities and subnormals), and uniformly scaled normal values.
#[derive(Debug, Clone, Copy)]
pub struct AnyF64;

impl Strategy for AnyF64 {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        const SPECIAL: [f64; 10] = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::EPSILON,
        ];
        match rng.below(8) {
            0 => SPECIAL[rng.below(SPECIAL.len() as u64) as usize],
            1 | 2 => f64::from_bits(rng.next_u64()),
            _ => {
                // Normal values over a wide exponent span.
                let mag = rng.unit_f64() + 1.0; // [1, 2)
                let exp = rng.below(601) as i32 - 300;
                let v = mag * 2f64.powi(exp);
                if rng.below(2) == 0 {
                    -v
                } else {
                    v
                }
            }
        }
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyF64;
    fn arbitrary() -> AnyF64 {
        AnyF64
    }
}

macro_rules! arbitrary_uniform_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;
            fn arbitrary() -> AnyInt<$t> {
                AnyInt(std::marker::PhantomData)
            }
        }
    )*};
}

/// Uniform full-range integers.
#[derive(Debug, Clone, Copy)]
pub struct AnyInt<T>(std::marker::PhantomData<T>);

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
arbitrary_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Uniform booleans.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn gen_value(&self, rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

// ---- f64 class strategies (prop::num::f64) -----------------------------

/// A set of floating-point value families to draw from, combinable with
/// `|` (mirrors `proptest::num::f64`'s bitflag strategies).
///
/// Family semantics: `POSITIVE`/`NEGATIVE` contribute signed normal
/// values; `ZERO`, `SUBNORMAL` and `INFINITE` contribute those classes,
/// with their sign restricted to the sign flags present (positive when
/// neither sign flag is set).
#[derive(Debug, Clone, Copy)]
pub struct F64Classes(u32);

/// Positive finite values (normal range).
pub const POSITIVE: F64Classes = F64Classes(1);
/// Negative finite values.
pub const NEGATIVE: F64Classes = F64Classes(2);
/// Zero (sign follows the sign flags present).
pub const ZERO: F64Classes = F64Classes(4);
/// Subnormal magnitudes.
pub const SUBNORMAL: F64Classes = F64Classes(8);
/// Infinities.
pub const INFINITE: F64Classes = F64Classes(16);
/// Normal values of either sign.
pub const NORMAL: F64Classes = F64Classes(1 | 2);
/// Any of the above.
pub const ANY: F64Classes = F64Classes(31);

impl std::ops::BitOr for F64Classes {
    type Output = F64Classes;
    fn bitor(self, rhs: F64Classes) -> F64Classes {
        F64Classes(self.0 | rhs.0)
    }
}

impl Strategy for F64Classes {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        let mut families: Vec<u32> = Vec::new();
        for bit in [1u32, 2, 4, 8, 16] {
            if self.0 & bit != 0 {
                families.push(bit);
            }
        }
        assert!(!families.is_empty(), "empty f64 class set");
        let negative_allowed = self.0 & 2 != 0;
        let positive_allowed = self.0 & 1 != 0 || !negative_allowed;
        let sign = |rng: &mut TestRng| -> f64 {
            if negative_allowed && (!positive_allowed || rng.below(2) == 0) {
                -1.0
            } else {
                1.0
            }
        };
        let family = families[rng.below(families.len() as u64) as usize];
        let normal = |rng: &mut TestRng| {
            let m = rng.unit_f64() + 1.0;
            let e = rng.below(601) as i32 - 300;
            m * 2f64.powi(e)
        };
        match family {
            1 => normal(rng),
            2 => -normal(rng),
            4 => 0.0 * sign(rng),
            8 => f64::from_bits(rng.below(1u64 << 52).max(1)) * sign(rng),
            _ => f64::INFINITY * sign(rng),
        }
    }
}

// ---- collections -------------------------------------------------------

/// `prop::collection::vec(element, len_range)`.
pub fn collection_vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// See [`collection_vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start).max(1) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

// ---- regex string strategies -------------------------------------------

/// String literals act as regex strategies. Only the subset this
/// workspace uses is implemented: a single character class with a counted
/// repetition, `"[<class>]{m,n}"`, where the class supports literals,
/// ranges, and `\n`/`\t`/`\\`-style escapes.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_repeat(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy {self:?} (vendored proptest supports only \"[class]{{m,n}}\")"));
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..n).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
    }
}

/// Parses `[<class>]{m,n}` into (expanded alphabet, m, n).
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = find_unescaped_close(rest)?;
    let class = &rest[..close];
    let rep = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match rep.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = rep.trim().parse().ok()?;
            (n, n)
        }
    };
    if hi < lo {
        return None;
    }
    let items = parse_class(class)?;
    if items.is_empty() {
        return None;
    }
    Some((items, lo, hi))
}

fn find_unescaped_close(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b']' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

fn parse_class(class: &str) -> Option<Vec<char>> {
    let mut out = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    let unescape = |c: char| match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    };
    while i < chars.len() {
        // One class atom: a literal or an escape.
        let (c, consumed) =
            if chars[i] == '\\' { (unescape(*chars.get(i + 1)?), 2) } else { (chars[i], 1) };
        i += consumed;
        // Range? (`-` not last and followed by an atom.)
        if i + 1 < chars.len() && chars[i] == '-' {
            let (end, consumed_end) = if chars[i + 1] == '\\' {
                (unescape(*chars.get(i + 2)?), 3)
            } else {
                (chars[i + 1], 2)
            };
            i += consumed_end;
            if (end as u32) < (c as u32) {
                return None;
            }
            for v in (c as u32)..=(end as u32) {
                out.push(char::from_u32(v)?);
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn ranges_and_maps() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (1i32..9).gen_value(&mut r);
            assert!((1..9).contains(&v));
            let f = (-2.0f64..2.0).gen_value(&mut r);
            assert!((-2.0..2.0).contains(&f));
        }
        let doubled = (0u8..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(doubled.gen_value(&mut r) % 2, 0);
        }
    }

    #[test]
    fn filter_retries() {
        let mut r = rng();
        let even = (0u32..100).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..200 {
            assert_eq!(even.gen_value(&mut r) % 2, 0);
        }
    }

    #[test]
    fn union_respects_arms() {
        let mut r = rng();
        let u = Union::new(vec![(1u32, Just("a").boxed()), (1u32, Just("b").boxed())]);
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..100 {
            match u.gen_value(&mut r) {
                "a" => seen_a = true,
                "b" => seen_b = true,
                _ => unreachable!(),
            }
        }
        assert!(seen_a && seen_b);
    }

    #[test]
    fn recursive_bottoms_out() {
        let mut r = rng();
        let leaf = Just("x".to_string()).boxed();
        let expr = leaf.prop_recursive(4, 64, 4, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})"))
        });
        for _ in 0..200 {
            let e = expr.gen_value(&mut r);
            assert!(e.len() < 200, "unbounded recursion: {e}");
            assert!(e.contains('x'));
        }
    }

    #[test]
    fn regex_class_subset() {
        let mut r = rng();
        let s = "[a-c\\n]{2,5}";
        for _ in 0..200 {
            let v = Strategy::gen_value(&s, &mut r);
            assert!((2..=5).contains(&v.chars().count()), "{v:?}");
            assert!(v.chars().all(|c| matches!(c, 'a'..='c' | '\n')), "{v:?}");
        }
        // The space-to-tilde printable range used by the lexer fuzz tests.
        let printable = "[ -~\\n\\t]{0,40}";
        for _ in 0..100 {
            let v = Strategy::gen_value(&printable, &mut r);
            assert!(v.chars().all(|c| c == '\n' || c == '\t' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn any_f64_hits_all_classes() {
        let mut r = rng();
        let (mut finite, mut nonfinite) = (0, 0);
        for _ in 0..2000 {
            let v = any::<f64>().gen_value(&mut r);
            if v.is_finite() {
                finite += 1;
            } else {
                nonfinite += 1;
            }
        }
        assert!(finite > 100 && nonfinite > 10, "{finite} finite, {nonfinite} nonfinite");
    }

    #[test]
    fn f64_classes() {
        let mut r = rng();
        let s = POSITIVE | ZERO;
        for _ in 0..500 {
            let v = s.gen_value(&mut r);
            assert!(v.is_sign_positive(), "{v}");
            assert!(v.is_finite());
        }
        let n = NEGATIVE | INFINITE;
        let mut saw_neg_inf = false;
        for _ in 0..500 {
            let v = n.gen_value(&mut r);
            assert!(v.is_sign_negative(), "{v}");
            saw_neg_inf |= v == f64::NEG_INFINITY;
        }
        assert!(saw_neg_inf);
    }

    #[test]
    fn collection_vec_lengths() {
        let mut r = rng();
        let s = collection_vec(0.0f64..1.0, 1..6);
        for _ in 0..200 {
            let v = s.gen_value(&mut r);
            assert!((1..6).contains(&v.len()));
        }
    }
}
