//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this workspace vendors
//! the *subset* of proptest's API its tests use: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, [`strategy::Strategy`]
//! with `prop_map`/`prop_filter`/`prop_recursive`, `prop_oneof!`, `Just`,
//! `any::<f64>()`, numeric ranges, tuple strategies, `prop::collection::vec`,
//! `prop::num::f64` class strategies, and character-class regex string
//! strategies (`"[a-z]{0,20}"`).
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs and panics; it is
//!   not minimized. Failure messages always include every generated input,
//!   so diagnosis stays possible.
//! * **No persistence.** `.proptest-regressions` files are not read or
//!   written; each run draws a fresh deterministic sequence. The RNG is
//!   seeded from the test's module path and name (override with
//!   `PROPTEST_SEED=<u64>`), so runs are reproducible per test.
//! * **Local filter retries.** `prop_filter` regenerates its own input up
//!   to a bounded number of times instead of rejecting the whole case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// The `prop::` namespace (`prop::collection`, `prop::num`).
pub mod prop {
    pub mod collection {
        //! Collection strategies.
        pub use crate::strategy::collection_vec as vec;
    }
    pub mod num {
        //! Numeric class strategies.
        pub mod f64 {
            //! `f64` class strategies combinable with `|`.
            pub use crate::strategy::{
                F64Classes, ANY, INFINITE, NEGATIVE, NORMAL, POSITIVE, SUBNORMAL, ZERO,
            };
        }
    }
}

/// Everything a proptest-using test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a [`proptest!`] body; on failure the case
/// fails with the formatted message and its inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal (via `==`) inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), a, b),
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Discards the current case (does not count against the case budget)
/// when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        $crate::prop_assume!($cond)
    };
}

/// Weighted or unweighted choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let budget = config.cases.saturating_mul(20).max(2048);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= budget,
                    "proptest: too many rejected cases ({accepted}/{} accepted after {attempts} attempts)",
                    config.cases
                );
                let mut __proptest_inputs = ::std::string::String::new();
                let ($($arg,)+) = ($(
                    {
                        let __proptest_v =
                            $crate::strategy::Strategy::gen_value(&($strat), &mut rng);
                        __proptest_inputs.push_str(&format!(
                            "  {} = {:?}\n",
                            stringify!($arg),
                            &__proptest_v
                        ));
                        __proptest_v
                    },
                )+);
                let __proptest_result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::core::result::Result::Ok(())
                        },
                    )) {
                        ::core::result::Result::Ok(r) => r,
                        ::core::result::Result::Err(payload) => {
                            eprintln!(
                                "proptest case panicked (case {} of {}); inputs:\n{}",
                                accepted + 1, config.cases, __proptest_inputs
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    };
                match __proptest_result {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed: {msg}\ninputs:\n{__proptest_inputs}");
                    }
                }
            }
        }
    )*};
}
