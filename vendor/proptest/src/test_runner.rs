//! The minimal test-runner state: configuration, case outcome, and the
//! deterministic RNG strategies draw from.

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's inputs failed a `prop_assume!`; draw a fresh case.
    Reject,
    /// A `prop_assert!` failed with this message.
    Fail(String),
}

/// Deterministic RNG (SplitMix64). Seeded per test from the test's path
/// so every test draws an independent, reproducible sequence; the
/// `PROPTEST_SEED` environment variable overrides the base seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test identifier (module path + test name).
    pub fn for_test(test_path: &str) -> TestRng {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0xcbf2_9ce4_8422_2325); // FNV-1a offset basis
        let mut h: u64 = base;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3); // FNV-1a step
        }
        TestRng { state: h }
    }

    /// Seeds directly (for internal tests).
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)` by rejection (no modulo bias).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
