//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this workspace vendors
//! the subset of criterion's API its benches use: `Criterion` with
//! `sample_size`, `benchmark_group`/`bench_function`, `Bencher::iter` and
//! `iter_batched`, `BatchSize`, and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! Measurement model: per sample, the routine runs in a loop sized to
//! take roughly [`TARGET_SAMPLE_TIME`]; the reported statistics are the
//! min / median / max of the per-iteration times across `sample_size`
//! samples. That is cruder than criterion's bootstrap analysis but stable
//! enough for the comparative numbers this repo records. `--test` runs
//! every routine exactly once and reports nothing (the CI smoke mode);
//! positional CLI arguments filter benchmarks by substring, as with real
//! criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Target wall-clock duration of one measurement sample.
pub const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// How `iter_batched` amortizes setup; the vendored harness times each
/// batch element individually, so the variants behave identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut test_mode = false;
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion users commonly pass; ignored here.
                "--bench" | "--noplot" | "--quiet" | "--verbose" | "--exact" => {}
                a if a.starts_with('-') => {}
                a => filters.push(a.to_string()),
            }
        }
        Criterion { sample_size: 20, test_mode, filters }
    }
}

impl Criterion {
    /// Sets the number of measurement samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, group: name.to_string() }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.run_one(&id, f);
        self
    }

    fn selected(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if !self.selected(id) {
            return;
        }
        if self.test_mode {
            let mut b = Bencher { test_mode: true, sample_size: 1, samples_ns: Vec::new() };
            f(&mut b);
            println!("Testing {id} ... ok");
            return;
        }
        let mut b =
            Bencher { test_mode: false, sample_size: self.sample_size, samples_ns: Vec::new() };
        f(&mut b);
        b.samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
        if b.samples_ns.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let lo = b.samples_ns[0];
        let hi = b.samples_ns[b.samples_ns.len() - 1];
        let med = b.samples_ns[b.samples_ns.len() / 2];
        println!("{id:<40} time:   [{} {} {}]", format_ns(lo), format_ns(med), format_ns(hi));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named group of benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.group, id);
        self.c.run_one(&full, f);
        self
    }

    /// Ends the group (formatting no-op here).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` (the per-iteration result is passed to
    /// `black_box`-equivalent sinks by the caller).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Calibrate the per-sample iteration count.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= TARGET_SAMPLE_TIME / 4 || iters >= 1 << 30 {
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                let target = TARGET_SAMPLE_TIME.as_secs_f64();
                iters = ((target / per_iter.max(1e-12)) as u64).clamp(1, 1 << 32);
                break;
            }
            iters = iters.saturating_mul(4);
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples_ns.push(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            return;
        }
        for _ in 0..self.sample_size {
            // Time a small batch per sample, setup excluded.
            const BATCH: usize = 8;
            let inputs: Vec<I> = (0..BATCH).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.samples_ns.push(t.elapsed().as_secs_f64() * 1e9 / BATCH as f64);
        }
    }
}

/// Re-export matching criterion's convenience (`criterion::black_box`).
pub use std::hint::black_box;

/// Declares a group-runner function from a config and target list.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher { test_mode: false, sample_size: 5, samples_ns: Vec::new() };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples_ns.len(), 5);
        assert!(b.samples_ns.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut b = Bencher { test_mode: false, sample_size: 3, samples_ns: Vec::new() };
        b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.samples_ns.len(), 3);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher { test_mode: true, sample_size: 50, samples_ns: Vec::new() };
        let mut count = 0;
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert!(b.samples_ns.is_empty());
    }

    #[test]
    fn format_ns_units() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
