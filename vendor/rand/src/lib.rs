//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the *subset* of the `rand` 0.10 API its code actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`RngExt::random_range`] over half-open integer and float ranges.
//!
//! The generator is deterministic (xoshiro256**, seeded through
//! SplitMix64 exactly like the real `rand` seeds small-state RNGs), which
//! is all the workloads need: the paper harness only requires seeded,
//! reproducible inputs, not cryptographic quality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// The core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding constructors (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types uniformly sampleable from a half-open range (mirrors `rand`'s
/// `SampleUniform`; the single blanket `SampleRange` impl below is what
/// lets integer/float literal defaulting work in `random_range(0..100)`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range sampling, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_range(self.start, self.end, rng)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(low: f64, high: f64, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(low: f32, high: f32, rng: &mut R) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        low + unit * (high - low)
    }
}

/// Uniform `u64` below `n` by rejection (avoids modulo bias).
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - u64::MAX % n;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                let width = (high as i128 - low as i128) as u64;
                (low as i128 + below(rng, width) as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods on any RNG (the subset of `rand::Rng` used here;
/// `rand` 0.9 renamed `gen_range` to `random_range`).
pub trait RngExt: RngCore {
    /// Draws one value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A uniformly random value of a sampleable type.
    fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Types drawable uniformly from their "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** with SplitMix64
    /// seed expansion. Statistically solid and fast; *not* the ChaCha12
    /// generator the real `rand` uses, but this workspace only relies on
    /// seeded reproducibility within one build of itself.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1u64 << 60), b.random_range(0u64..1u64 << 60));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random_range(0..u32::MAX), c.random_range(0..u32::MAX));
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = r.random_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = r.random_range(-30..30);
            assert!((-30..30).contains(&i));
            let u = r.random_range(0u32..100);
            assert!(u < 100);
        }
    }

    #[test]
    fn float_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
