//! End-to-end tests of the `igen-cli` binary: file in, files out, exit
//! codes, and the `--report` diagnostics channel.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_igen-cli"))
}

/// Fresh scratch directory per test (under the target dir, so `cargo
/// clean` removes it).
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_in(dir: &PathBuf, args: &[&str]) -> Output {
    cli().current_dir(dir).args(args).output().expect("spawn igen-cli")
}

#[test]
fn compiles_a_file_and_writes_header() {
    let dir = scratch("cli_basic");
    fs::write(dir.join("foo.c"), "double f(double a) { return a * a + 0.5; }").unwrap();
    let out = run_in(&dir, &["foo.c"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let c = fs::read_to_string(dir.join("igen_foo.c")).unwrap();
    assert!(c.contains("f64i f(f64i a)"), "{c}");
    assert!(c.contains("ia_mul_f64"), "{c}");
    let h = fs::read_to_string(dir.join("igen_lib.h")).unwrap();
    assert!(h.contains("f64i ia_add_f64"), "{h}");
}

#[test]
fn custom_output_path_and_dd_precision() {
    let dir = scratch("cli_dd");
    fs::write(dir.join("g.c"), "double g(double x) { return x + 1.0; }").unwrap();
    let out = run_in(&dir, &["g.c", "-o", "out.c", "--precision", "dd"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let c = fs::read_to_string(dir.join("out.c")).unwrap();
    assert!(c.contains("ddi g(ddi x)"), "{c}");
    assert!(c.contains("ia_add_dd"), "{c}");
    assert!(!dir.join("igen_g.c").exists());
}

#[test]
fn report_prints_polly_style_reductions() {
    let dir = scratch("cli_report");
    fs::write(
        dir.join("dot.c"),
        r#"
        double dot(double* x, double* y, int n) {
            double s = 0.0;
            int i;
            #pragma igen reduce s
            for (i = 0; i < n; i++) {
                s = s + x[i] * y[i];
            }
            return s;
        }
        "#,
    )
    .unwrap();
    let out = run_in(&dir, &["dot.c", "--reductions", "--report"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("Reduction dependences"), "{stderr}");
    assert!(stderr.contains("var: s"), "{stderr}");
    let c = fs::read_to_string(dir.join("igen_dot.c")).unwrap();
    assert!(c.contains("isum_"), "{c}");
}

#[test]
fn intrinsics_flag_emits_simd_library() {
    let dir = scratch("cli_simd");
    fs::write(dir.join("k.c"), "double k(double a) { return a - 2.0; }").unwrap();
    let out = run_in(&dir, &["k.c", "--intrinsics"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let simd = fs::read_to_string(dir.join("igen_simd.c")).unwrap();
    assert!(simd.contains("_c_mm256_add_pd"), "{simd}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    // blendv + the deliberately-unsupported round_pd are reported skipped.
    assert!(stderr.contains("_mm256_blendv_pd"), "{stderr}");
    assert!(stderr.contains("_mm256_round_pd"), "{stderr}");
}

#[test]
fn compile_error_is_reported_with_failure_exit() {
    let dir = scratch("cli_err");
    // float -> int cast is a rejected construct (paper Section V).
    fs::write(dir.join("bad.c"), "int f(double a) { return (int) a; }").unwrap();
    let out = run_in(&dir, &["bad.c"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad.c"), "{stderr}");
    assert!(!dir.join("igen_bad.c").exists());
}

#[test]
fn missing_input_fails_cleanly() {
    let dir = scratch("cli_missing");
    let out = run_in(&dir, &["nonexistent.c"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"), "");
}

#[test]
fn unknown_flag_shows_usage() {
    let dir = scratch("cli_usage");
    let out = run_in(&dir, &["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn vectorize_flag_stamps_configuration() {
    let dir = scratch("cli_vec");
    fs::write(dir.join("v.c"), "double f(double a) { return a + 1.0; }").unwrap();
    let out = run_in(&dir, &["v.c", "--vectorize", "vv"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let c = fs::read_to_string(dir.join("igen_v.c")).unwrap();
    assert!(c.starts_with("/* igen configuration: vv"), "{c}");
    // Default ss: no banner (paper listings stay byte-exact).
    let out = run_in(&dir, &["v.c", "-o", "ss.c"]);
    assert!(out.status.success());
    let c = fs::read_to_string(dir.join("ss.c")).unwrap();
    assert!(c.starts_with("#include"), "{c}");
}

#[test]
fn compile_subcommand_matches_bare_form() {
    let dir = scratch("cli_compile_subcmd");
    fs::write(dir.join("h.c"), "double f(double x) { return x * x + x * x; }").unwrap();
    let out = run_in(&dir, &["compile", "h.c", "-o", "sub.c"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = run_in(&dir, &["h.c", "-o", "bare.c"]);
    assert!(out.status.success());
    assert_eq!(
        fs::read_to_string(dir.join("sub.c")).unwrap(),
        fs::read_to_string(dir.join("bare.c")).unwrap(),
        "`compile` subcommand and bare form must agree"
    );
}

#[test]
fn opt_level_two_removes_common_subexpression() {
    let dir = scratch("cli_opt_level");
    fs::write(dir.join("h.c"), "double f(double x) { return x * x + x * x; }").unwrap();
    let out = run_in(&dir, &["compile", "h.c", "-o", "o0.c"]);
    assert!(out.status.success());
    let out =
        run_in(&dir, &["compile", "h.c", "-o", "o2.c", "--opt-level", "2", "--verify-passes"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let o0 = fs::read_to_string(dir.join("o0.c")).unwrap();
    let o2 = fs::read_to_string(dir.join("o2.c")).unwrap();
    assert_eq!(o0.matches("ia_mul_f64(x, x)").count(), 2, "{o0}");
    assert_eq!(o2.matches("ia_mul_f64(x, x)").count(), 1, "{o2}");
}

#[test]
fn emit_ir_and_dump_passes_go_to_stdout() {
    let dir = scratch("cli_emit_ir");
    fs::write(dir.join("h.c"), "double f(double x) { return x * x + x * x; }").unwrap();
    let out = run_in(&dir, &["compile", "h.c", "--opt-level", "2", "--emit-ir", "--dump-passes"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("func f(f64i x) -> f64i"), "{stdout}");
    assert!(stdout.contains("mul.f64"), "{stdout}");
    assert!(stdout.contains("pass pipeline (O2):"), "{stdout}");
    for pass in ["reduce", "fold", "cse", "copyprop", "dce"] {
        assert!(stdout.contains(pass), "missing {pass} in report:\n{stdout}");
    }
}
