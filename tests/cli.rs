//! End-to-end tests of the `igen-cli` binary: file in, files out, exit
//! codes, and the `--report` diagnostics channel.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_igen-cli"))
}

/// Fresh scratch directory per test (under the target dir, so `cargo
/// clean` removes it).
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_in(dir: &PathBuf, args: &[&str]) -> Output {
    cli().current_dir(dir).args(args).output().expect("spawn igen-cli")
}

#[test]
fn compiles_a_file_and_writes_header() {
    let dir = scratch("cli_basic");
    fs::write(dir.join("foo.c"), "double f(double a) { return a * a + 0.5; }").unwrap();
    let out = run_in(&dir, &["foo.c"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let c = fs::read_to_string(dir.join("igen_foo.c")).unwrap();
    assert!(c.contains("f64i f(f64i a)"), "{c}");
    assert!(c.contains("ia_mul_f64"), "{c}");
    let h = fs::read_to_string(dir.join("igen_lib.h")).unwrap();
    assert!(h.contains("f64i ia_add_f64"), "{h}");
}

#[test]
fn custom_output_path_and_dd_precision() {
    let dir = scratch("cli_dd");
    fs::write(dir.join("g.c"), "double g(double x) { return x + 1.0; }").unwrap();
    let out = run_in(&dir, &["g.c", "-o", "out.c", "--precision", "dd"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let c = fs::read_to_string(dir.join("out.c")).unwrap();
    assert!(c.contains("ddi g(ddi x)"), "{c}");
    assert!(c.contains("ia_add_dd"), "{c}");
    assert!(!dir.join("igen_g.c").exists());
}

#[test]
fn report_prints_polly_style_reductions() {
    let dir = scratch("cli_report");
    fs::write(
        dir.join("dot.c"),
        r#"
        double dot(double* x, double* y, int n) {
            double s = 0.0;
            int i;
            #pragma igen reduce s
            for (i = 0; i < n; i++) {
                s = s + x[i] * y[i];
            }
            return s;
        }
        "#,
    )
    .unwrap();
    let out = run_in(&dir, &["dot.c", "--reductions", "--report"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("Reduction dependences"), "{stderr}");
    assert!(stderr.contains("var: s"), "{stderr}");
    let c = fs::read_to_string(dir.join("igen_dot.c")).unwrap();
    assert!(c.contains("isum_"), "{c}");
}

#[test]
fn intrinsics_flag_emits_simd_library() {
    let dir = scratch("cli_simd");
    fs::write(dir.join("k.c"), "double k(double a) { return a - 2.0; }").unwrap();
    let out = run_in(&dir, &["k.c", "--intrinsics"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let simd = fs::read_to_string(dir.join("igen_simd.c")).unwrap();
    assert!(simd.contains("_c_mm256_add_pd"), "{simd}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    // blendv + the deliberately-unsupported round_pd are reported skipped.
    assert!(stderr.contains("_mm256_blendv_pd"), "{stderr}");
    assert!(stderr.contains("_mm256_round_pd"), "{stderr}");
}

#[test]
fn compile_error_is_reported_with_failure_exit() {
    let dir = scratch("cli_err");
    // float -> int cast is a rejected construct (paper Section V).
    fs::write(dir.join("bad.c"), "int f(double a) { return (int) a; }").unwrap();
    let out = run_in(&dir, &["bad.c"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad.c"), "{stderr}");
    assert!(!dir.join("igen_bad.c").exists());
}

#[test]
fn missing_input_fails_cleanly() {
    let dir = scratch("cli_missing");
    let out = run_in(&dir, &["nonexistent.c"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"), "");
}

#[test]
fn unknown_flag_is_a_one_line_error() {
    let dir = scratch("cli_usage");
    let out = run_in(&dir, &["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown option '--bogus'"), "{stderr}");
    assert_eq!(stderr.trim_end().lines().count(), 1, "want a one-line error, got:\n{stderr}");
}

#[test]
fn unknown_subcommand_is_a_one_line_error() {
    let dir = scratch("cli_subcmd");
    let out = run_in(&dir, &["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown subcommand 'frobnicate'"), "{stderr}");
    assert!(stderr.contains("expected compile, run, batch, profile, serve or report"), "{stderr}");
    assert_eq!(stderr.trim_end().lines().count(), 1, "want a one-line error, got:\n{stderr}");
}

#[test]
fn unknown_batch_flag_and_kernel_fail_with_exit_2() {
    let dir = scratch("cli_batch_err");
    let out = run_in(&dir, &["batch", "dot", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown batch option '--bogus'"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = run_in(&dir, &["batch", "frob"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown batch kernel 'frob'"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn run_compiles_and_executes_a_batch() {
    let dir = scratch("cli_run");
    fs::write(
        dir.join("dot.c"),
        r#"
        double dot(double* x, double* y, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) {
                s = s + x[i] * y[i];
            }
            return s;
        }
        "#,
    )
    .unwrap();
    let out = run_in(
        &dir,
        &[
            "run",
            "dot.c",
            "--arg",
            "n=5",
            "--len",
            "x=5",
            "--len",
            "y=5",
            "--batch",
            "10",
            "--emit-bytecode",
        ],
    );
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("program dot"), "{stdout}");
    assert!(stdout.contains("in r0 = x[0]"), "{stdout}");
    assert!(stdout.contains("differential interpreter check: ok"), "{stdout}");
    assert!(stdout.contains("results bit-identical across thread counts: yes"), "{stdout}");
    // The compile artifacts of compile mode are not produced by run.
    assert!(!dir.join("igen_dot.c").exists());
}

#[test]
fn run_unknown_flag_is_a_one_line_exit_2() {
    let dir = scratch("cli_run_flag");
    fs::write(dir.join("f.c"), "double f(double a) { return a + 1.0; }").unwrap();
    let out = run_in(&dir, &["run", "f.c", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown run option '--frobnicate'"), "{stderr}");
    assert_eq!(stderr.trim_end().lines().count(), 1, "want a one-line error, got:\n{stderr}");
}

#[test]
fn run_missing_file_is_a_one_line_exit_2() {
    let dir = scratch("cli_run_missing");
    let out = run_in(&dir, &["run", "nonexistent.c"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read nonexistent.c"), "{stderr}");
    assert_eq!(stderr.trim_end().lines().count(), 1, "want a one-line error, got:\n{stderr}");
}

#[test]
fn run_missing_int_arg_names_the_parameter() {
    let dir = scratch("cli_run_intarg");
    fs::write(
        dir.join("h.c"),
        "double h(double x, int k) { double r = x; for (int i = 0; i < k; i++) { r = r * x; } return r; }",
    )
    .unwrap();
    let out = run_in(&dir, &["run", "h.c"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--arg k=<value>"), "{stderr}");
    let out = run_in(&dir, &["run", "h.c", "--arg", "k=3", "--batch", "6"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn run_rejects_untraceable_functions_with_the_reason() {
    let dir = scratch("cli_run_reject");
    fs::write(dir.join("b.c"), "double b(double x) { if (x > 0.0) { return x; } return 0.0; }")
        .unwrap();
    let out = run_in(&dir, &["run", "b.c"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("interval"), "{stderr}");
}

#[test]
fn report_renders_a_handcrafted_trace() {
    let dir = scratch("cli_trace_report");
    // `report` only parses the trace, so it works in every build config.
    fs::write(
        dir.join("trace.jsonl"),
        concat!(
            r#"{"type":"span","name":"compile.parse","thread":0,"depth":0,"start_ns":0,"dur_ns":1500}"#,
            "\n",
            r#"{"type":"counter","name":"simd.add.packed_calls","value":100}"#,
            "\n",
            r#"{"type":"counter","name":"simd.add.lanes_patched","value":3}"#,
            "\n",
            r#"{"type":"hist","name":"width.batch.dot_batch","count":4,"buckets":[[-52,3],[-40,1]]}"#,
            "\n",
        ),
    )
    .unwrap();
    let out = run_in(&dir, &["report", "trace.jsonl"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("compile.parse"), "{stdout}");
    assert!(stdout.contains("simd.add"), "{stdout}");
    assert!(stdout.contains("width.batch.dot_batch"), "{stdout}");
}

#[test]
fn report_merges_concatenated_traces() {
    let dir = scratch("cli_trace_merge");
    let line = r#"{"type":"counter","name":"round.ulp_bumps","value":5}"#;
    fs::write(dir.join("a.jsonl"), format!("{line}\n")).unwrap();
    fs::write(dir.join("b.jsonl"), line).unwrap(); // no trailing newline
    let out = run_in(&dir, &["report", "a.jsonl", "b.jsonl"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("round.ulp_bumps"), "{stdout}");
    assert!(stdout.contains("10"), "counters must sum across files:\n{stdout}");
}

#[test]
fn report_rejects_missing_and_malformed_traces() {
    let dir = scratch("cli_trace_bad");
    let out = run_in(&dir, &["report"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run_in(&dir, &["report", "nope.jsonl"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"), "");
    fs::write(dir.join("garbage.jsonl"), "not json\n").unwrap();
    let out = run_in(&dir, &["report", "garbage.jsonl"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad trace"), "");
}

#[test]
fn trace_out_writes_a_trace_file() {
    let dir = scratch("cli_trace_out");
    fs::write(dir.join("t.c"), "double f(double a) { return a * a + 0.5; }").unwrap();
    let out = run_in(&dir, &["compile", "t.c", "--trace-out", "t.jsonl", "--metrics"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let trace = fs::read_to_string(dir.join("t.jsonl")).unwrap();
    // The report subcommand must accept whatever --trace-out wrote.
    let out = run_in(&dir, &["report", "t.jsonl"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    if cfg!(feature = "telemetry") {
        assert!(trace.contains("compile.parse"), "{trace}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("compile.parse"), "{stdout}");
    } else {
        // Disabled builds emit an empty trace and say so up front.
        assert!(trace.is_empty(), "{trace}");
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("trace is empty"),
            "{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn vectorize_flag_stamps_configuration() {
    let dir = scratch("cli_vec");
    fs::write(dir.join("v.c"), "double f(double a) { return a + 1.0; }").unwrap();
    let out = run_in(&dir, &["v.c", "--vectorize", "vv"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let c = fs::read_to_string(dir.join("igen_v.c")).unwrap();
    assert!(c.starts_with("/* igen configuration: vv"), "{c}");
    // Default ss: no banner (paper listings stay byte-exact).
    let out = run_in(&dir, &["v.c", "-o", "ss.c"]);
    assert!(out.status.success());
    let c = fs::read_to_string(dir.join("ss.c")).unwrap();
    assert!(c.starts_with("#include"), "{c}");
}

#[test]
fn compile_subcommand_matches_bare_form() {
    let dir = scratch("cli_compile_subcmd");
    fs::write(dir.join("h.c"), "double f(double x) { return x * x + x * x; }").unwrap();
    let out = run_in(&dir, &["compile", "h.c", "-o", "sub.c"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = run_in(&dir, &["h.c", "-o", "bare.c"]);
    assert!(out.status.success());
    assert_eq!(
        fs::read_to_string(dir.join("sub.c")).unwrap(),
        fs::read_to_string(dir.join("bare.c")).unwrap(),
        "`compile` subcommand and bare form must agree"
    );
}

#[test]
fn opt_level_two_removes_common_subexpression() {
    let dir = scratch("cli_opt_level");
    fs::write(dir.join("h.c"), "double f(double x) { return x * x + x * x; }").unwrap();
    let out = run_in(&dir, &["compile", "h.c", "-o", "o0.c"]);
    assert!(out.status.success());
    let out =
        run_in(&dir, &["compile", "h.c", "-o", "o2.c", "--opt-level", "2", "--verify-passes"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let o0 = fs::read_to_string(dir.join("o0.c")).unwrap();
    let o2 = fs::read_to_string(dir.join("o2.c")).unwrap();
    assert_eq!(o0.matches("ia_mul_f64(x, x)").count(), 2, "{o0}");
    assert_eq!(o2.matches("ia_mul_f64(x, x)").count(), 1, "{o2}");
}

#[test]
fn emit_ir_and_dump_passes_go_to_stdout() {
    let dir = scratch("cli_emit_ir");
    fs::write(dir.join("h.c"), "double f(double x) { return x * x + x * x; }").unwrap();
    let out = run_in(&dir, &["compile", "h.c", "--opt-level", "2", "--emit-ir", "--dump-passes"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("func f(f64i x) -> f64i"), "{stdout}");
    assert!(stdout.contains("mul.f64"), "{stdout}");
    assert!(stdout.contains("pass pipeline (O2):"), "{stdout}");
    for pass in ["reduce", "fold", "cse", "copyprop", "dce"] {
        assert!(stdout.contains(pass), "missing {pass} in report:\n{stdout}");
    }
}
