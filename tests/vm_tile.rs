//! Tiled-executor and peephole bit-identity.
//!
//! Two claims are pinned here, both with zero tolerance:
//!
//! 1. The tiled instruction-major executor (`run_tile`, reached through
//!    `BatchProgram`) is bit-identical to the scalar reference
//!    (`run_scalar`) for every batch-size tail shape — fewer items
//!    than a packed group, fewer groups than a tile, and non-multiples
//!    of the tile — at `-O0/-O1/-O2`, both precisions, 1/3/8 threads,
//!    and several tile sizes.
//! 2. The peephole pass preserves every endpoint bit of every output on
//!    the full `vm_identity` program set: the raw lowering and the
//!    peepholed program are run side by side over random inputs and
//!    compared bitwise.

use igen::batch::{BatchConfig, BatchDdI, BatchF64I, BatchProgram};
use igen::compiler::{
    compile_to_program, compile_to_program_raw, Compiler, Config, OptLevel, Output, Precision,
};
use igen::interval::{DdI, F64I};
use igen::kernels::workload;
use igen::round::simd::{self, Backend};
use igen::vm::{peephole, run_scalar, ArgBind, BindSpec};
use proptest::prelude::*;

const OPT_LEVELS: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];

/// Batch sizes that exercise every tail shape: under one packed group
/// (1–3), exact group, under one default tile (5, 31), exact tile
/// boundary at the default 8 groups (32), one over (33), multiple tiles
/// with and without remainder (64, 65).
const TAIL_SHAPES: [usize; 10] = [1, 2, 3, 4, 5, 31, 32, 33, 64, 65];

fn compile(src: &str, opt: OptLevel, precision: Precision) -> Output {
    let cfg = Config { opt_level: opt, precision, ..Config::default() };
    Compiler::new(cfg).compile_str(src).expect("compiles")
}

fn henon_src() -> String {
    std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/inputs/henon.c"),
    )
    .expect("golden henon source")
}

const POLY_SRC: &str = r#"
    double poly(double u, double v) {
        double a = fabs(u);
        double m = fmax(a, v);
        double r = sqrt(m + 2.0);
        double p = pow(u, 3);
        return fmin(r, p) / (v + 4.0) - u * u;
    }
"#;

fn assert_f64_bits(a: &F64I, b: &F64I, ctx: &str) {
    assert_eq!(a.lo().to_bits(), b.lo().to_bits(), "lo {ctx}");
    assert_eq!(a.hi().to_bits(), b.hi().to_bits(), "hi {ctx}");
}

fn assert_dd_bits(a: &DdI, b: &DdI, ctx: &str) {
    let bits = |d: &DdI| {
        let (lo, hi) = (d.lo(), d.hi());
        [lo.hi().to_bits(), lo.lo().to_bits(), hi.hi().to_bits(), hi.lo().to_bits()]
    };
    assert_eq!(bits(a), bits(b), "{ctx}");
}

/// The fixed matrix: opt level × precision × items × threads × tile.
#[test]
fn tiled_batch_is_bit_identical_to_scalar_for_every_tail_shape() {
    let henon = henon_src();
    let bind = BindSpec::new(vec![ArgBind::Ival, ArgBind::Ival, ArgBind::Int(6)]);
    for opt in OPT_LEVELS {
        // f64
        let out = compile(&henon, opt, Precision::F64);
        let prog = compile_to_program(&out, "henon_map", &bind).expect("lowers");
        let nin = prog.n_inputs as usize;
        let bp = BatchProgram::new(prog.clone());
        for &items in &TAIL_SHAPES {
            let mut rng = workload::rng(0xA11CE ^ items as u64 ^ opt as u64);
            let points = workload::random_points(&mut rng, items * nin, -1.0, 1.0);
            let inputs = workload::intervals_1ulp(&points);
            let want: Vec<F64I> = (0..items)
                .flat_map(|i| run_scalar::<F64I>(&prog, &inputs[i * nin..(i + 1) * nin]))
                .collect();
            let soa = BatchF64I::from_intervals(&inputs);
            for threads in [1usize, 3, 8] {
                for tile in [1usize, 2, 8, 16] {
                    let cfg = BatchConfig::new()
                        .with_threads(threads)
                        .with_seq_threshold(0)
                        .with_tile_groups(tile);
                    let got = bp.run(&cfg, &soa).to_intervals();
                    assert_eq!(got.len(), want.len());
                    for (g, w) in got.iter().zip(&want) {
                        assert_f64_bits(
                            g,
                            w,
                            &format!("f64 {opt:?} items={items} threads={threads} tile={tile}"),
                        );
                    }
                }
            }
        }

        // dd
        let out = compile(&henon, opt, Precision::Dd);
        let prog = compile_to_program(&out, "henon_map", &bind).expect("lowers dd");
        let nin = prog.n_inputs as usize;
        let bp = BatchProgram::new(prog.clone());
        for &items in &[1usize, 3, 5, 33] {
            let mut rng = workload::rng(0xDD ^ items as u64 ^ opt as u64);
            let inputs = workload::dd_intervals_1ulp(&mut rng, items * nin, -0.5, 0.5);
            let want: Vec<DdI> = (0..items)
                .flat_map(|i| run_scalar::<DdI>(&prog, &inputs[i * nin..(i + 1) * nin]))
                .collect();
            let soa = BatchDdI::from_intervals(&inputs);
            for threads in [1usize, 3, 8] {
                for tile in [1usize, 8] {
                    let cfg = BatchConfig::new()
                        .with_threads(threads)
                        .with_seq_threshold(0)
                        .with_tile_groups(tile);
                    let got = bp.run_dd(&cfg, &soa).to_intervals();
                    assert_eq!(got.len(), want.len());
                    for (g, w) in got.iter().zip(&want) {
                        assert_dd_bits(
                            g,
                            w,
                            &format!("dd {opt:?} items={items} threads={threads} tile={tile}"),
                        );
                    }
                }
            }
        }
    }
}

/// Named for the CI leg that forces the SSE2 backend on AVX2 hosts: the
/// tiled executor's packed sweeps must survive the downgrade
/// bit-identically. Safe to run alongside the other tests here — the
/// whole point of the backend contract is that every backend produces
/// the same bits, so a concurrently-downgraded test still passes.
#[test]
fn forced_sse2_tiled_batch_bit_identical() {
    if simd::detected_backend() < Backend::Sse2 {
        return; // nothing to force on this host
    }
    let henon = henon_src();
    let bind = BindSpec::new(vec![ArgBind::Ival, ArgBind::Ival, ArgBind::Int(8)]);
    let out = compile(&henon, OptLevel::O2, Precision::F64);
    let prog = compile_to_program(&out, "henon_map", &bind).expect("lowers");
    let nin = prog.n_inputs as usize;
    let bp = BatchProgram::new(prog.clone());
    let items = 33usize; // one over a full default tile: packed body + scalar tail
    let mut rng = workload::rng(0x55E2);
    let points = workload::random_points(&mut rng, items * nin, -1.0, 1.0);
    let inputs = workload::intervals_1ulp(&points);
    let want: Vec<F64I> = (0..items)
        .flat_map(|i| run_scalar::<F64I>(&prog, &inputs[i * nin..(i + 1) * nin]))
        .collect();
    let soa = BatchF64I::from_intervals(&inputs);
    let cfg = BatchConfig::new().with_threads(2).with_seq_threshold(0);
    simd::force_backend(Some(Backend::Sse2));
    let got = bp.run(&cfg, &soa).to_intervals();
    simd::force_backend(None);
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_f64_bits(g, w, &format!("forced sse2, output {i}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random (items, threads, tile) triples against the scalar
    /// reference on the builtin-heavy poly kernel at -O2.
    #[test]
    fn tiled_batch_matches_scalar_on_random_shapes(
        items in 1usize..150,
        threads in 1usize..9,
        tile in 1usize..20,
        seed in 0u64..1_000,
    ) {
        let out = compile(POLY_SRC, OptLevel::O2, Precision::F64);
        let bind = BindSpec::new(vec![ArgBind::Ival, ArgBind::Ival]);
        let prog = compile_to_program(&out, "poly", &bind).expect("lowers");
        let nin = prog.n_inputs as usize;
        let mut rng = workload::rng(seed);
        let points = workload::random_points(&mut rng, items * nin, -2.0, 2.0);
        let inputs = workload::intervals_1ulp(&points);
        let want: Vec<F64I> = (0..items)
            .flat_map(|i| run_scalar::<F64I>(&prog, &inputs[i * nin..(i + 1) * nin]))
            .collect();
        let bp = BatchProgram::new(prog);
        let cfg = BatchConfig::new()
            .with_threads(threads)
            .with_seq_threshold(0)
            .with_tile_groups(tile);
        let got = bp.run(&cfg, &BatchF64I::from_intervals(&inputs)).to_intervals();
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.lo().to_bits(), w.lo().to_bits());
            prop_assert_eq!(g.hi().to_bits(), w.hi().to_bits());
        }
    }
}

/// The peephole differential over the PR 7 `vm_identity` program set:
/// raw lowering vs peepholed program, every output endpoint bit, every
/// opt level.
#[test]
fn peephole_preserves_every_endpoint_bit_on_the_identity_set() {
    let henon = henon_src();
    let mvm_n = 4usize;
    let mut mrng = workload::rng(99);
    let a = workload::random_points(&mut mrng, mvm_n * mvm_n, -1.0, 1.0);
    let pairs: Vec<(f64, f64)> = a.iter().map(|&v| (v, v)).collect();
    let set: Vec<(&str, &str, BindSpec, usize)> = vec![
        (
            r#"
            double dot(double* x, double* y, int n) {
                double s = 0.0;
                for (int i = 0; i < n; i++) {
                    s = s + x[i] * y[i];
                }
                return s;
            }
            "#,
            "dot",
            BindSpec::new(vec![ArgBind::In(7), ArgBind::In(7), ArgBind::Int(7)]),
            9,
        ),
        (
            henon.as_str(),
            "henon_map",
            BindSpec::new(vec![ArgBind::Ival, ArgBind::Ival, ArgBind::Int(12)]),
            13,
        ),
        (POLY_SRC, "poly", BindSpec::new(vec![ArgBind::Ival, ArgBind::Ival]), 16),
        (
            r#"
            void mvm(double* a, double* x, double* y, int n) {
                for (int i = 0; i < n; i++) {
                    double acc = y[i];
                    for (int j = 0; j < n; j++) {
                        acc = acc + a[i * n + j] * x[j];
                    }
                    y[i] = acc;
                }
            }
            "#,
            "mvm",
            BindSpec::new(vec![
                ArgBind::Uniform(pairs),
                ArgBind::In(mvm_n),
                ArgBind::InOut(mvm_n),
                ArgBind::Int(mvm_n as i64),
            ]),
            6,
        ),
        (
            r#"
            double scratch(double v) {
                double tmp[3];
                tmp[0] = v + 1.0;
                tmp[1] = tmp[0] * tmp[0];
                tmp[2] = tmp[1] - v;
                return tmp[2];
            }
            "#,
            "scratch",
            BindSpec::new(vec![ArgBind::Ival]),
            17,
        ),
        (
            r#"
            void split(double x, double* o) {
                o[0] = x * x;
                o[1] = x + 1.5;
            }
            "#,
            "split",
            BindSpec::new(vec![ArgBind::Ival, ArgBind::Out(2)]),
            10,
        ),
    ];
    for (src, fn_name, bind, items) in &set {
        for opt in OPT_LEVELS {
            let out = compile(src, opt, Precision::F64);
            let raw = compile_to_program_raw(&out, fn_name, bind)
                .unwrap_or_else(|e| panic!("{fn_name} at {opt:?}: {e}"));
            raw.validate_ssa().expect("raw lowering is SSA");
            let (peep, stats) = peephole(&raw);
            peep.validate().expect("peepholed program validates");
            assert!(peep.n_regs <= raw.n_regs, "{fn_name}: renumbering never grows the file");
            let _ = stats;
            let nin = raw.n_inputs as usize;
            let mut rng = workload::rng(0x5EED ^ opt as u64);
            let points = workload::random_points(&mut rng, items * nin.max(1), -2.0, 2.0);
            let inputs = workload::intervals_1ulp(&points);
            for i in 0..*items {
                let item = &inputs[i * nin..(i + 1) * nin];
                let want = run_scalar::<F64I>(&raw, item);
                let got = run_scalar::<F64I>(&peep, item);
                assert_eq!(want.len(), got.len());
                for (slot, (w, g)) in raw.outputs.iter().zip(want.iter().zip(&got)) {
                    assert_f64_bits(
                        g,
                        w,
                        &format!("{fn_name} at {opt:?}, item {i}, output {}", slot.label),
                    );
                }
            }
        }
    }
}

/// Same differential at dd precision on the Hénon kernel (the one dd
/// program in the identity set); all four endpoint components compare.
#[test]
fn peephole_preserves_dd_bits_on_henon() {
    let henon = henon_src();
    let bind = BindSpec::new(vec![ArgBind::Ival, ArgBind::Ival, ArgBind::Int(8)]);
    for opt in OPT_LEVELS {
        let out = compile(&henon, opt, Precision::Dd);
        let raw = compile_to_program_raw(&out, "henon_map", &bind).expect("lowers dd");
        let (peep, _) = peephole(&raw);
        let nin = raw.n_inputs as usize;
        let mut rng = workload::rng(0xDDD ^ opt as u64);
        let inputs = workload::dd_intervals_1ulp(&mut rng, 10 * nin, -0.5, 0.5);
        for i in 0..10 {
            let item = &inputs[i * nin..(i + 1) * nin];
            let want = run_scalar::<DdI>(&raw, item);
            let got = run_scalar::<DdI>(&peep, item);
            assert_eq!(want.len(), got.len());
            for (w, g) in want.iter().zip(&got) {
                assert_dd_bits(g, w, &format!("dd henon at {opt:?}, item {i}"));
            }
        }
    }
}
