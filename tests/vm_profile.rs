//! Width-provenance profiling, end to end: profiled execution must be
//! bit-identical to plain execution (f64 and dd, every opt level), and
//! the instruction→source DebugMap must survive the whole pipeline —
//! lowering, the IR passes, peephole rewriting and register renumbering
//! — so the blame report can name real source lines at `-O2`.

use igen::batch::{BatchConfig, BatchDdI, BatchF64I, BatchProgram};
use igen::compiler::{
    compile_to_program, compile_to_program_raw, Compiler, Config, OptLevel, Output, Precision,
};
use igen::kernels::workload;
use igen::vm::{ArgBind, BindSpec};

const OPT_LEVELS: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];

fn henon_src() -> String {
    std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/inputs/henon.c"),
    )
    .expect("golden henon source")
}

fn compile(src: &str, opt: OptLevel, precision: Precision) -> Output {
    let cfg = Config { opt_level: opt, precision, ..Config::default() };
    Compiler::new(cfg).compile_str(src).expect("compiles")
}

/// Runs plain and profiled over the same batch and asserts every
/// endpoint matches bit for bit. With telemetry compiled in (and
/// recording turned on here) the profiled run records live samples; in
/// a default build the profiler is a zero-sized stub and this pins the
/// fall-through path instead — both must hold.
fn check_profiled_identity(src: &str, fn_name: &str, bind: &BindSpec, precision: Precision) {
    for opt in OPT_LEVELS {
        let out = compile(src, opt, precision);
        let prog = compile_to_program(&out, fn_name, bind)
            .unwrap_or_else(|e| panic!("{fn_name} at {opt:?}: {e}"));
        let nin = prog.n_inputs as usize;
        let n_sites = prog.insns.len();
        let items = 13usize;
        let mut rng = workload::rng(0x9e0f ^ opt as u64);
        let bp = BatchProgram::new(prog);
        let cfg = BatchConfig::new().with_threads(1).with_seq_threshold(0);
        igen::telemetry::set_recording(true);
        let unit = format!("test.profile.{fn_name}.{opt:?}");
        match precision {
            Precision::Dd => {
                let ivals = workload::dd_intervals_1ulp(&mut rng, items * nin, -2.0, 2.0);
                let soa = BatchDdI::from_intervals(&ivals);
                let plain = bp.run_dd(&cfg, &soa).to_intervals();
                let mut prof = igen::telemetry::UnitProfiler::start(&unit, n_sites);
                let profiled = bp.run_dd_profiled(&cfg, &soa, &mut prof).to_intervals();
                prof.finish();
                assert_eq!(plain.len(), profiled.len());
                for (a, b) in plain.iter().zip(&profiled) {
                    let (fa, fb) = (a.to_f64i(), b.to_f64i());
                    assert_eq!(fa.lo().to_bits(), fb.lo().to_bits(), "{fn_name} {opt:?} dd lo");
                    assert_eq!(fa.hi().to_bits(), fb.hi().to_bits(), "{fn_name} {opt:?} dd hi");
                }
            }
            _ => {
                let pts = workload::random_points(&mut rng, items * nin, -2.0, 2.0);
                let ivals = workload::intervals_1ulp(&pts);
                let soa = BatchF64I::from_intervals(&ivals);
                let plain = bp.run(&cfg, &soa).to_intervals();
                let mut prof = igen::telemetry::UnitProfiler::start(&unit, n_sites);
                let profiled = bp.run_profiled(&cfg, &soa, &mut prof).to_intervals();
                prof.finish();
                assert_eq!(plain.len(), profiled.len());
                for (a, b) in plain.iter().zip(&profiled) {
                    assert_eq!(a.lo().to_bits(), b.lo().to_bits(), "{fn_name} {opt:?} lo");
                    assert_eq!(a.hi().to_bits(), b.hi().to_bits(), "{fn_name} {opt:?} hi");
                }
            }
        }
        igen::telemetry::set_recording(false);
    }
}

#[test]
fn profiled_henon_is_bit_identical_f64() {
    let bind = BindSpec::new(vec![ArgBind::Ival, ArgBind::Ival, ArgBind::Int(12)]);
    check_profiled_identity(&henon_src(), "henon_map", &bind, Precision::F64);
}

#[test]
fn profiled_henon_is_bit_identical_dd() {
    let bind = BindSpec::new(vec![ArgBind::Ival, ArgBind::Ival, ArgBind::Int(8)]);
    check_profiled_identity(&henon_src(), "henon_map", &bind, Precision::Dd);
}

#[test]
fn profiled_dot_is_bit_identical_f64() {
    let src = r#"
        double dot(double* x, double* y, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) {
                s = s + x[i] * y[i];
            }
            return s;
        }
    "#;
    let n = 7;
    let bind = BindSpec::new(vec![ArgBind::In(n), ArgBind::In(n), ArgBind::Int(n as i64)]);
    check_profiled_identity(src, "dot", &bind, Precision::F64);
}

/// The tentpole structural claim: at `-O2` with the peephole pass on
/// (copy propagation, CSE, strength reduction, fusion, renumbering all
/// applied), the surviving instructions still name the source lines of
/// Hénon's two update expressions.
#[test]
fn provenance_survives_o2_and_peephole() {
    let src = henon_src();
    let bind = BindSpec::new(vec![ArgBind::Ival, ArgBind::Ival, ArgBind::Int(12)]);
    let out = compile(&src, OptLevel::O2, Precision::F64);
    for (prog, label) in [
        (compile_to_program(&out, "henon_map", &bind).expect("peephole"), "peephole"),
        (compile_to_program_raw(&out, "henon_map", &bind).expect("raw"), "raw"),
    ] {
        // The side-table stays parallel to the instruction stream
        // through every rewrite (validate() enforces the parity too).
        assert_eq!(
            prog.debug.sites.len(),
            prog.insns.len(),
            "{label}: debug map must cover every instruction"
        );
        let known = prog.debug.sites.iter().filter(|s| s.is_known()).count();
        assert!(
            known * 10 >= prog.insns.len() * 8,
            "{label}: only {known}/{} instructions carry a source site",
            prog.insns.len()
        );
        // Lines 7 and 8 of henon.c hold the map's two update statements;
        // both must still be named after the full optimization pipeline.
        for line in [7u32, 8] {
            assert!(
                prog.debug.sites.iter().any(|s| s.line == line),
                "{label}: no instruction attributes to henon.c line {line}"
            );
        }
    }
}

/// With telemetry compiled in, a live profiled run must attribute its
/// heaviest width-amplifying sites to the Hénon update lines; the
/// top-3 rows by mean amplification all carry real source locations.
#[cfg(feature = "telemetry")]
#[test]
fn blame_ranking_names_real_source_lines() {
    let src = henon_src();
    let bind = BindSpec::new(vec![ArgBind::Ival, ArgBind::Ival, ArgBind::Int(12)]);
    let out = compile(&src, OptLevel::O2, Precision::F64);
    let prog = compile_to_program(&out, "henon_map", &bind).expect("compiles");
    let nin = prog.n_inputs as usize;
    let n_sites = prog.insns.len();
    let bp = BatchProgram::new(prog);
    let mut rng = workload::rng(0xb1a3);
    let pts = workload::random_points(&mut rng, 16 * nin, -2.0, 2.0);
    let soa = BatchF64I::from_intervals(&workload::intervals_1ulp(&pts));
    igen::telemetry::set_recording(true);
    let mut prof = igen::telemetry::UnitProfiler::start("test.blame.henon", n_sites);
    bp.run_profiled(&BatchConfig::new().with_threads(1), &soa, &mut prof);
    prof.finish();
    igen::telemetry::set_recording(false);

    let mut rows: Vec<_> = igen::telemetry::profiles_snapshot()
        .into_iter()
        .filter(|r| r.unit == "test.blame.henon" && r.mean_amp_log2().is_some())
        .collect();
    assert!(rows.len() >= 3, "expected at least 3 profiled sites, got {}", rows.len());
    rows.sort_by(|a, b| {
        b.mean_amp_log2()
            .unwrap()
            .partial_cmp(&a.mean_amp_log2().unwrap())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for r in rows.iter().take(3) {
        assert!(r.line > 0, "top amplifying site has no source line: {r:?}");
        assert!(
            (5..=8).contains(&r.line),
            "top amplifying site blames line {} — outside the loop body: {r:?}",
            r.line
        );
    }
}
