//! Interval-mode programs spanning multiple user functions: the compiler
//! transforms every definition and keeps the call graph intact.

use igen::compiler::{Compiler, Config, Precision};
use igen::interp::{Interp, Value};
use igen::interval::{DdI, F64I};

#[test]
fn helper_functions_compose() {
    let src = r#"
        double sq(double x) {
            return x * x;
        }
        double hypot2(double a, double b) {
            return sqrt(sq(a) + sq(b));
        }
        double normalize(double a, double b) {
            double h = hypot2(a, b);
            return a / h;
        }
    "#;
    let out = Compiler::new(Config::default()).compile_str(src).unwrap();
    assert!(out.c_source.contains("f64i sq(f64i x)"));
    assert!(out.c_source.contains("sq(a)"), "{}", out.c_source);
    let mut run = Interp::new(&igen::cfront::parse(&out.c_source).unwrap());
    let r = run
        .call(
            "normalize",
            vec![Value::Interval(F64I::point(3.0)), Value::Interval(F64I::point(4.0))],
        )
        .unwrap()
        .as_interval()
        .unwrap();
    assert!(r.contains(0.6), "{r}");
    assert!(r.certified_bits() > 49.0, "{}", r.certified_bits());
}

#[test]
fn recursion_through_the_transformation() {
    let src = r#"
        double geo(double x, int n) {
            if (n == 0) {
                return 1.0;
            }
            return 1.0 + x * geo(x, n - 1);
        }
    "#;
    let out = Compiler::new(Config::default()).compile_str(src).unwrap();
    let mut run = Interp::new(&igen::cfront::parse(&out.c_source).unwrap());
    // 1 + x(1 + x(1 + …)), 5 terms at x = 0.5: 1.9375.
    let r = run
        .call("geo", vec![Value::Interval(F64I::point(0.5)), Value::Int(4)])
        .unwrap()
        .as_interval()
        .unwrap();
    assert!(r.contains(1.9375), "{r}");
    assert!(r.is_point(), "{r}"); // powers of 1/2: exact all the way
}

#[test]
fn dd_cross_function_certifies() {
    let src = r#"
        double axpy(double a, double x, double y) {
            return a * x + y;
        }
        double chain(double a, double x) {
            double acc = 0.0;
            for (int i = 0; i < 50; i++) {
                acc = axpy(a, x, acc);
            }
            return acc;
        }
    "#;
    let cfg = Config { precision: Precision::Dd, ..Config::default() };
    let out = Compiler::new(cfg).compile_str(src).unwrap();
    let mut run = Interp::new(&igen::cfront::parse(&out.c_source).unwrap());
    let r = run
        .call(
            "chain",
            vec![Value::DdInterval(DdI::point_f64(0.1)), Value::DdInterval(DdI::point_f64(0.7))],
        )
        .unwrap()
        .as_ddi()
        .unwrap();
    // acc = 50 * 0.1 * 0.7 accumulated: certified double.
    assert!(r.certified_f64().is_some(), "{r}");
    assert!(r.contains_f64(0.1 * 0.7 * 50.0) || r.certified_bits() > 90.0);
}

#[test]
fn prototypes_pass_through() {
    let src = r#"
        double helper(double x);
        double f(double x) {
            return helper(x) + 1.0;
        }
        double helper(double x) {
            return x * 2.0;
        }
    "#;
    let out = Compiler::new(Config::default()).compile_str(src).unwrap();
    assert!(out.c_source.contains("f64i helper(f64i x);"), "{}", out.c_source);
    let mut run = Interp::new(&igen::cfront::parse(&out.c_source).unwrap());
    let r = run.call("f", vec![Value::Interval(F64I::point(2.5))]).unwrap();
    assert!(r.as_interval().unwrap().contains(6.0));
}
