#include "igen_lib.h"

f64i sigmoid(f64i z) {
    f64i t1 = ia_neg_f64(z);
    f64i t2 = ia_set_f64(1.0, 1.0);
    f64i t3 = ia_exp_f64(t1);
    f64i t4 = ia_set_f64(1.0, 1.0);
    f64i t5 = ia_add_f64(t2, t3);
    f64i t6 = ia_div_f64(t4, t5);
    return t6;
}
