#include "igen_lib.h"

f64i rnorm(f64i x) {
    f64i t1 = ia_set_f64(2.0, 2.0);
    f64i t2 = ia_sqrt_f64(t1);
    f64i t3 = ia_div_f64(x, t2);
    return t3;
}
