#include "igen_lib.h"

ddi dd_poly(ddi x) {
    ddi t1 = ia_mul_dd(x, x);
    ddi t2 = ia_set_ddx(2.0, 0.0, 2.0, 0.0);
    ddi t3 = ia_add_dd(t1, t2);
    ddi t4 = ia_mul_dd(t3, x);
    ddi t5 = ia_set_ddx(1.0, 0.0, 1.0, 0.0);
    ddi t6 = ia_add_dd(t4, t5);
    return t6;
}
