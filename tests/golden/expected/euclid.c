#include "igen_lib.h"

f64i euclid(f64i x1, f64i y1, f64i x2, f64i y2) {
    f64i t1 = ia_sub_f64(x1, x2);
    f64i t2 = ia_sub_f64(x1, x2);
    f64i t3 = ia_sub_f64(y1, y2);
    f64i t4 = ia_sub_f64(y1, y2);
    f64i t5 = ia_mul_f64(t1, t2);
    f64i t6 = ia_mul_f64(t3, t4);
    f64i t7 = ia_add_f64(t5, t6);
    f64i t8 = ia_sqrt_f64(t7);
    return t8;
}
