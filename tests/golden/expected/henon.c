#include "igen_lib.h"

f64i henon_map(f64i x, f64i y, int iterations) {
    f64i a = ia_set_f64(1.0499999999999998, 1.05);
    f64i b = ia_set_f64(0.3, 0.30000000000000004);
    for (int i = 0; i < iterations; i++)
    {
        f64i xi = x;
        f64i yi = y;
        f64i t1 = ia_mul_f64(a, xi);
        f64i t2 = ia_set_f64(1.0, 1.0);
        f64i t3 = ia_mul_f64(t1, xi);
        f64i t4 = ia_sub_f64(t2, t3);
        x = ia_add_f64(t4, yi);
        y = ia_mul_f64(b, xi);
    }
    return x;
}
