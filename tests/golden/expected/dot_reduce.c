#include "igen_lib.h"

void dot(f64i* x, f64i* y, f64i* r) {
    acc_f64 acc1;
    isum_init_f64(&acc1, r[0]);
    for (int i = 0; i < 100; i++)
    {
        f64i t1 = ia_mul_f64(x[i], y[i]);
        isum_accumulate_f64(&acc1, t1);
    }
    r[0] = isum_reduce_f64(&acc1);
}
