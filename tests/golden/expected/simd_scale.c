#include "igen_lib.h"

m256di_2 simd_scale(m256di_2 x, m256di_2 y) {
    m256di_2 p = ia_mm256_mul_pd(x, y);
    m256di_2 s = ia_mm256_add_pd(p, x);
    return _c_mm256_unpacklo_pd(s, p);
}

typedef union {
    m256di_2 v;
    uint64_t i[4];
    f64i f[4];
} vec256d;

m256di_2 _c_mm256_unpacklo_pd(m256di_2 _a, m256di_2 _b) {
    vec256d a;
    vec256d b;
    vec256d dst;
    a.v = _a;
    b.v = _b;
    dst.f[0] = a.f[0];
    dst.f[1] = b.f[0];
    dst.f[2] = a.f[2];
    dst.f[3] = b.f[2];
    return dst.v;
}
