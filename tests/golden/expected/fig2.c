#include "igen_lib.h"

f64i foo(f64i a, f64i b) {
    f64i c;
    f64i t1 = ia_add_f64(a, b);
    f64i t2 = ia_set_f64(0.09999999999999999, 0.1);
    c = ia_add_f64(t1, t2);
    tbool t3 = ia_cmpgt_f64(c, a);
    if (ia_cvt2bool_tb(t3))
    {
        c = ia_mul_f64(a, c);
    }
    return c;
}
