#include "igen_lib.h"

f64i poly(f64i x) {
    f64i t1 = ia_set_f64(0.49999999999999994, 0.5000000000000001);
    f64i t2 = ia_mul_f64(x, x);
    f64i t3 = ia_set_f64(1.0, 1.0);
    f64i t4 = ia_mul_f64(t1, t2);
    f64i t5 = ia_set_f64(0.24999999999999997, 0.25000000000000006);
    f64i t6 = ia_mul_f64(x, x);
    f64i t7 = ia_mul_f64(t5, t6);
    f64i t8 = ia_mul_f64(x, x);
    f64i t9 = ia_add_f64(t3, t4);
    f64i t10 = ia_mul_f64(t7, t8);
    f64i t11 = ia_add_f64(t9, t10);
    return t11;
}
