double sigmoid(double z) {
    return 1.0 / (1.0 + exp(-z));
}
