__m256d simd_scale(__m256d x, __m256d y) {
    __m256d p = _mm256_mul_pd(x, y);
    __m256d s = _mm256_add_pd(p, x);
    return _mm256_unpacklo_pd(s, p);
}
