double dd_poly(double x) {
    return (x * x + 2.0) * x + 1.0;
}
