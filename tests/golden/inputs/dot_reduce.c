void dot(double* x, double* y, double* r) {
    #pragma igen reduce r
    for (int i = 0; i < 100; i++)
        r[0] = r[0] + x[i] * y[i];
}
