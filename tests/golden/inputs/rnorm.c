double rnorm(double x) {
    return x / sqrt(2.0);
}
