double euclid(double x1, double y1, double x2, double y2) {
    return sqrt((x1 - x2) * (x1 - x2) + (y1 - y2) * (y1 - y2));
}
