double foo(double a, double b) {
    double c;
    c = a + b + 0.1;
    if (c > a) {
        c = a * c;
    }
    return c;
}
