//! Workspace-level integration tests: the full Fig. 1 pipeline across all
//! crates, including the paper's listings, both precisions, the SIMD
//! generator path and the accuracy transformations.

use igen::compiler::{compile_intrinsics, BranchPolicy, Compiler, Config, Precision};
use igen::interp::{Interp, Value};
use igen::interval::{DdI, F64I};
use igen::mpf::{Mpf, MpfInterval, Rm};

fn compile_and_load(src: &str, cfg: Config) -> Interp {
    let out = Compiler::new(cfg).compile_str(src).expect("compile");
    Interp::new(&igen::cfront::parse(&out.c_source).expect("reparse"))
}

#[test]
fn paper_fig2_exact_constant_pair() {
    // The compiler must produce exactly the enclosure shown in Fig. 2.
    let out = Compiler::new(Config::default())
        .compile_str("double f(double a) { return a + 0.1; }")
        .unwrap();
    assert!(out.c_source.contains("ia_set_f64(0.09999999999999999"), "{}", out.c_source);
    // The printed pair re-parses to the floats adjacent to 1/10.
    let lo = 0.09999999999999999f64;
    let hi = 0.1f64;
    assert_eq!(igen::round::next_up(lo), hi);
}

#[test]
fn whole_pipeline_against_oracle_on_polynomial() {
    // Horner evaluation of a degree-6 polynomial: compare the interval
    // pipeline against the 256-bit oracle on many points.
    let src = r#"
        double poly(double x) {
            double r = 0.5;
            r = r * x + -1.25;
            r = r * x + 0.1;
            r = r * x + 3.0;
            r = r * x + -0.7;
            r = r * x + 0.01;
            r = r * x + 1.0;
            return r;
        }
    "#;
    let mut run = compile_and_load(src, Config::default());
    let tenth = Mpf::from_i64(1).div(&Mpf::from_i64(10), Rm::Nearest);
    let coeffs_exact = [
        Mpf::from_f64(0.5),
        Mpf::from_f64(-1.25),
        tenth,
        Mpf::from_f64(3.0),
        Mpf::from_f64(-0.7),
        Mpf::from_i64(1).div(&Mpf::from_i64(100), Rm::Nearest),
        Mpf::from_f64(1.0),
    ];
    for i in 0..50 {
        let x = -2.0 + 0.08 * i as f64;
        let iv =
            run.call("poly", vec![Value::Interval(F64I::point(x))]).unwrap().as_interval().unwrap();
        // Oracle: real-arithmetic Horner with the real constants.
        let xm = Mpf::from_f64(x);
        let mut r = coeffs_exact[0];
        for c in &coeffs_exact[1..] {
            r = r.mul(&xm, Rm::Nearest).add(c, Rm::Nearest);
        }
        let o = MpfInterval::new(r, r);
        assert!(
            iv.contains(o.lo().to_f64(Rm::Down)) || iv.contains(o.hi().to_f64(Rm::Up)),
            "x = {x}: oracle {} outside {iv}",
            r
        );
    }
}

#[test]
fn dd_pipeline_certifies_polynomial() {
    let src = r#"
        double poly(double x) {
            double r = 0.5;
            r = r * x + 3.0;
            r = r * x + -0.7;
            return r;
        }
    "#;
    let cfg = Config { precision: Precision::Dd, ..Config::default() };
    let mut run = compile_and_load(src, cfg);
    for i in 0..20 {
        let x = -1.0 + 0.1 * i as f64;
        let iv =
            run.call("poly", vec![Value::DdInterval(DdI::point_f64(x))]).unwrap().as_ddi().unwrap();
        assert!(iv.certified_f64().is_some(), "x = {x}: {iv}");
        assert!(iv.certified_bits() > 95.0);
    }
}

#[test]
fn intrinsics_generator_to_interval_pipeline() {
    // Fig. 4 end-to-end: every generated intrinsic self-compiles and the
    // result re-parses.
    for cfg in [Config::default(), Config { precision: Precision::Dd, ..Config::default() }] {
        let out = compile_intrinsics(&cfg).expect("intrinsics compile");
        assert!(out.c_source.contains("_c_mm256_add_pd"));
        igen::cfront::parse(&out.c_source).expect("parses");
        // Two entries need manual treatment: the undefined ROUND pseudo-
        // function and blendv's raw-bit mask test (hand-optimized).
        assert_eq!(out.skipped.len(), 2, "{:?}", out.skipped);
    }
}

#[test]
fn generated_intrinsic_matches_native_semantics() {
    // Interpret the *generated C* implementation of _mm256_add_pd in
    // float mode and compare with the native builtin semantics.
    let specs = igen::simdgen::corpus_specs();
    let (unit, _) = igen::simdgen::generate_unit(&specs);
    let mut run = Interp::new(&unit);
    let a = Value::VecF64(vec![1.5, -2.25, 3.0, 0.1]);
    let b = Value::VecF64(vec![0.5, 0.25, -3.0, 0.2]);
    let got = run.call("_c_mm256_add_pd", vec![a, b]).expect("generated add runs");
    assert_eq!(got, Value::VecF64(vec![2.0, -2.0, 0.0, 0.1 + 0.2]));

    let got = run
        .call(
            "_c_mm256_mul_pd",
            vec![
                Value::VecF64(vec![1.5, -2.0, 0.5, 4.0]),
                Value::VecF64(vec![2.0, 3.0, 0.5, -0.25]),
            ],
        )
        .expect("generated mul runs");
    assert_eq!(got, Value::VecF64(vec![3.0, -6.0, 0.25, -1.0]));

    // Bitwise AND via the integer view.
    let mask = f64::from_bits(u64::MAX);
    let got = run
        .call(
            "_c_mm256_and_pd",
            vec![
                Value::VecF64(vec![1.5, 2.5, -3.5, 4.5]),
                Value::VecF64(vec![mask, 0.0, mask, 0.0]),
            ],
        )
        .expect("generated and runs");
    assert_eq!(got, Value::VecF64(vec![1.5, 0.0, -3.5, 0.0]));

    // Blend with an immediate.
    let got = run
        .call(
            "_c_mm256_blend_pd",
            vec![
                Value::VecF64(vec![1.0, 2.0, 3.0, 4.0]),
                Value::VecF64(vec![10.0, 20.0, 30.0, 40.0]),
                Value::Int(0b0101),
            ],
        )
        .expect("generated blend runs");
    assert_eq!(got, Value::VecF64(vec![10.0, 2.0, 30.0, 4.0]));

    // Horizontal add.
    let got = run
        .call(
            "_c_mm256_hadd_pd",
            vec![
                Value::VecF64(vec![1.0, 2.0, 3.0, 4.0]),
                Value::VecF64(vec![10.0, 20.0, 30.0, 40.0]),
            ],
        )
        .expect("generated hadd runs");
    assert_eq!(got, Value::VecF64(vec![3.0, 30.0, 7.0, 70.0]));
}

#[test]
fn join_policy_pipeline_is_sound_and_tight() {
    let src = r#"
        double clamp01(double x) {
            double y = x;
            if (y < 0.0) {
                y = 0.0;
            } else {
                if (y > 1.0) {
                    y = 1.0;
                }
            }
            return y;
        }
    "#;
    let cfg = Config { branch_policy: BranchPolicy::JoinBranches, ..Config::default() };
    let mut run = compile_and_load(src, cfg);
    // Interval straddling 0: the join policy hulls the branch results —
    // the then branch yields {0}, the else branch keeps the unrefined
    // input (interval branches do not narrow their condition variable),
    // so the join is [-0.5, 0.5]; the point is that NO exception fires.
    let iv = run
        .call("clamp01", vec![Value::Interval(F64I::new(-0.5, 0.5).unwrap())])
        .unwrap()
        .as_interval()
        .unwrap();
    assert!(iv.contains(0.0) && iv.contains(0.5), "{iv}");
    assert!(iv.lo() >= -0.5 && iv.hi() <= 0.5 + 1e-12, "{iv}");
    // A decidable input stays tight.
    let iv = run
        .call("clamp01", vec![Value::Interval(F64I::new(0.2, 0.3).unwrap())])
        .unwrap()
        .as_interval()
        .unwrap();
    assert!(iv.lo() >= 0.19 && iv.hi() <= 0.31, "{iv}");
}

#[test]
fn baseline_libraries_and_igen_agree_numerically() {
    // The three baseline styles and IGen compute identical enclosures
    // (they differ only in performance characteristics).
    use igen::baselines::{BoostI, FilibI, GaolI};
    use igen::kernels::Numeric;
    fn kernel<T: Numeric>() -> (f64, f64) {
        let mut acc = T::zero();
        let mut x = T::from_f64(0.37);
        for _ in 0..100 {
            acc = acc + x * x - x / T::from_f64(3.0);
            x = x * T::from_f64(-0.99);
        }
        (acc.mid_f64(), acc.certified_bits_n())
    }
    let (m0, b0) = kernel::<F64I>();
    for (m, b) in [kernel::<BoostI>(), kernel::<FilibI>(), kernel::<GaolI>()] {
        assert_eq!(m, m0);
        assert_eq!(b, b0);
    }
}

#[test]
fn tolerance_literals_compose_with_dd() {
    let src = r#"
        double measure(double:0.001 raw) {
            double gain = 2.5 + 0.0001t;
            return raw * gain;
        }
    "#;
    let mut run = compile_and_load(src, Config::default());
    let iv = run.call("measure", vec![Value::F64(4.0)]).unwrap().as_interval().unwrap();
    // raw in [3.999, 4.001], gain in [2.4999, 2.5001].
    assert!(iv.lo() <= 3.999 * 2.4999 && 4.001 * 2.5001 <= iv.hi(), "{iv}");
    assert!(iv.width() < 0.01, "{iv}");
}

#[test]
fn compiler_rejects_paper_limitations() {
    let c = Compiler::new(Config::default());
    // Float -> int cast.
    assert!(c.compile_str("int f(double x) { return (int)x; }").is_err());
    // Bit-level manipulation of floats.
    assert!(c.compile_str("double f(double x) { return ~x; }").is_err());
    // Shift of a float.
    assert!(c.compile_str("double f(double x) { return x << 2; }").is_err());
}

#[test]
fn atan_through_the_whole_pipeline() {
    // A phase computation: atan(y/x) with a quadrant branch — exercises
    // the elementary-function detection, tbool branching, and soundness.
    let src = r#"
        double phase(double y, double x) {
            double p = atan(y / x);
            if (x < 0.0) {
                if (y < 0.0) { p = p - 3.14159265358979312; }
                else { p = p + 3.14159265358979312; }
            }
            return p;
        }
    "#;
    let out = Compiler::new(Config::default()).compile_str(src).unwrap();
    assert!(out.c_source.contains("ia_atan_f64"), "{}", out.c_source);
    let mut run = compile_and_load(src, Config::default());
    for (y, x) in [(1.0f64, 1.0f64), (2.5, 0.5), (-3.0, 2.0), (1.0, -2.0), (-1.0, -2.0)] {
        let r = run
            .call("phase", vec![Value::Interval(F64I::point(y)), Value::Interval(F64I::point(x))])
            .unwrap();
        let Value::Interval(i) = r else { panic!("{r:?}") };
        // The enclosure must contain the true phase up to the f64
        // rounding of the pi constant in the source (within 1e-15).
        let truth = (y / x).atan()
            + if x < 0.0 {
                if y < 0.0 {
                    -std::f64::consts::PI
                } else {
                    std::f64::consts::PI
                }
            } else {
                0.0
            };
        assert!(
            i.lo() <= truth + 1e-15 && truth - 1e-15 <= i.hi(),
            "phase({y},{x}): {truth} vs {i}"
        );
        assert!(i.width() < 1e-13, "phase({y},{x}) too wide: {i}");
    }
    // DD precision must reject atan like the other elementary functions.
    let dd = Config { precision: Precision::Dd, ..Config::default() };
    let err = Compiler::new(dd).compile_str("double f(double a) { return atan(a); }").unwrap_err();
    assert!(err.to_string().contains("atan"), "{err}");
}

#[test]
fn arc_functions_compose_in_the_pipeline() {
    // asin/acos/atan round-trip identities, compiled and interpreted.
    let src = r#"
        double roundtrip(double x) {
            double a = asin(x);
            double b = acos(x);
            return sin(a) + cos(b) - x - x;
        }
    "#;
    let out = Compiler::new(Config::default()).compile_str(src).unwrap();
    assert!(out.c_source.contains("ia_asin_f64"), "{}", out.c_source);
    assert!(out.c_source.contains("ia_acos_f64"), "{}", out.c_source);
    let mut run = Interp::new(&igen::cfront::parse(&out.c_source).unwrap());
    for x in [-0.9, -0.3, 0.0, 0.5, 0.99] {
        let r = run.call("roundtrip", vec![Value::Interval(F64I::point(x))]).unwrap();
        let Value::Interval(i) = r else { panic!("{r:?}") };
        // sin(asin x) + cos(acos x) - 2x = 0 exactly in real arithmetic.
        assert!(i.contains(0.0), "identity at {x}: {i}");
        assert!(i.width() < 1e-12, "identity at {x} too wide: {i}");
    }
}

#[test]
fn pow_lowers_to_dependency_aware_kernel() {
    // pow with an integer literal exponent becomes ia_pow_f64 — tighter
    // than the x*x*x*x a user would otherwise write.
    let src = r#"
        double f(double x) {
            return pow(x, 4.0) - pow(x, 3);
        }
    "#;
    let out = Compiler::new(Config::default()).compile_str(src).unwrap();
    assert!(out.c_source.contains("ia_pow_f64(x, 4)"), "{}", out.c_source);
    assert!(out.c_source.contains("ia_pow_f64(x, 3)"), "{}", out.c_source);
    let mut run = Interp::new(&igen::cfront::parse(&out.c_source).unwrap());
    // On a straddling input interval, the even power stays nonnegative.
    let w = F64I::new(-1.0, 2.0).unwrap();
    let r = run.call("f", vec![Value::Interval(w)]).unwrap();
    let Value::Interval(i) = r else { panic!("{r:?}") };
    // x^4 - x^3 over [-1, 2]: true range [~-1.05, 16 + 1] subset checks.
    assert!(i.contains(0.0) && i.contains(2.0)); // f(-1) = 1+1 = 2, f(0)=0
    assert!(i.lo() >= -8.0 - 1e-9, "tight lower: {i}");
    assert!(i.hi() <= 17.0 + 1e-9, "tight upper: {i}");

    // The same computation via naive multiplication is strictly wider
    // at the lower end (x*x*x*x dips to -8 when x straddles zero).
    let naive_src = "double g(double x) { return x*x*x*x - x*x*x; }";
    let nout = Compiler::new(Config::default()).compile_str(naive_src).unwrap();
    let mut nrun = Interp::new(&igen::cfront::parse(&nout.c_source).unwrap());
    let rn = nrun.call("g", vec![Value::Interval(w)]).unwrap();
    let Value::Interval(ni) = rn else { panic!("{rn:?}") };
    assert!(ni.lo() < i.lo(), "naive {ni} should be wider than powi {i}");

    // DD precision also supports the integer-power lowering.
    let dd = Config { precision: Precision::Dd, ..Config::default() };
    let dout = Compiler::new(dd).compile_str("double h(double x) { return pow(x, 2.0); }").unwrap();
    assert!(dout.c_source.contains("ia_pow_dd(x, 2)"), "{}", dout.c_source);

    // Non-integer exponents are diagnosed.
    let err = Compiler::new(Config::default())
        .compile_str("double e(double x) { return pow(x, 0.5); }")
        .unwrap_err();
    assert!(err.to_string().contains("integer exponent"), "{err}");
    let err = Compiler::new(Config::default())
        .compile_str("double e(double x, double y) { return pow(x, y); }")
        .unwrap_err();
    assert!(err.to_string().contains("integer exponent"), "{err}");
}

#[test]
fn sqr_rewrite_is_opt_in_and_tighter() {
    let src = "double f(double x) { return x * x; }";
    // Off by default: output matches the paper (plain multiplication).
    let plain = Compiler::new(Config::default()).compile_str(src).unwrap();
    assert!(plain.c_source.contains("ia_mul_f64(x, x)"), "{}", plain.c_source);
    assert!(!plain.c_source.contains("ia_sqr"), "{}", plain.c_source);
    // Opt-in: the dependency-aware kernel.
    let cfg = Config { sqr_rewrite: true, ..Config::default() };
    let opt = Compiler::new(cfg).compile_str(src).unwrap();
    assert!(opt.c_source.contains("ia_sqr_f64(x)"), "{}", opt.c_source);
    // Semantics: on a straddling interval the rewrite is strictly tighter.
    let w = F64I::new(-1.0, 2.0).unwrap();
    let mut prun = Interp::new(&igen::cfront::parse(&plain.c_source).unwrap());
    let mut orun = Interp::new(&igen::cfront::parse(&opt.c_source).unwrap());
    let Value::Interval(pi) = prun.call("f", vec![Value::Interval(w)]).unwrap() else { panic!() };
    let Value::Interval(oi) = orun.call("f", vec![Value::Interval(w)]).unwrap() else { panic!() };
    assert_eq!((oi.lo(), oi.hi()), (0.0, 4.0));
    assert_eq!((pi.lo(), pi.hi()), (-2.0, 4.0));
    // Different variables never rewrite.
    let two =
        Compiler::new(cfg).compile_str("double g(double x, double y) { return x * y; }").unwrap();
    assert!(two.c_source.contains("ia_mul_f64(x, y)"), "{}", two.c_source);
}

#[test]
fn switch_statements_full_pipeline() {
    // Integer switch with fallthrough and default, driving FP work.
    let src = r#"
        double quadrature(int mode, double x) {
            double w;
            switch (mode) {
                case 0:
                    w = 1.0;
                    break;
                case 1:
                case 2:
                    w = x * 0.5;
                    break;
                default:
                    w = -x;
            }
            return w + 0.25;
        }
    "#;
    let out = Compiler::new(Config::default()).compile_str(src).unwrap();
    assert!(out.c_source.contains("switch (mode)"), "{}", out.c_source);
    assert!(out.c_source.contains("case 1:"), "{}", out.c_source);
    assert!(out.c_source.contains("default:"), "{}", out.c_source);
    // Output re-parses (printer/parser fixed point holds for switch).
    igen::cfront::parse(&out.c_source).unwrap();

    let mut run = Interp::new(&igen::cfront::parse(&out.c_source).unwrap());
    let cases = [
        (0i64, 2.0f64, 1.25), // case 0
        (1, 2.0, 1.25),       // case 1 falls through to case 2 arm
        (2, 2.0, 1.25),       // direct
        (7, 2.0, -1.75),      // default
        (-3, 4.0, -3.75),     // default, negative selector
    ];
    for (mode, x, want) in cases {
        let r = run
            .call("quadrature", vec![Value::Int(mode), Value::Interval(F64I::point(x))])
            .unwrap();
        let Value::Interval(i) = r else { panic!("{r:?}") };
        assert!(i.contains(want), "mode {mode}: {want} outside {i}");
        assert!(i.width() < 1e-15, "mode {mode}");
    }

    // Float-mode execution agrees.
    let mut orig = Interp::from_source(src).unwrap();
    for (mode, x, want) in cases {
        let f = orig
            .call("quadrature", vec![Value::Int(mode), Value::F64(x)])
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(f, want, "float mode {mode}");
    }

    // switch on a floating value is diagnosed (invalid C anyway).
    let err = Compiler::new(Config::default())
        .compile_str("double f(double x) { switch (x) { default: x = 0.0; } return x; }")
        .unwrap_err();
    assert!(err.to_string().contains("switch"), "{err}");
}
