//! Lowering determinism: the bytecode emitted for a fixed function at
//! a fixed opt level is a pure function of the source — two
//! independent compiles produce byte-identical instruction dumps, and
//! the dumps for the golden Hénon kernel are pinned under
//! `tests/golden/expected/`: `henon_map.bytecode` is the default
//! (peepholed) program the batch engine executes,
//! `henon_map.nopeephole.bytecode` pins the raw lowering the pass
//! consumes.
//!
//! To regenerate after an intentional lowering or peephole change:
//!
//! ```text
//! IGEN_REGEN_GOLDEN=1 cargo test -q --test vm_bytecode
//! ```

use igen::compiler::{compile_to_program, compile_to_program_raw, Compiler, Config, OptLevel};
use igen::vm::{ArgBind, BindSpec, Program};
use std::path::PathBuf;

fn henon_program(peephole: bool) -> Program {
    let src = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/inputs/henon.c"),
    )
    .expect("golden henon source");
    let cfg = Config { opt_level: OptLevel::O2, ..Config::default() };
    let out = Compiler::new(cfg).compile_str(&src).expect("compiles");
    let bind = BindSpec::new(vec![ArgBind::Ival, ArgBind::Ival, ArgBind::Int(3)]);
    let prog = if peephole {
        compile_to_program(&out, "henon_map", &bind).expect("lowers")
    } else {
        compile_to_program_raw(&out, "henon_map", &bind).expect("lowers")
    };
    prog.validate().expect("valid");
    prog
}

fn check_golden(file: &str, got: &str) {
    let expected_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/expected").join(file);
    if std::env::var_os("IGEN_REGEN_GOLDEN").is_some() {
        std::fs::write(&expected_path, got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&expected_path).expect(
        "golden bytecode dump missing; regenerate with IGEN_REGEN_GOLDEN=1 cargo test --test vm_bytecode",
    );
    assert_eq!(got, want, "bytecode dump drifted from the committed golden {file}");
}

#[test]
fn lowering_is_deterministic() {
    assert_eq!(henon_program(true).dump(), henon_program(true).dump());
    assert_eq!(henon_program(false).dump(), henon_program(false).dump());
}

#[test]
fn henon_bytecode_matches_golden() {
    check_golden("henon_map.bytecode", &henon_program(true).dump());
}

#[test]
fn henon_raw_bytecode_matches_golden() {
    check_golden("henon_map.nopeephole.bytecode", &henon_program(false).dump());
}

/// Structural invariants of the *raw* lowering (the peephole pass
/// reshapes instruction counts, so these pin the lowering itself):
/// constants are interned (three distinct literals → three pool
/// entries, each materialized once) and unrolling scales the
/// instruction count with the iteration bound.
#[test]
fn henon_lowering_shape() {
    let src = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/inputs/henon.c"),
    )
    .expect("golden henon source");
    let cfg = Config { opt_level: OptLevel::O2, ..Config::default() };
    let out = Compiler::new(cfg).compile_str(&src).expect("compiles");
    let lower_at = |iters: i64| {
        let bind = BindSpec::new(vec![ArgBind::Ival, ArgBind::Ival, ArgBind::Int(iters)]);
        compile_to_program_raw(&out, "henon_map", &bind).expect("lowers")
    };
    let p3 = lower_at(3);
    let p6 = lower_at(6);
    p3.validate_ssa().expect("raw lowering is single-assignment");
    assert_eq!(p3.consts.len(), p6.consts.len(), "pool size is iteration-independent");
    let const_insns =
        |p: &Program| p.insns.iter().filter(|i| matches!(i, igen::vm::Insn::Const { .. })).count();
    assert_eq!(const_insns(&p3), p3.consts.len(), "each pooled constant materialized once");
    let arith3 = p3.insns.len() - const_insns(&p3);
    let arith6 = p6.insns.len() - const_insns(&p6);
    assert_eq!(arith6, 2 * arith3, "unrolled arithmetic scales linearly with iterations");
}

/// The peephole pass must shrink the Hénon register file (liveness
/// renumbering) and never grow the instruction stream.
#[test]
fn peephole_shrinks_the_henon_register_file() {
    let raw = henon_program(false);
    let peep = henon_program(true);
    assert!(
        peep.n_regs < raw.n_regs,
        "renumbering should shrink regs: raw {} vs peepholed {}",
        raw.n_regs,
        peep.n_regs
    );
    assert!(peep.insns.len() <= raw.insns.len());
}
