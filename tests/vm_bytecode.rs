//! Lowering determinism: the bytecode emitted for a fixed function at
//! a fixed opt level is a pure function of the source — two
//! independent compiles produce byte-identical instruction dumps, and
//! the dump for the golden Hénon kernel is pinned under
//! `tests/golden/expected/henon_map.bytecode`.
//!
//! To regenerate after an intentional lowering change:
//!
//! ```text
//! IGEN_REGEN_GOLDEN=1 cargo test -q --test vm_bytecode
//! ```

use igen::compiler::{compile_to_program, Compiler, Config, OptLevel};
use igen::vm::{ArgBind, BindSpec};
use std::path::PathBuf;

fn henon_dump() -> String {
    let src = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/inputs/henon.c"),
    )
    .expect("golden henon source");
    let cfg = Config { opt_level: OptLevel::O2, ..Config::default() };
    let out = Compiler::new(cfg).compile_str(&src).expect("compiles");
    let bind = BindSpec::new(vec![ArgBind::Ival, ArgBind::Ival, ArgBind::Int(3)]);
    let prog = compile_to_program(&out, "henon_map", &bind).expect("lowers");
    prog.validate().expect("valid");
    prog.dump()
}

#[test]
fn lowering_is_deterministic() {
    assert_eq!(henon_dump(), henon_dump());
}

#[test]
fn henon_bytecode_matches_golden() {
    let expected_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/expected/henon_map.bytecode");
    let got = henon_dump();
    if std::env::var_os("IGEN_REGEN_GOLDEN").is_some() {
        std::fs::write(&expected_path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&expected_path).expect(
        "golden bytecode dump missing; regenerate with IGEN_REGEN_GOLDEN=1 cargo test --test vm_bytecode",
    );
    assert_eq!(got, want, "bytecode dump drifted from the committed golden file");
}

/// Structural invariants of the lowered Hénon program: constants are
/// interned (three distinct literals → three pool entries, each
/// materialized once) and unrolling scales the instruction count with
/// the iteration bound.
#[test]
fn henon_lowering_shape() {
    let src = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/inputs/henon.c"),
    )
    .expect("golden henon source");
    let cfg = Config { opt_level: OptLevel::O2, ..Config::default() };
    let out = Compiler::new(cfg).compile_str(&src).expect("compiles");
    let lower_at = |iters: i64| {
        let bind = BindSpec::new(vec![ArgBind::Ival, ArgBind::Ival, ArgBind::Int(iters)]);
        compile_to_program(&out, "henon_map", &bind).expect("lowers")
    };
    let p3 = lower_at(3);
    let p6 = lower_at(6);
    assert_eq!(p3.consts.len(), p6.consts.len(), "pool size is iteration-independent");
    let const_insns = |p: &igen::vm::Program| {
        p.insns.iter().filter(|i| matches!(i, igen::vm::Insn::Const { .. })).count()
    };
    assert_eq!(const_insns(&p3), p3.consts.len(), "each pooled constant materialized once");
    let arith3 = p3.insns.len() - const_insns(&p3);
    let arith6 = p6.insns.len() - const_insns(&p6);
    assert_eq!(arith6, 2 * arith3, "unrolled arithmetic scales linearly with iterations");
}
