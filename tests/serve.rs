//! End-to-end `igen-cli serve` over stdio: a scripted JSON-lines
//! conversation against the real binary, pinned to a golden transcript
//! under `tests/golden/expected/serve_transcript.txt`. Every response
//! in the golden set is deterministic by construction (the service
//! answers compile/run/ping/errors as a pure function of the request
//! line), so the transcript is stable across runs, thread counts and
//! cache states.
//!
//! To regenerate after an intentional protocol change:
//!
//! ```text
//! IGEN_REGEN_GOLDEN=1 cargo test -q --test serve
//! ```
//!
//! The deadline-expiry and full-queue cases are asserted structurally
//! (their *timing* is scheduler-dependent even though the error lines
//! are not), and `metrics` is checked for its session counters rather
//! than byte-pinned — it reports observability state, the one
//! deliberate exception to response determinism.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Command, Stdio};

const SQ: &str = r#"double sq(double x) { return x * x; }"#;

/// Runs `igen-cli serve <args>` with the requests piped to stdin (then
/// EOF), returning one response line per request in submission order.
fn serve_session(args: &[&str], requests: &[String]) -> Vec<String> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_igen-cli"))
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn igen-cli serve");
    let mut stdin = child.stdin.take().expect("serve stdin");
    for r in requests {
        writeln!(stdin, "{r}").expect("write request");
    }
    drop(stdin); // EOF ends the session if no shutdown request did
    let lines: Vec<String> = BufReader::new(child.stdout.take().expect("serve stdout"))
        .lines()
        .map(|l| l.expect("read response"))
        .collect();
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "igen-cli serve exited with {status}");
    lines
}

/// The golden conversation: every deterministic request kind and error
/// shape, ended by an explicit shutdown.
fn golden_requests() -> Vec<String> {
    vec![
        r#"{"id":1,"kind":"ping"}"#.to_string(),
        format!(r#"{{"id":2,"kind":"compile","source":"{SQ}"}}"#),
        format!(r#"{{"id":3,"kind":"compile","source":"{SQ}","emit_bytecode":true}}"#),
        format!(r#"{{"id":4,"kind":"run","source":"{SQ}","batch":4,"seed":7}}"#),
        format!(r#"{{"id":5,"kind":"run","source":"{SQ}","inputs":[[1.0,2.0],[-3.5,-3.5]]}}"#),
        format!(r#"{{"id":6,"kind":"run","source":"{SQ}","precision":"dd","batch":2}}"#),
        format!(r#"{{"id":7,"kind":"run","source":"{SQ}","opt_level":0,"peephole":false}}"#),
        r#"{"id":8,"kind":"frobnicate"}"#.to_string(),
        r#"{"id":9,"kind":"compile"}"#.to_string(),
        r#"{"id":10,"kind":"compile","source":"double bad(double x) { return x + ; }"}"#
            .to_string(),
        r#"this is not json"#.to_string(),
        r#"{"id":12,"kind":"shutdown"}"#.to_string(),
    ]
}

/// Renders requests and responses as the committed transcript format:
/// `> request` / `< response` pairs.
fn render_transcript(requests: &[String], responses: &[String]) -> String {
    let mut out = String::new();
    for (req, resp) in requests.iter().zip(responses) {
        out.push_str("> ");
        out.push_str(req);
        out.push_str("\n< ");
        out.push_str(resp);
        out.push('\n');
    }
    out
}

#[test]
fn stdio_transcript_matches_golden() {
    let requests = golden_requests();
    // 4 workers + identical replay on 1 worker: the transcript must not
    // depend on pool size (responses return in submission order and
    // each line is a pure function of its request).
    let responses = serve_session(&["--workers", "4"], &requests);
    assert_eq!(responses.len(), requests.len(), "one response line per request\n{responses:?}");
    assert_eq!(responses, serve_session(&["--workers", "1"], &requests));

    let got = render_transcript(&requests, &responses);
    // Always leave the actual transcript on disk so a CI failure can
    // export it as an artifact.
    let actual_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/serve-verify");
    std::fs::create_dir_all(&actual_dir).expect("create target/serve-verify");
    std::fs::write(actual_dir.join("transcript.actual.txt"), &got).expect("write actual");

    let expected_path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/expected/serve_transcript.txt");
    if std::env::var_os("IGEN_REGEN_GOLDEN").is_some() {
        std::fs::write(&expected_path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&expected_path).expect(
        "golden serve transcript missing; regenerate with IGEN_REGEN_GOLDEN=1 cargo test --test serve",
    );
    assert_eq!(got, want, "serve transcript drifted from the committed golden");
}

/// A request that waits in queue past its deadline (one worker, pinned
/// behind a slow ping) answers with the structured deadline error —
/// the error line itself is deterministic, only its timing is not.
#[test]
fn deadline_expiry_is_a_structured_error() {
    let responses = serve_session(
        &["--workers", "1"],
        &[
            r#"{"id":"slow","kind":"ping","sleep_ms":150}"#.to_string(),
            r#"{"id":"late","kind":"ping","deadline_ms":1}"#.to_string(),
        ],
    );
    assert!(responses[0].contains(r#""kind":"pong""#), "{responses:?}");
    assert_eq!(
        responses[1],
        r#"{"id":"late","ok":false,"error":"deadline expired after 1ms in queue"}"#
    );
}

/// With a single worker and a one-slot queue, a burst behind a slow
/// job must split into `queue full` rejections and served pongs — and
/// never hang. (How many of the burst land in the slot depends on when
/// the worker dequeues the slow job — possibly none, if it still sits
/// in the slot itself — so this asserts the split is total and that
/// backpressure trips; `crates/session/tests/service_determinism.rs`
/// pins the exact lines by polling the queue depth in-process.)
#[test]
fn full_queue_rejects_with_backpressure_error() {
    let mut requests = vec![r#"{"id":"slow","kind":"ping","sleep_ms":200}"#.to_string()];
    for i in 0..3 {
        requests.push(format!(r#"{{"id":"burst{i}","kind":"ping"}}"#));
    }
    let responses = serve_session(&["--workers", "1", "--queue-cap", "1"], &requests);
    assert!(responses[0].contains(r#""kind":"pong""#), "{responses:?}");
    let rejected =
        responses[1..].iter().filter(|r| r.contains("queue full (1 queued): retry later")).count();
    let served = responses[1..].iter().filter(|r| r.contains(r#""kind":"pong""#)).count();
    assert_eq!(rejected + served, 3, "every burst request is answered, never hung: {responses:?}");
    assert!(rejected >= 1, "the burst must trip backpressure: {responses:?}");
}

/// `metrics` surfaces the session counters (cache hits/misses/len and
/// the queue high-water mark) even in a build without the telemetry
/// feature. Interactive (write → read → write) because `metrics` is
/// answered at submit time: it must observe both runs *completed*, so
/// each response is read back before the next request goes in.
#[test]
fn metrics_reports_session_counters() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_igen-cli"))
        .args(["serve", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn igen-cli serve");
    let mut stdin = child.stdin.take().expect("serve stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("serve stdout"));
    let mut roundtrip = |req: &str| -> String {
        writeln!(stdin, "{req}").expect("write request");
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read response");
        line.trim_end().to_string()
    };
    let run = format!(r#"{{"kind":"run","source":"{SQ}"}}"#);
    assert!(roundtrip(&run).contains(r#""ok":true"#));
    assert!(roundtrip(&run).contains(r#""ok":true"#));
    let metrics = roundtrip(r#"{"id":"m","kind":"metrics"}"#);
    drop(stdin);
    let metrics = &metrics;
    assert!(metrics.contains(r#""ok":true"#), "{metrics}");
    for needle in [
        "igen_session_cache_hits 1",
        "igen_session_cache_misses 1",
        "igen_session_cache_len 1",
        "igen_session_queue_depth_max",
    ] {
        assert!(metrics.contains(needle), "metrics response missing `{needle}`: {metrics}");
    }
    assert!(child.wait().expect("serve exits").success());
}

/// The serve subcommand's own flags share the usage convention: a bad
/// flag is a one-line `igen-cli:` diagnostic and exit 2.
#[test]
fn serve_flag_errors_are_one_line_exit_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_igen-cli"))
        .args(["serve", "--workers"])
        .output()
        .expect("run igen-cli");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(stderr.trim(), "igen-cli: --workers needs a count");

    let out = Command::new(env!("CARGO_BIN_EXE_igen-cli"))
        .args(["serve", "--frobnicate"])
        .output()
        .expect("run igen-cli");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        stderr.trim(),
        "igen-cli: unknown serve option '--frobnicate' (see igen-cli --help)"
    );
}
