//! The opt-in `x*x → ia_sqr` rewrite on a real dependency-problem
//! workload: the Hénon map (Table VI), compiled from C both ways. Once
//! the iterates' enclosures straddle zero, the dependency-aware square
//! stops feeding the spurious negative range back into the recurrence.

use igen::compiler::{Compiler, Config};
use igen::interp::{Interp, Value};
use igen::interval::F64I;

const HENON: &str = r#"
    void henon(double* x, double* y, int iters) {
        double a = 1.4;
        double b = 0.3;
        int i;
        for (i = 0; i < iters; i++) {
            double xn = 1.0 - a * (x[0] * x[0]) + y[0];
            y[0] = b * x[0];
            x[0] = xn;
        }
    }
"#;

fn run_henon(cfg: Config, iters: i64) -> (F64I, F64I) {
    let out = Compiler::new(cfg).compile_str(HENON).unwrap();
    let mut run = Interp::new(&igen::cfront::parse(&out.c_source).unwrap());
    let x = run.alloc_interval(&[F64I::point(0.1)]);
    let y = run.alloc_interval(&[F64I::point(0.3)]);
    run.call("henon", vec![x.clone(), y.clone(), Value::Int(iters)]).unwrap();
    (run.read_interval(&x, 1)[0], run.read_interval(&y, 1)[0])
}

#[test]
fn sqr_rewrite_never_hurts_and_eventually_helps() {
    let plain_cfg = Config::default();
    let sqr_cfg = Config { sqr_rewrite: true, ..Config::default() };
    // x[0]*x[0] is a structurally identical pure Index expression — the
    // rewrite applies to it like to a plain variable.
    let out = Compiler::new(sqr_cfg).compile_str(HENON).unwrap();
    assert!(out.c_source.contains("ia_sqr_f64(x[0])"), "{}", out.c_source);
    // Never without the flag.
    let out = Compiler::new(plain_cfg).compile_str(HENON).unwrap();
    assert!(!out.c_source.contains("ia_sqr"), "{}", out.c_source);

    // The scalar form too.
    let scalar = r#"
        double henon_x(double x, double y, int iters) {
            double a = 1.4;
            double b = 0.3;
            int i;
            for (i = 0; i < iters; i++) {
                double xn = 1.0 - a * (x * x) + y;
                y = b * x;
                x = xn;
            }
            return x;
        }
    "#;
    let pout = Compiler::new(plain_cfg).compile_str(scalar).unwrap();
    let sout = Compiler::new(sqr_cfg).compile_str(scalar).unwrap();
    assert!(sout.c_source.contains("ia_sqr_f64(x)"), "{}", sout.c_source);
    assert!(pout.c_source.contains("ia_mul_f64(x, x)"), "{}", pout.c_source);

    let mut prun = Interp::new(&igen::cfront::parse(&pout.c_source).unwrap());
    let mut srun = Interp::new(&igen::cfront::parse(&sout.c_source).unwrap());
    for iters in [10i64, 30, 45] {
        let args = |v: f64, w: f64| {
            vec![
                Value::Interval(F64I::point(v)),
                Value::Interval(F64I::point(w)),
                Value::Int(iters),
            ]
        };
        let Value::Interval(p) = prun.call("henon_x", args(0.1, 0.3)).unwrap() else { panic!() };
        let Value::Interval(s) = srun.call("henon_x", args(0.1, 0.3)).unwrap() else { panic!() };
        // Soundness: both contain the same true orbit, and the rewrite
        // result is always enclosed by (i.e. at least as tight as) the
        // plain result.
        assert!(p.encloses(&s), "iters={iters}: plain {p} must enclose sqr {s}");
        assert!(s.width() <= p.width(), "iters={iters}");
    }
    // By 45 iterations the iterate enclosure straddles zero and the
    // dependency-aware square is strictly tighter.
    let Value::Interval(p) = prun
        .call(
            "henon_x",
            vec![
                Value::Interval(F64I::point(0.1)),
                Value::Interval(F64I::point(0.3)),
                Value::Int(45),
            ],
        )
        .unwrap()
    else {
        panic!()
    };
    let Value::Interval(s) = srun
        .call(
            "henon_x",
            vec![
                Value::Interval(F64I::point(0.1)),
                Value::Interval(F64I::point(0.3)),
                Value::Int(45),
            ],
        )
        .unwrap()
    else {
        panic!()
    };
    assert!(
        s.certified_bits() >= p.certified_bits(),
        "sqr {} bits vs plain {} bits",
        s.certified_bits(),
        p.certified_bits()
    );
}

#[test]
fn pointer_henon_pipeline_is_sound() {
    // The array form runs end-to-end and contains the float orbit.
    let (x, y) = run_henon(Config::default(), 20);
    let (mut fx, mut fy) = (0.1f64, 0.3f64);
    for _ in 0..20 {
        let xn = 1.0 - 1.4 * (fx * fx) + fy;
        fy = 0.3 * fx;
        fx = xn;
    }
    assert!(x.contains(fx), "{fx} outside {x}");
    assert!(y.contains(fy), "{fy} outside {y}");
}
