//! Semantic sweep of the generated intrinsic implementations: every
//! `_c_<intrinsic>` from the corpus is executed in float mode and checked
//! against hand-written reference semantics (the ground truth of the
//! Intel documentation).
#![allow(clippy::needless_range_loop, clippy::type_complexity)] // lane tables read clearer indexed

use igen::interp::{Interp, Value};
use igen::simdgen::{corpus_specs, generate_unit};

fn runner() -> Interp {
    let (unit, _) = generate_unit(&corpus_specs());
    Interp::new(&unit)
}

fn v4(a: [f64; 4]) -> Value {
    Value::VecF64(a.to_vec())
}

fn v2(a: [f64; 2]) -> Value {
    Value::VecF64(a.to_vec())
}

fn want4(v: Value) -> [f64; 4] {
    let Value::VecF64(x) = v else { panic!("{v:?}") };
    [x[0], x[1], x[2], x[3]]
}

fn want2(v: Value) -> [f64; 2] {
    let Value::VecF64(x) = v else { panic!("{v:?}") };
    [x[0], x[1]]
}

const A4: [f64; 4] = [1.5, -2.25, 3.0, 0.5];
const B4: [f64; 4] = [0.5, 4.0, -3.0, 0.25];
const A2: [f64; 2] = [1.5, -2.25];
const B2: [f64; 2] = [0.5, 4.0];

#[test]
fn avx_lane_arithmetic() {
    let mut r = runner();
    let cases: &[(&str, fn(f64, f64) -> f64)] = &[
        ("_c_mm256_add_pd", |a, b| a + b),
        ("_c_mm256_sub_pd", |a, b| a - b),
        ("_c_mm256_mul_pd", |a, b| a * b),
        ("_c_mm256_div_pd", |a, b| a / b),
        ("_c_mm256_min_pd", f64::min),
        ("_c_mm256_max_pd", f64::max),
    ];
    for (name, f) in cases {
        let got = want4(r.call(name, vec![v4(A4), v4(B4)]).unwrap());
        let want: Vec<f64> = A4.iter().zip(B4).map(|(&a, b)| f(a, b)).collect();
        assert_eq!(got.to_vec(), want, "{name}");
    }
}

#[test]
fn sse_lane_arithmetic() {
    let mut r = runner();
    let cases: &[(&str, fn(f64, f64) -> f64)] = &[
        ("_c_mm_add_pd", |a, b| a + b),
        ("_c_mm_sub_pd", |a, b| a - b),
        ("_c_mm_mul_pd", |a, b| a * b),
        ("_c_mm_div_pd", |a, b| a / b),
        ("_c_mm_min_pd", f64::min),
        ("_c_mm_max_pd", f64::max),
    ];
    for (name, f) in cases {
        let got = want2(r.call(name, vec![v2(A2), v2(B2)]).unwrap());
        let want: Vec<f64> = A2.iter().zip(B2).map(|(&a, b)| f(a, b)).collect();
        assert_eq!(got.to_vec(), want, "{name}");
    }
}

#[test]
fn sqrt_set_zero_broadcast() {
    let mut r = runner();
    let got = want4(r.call("_c_mm256_sqrt_pd", vec![v4([4.0, 9.0, 0.25, 1.0])]).unwrap());
    assert_eq!(got, [2.0, 3.0, 0.5, 1.0]);
    let got = want4(r.call("_c_mm256_set1_pd", vec![Value::F64(7.5)]).unwrap());
    assert_eq!(got, [7.5; 4]);
    let got = want4(r.call("_c_mm256_setzero_pd", vec![]).unwrap());
    assert_eq!(got, [0.0; 4]);
    let got = want2(r.call("_c_mm_set1_pd", vec![Value::F64(-1.25)]).unwrap());
    assert_eq!(got, [-1.25; 2]);
}

#[test]
fn swizzles() {
    let mut r = runner();
    // unpacklo/hi within 128-bit lanes.
    let got = want4(r.call("_c_mm256_unpacklo_pd", vec![v4(A4), v4(B4)]).unwrap());
    assert_eq!(got, [A4[0], B4[0], A4[2], B4[2]]);
    let got = want4(r.call("_c_mm256_unpackhi_pd", vec![v4(A4), v4(B4)]).unwrap());
    assert_eq!(got, [A4[1], B4[1], A4[3], B4[3]]);
    let got = want2(r.call("_c_mm_unpacklo_pd", vec![v2(A2), v2(B2)]).unwrap());
    assert_eq!(got, [A2[0], B2[0]]);
    let got = want2(r.call("_c_mm_unpackhi_pd", vec![v2(A2), v2(B2)]).unwrap());
    assert_eq!(got, [A2[1], B2[1]]);
    // shuffle_pd with all four immediates.
    for imm in 0..4i64 {
        let got = want2(r.call("_c_mm_shuffle_pd", vec![v2(A2), v2(B2), Value::Int(imm)]).unwrap());
        let want = [A2[(imm & 1) as usize], B2[((imm >> 1) & 1) as usize]];
        assert_eq!(got, want, "imm={imm}");
    }
}

#[test]
fn fma_and_blend() {
    let mut r = runner();
    let c4 = [10.0, 20.0, 30.0, 40.0];
    let got = want4(r.call("_c_mm256_fmadd_pd", vec![v4(A4), v4(B4), v4(c4)]).unwrap());
    let want: Vec<f64> = (0..4).map(|i| A4[i] * B4[i] + c4[i]).collect();
    assert_eq!(got.to_vec(), want);
    let got = want4(r.call("_c_mm256_fmsub_pd", vec![v4(A4), v4(B4), v4(c4)]).unwrap());
    let want: Vec<f64> = (0..4).map(|i| A4[i] * B4[i] - c4[i]).collect();
    assert_eq!(got.to_vec(), want);
    for imm in [0b0000i64, 0b1111, 0b1010, 0b0110] {
        let got =
            want4(r.call("_c_mm256_blend_pd", vec![v4(A4), v4(B4), Value::Int(imm)]).unwrap());
        let want: Vec<f64> =
            (0..4).map(|i| if imm >> i & 1 == 1 { B4[i] } else { A4[i] }).collect();
        assert_eq!(got.to_vec(), want, "imm={imm:#b}");
    }
}

#[test]
fn blendv_via_sign_masks() {
    let mut r = runner();
    // Mask lanes select by their SIGN bit.
    let mask = [-0.0, 0.0, -1.0, 1.0];
    let got = want4(r.call("_c_mm256_blendv_pd", vec![v4(A4), v4(B4), v4(mask)]).unwrap());
    let want: Vec<f64> =
        (0..4).map(|i| if mask[i].is_sign_negative() { B4[i] } else { A4[i] }).collect();
    assert_eq!(got.to_vec(), want);
}

#[test]
fn logical_via_bit_view() {
    let mut r = runner();
    let ones = f64::from_bits(u64::MAX);
    let got = want4(
        r.call("_c_mm256_or_pd", vec![v4([0.0, 0.0, 1.5, 0.0]), v4([2.5, 0.0, 0.0, ones])])
            .unwrap(),
    );
    assert_eq!(got[0], 2.5);
    assert_eq!(got[1], 0.0);
    assert_eq!(got[2], 1.5);
    assert!(got[3].is_nan()); // all-ones bits
    let got = want4(
        r.call("_c_mm256_xor_pd", vec![v4([1.5, -1.5, 0.0, 2.0]), v4([-0.0, -0.0, -0.0, 0.0])])
            .unwrap(),
    );
    // XOR with the sign mask negates.
    assert_eq!(&got[..3], &[-1.5, 1.5, -0.0][..]);
    assert_eq!(got[3], 2.0);
    let got =
        want4(r.call("_c_mm256_andnot_pd", vec![v4([ones, 0.0, ones, 0.0]), v4(A4)]).unwrap());
    assert_eq!(got, [0.0, A4[1], 0.0, A4[3]]);
}

#[test]
fn loads_stores_and_broadcast() {
    let mut r = runner();
    let src = r.alloc_f64(&[9.0, 8.0, 7.0, 6.0, 5.0]);
    let got = want4(r.call("_c_mm256_loadu_pd", vec![src.clone()]).unwrap());
    assert_eq!(got, [9.0, 8.0, 7.0, 6.0]);
    let got = want4(r.call("_c_mm256_load_pd", vec![src.clone()]).unwrap());
    assert_eq!(got, [9.0, 8.0, 7.0, 6.0]);
    let dst = r.alloc_f64(&[0.0; 4]);
    r.call("_c_mm256_storeu_pd", vec![dst.clone(), v4(A4)]).unwrap();
    assert_eq!(r.read_f64(&dst, 4), A4.to_vec());
    let got = want4(r.call("_c_mm256_broadcast_sd", vec![src]).unwrap());
    assert_eq!(got, [9.0; 4]);
}

#[test]
fn cvtps_pd_float_mode() {
    let mut r = runner();
    let f32s = [0.5f32, -1.25, 3.0, 0.1];
    // The vec128 union in float mode: pass the f32 values (as f64 lanes —
    // the interpreter models the float array at f64 precision, matching
    // the exact promotion the conversion performs).
    let input = Value::VecF64(f32s.iter().map(|&v| v as f64).collect());
    let got = want4(r.call("_c_mm256_cvtps_pd", vec![input]).unwrap());
    for (k, &x) in f32s.iter().enumerate() {
        assert_eq!(got[k], x as f64, "lane {k}");
    }
}

#[test]
fn hadd_both_widths() {
    let mut r = runner();
    let got = want4(r.call("_c_mm256_hadd_pd", vec![v4(A4), v4(B4)]).unwrap());
    assert_eq!(got, [A4[0] + A4[1], B4[0] + B4[1], A4[2] + A4[3], B4[2] + B4[3]]);
}

#[test]
fn ps_lane_arithmetic() {
    let mut r = runner();
    let a8: Vec<f64> = (0..8).map(|i| i as f64 * 0.5 - 2.0).collect();
    let b8: Vec<f64> = (0..8).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let cases: &[(&str, fn(f64, f64) -> f64)] = &[
        ("_c_mm256_add_ps", |a, b| a + b),
        ("_c_mm256_sub_ps", |a, b| a - b),
        ("_c_mm256_mul_ps", |a, b| a * b),
        ("_c_mm256_div_ps", |a, b| a / b),
        ("_c_mm256_min_ps", f64::min),
        ("_c_mm256_max_ps", f64::max),
    ];
    for (name, f) in cases {
        let got = r.call(name, vec![Value::VecF64(a8.clone()), Value::VecF64(b8.clone())]).unwrap();
        let Value::VecF64(got) = got else { panic!() };
        for i in 0..8 {
            assert_eq!(got[i], f(a8[i], b8[i]), "{name} lane {i}");
        }
    }
}

#[test]
fn ps_sqrt_and_sse_width() {
    let mut r = runner();
    let sq: Vec<f64> = vec![4.0, 9.0, 0.25, 1.0, 16.0, 0.0625, 2.25, 100.0];
    let got = r.call("_c_mm256_sqrt_ps", vec![Value::VecF64(sq.clone())]).unwrap();
    let Value::VecF64(got) = got else { panic!() };
    for i in 0..8 {
        assert_eq!(got[i], sq[i].sqrt(), "lane {i}");
    }
    // 4-lane SSE single-precision arithmetic.
    let got = want4(r.call("_c_mm_mul_ps", vec![v4(A4), v4(B4)]).unwrap());
    let want: Vec<f64> = A4.iter().zip(B4).map(|(&a, b)| a * b).collect();
    assert_eq!(got.to_vec(), want);
    let got = want4(r.call("_c_mm_sub_ps", vec![v4(A4), v4(B4)]).unwrap());
    let want: Vec<f64> = A4.iter().zip(B4).map(|(&a, b)| a - b).collect();
    assert_eq!(got.to_vec(), want);
}

#[test]
fn ps_loads_stores() {
    let mut r = runner();
    let src = r.alloc_f64(&[3.0, 1.0, 4.0, 1.5, 9.25]);
    let got = want4(r.call("_c_mm_loadu_ps", vec![src]).unwrap());
    assert_eq!(got, [3.0, 1.0, 4.0, 1.5]);
    let dst = r.alloc_f64(&[0.0; 4]);
    r.call("_c_mm_storeu_ps", vec![dst.clone(), v4(A4)]).unwrap();
    assert_eq!(r.read_f64(&dst, 4), A4.to_vec());
}

#[test]
fn movedup_duplicates_even_lanes() {
    let mut r = runner();
    let got = want4(r.call("_c_mm256_movedup_pd", vec![v4(A4)]).unwrap());
    assert_eq!(got, [A4[0], A4[0], A4[2], A4[2]]);
}
