//! End-to-end tests of the IR optimization pipeline: `-O2` must shrink
//! the static interval op count on the paper kernels while leaving every
//! interval endpoint bit-identical — checked both by the built-in
//! differential pass verifier (`verify_passes`) and independently here
//! by executing the printed `-O0` and `-O2` C through the reference
//! interpreter on random inputs.

use igen::compiler::{Compiler, Config, OptLevel};
use igen::interp::{Interp, Value};
use igen::interval::F64I;
use proptest::prelude::*;
use std::path::PathBuf;

fn golden_input(name: &str) -> String {
    let p = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("inputs")
        .join(format!("{name}.c"));
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn at_level(level: OptLevel) -> Config {
    Config { opt_level: level, verify_passes: true, ..Config::default() }
}

/// Acceptance criterion of the pass pipeline: `-O2` reduces the static
/// interval op count on at least three paper kernels, never increases
/// it, and every exact pass survives differential verification.
#[test]
fn o2_reduces_op_count_on_paper_kernels() {
    let mut reduced = Vec::new();
    for name in ["horner", "euclid", "sigmoid", "rnorm", "henon", "fig2"] {
        let src = golden_input(name);
        let out = Compiler::new(at_level(OptLevel::O2))
            .compile_str(&src)
            .unwrap_or_else(|e| panic!("compile {name} at -O2: {e}"));
        let (before, after) = (out.opt_report.ops_before(), out.opt_report.ops_after());
        assert!(after <= before, "{name}: -O2 increased op count {before} -> {after}");
        if after < before {
            reduced.push((name, before, after));
        }
    }
    assert!(
        reduced.len() >= 3,
        "-O2 reduced the op count on only {} kernels (need >= 3): {reduced:?}",
        reduced.len()
    );
}

/// At `-O0` the pipeline must be a no-op on unannotated kernels: no pass
/// reports a change, so the op count is preserved exactly.
#[test]
fn o0_pipeline_is_a_no_op_without_reductions() {
    for name in ["horner", "euclid", "sigmoid", "rnorm", "henon", "fig2"] {
        let out = Compiler::new(at_level(OptLevel::O0)).compile_str(&golden_input(name)).unwrap();
        assert!(!out.opt_report.changed(), "{name}: -O0 pipeline changed the IR");
        assert_eq!(out.opt_report.ops_before(), out.opt_report.ops_after(), "{name}");
    }
}

/// The reduction rewrite runs at every level, `-O0` included: it
/// implements `#pragma igen reduce` and is part of the language.
#[test]
fn reductions_still_rewrite_at_o0_and_o2() {
    let src = golden_input("dot_reduce");
    for level in [OptLevel::O0, OptLevel::O2] {
        let cfg = Config { reductions: true, ..at_level(level) };
        let out = Compiler::new(cfg).compile_str(&src).unwrap();
        assert_eq!(out.reductions.len(), 1, "{level:?}");
        assert!(out.c_source.contains("acc_f64 acc1;"), "{level:?}:\n{}", out.c_source);
        assert!(out.c_source.contains("isum_accumulate_f64"), "{level:?}:\n{}", out.c_source);
    }
}

fn interval(lo: f64, w: f64) -> Value {
    Value::Interval(F64I::new(lo, lo + w).unwrap())
}

fn run(c_source: &str, args: &[Value]) -> Result<Value, String> {
    let unit = igen::cfront::parse(c_source).expect("reparse printed C");
    Interp::new(&unit).call("f", args.to_vec()).map_err(|e| e.to_string())
}

fn assert_bit_identical(r0: &Result<Value, String>, r2: &Result<Value, String>, ctx: &str) {
    match (r0, r2) {
        (Ok(Value::Interval(x)), Ok(Value::Interval(y))) => {
            assert!(
                x.lo().to_bits() == y.lo().to_bits() && x.hi().to_bits() == y.hi().to_bits(),
                "{ctx}: endpoints diverge: -O0 [{:?}, {:?}] vs -O2 [{:?}, {:?}]",
                x.lo(),
                x.hi(),
                y.lo(),
                y.hi()
            );
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "{ctx}: different runtime exceptions"),
        _ => panic!("{ctx}: outcome kinds diverge: -O0 {r0:?} vs -O2 {r2:?}"),
    }
}

/// A random arithmetic expression over the parameters `a`, `b`, `c` and
/// small literals. Depth-bounded; every operator folds and CSEs.
fn expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("0.25".to_string()),
        Just("1.5".to_string()),
        Just("2.0".to_string()),
        Just("3.0".to_string()),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} + {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} - {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} * {r})")),
            inner.clone().prop_map(|e| format!("sqrt(fabs({e}))")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random programs: `-O0` and `-O2` produce bit-identical interval
    /// endpoints (or the identical runtime exception) under the
    /// reference interpreter. The duplicated subexpressions guarantee
    /// the CSE/fold/dce passes actually fire.
    #[test]
    fn o0_and_o2_endpoints_bit_identical(
        e1 in expr(),
        e2 in expr(),
        a in -2.0f64..2.0,
        b in -2.0f64..2.0,
        c in -2.0f64..2.0,
        w in 0.0f64..0.125,
    ) {
        let src = format!(
            "double f(double a, double b, double c) {{\n\
             \x20   double u = ({e1}) + ({e2});\n\
             \x20   double v = ({e2}) * (({e1}) + ({e1}));\n\
             \x20   return u - v;\n\
             }}\n"
        );
        let o0 = Compiler::new(at_level(OptLevel::O0)).compile_str(&src).unwrap();
        let o2 = Compiler::new(at_level(OptLevel::O2)).compile_str(&src).unwrap();
        prop_assert!(
            o2.opt_report.ops_after() <= o0.opt_report.ops_after(),
            "-O2 emitted more ops than -O0"
        );
        let args = [interval(a, w), interval(b, w), interval(c, w)];
        let r0 = run(&o0.c_source, &args);
        let r2 = run(&o2.c_source, &args);
        assert_bit_identical(&r0, &r2, &src);
    }
}
