//! The runtime-header contract: every `ia_*` / `isum_*` function the
//! compiler emits must be declared in the `igen_lib.h` it ships, for each
//! precision. A C build would fail to link otherwise; here the test
//! closes the same gap (the interpreter binds names dynamically, so a
//! missing declaration would otherwise go unnoticed).

use igen::compiler::{runtime_header, Compiler, Config, Precision};
use std::collections::BTreeSet;

/// Extracts `ia_*`/`isum_*` identifiers from C text.
fn runtime_calls(c: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let bytes = c.as_bytes();
    for (i, _) in c.match_indices("ia_").chain(c.match_indices("isum_")) {
        // must start an identifier
        if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
            continue;
        }
        let end = c[i..]
            .find(|ch: char| !ch.is_ascii_alphanumeric() && ch != '_')
            .map_or(c.len(), |k| i + k);
        out.insert(c[i..end].to_string());
    }
    // ia_mm* kernels are declared by the SIMD header section the vector
    // programs include; they are outside the scalar contract.
    out.retain(|n| !n.starts_with("ia_mm"));
    out
}

fn check(cfg: Config, sources: &[&str]) {
    let header = runtime_header(&cfg);
    for src in sources {
        let out = Compiler::new(cfg).compile_str(src).unwrap_or_else(|e| {
            panic!("compile failed for {src}: {e}");
        });
        for name in runtime_calls(&out.c_source) {
            assert!(
                header.contains(&format!("{name}(")),
                "{name} emitted but not declared in igen_lib.h (precision {:?})\nsource: {src}",
                cfg.precision
            );
        }
    }
}

const COMMON: &[&str] = &[
    "double f(double a, double b) { double c; c = a + b + 0.1; if (c > a) { c = a * c; } return c; }",
    "double g(double x) { return -x / (x + 2.5); }",
    "double h(double x) { return pow(x, 3) + pow(x, -2); }",
    "double m(double a, double b) { return fmin(a, b) - fmax(a, b); }",
    "double r(double* v, int n) { double s = 0.0; int i;\n#pragma igen reduce s\nfor (i = 0; i < n; i++) { s = s + v[i]; } return s; }",
];

#[test]
fn f64_header_covers_all_emitted_calls() {
    let mut sources = COMMON.to_vec();
    sources.push(
        "double e(double x) { return exp(x) + log(x) + sin(x) + cos(x) + tan(x) \
         + atan(x) + asin(x) + acos(x) + sqrt(x) + fabs(x) + floor(x) + ceil(x); }",
    );
    let cfg = Config { reductions: true, ..Config::default() };
    check(cfg, &sources);
    // join-branches policy uses additional tbool helpers.
    let join = Config {
        reductions: true,
        branch_policy: igen::compiler::BranchPolicy::JoinBranches,
        ..Config::default()
    };
    check(join, COMMON);
}

#[test]
fn dd_header_covers_all_emitted_calls() {
    let cfg = Config { precision: Precision::Dd, reductions: true, ..Config::default() };
    check(cfg, COMMON);
}

#[test]
fn f32_header_covers_all_emitted_calls() {
    let cfg = Config { precision: Precision::F32, reductions: true, ..Config::default() };
    // The reduction accumulator & pow exist for f32 too.
    check(
        cfg,
        &[
            "float f(float a, float b) { float c; c = a + b + 0.1f; if (c > a) { c = a * c; } return c; }",
            "float h(float x) { return pow(x, 4); }",
            "float e(float x) { return exp(x) + log(x) + sin(x) + cos(x) + tan(x) \
             + atan(x) + asin(x) + acos(x) + sqrt(x) + fabs(x) + floor(x) + ceil(x); }",
        ],
    );
}
