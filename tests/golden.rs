//! Golden-file snapshot tests: the compiled C for the paper kernels is
//! committed under `tests/golden/expected/` and compared byte-for-byte
//! at `-O0`. These outputs were captured from the pre-IR (seed)
//! compiler, so they pin the refactor: lowering through the typed IR
//! and emitting without optimization must reproduce the monolithic
//! rewriter's output exactly.
//!
//! To regenerate (e.g. after an intentional output change):
//!
//! ```text
//! IGEN_REGEN_GOLDEN=1 cargo test -q --test golden
//! ```

use igen::compiler::{Compiler, Config, Precision};
use std::path::PathBuf;

/// Every golden kernel with the configuration it is compiled under.
/// All configurations leave the optimization level at its default
/// (`-O0`); byte-identity is only pinned for the unoptimized pipeline.
fn manifest() -> Vec<(&'static str, Config)> {
    let dflt = Config::default();
    vec![
        ("fig2", dflt),
        ("horner", dflt),
        ("euclid", dflt),
        ("sigmoid", dflt),
        ("rnorm", dflt),
        ("henon", dflt),
        ("dot_reduce", Config { reductions: true, ..dflt }),
        ("dd_poly", Config { precision: Precision::Dd, ..dflt }),
        ("simd_scale", dflt),
    ]
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn check(name: &str, cfg: Config) {
    let dir = golden_dir();
    let input = dir.join("inputs").join(format!("{name}.c"));
    let expected = dir.join("expected").join(format!("{name}.c"));
    let src =
        std::fs::read_to_string(&input).unwrap_or_else(|e| panic!("read {}: {e}", input.display()));
    let out =
        Compiler::new(cfg).compile_str(&src).unwrap_or_else(|e| panic!("compile {name}: {e}"));

    if std::env::var_os("IGEN_REGEN_GOLDEN").is_some() {
        std::fs::write(&expected, &out.c_source)
            .unwrap_or_else(|e| panic!("write {}: {e}", expected.display()));
        return;
    }

    let want = std::fs::read_to_string(&expected).unwrap_or_else(|e| {
        panic!(
            "read {}: {e}\n(run `IGEN_REGEN_GOLDEN=1 cargo test --test golden` to capture)",
            expected.display()
        )
    });
    assert!(
        out.c_source == want,
        "golden mismatch for {name} at -O0 (byte-for-byte)\n\
         --- expected ({}) ---\n{want}\n--- got ---\n{}",
        expected.display(),
        out.c_source
    );
}

#[test]
fn golden_fig2() {
    let cfg = manifest().into_iter().find(|(n, _)| *n == "fig2").unwrap().1;
    check("fig2", cfg);
}

#[test]
fn golden_all_kernels() {
    for (name, cfg) in manifest() {
        check(name, cfg);
    }
}

/// Repeated compiles of the same unit are byte-identical — no HashMap
/// iteration-order leakage anywhere in the pipeline (satellite fix).
#[test]
fn golden_outputs_deterministic() {
    for (name, cfg) in manifest() {
        let input = golden_dir().join("inputs").join(format!("{name}.c"));
        let src = std::fs::read_to_string(&input).unwrap();
        let first = Compiler::new(cfg).compile_str(&src).unwrap().c_source;
        for _ in 0..3 {
            let again = Compiler::new(cfg).compile_str(&src).unwrap().c_source;
            assert_eq!(first, again, "non-deterministic output for {name}");
        }
    }
}
