//! Bytecode-vs-interpreter bit identity: every function shape the
//! lowering pass supports is compiled at `-O0`, `-O1` and `-O2`,
//! lowered to bytecode, and executed over random inputs against the
//! differential interpreter running the transformed C unit. Endpoints
//! must match bit for bit — no tolerance — at every opt level; the
//! batched packed path must additionally be bit-identical to the
//! scalar path at every thread count.

use igen::batch::{BatchConfig, BatchF64I, BatchProgram};
use igen::compiler::{
    compile_to_program, verify_bit_identity, verify_bit_identity_dd, Compiler, Config, OptLevel,
    Output, Precision,
};
use igen::interval::F64I;
use igen::kernels::workload;
use igen::vm::{ArgBind, BindSpec};

fn compile(src: &str, opt: OptLevel) -> Output {
    let cfg = Config { opt_level: opt, ..Config::default() };
    Compiler::new(cfg).compile_str(src).expect("compiles")
}

fn compile_dd(src: &str, opt: OptLevel) -> Output {
    let cfg = Config { opt_level: opt, precision: Precision::Dd, ..Config::default() };
    Compiler::new(cfg).compile_str(src).expect("compiles")
}

const OPT_LEVELS: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];

/// Compiles at every opt level, checks scalar bit identity against the
/// interpreter, then checks thread-count invariance of the batched run.
fn check_f64(src: &str, fn_name: &str, bind: BindSpec, seed: u64, items: usize) {
    for opt in OPT_LEVELS {
        let out = compile(src, opt);
        let prog = compile_to_program(&out, fn_name, &bind)
            .unwrap_or_else(|e| panic!("{fn_name} at {opt:?}: {e}"));
        let nin = prog.n_inputs as usize;
        let mut rng = workload::rng(seed ^ opt as u64);
        let points = workload::random_points(&mut rng, items * nin, -2.0, 2.0);
        let inputs = workload::intervals_1ulp(&points);
        verify_bit_identity(&out, &prog, &bind, &inputs)
            .unwrap_or_else(|e| panic!("{fn_name} at {opt:?}: {e}"));

        // Batched packed path: identical bits at 1, 3 and 8 threads.
        let bp = BatchProgram::new(prog);
        let soa = BatchF64I::from_intervals(&inputs);
        let base =
            bp.run(&BatchConfig::new().with_threads(1).with_seq_threshold(0), &soa).to_intervals();
        for threads in [3usize, 8] {
            let got = bp
                .run(&BatchConfig::new().with_threads(threads).with_seq_threshold(0), &soa)
                .to_intervals();
            assert_eq!(base.len(), got.len());
            for (b, g) in base.iter().zip(&got) {
                assert_eq!(b.lo().to_bits(), g.lo().to_bits(), "{fn_name} lo @ {threads} threads");
                assert_eq!(b.hi().to_bits(), g.hi().to_bits(), "{fn_name} hi @ {threads} threads");
            }
        }
    }
}

#[test]
fn dot_accumulator_loop() {
    let src = r#"
        double dot(double* x, double* y, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) {
                s = s + x[i] * y[i];
            }
            return s;
        }
    "#;
    let n = 7;
    let bind = BindSpec::new(vec![ArgBind::In(n), ArgBind::In(n), ArgBind::Int(n as i64)]);
    check_f64(src, "dot", bind, 11, 9);
}

#[test]
fn henon_iteration() {
    let src = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/inputs/henon.c"),
    )
    .expect("golden henon source");
    let bind = BindSpec::new(vec![ArgBind::Ival, ArgBind::Ival, ArgBind::Int(12)]);
    check_f64(&src, "henon_map", bind, 22, 13);
}

#[test]
fn poly_with_builtins() {
    let src = r#"
        double poly(double u, double v) {
            double a = fabs(u);
            double m = fmax(a, v);
            double r = sqrt(m + 2.0);
            double p = pow(u, 3);
            return fmin(r, p) / (v + 4.0) - u * u;
        }
    "#;
    let bind = BindSpec::new(vec![ArgBind::Ival, ArgBind::Ival]);
    check_f64(src, "poly", bind, 33, 16);
}

#[test]
fn mvm_inout_with_uniform_matrix() {
    let src = r#"
        void mvm(double* a, double* x, double* y, int n) {
            for (int i = 0; i < n; i++) {
                double acc = y[i];
                for (int j = 0; j < n; j++) {
                    acc = acc + a[i * n + j] * x[j];
                }
                y[i] = acc;
            }
        }
    "#;
    let n = 4;
    let mut rng = workload::rng(99);
    let a = workload::random_points(&mut rng, n * n, -1.0, 1.0);
    let pairs: Vec<(f64, f64)> = a.iter().map(|&v| (v, v)).collect();
    let bind = BindSpec::new(vec![
        ArgBind::Uniform(pairs),
        ArgBind::In(n),
        ArgBind::InOut(n),
        ArgBind::Int(n as i64),
    ]);
    check_f64(src, "mvm", bind, 44, 6);
}

#[test]
fn local_scratch_array() {
    let src = r#"
        double scratch(double v) {
            double tmp[3];
            tmp[0] = v + 1.0;
            tmp[1] = tmp[0] * tmp[0];
            tmp[2] = tmp[1] - v;
            return tmp[2];
        }
    "#;
    let bind = BindSpec::new(vec![ArgBind::Ival]);
    check_f64(src, "scratch", bind, 55, 17);
}

#[test]
fn out_array_gather() {
    let src = r#"
        void split(double x, double* o) {
            o[0] = x * x;
            o[1] = x + 1.5;
        }
    "#;
    let bind = BindSpec::new(vec![ArgBind::Ival, ArgBind::Out(2)]);
    check_f64(src, "split", bind, 66, 10);
}

#[test]
fn henon_dd_precision() {
    let src = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/inputs/henon.c"),
    )
    .expect("golden henon source");
    let bind = BindSpec::new(vec![ArgBind::Ival, ArgBind::Ival, ArgBind::Int(8)]);
    for opt in OPT_LEVELS {
        let out = compile_dd(&src, opt);
        let prog = compile_to_program(&out, "henon_map", &bind)
            .unwrap_or_else(|e| panic!("henon dd at {opt:?}: {e}"));
        let mut rng = workload::rng(77 ^ opt as u64);
        let inputs = workload::dd_intervals_1ulp(&mut rng, 10 * 2, -0.5, 0.5);
        verify_bit_identity_dd(&out, &prog, &bind, &inputs)
            .unwrap_or_else(|e| panic!("henon dd at {opt:?}: {e}"));
    }
}

/// Functions outside the traced subset are rejected with a precise
/// error instead of miscompiling: an interval-dependent branch must
/// name the tri-state branch problem.
#[test]
fn interval_branch_is_rejected() {
    let src = r#"
        double clamp_pos(double x) {
            if (x > 0.0) {
                return x;
            }
            return 0.0;
        }
    "#;
    let out = compile(src, OptLevel::O2);
    let bind = BindSpec::new(vec![ArgBind::Ival]);
    let err = compile_to_program(&out, "clamp_pos", &bind).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("interval"), "unexpected error: {msg}");
}

/// The item-major SoA layout and the scalar reference agree on which
/// lanes belong to which item (regression guard for the load stride).
#[test]
fn batch_layout_matches_per_item_runs() {
    let src = r#"
        double axpy1(double a, double x, double y) {
            return a * x + y;
        }
    "#;
    let out = compile(src, OptLevel::O2);
    let bind = BindSpec::new(vec![ArgBind::Ival, ArgBind::Ival, ArgBind::Ival]);
    let prog = compile_to_program(&out, "axpy1", &bind).expect("lowers");
    let mut rng = workload::rng(123);
    let points = workload::random_points(&mut rng, 3 * 11, -3.0, 3.0);
    let inputs = workload::intervals_1ulp(&points);
    let per_item: Vec<F64I> = (0..11)
        .map(|i| igen::vm::run_scalar::<F64I>(&prog, &inputs[i * 3..(i + 1) * 3])[0])
        .collect();
    let bp = BatchProgram::new(prog);
    let got = bp
        .run(
            &BatchConfig::new().with_threads(2).with_seq_threshold(0),
            &BatchF64I::from_intervals(&inputs),
        )
        .to_intervals();
    assert_eq!(got.len(), per_item.len());
    for (g, w) in got.iter().zip(&per_item) {
        assert_eq!(g.lo().to_bits(), w.lo().to_bits());
        assert_eq!(g.hi().to_bits(), w.hi().to_bits());
    }
}
