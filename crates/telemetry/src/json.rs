//! A minimal JSON reader for small self-controlled formats.
//!
//! The build environment is offline (no serde), and the workspace's JSON
//! formats are small and self-controlled, so this module implements just
//! enough of RFC 8259 to parse what [`crate::trace`] emits — objects,
//! arrays, strings with the standard escapes, integers/floats, booleans
//! and null. It is always compiled (trace *reading* must work in builds
//! without the `enabled` feature) and public: other workspace tools with
//! hand-rolled JSON output (e.g. the `igen-bench` gauntlet's
//! `BENCH_*.json` trajectory) reuse it as their reader.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as f64; the trace only writes u64-safe
    /// integers below 2^53 and plain floats).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order not preserved; the trace never relies on it).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer (`None` beyond 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an exact signed integer (`None` beyond ±2^53).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a float, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses one complete JSON value from `src` (trailing whitespace
/// allowed, anything else is an error).
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut arr = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(arr));
        }
        loop {
            arr.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(arr));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // The trace never writes surrogate pairs;
                            // lone surrogates map to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // slicing at char boundaries is safe to search for).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_trace_shaped_objects() {
        let v = parse(
            r#"{"type":"span","name":"pass.cse","thread":3,"depth":1,"start_ns":120,"dur_ns":45}"#,
        )
        .unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("span"));
        assert_eq!(v.get("thread").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("dur_ns").unwrap().as_u64(), Some(45));
    }

    #[test]
    fn parses_arrays_and_negatives() {
        let v = parse(r#"{"buckets":[[-52,10],[0,3]],"f":1.5,"ok":true,"n":null}"#).unwrap();
        let b = v.get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(b[0].as_arr().unwrap()[0].as_i64(), Some(-52));
        assert_eq!(v.get("f"), Some(&Json::Num(1.5)));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
    }

    #[test]
    fn escape_roundtrip() {
        let s = "a \"quoted\" \\ back\nslash\tand \u{1}control";
        let lit = escape(s);
        let v = parse(&lit).unwrap();
        assert_eq!(v.as_str(), Some(s));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nope").is_err());
    }
}
