//! Lock-free atomic counters with lazy self-registration.
//!
//! A counter is declared as a `static` and increments with one relaxed
//! `fetch_add`; the first increment registers the counter in a global
//! registry so [`counters_snapshot`] can enumerate every counter that
//! was ever touched without a central declaration list.

#[cfg(feature = "enabled")]
mod imp {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// A named monotonic event counter (see module docs).
    pub struct Counter {
        name: &'static str,
        value: AtomicU64,
        registered: AtomicBool,
    }

    fn registry() -> &'static Mutex<Vec<&'static Counter>> {
        static REGISTRY: OnceLock<Mutex<Vec<&'static Counter>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    impl Counter {
        /// Creates a counter (usable in `static` position).
        pub const fn new(name: &'static str) -> Counter {
            Counter { name, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
        }

        /// Adds one to the counter.
        #[inline]
        pub fn inc(&'static self) {
            self.add(1);
        }

        /// Adds `n` to the counter.
        #[inline]
        pub fn add(&'static self, n: u64) {
            self.value.fetch_add(n, Ordering::Relaxed);
            if !self.registered.load(Ordering::Relaxed) {
                self.register();
            }
        }

        /// Raises the counter to `v` if `v` exceeds the current value
        /// (for high-water marks like `session.queue.depth_max`; the
        /// counter stays monotonic under concurrent recorders).
        #[inline]
        pub fn record_max(&'static self, v: u64) {
            self.value.fetch_max(v, Ordering::Relaxed);
            if !self.registered.load(Ordering::Relaxed) {
                self.register();
            }
        }

        #[cold]
        fn register(&'static self) {
            // `swap` makes exactly one thread win the registration.
            if !self.registered.swap(true, Ordering::AcqRel) {
                registry().lock().expect("telemetry registry poisoned").push(self);
            }
        }

        /// Current value.
        pub fn value(&self) -> u64 {
            self.value.load(Ordering::Relaxed)
        }

        /// The counter's stable name.
        pub fn name(&self) -> &'static str {
            self.name
        }
    }

    /// Every registered counter's `(name, value)`, sorted by name.
    pub fn counters_snapshot() -> Vec<(&'static str, u64)> {
        let reg = registry().lock().expect("telemetry registry poisoned");
        let mut out: Vec<(&'static str, u64)> = reg.iter().map(|c| (c.name(), c.value())).collect();
        out.sort_unstable_by_key(|(n, _)| *n);
        out
    }

    /// Zeroes every registered counter.
    pub(crate) fn reset_counters() {
        let reg = registry().lock().expect("telemetry registry poisoned");
        for c in reg.iter() {
            c.value.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    /// A named monotonic event counter — disabled build: zero-sized, every
    /// method an empty inline function.
    pub struct Counter {
        _private: (),
    }

    impl Counter {
        /// Creates a counter (usable in `static` position).
        pub const fn new(_name: &'static str) -> Counter {
            Counter { _private: () }
        }

        /// Adds one to the counter. No-op in this build.
        #[inline(always)]
        pub fn inc(&'static self) {}

        /// Adds `n` to the counter. No-op in this build.
        #[inline(always)]
        pub fn add(&'static self, _n: u64) {}

        /// Raises the counter to `v` if it exceeds the current value.
        /// No-op in this build.
        #[inline(always)]
        pub fn record_max(&'static self, _v: u64) {}

        /// Current value (always 0 in this build).
        #[inline(always)]
        pub fn value(&self) -> u64 {
            0
        }

        /// The counter's stable name (empty in this build).
        #[inline(always)]
        pub fn name(&self) -> &'static str {
            ""
        }
    }

    /// Every registered counter's `(name, value)` — empty in this build.
    pub fn counters_snapshot() -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    pub(crate) fn reset_counters() {}
}

pub(crate) use imp::reset_counters;
pub use imp::{counters_snapshot, Counter};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    static A: Counter = Counter::new("test.counter.a");
    static B: Counter = Counter::new("test.counter.b");

    #[test]
    fn counts_and_registers() {
        A.inc();
        A.add(2);
        B.inc();
        assert!(A.value() >= 3);
        let snap = counters_snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"test.counter.a"));
        assert!(names.contains(&"test.counter.b"));
        // Sorted by name.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn record_max_is_a_high_water_mark() {
        static M: Counter = Counter::new("test.counter.max");
        M.record_max(5);
        M.record_max(3); // lower: ignored
        assert_eq!(M.value(), 5);
        M.record_max(9);
        assert_eq!(M.value(), 9);
        let names: Vec<&str> = counters_snapshot().iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"test.counter.max"));
    }

    #[test]
    fn concurrent_increments_all_land() {
        static C: Counter = Counter::new("test.counter.concurrent");
        let before = C.value();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        C.inc();
                    }
                });
            }
        });
        assert_eq!(C.value() - before, 8000);
    }
}
