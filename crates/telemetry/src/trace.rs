//! Trace records and the JSON-lines wire format.
//!
//! A trace is a sequence of newline-delimited JSON objects, one record
//! per line, discriminated by a `"type"` field:
//!
//! ```text
//! {"type":"span","name":"pass.cse","thread":0,"depth":1,"start_ns":120,"dur_ns":45}
//! {"type":"counter","name":"simd.add.packed_calls","value":4096}
//! {"type":"hist","name":"width.batch.dot","count":512,"buckets":[[10,500],[11,12]]}
//! ```
//!
//! [`Snapshot::from_jsonl`] accepts *concatenated* traces (e.g. a
//! compile trace followed by a run trace, `cat`-ed into one file):
//! duplicate counters sum, duplicate histograms sum bucket-wise, and
//! spans concatenate. That makes "one JSON-lines trace" of a whole
//! compile-then-execute session a plain file concatenation.
//!
//! This module is always compiled — reading and reporting traces works
//! in builds without the `enabled` feature; only *recording* is gated.

use crate::json::{self, Json};

/// One finished span: a named scope on one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Span name, e.g. `"pass.cse"` or `"batch.chunk"`.
    pub name: String,
    /// Dense per-process thread id (0 = first thread that opened a span).
    pub thread: u64,
    /// Nesting depth on that thread when the span opened (0 = top level).
    pub depth: u32,
    /// Start offset in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (monotonic clock).
    pub dur_ns: u64,
}

/// One histogram: sample count plus nonzero `(bucket_index, count)`
/// pairs. Bucket indices follow [`crate::hist`]'s layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistRec {
    /// Histogram name, e.g. `"width.batch.dot"`.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Nonzero buckets as `(bucket_index, count)`, ascending by index.
    pub buckets: Vec<(i32, u64)>,
}

/// Everything one trace holds: spans, counters and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Finished spans in completion order.
    pub spans: Vec<SpanRec>,
    /// `(name, value)` counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub hists: Vec<HistRec>,
}

impl Snapshot {
    /// Serializes the snapshot as JSON lines (spans, then counters, then
    /// histograms; one record per line, trailing newline included when
    /// nonempty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&format!(
                "{{\"type\":\"span\",\"name\":{},\"thread\":{},\"depth\":{},\"start_ns\":{},\"dur_ns\":{}}}\n",
                json::escape(&s.name),
                s.thread,
                s.depth,
                s.start_ns,
                s.dur_ns
            ));
        }
        for (name, value) in &self.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":{},\"value\":{}}}\n",
                json::escape(name),
                value
            ));
        }
        for h in &self.hists {
            let buckets: Vec<String> =
                h.buckets.iter().map(|(i, v)| format!("[{i},{v}]")).collect();
            out.push_str(&format!(
                "{{\"type\":\"hist\",\"name\":{},\"count\":{},\"buckets\":[{}]}}\n",
                json::escape(&h.name),
                h.count,
                buckets.join(",")
            ));
        }
        out
    }

    /// Parses a JSON-lines trace, merging repeated records: counters with
    /// the same name sum, histograms sum bucket-wise, spans concatenate
    /// in input order. Blank lines and `#` comment lines are skipped.
    ///
    /// Errors name the offending line (1-based).
    pub fn from_jsonl(src: &str) -> Result<Snapshot, String> {
        let mut snap = Snapshot::default();
        for (lineno, line) in src.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let bad = |what: &str| format!("line {}: bad or missing {what}", lineno + 1);
            let ty = v.get("type").and_then(Json::as_str).ok_or_else(|| bad("type"))?;
            match ty {
                "span" => snap.spans.push(SpanRec {
                    name: v
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("name"))?
                        .to_string(),
                    thread: v.get("thread").and_then(Json::as_u64).ok_or_else(|| bad("thread"))?,
                    depth: v.get("depth").and_then(Json::as_u64).ok_or_else(|| bad("depth"))?
                        as u32,
                    start_ns: v
                        .get("start_ns")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("start_ns"))?,
                    dur_ns: v.get("dur_ns").and_then(Json::as_u64).ok_or_else(|| bad("dur_ns"))?,
                }),
                "counter" => {
                    let name = v.get("name").and_then(Json::as_str).ok_or_else(|| bad("name"))?;
                    let value =
                        v.get("value").and_then(Json::as_u64).ok_or_else(|| bad("value"))?;
                    match snap.counters.iter_mut().find(|(n, _)| n == name) {
                        Some((_, total)) => *total += value,
                        None => snap.counters.push((name.to_string(), value)),
                    }
                }
                "hist" => {
                    let name = v.get("name").and_then(Json::as_str).ok_or_else(|| bad("name"))?;
                    let count =
                        v.get("count").and_then(Json::as_u64).ok_or_else(|| bad("count"))?;
                    let mut buckets = Vec::new();
                    for pair in
                        v.get("buckets").and_then(Json::as_arr).ok_or_else(|| bad("buckets"))?
                    {
                        let pair = pair.as_arr().ok_or_else(|| bad("bucket pair"))?;
                        let (idx, n) = match pair {
                            [i, n] => (
                                i.as_i64().ok_or_else(|| bad("bucket index"))? as i32,
                                n.as_u64().ok_or_else(|| bad("bucket count"))?,
                            ),
                            _ => return Err(bad("bucket pair")),
                        };
                        buckets.push((idx, n));
                    }
                    match snap.hists.iter_mut().find(|h| h.name == name) {
                        Some(h) => {
                            h.count += count;
                            for (idx, n) in buckets {
                                match h.buckets.iter_mut().find(|(i, _)| *i == idx) {
                                    Some((_, total)) => *total += n,
                                    None => h.buckets.push((idx, n)),
                                }
                            }
                            h.buckets.sort_unstable_by_key(|(i, _)| *i);
                        }
                        None => snap.hists.push(HistRec { name: name.to_string(), count, buckets }),
                    }
                }
                other => return Err(format!("line {}: unknown record type '{other}'", lineno + 1)),
            }
        }
        snap.counters.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        snap.hists.sort_unstable_by(|a, b| a.name.cmp(&b.name));
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            spans: vec![
                SpanRec {
                    name: "compile.lower".into(),
                    thread: 0,
                    depth: 0,
                    start_ns: 10,
                    dur_ns: 100,
                },
                SpanRec { name: "pass.cse".into(), thread: 0, depth: 1, start_ns: 20, dur_ns: 30 },
            ],
            counters: vec![
                ("simd.add.packed_calls".into(), 4096),
                ("simd.dispatch.sse2".into(), 7),
            ],
            hists: vec![HistRec {
                name: "width.batch.dot".into(),
                count: 512,
                buckets: vec![(10, 500), (63, 12)],
            }],
        }
    }

    #[test]
    fn jsonl_roundtrip() {
        let snap = sample();
        let text = snap.to_jsonl();
        assert_eq!(text.lines().count(), 5);
        let parsed = Snapshot::from_jsonl(&text).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn concatenated_traces_merge() {
        let snap = sample();
        let both = format!("{}\n# a comment\n{}", snap.to_jsonl(), snap.to_jsonl());
        let merged = Snapshot::from_jsonl(&both).unwrap();
        assert_eq!(merged.spans.len(), 4);
        let add = merged.counters.iter().find(|(n, _)| n == "simd.add.packed_calls").unwrap();
        assert_eq!(add.1, 8192);
        let h = &merged.hists[0];
        assert_eq!(h.count, 1024);
        assert_eq!(h.buckets, vec![(10, 1000), (63, 24)]);
    }

    #[test]
    fn errors_name_the_line() {
        let err = Snapshot::from_jsonl("{\"type\":\"span\"}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err =
            Snapshot::from_jsonl("{\"type\":\"counter\",\"name\":\"x\",\"value\":1}\nnot json\n")
                .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = Snapshot::from_jsonl("{\"type\":\"mystery\"}\n").unwrap_err();
        assert!(err.contains("unknown record type"), "{err}");
    }

    #[test]
    fn empty_trace_is_empty_snapshot() {
        assert_eq!(Snapshot::from_jsonl("").unwrap(), Snapshot::default());
        assert_eq!(Snapshot::default().to_jsonl(), "");
    }
}
