//! Trace records and the JSON-lines wire format.
//!
//! A trace is a sequence of newline-delimited JSON objects, one record
//! per line, discriminated by a `"type"` field:
//!
//! ```text
//! {"type":"span","name":"pass.cse","thread":0,"depth":1,"start_ns":120,"dur_ns":45}
//! {"type":"counter","name":"simd.add.packed_calls","value":4096}
//! {"type":"hist","name":"width.batch.dot","count":512,"buckets":[[10,500],[11,12]]}
//! {"type":"profile","unit":"henon_map","site":3,"line":7,"col":14,"op":"mul",
//!  "count":640,"total_ns":5200,"in_w":1.2e-13,"out_w":3.4e-13,"amp":[[33,640]]}
//! ```
//!
//! [`Snapshot::from_jsonl`] accepts *concatenated* traces (e.g. a
//! compile trace followed by a run trace, `cat`-ed into one file):
//! duplicate counters sum, duplicate histograms sum bucket-wise,
//! duplicate profile sites (same unit, site, line, col and op) sum
//! field-wise, and spans concatenate. That makes "one JSON-lines trace"
//! of a whole compile-then-execute session a plain file concatenation.
//!
//! This module is always compiled — reading and reporting traces works
//! in builds without the `enabled` feature; only *recording* is gated.

use crate::json::{self, Json};

/// One finished span: a named scope on one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Span name, e.g. `"pass.cse"` or `"batch.chunk"`.
    pub name: String,
    /// Dense per-process thread id (0 = first thread that opened a span).
    pub thread: u64,
    /// Nesting depth on that thread when the span opened (0 = top level).
    pub depth: u32,
    /// Start offset in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (monotonic clock).
    pub dur_ns: u64,
}

/// One histogram: sample count plus nonzero `(bucket_index, count)`
/// pairs. Bucket indices follow [`crate::hist`]'s layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistRec {
    /// Histogram name, e.g. `"width.batch.dot"`.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Nonzero buckets as `(bucket_index, count)`, ascending by index.
    pub buckets: Vec<(i32, u64)>,
}

/// One instruction-site profile row: execution count, wall-clock time
/// and width-amplification statistics attributed to a source location
/// (see [`crate::profile`] for the amplification bucket layout).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRec {
    /// Profiled unit: a compiled program or interpreted function name.
    pub unit: String,
    /// Instruction-site index within the unit (bytecode insn index).
    pub site: u32,
    /// 1-based source line the site originated from (0 = unknown).
    pub line: u32,
    /// 1-based source column (0 = unknown).
    pub col: u32,
    /// Operation mnemonic at the site (e.g. `"mul"`, `"sqrt"`).
    pub op: String,
    /// Element evaluations recorded at the site.
    pub count: u64,
    /// Total wall-clock nanoseconds attributed to the site.
    pub total_ns: u64,
    /// Sum of the widest-input relative widths over all samples.
    pub in_width_sum: f64,
    /// Sum of output relative widths over all samples.
    pub out_width_sum: f64,
    /// Nonzero width-amplification buckets as `(bucket_index, count)`,
    /// ascending; bucket [`crate::profile::AMP_ZERO`] = unchanged.
    pub amp: Vec<(i32, u64)>,
}

impl ProfileRec {
    /// Mean `log2` width amplification over the bucketed samples
    /// (positive = this site widens enclosures), or `None` with no
    /// samples. The open-ended end buckets count at their clamp value.
    pub fn mean_amp_log2(&self) -> Option<f64> {
        let total: u64 = self.amp.iter().map(|(_, v)| *v).sum();
        if total == 0 {
            return None;
        }
        let sum: f64 = self
            .amp
            .iter()
            .map(|(i, v)| crate::profile::amp_bucket_log2(*i as usize) as f64 * *v as f64)
            .sum();
        Some(sum / total as f64)
    }
}

/// Everything one trace holds: spans, counters, histograms and
/// instruction-site profiles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Finished spans in completion order.
    pub spans: Vec<SpanRec>,
    /// `(name, value)` counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub hists: Vec<HistRec>,
    /// Instruction-site profiles, sorted by unit then site.
    pub profiles: Vec<ProfileRec>,
}

impl Snapshot {
    /// Serializes the snapshot as JSON lines (spans, then counters, then
    /// histograms; one record per line, trailing newline included when
    /// nonempty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&format!(
                "{{\"type\":\"span\",\"name\":{},\"thread\":{},\"depth\":{},\"start_ns\":{},\"dur_ns\":{}}}\n",
                json::escape(&s.name),
                s.thread,
                s.depth,
                s.start_ns,
                s.dur_ns
            ));
        }
        for (name, value) in &self.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":{},\"value\":{}}}\n",
                json::escape(name),
                value
            ));
        }
        for h in &self.hists {
            let buckets: Vec<String> =
                h.buckets.iter().map(|(i, v)| format!("[{i},{v}]")).collect();
            out.push_str(&format!(
                "{{\"type\":\"hist\",\"name\":{},\"count\":{},\"buckets\":[{}]}}\n",
                json::escape(&h.name),
                h.count,
                buckets.join(",")
            ));
        }
        for p in &self.profiles {
            let amp: Vec<String> = p.amp.iter().map(|(i, v)| format!("[{i},{v}]")).collect();
            out.push_str(&format!(
                "{{\"type\":\"profile\",\"unit\":{},\"site\":{},\"line\":{},\"col\":{},\
                 \"op\":{},\"count\":{},\"total_ns\":{},\"in_w\":{:e},\"out_w\":{:e},\
                 \"amp\":[{}]}}\n",
                json::escape(&p.unit),
                p.site,
                p.line,
                p.col,
                json::escape(&p.op),
                p.count,
                p.total_ns,
                p.in_width_sum,
                p.out_width_sum,
                amp.join(",")
            ));
        }
        out
    }

    /// Parses a JSON-lines trace, merging repeated records: counters with
    /// the same name sum, histograms sum bucket-wise, spans concatenate
    /// in input order. Blank lines and `#` comment lines are skipped.
    ///
    /// Errors name the offending line (1-based).
    pub fn from_jsonl(src: &str) -> Result<Snapshot, String> {
        let mut snap = Snapshot::default();
        for (lineno, line) in src.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let bad = |what: &str| format!("line {}: bad or missing {what}", lineno + 1);
            let ty = v.get("type").and_then(Json::as_str).ok_or_else(|| bad("type"))?;
            match ty {
                "span" => snap.spans.push(SpanRec {
                    name: v
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("name"))?
                        .to_string(),
                    thread: v.get("thread").and_then(Json::as_u64).ok_or_else(|| bad("thread"))?,
                    depth: v.get("depth").and_then(Json::as_u64).ok_or_else(|| bad("depth"))?
                        as u32,
                    start_ns: v
                        .get("start_ns")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("start_ns"))?,
                    dur_ns: v.get("dur_ns").and_then(Json::as_u64).ok_or_else(|| bad("dur_ns"))?,
                }),
                "counter" => {
                    let name = v.get("name").and_then(Json::as_str).ok_or_else(|| bad("name"))?;
                    let value =
                        v.get("value").and_then(Json::as_u64).ok_or_else(|| bad("value"))?;
                    match snap.counters.iter_mut().find(|(n, _)| n == name) {
                        Some((_, total)) => *total += value,
                        None => snap.counters.push((name.to_string(), value)),
                    }
                }
                "hist" => {
                    let name = v.get("name").and_then(Json::as_str).ok_or_else(|| bad("name"))?;
                    let count =
                        v.get("count").and_then(Json::as_u64).ok_or_else(|| bad("count"))?;
                    let mut buckets = Vec::new();
                    for pair in
                        v.get("buckets").and_then(Json::as_arr).ok_or_else(|| bad("buckets"))?
                    {
                        let pair = pair.as_arr().ok_or_else(|| bad("bucket pair"))?;
                        let (idx, n) = match pair {
                            [i, n] => (
                                i.as_i64().ok_or_else(|| bad("bucket index"))? as i32,
                                n.as_u64().ok_or_else(|| bad("bucket count"))?,
                            ),
                            _ => return Err(bad("bucket pair")),
                        };
                        buckets.push((idx, n));
                    }
                    match snap.hists.iter_mut().find(|h| h.name == name) {
                        Some(h) => {
                            h.count += count;
                            for (idx, n) in buckets {
                                match h.buckets.iter_mut().find(|(i, _)| *i == idx) {
                                    Some((_, total)) => *total += n,
                                    None => h.buckets.push((idx, n)),
                                }
                            }
                            h.buckets.sort_unstable_by_key(|(i, _)| *i);
                        }
                        None => snap.hists.push(HistRec { name: name.to_string(), count, buckets }),
                    }
                }
                "profile" => {
                    let str_field = |k: &str| -> Result<String, String> {
                        Ok(v.get(k).and_then(Json::as_str).ok_or_else(|| bad(k))?.to_string())
                    };
                    let u64_field = |k: &str| -> Result<u64, String> {
                        v.get(k).and_then(Json::as_u64).ok_or_else(|| bad(k))
                    };
                    let f64_field = |k: &str| -> Result<f64, String> {
                        v.get(k).and_then(Json::as_f64).ok_or_else(|| bad(k))
                    };
                    let mut amp = Vec::new();
                    for pair in v.get("amp").and_then(Json::as_arr).ok_or_else(|| bad("amp"))? {
                        let pair = pair.as_arr().ok_or_else(|| bad("amp pair"))?;
                        match pair {
                            [i, n] => amp.push((
                                i.as_i64().ok_or_else(|| bad("amp index"))? as i32,
                                n.as_u64().ok_or_else(|| bad("amp count"))?,
                            )),
                            _ => return Err(bad("amp pair")),
                        }
                    }
                    let rec = ProfileRec {
                        unit: str_field("unit")?,
                        site: u64_field("site")? as u32,
                        line: u64_field("line")? as u32,
                        col: u64_field("col")? as u32,
                        op: str_field("op")?,
                        count: u64_field("count")?,
                        total_ns: u64_field("total_ns")?,
                        in_width_sum: f64_field("in_w")?,
                        out_width_sum: f64_field("out_w")?,
                        amp,
                    };
                    // Same site recorded across traces: sum field-wise.
                    match snap.profiles.iter_mut().find(|p| {
                        p.unit == rec.unit
                            && p.site == rec.site
                            && p.line == rec.line
                            && p.col == rec.col
                            && p.op == rec.op
                    }) {
                        Some(p) => {
                            p.count += rec.count;
                            p.total_ns += rec.total_ns;
                            p.in_width_sum += rec.in_width_sum;
                            p.out_width_sum += rec.out_width_sum;
                            for (idx, n) in rec.amp {
                                match p.amp.iter_mut().find(|(i, _)| *i == idx) {
                                    Some((_, total)) => *total += n,
                                    None => p.amp.push((idx, n)),
                                }
                            }
                            p.amp.sort_unstable_by_key(|(i, _)| *i);
                        }
                        None => snap.profiles.push(rec),
                    }
                }
                other => return Err(format!("line {}: unknown record type '{other}'", lineno + 1)),
            }
        }
        snap.counters.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        snap.hists.sort_unstable_by(|a, b| a.name.cmp(&b.name));
        snap.profiles.sort_unstable_by(|a, b| a.unit.cmp(&b.unit).then(a.site.cmp(&b.site)));
        Ok(snap)
    }

    /// Renders the snapshot as a flat `/metrics`-style text exposition
    /// (one `name{labels} value` line per statistic) — the format a
    /// future `igen-serve` endpoint will serve verbatim. Spans aggregate
    /// by name; histograms summarize to sample/exact/unbounded counts;
    /// profile sites expose count, total time and mean amplification.
    pub fn to_metrics_text(&self) -> String {
        let mut out = String::new();
        // Spans: total duration and count per name, in first-seen order.
        let mut groups: Vec<(&str, u64, u64)> = Vec::new();
        for s in &self.spans {
            match groups.iter_mut().find(|(n, ..)| *n == s.name) {
                Some((_, count, total)) => {
                    *count += 1;
                    *total += s.dur_ns;
                }
                None => groups.push((&s.name, 1, s.dur_ns)),
            }
        }
        for (name, count, total) in &groups {
            let name = json::escape(name);
            out.push_str(&format!("igen_span_count{{name={name}}} {count}\n"));
            out.push_str(&format!("igen_span_total_ns{{name={name}}} {total}\n"));
        }
        for (name, value) in &self.counters {
            out.push_str(&format!("igen_counter{{name={}}} {value}\n", json::escape(name)));
        }
        for h in &self.hists {
            let name = json::escape(&h.name);
            let at = |idx: i32| h.buckets.iter().find(|(i, _)| *i == idx).map_or(0, |(_, v)| *v);
            out.push_str(&format!("igen_width_count{{name={name}}} {}\n", h.count));
            out.push_str(&format!("igen_width_exact{{name={name}}} {}\n", at(0)));
            out.push_str(&format!(
                "igen_width_unbounded{{name={name}}} {}\n",
                at(crate::hist::BUCKETS as i32 - 1)
            ));
        }
        for p in &self.profiles {
            let labels = format!(
                "unit={},site=\"{}\",line=\"{}\",col=\"{}\",op={}",
                json::escape(&p.unit),
                p.site,
                p.line,
                p.col,
                json::escape(&p.op)
            );
            out.push_str(&format!("igen_profile_count{{{labels}}} {}\n", p.count));
            out.push_str(&format!("igen_profile_total_ns{{{labels}}} {}\n", p.total_ns));
            if let Some(amp) = p.mean_amp_log2() {
                out.push_str(&format!("igen_profile_mean_amp_log2{{{labels}}} {amp:.3}\n"));
            }
            if p.count > 0 {
                out.push_str(&format!(
                    "igen_profile_mean_out_rel_width{{{labels}}} {:e}\n",
                    p.out_width_sum / p.count as f64
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            spans: vec![
                SpanRec {
                    name: "compile.lower".into(),
                    thread: 0,
                    depth: 0,
                    start_ns: 10,
                    dur_ns: 100,
                },
                SpanRec { name: "pass.cse".into(), thread: 0, depth: 1, start_ns: 20, dur_ns: 30 },
            ],
            counters: vec![
                ("simd.add.packed_calls".into(), 4096),
                ("simd.dispatch.sse2".into(), 7),
            ],
            hists: vec![HistRec {
                name: "width.batch.dot".into(),
                count: 512,
                buckets: vec![(10, 500), (63, 12)],
            }],
            profiles: vec![ProfileRec {
                unit: "henon_map".into(),
                site: 3,
                line: 7,
                col: 14,
                op: "mul".into(),
                count: 640,
                total_ns: 5200,
                in_width_sum: 1.25e-13,
                out_width_sum: 3.5e-13,
                amp: vec![(33, 600), (63, 40)],
            }],
        }
    }

    #[test]
    fn jsonl_roundtrip() {
        let snap = sample();
        let text = snap.to_jsonl();
        assert_eq!(text.lines().count(), 6);
        let parsed = Snapshot::from_jsonl(&text).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn concatenated_traces_merge() {
        let snap = sample();
        let both = format!("{}\n# a comment\n{}", snap.to_jsonl(), snap.to_jsonl());
        let merged = Snapshot::from_jsonl(&both).unwrap();
        assert_eq!(merged.spans.len(), 4);
        let add = merged.counters.iter().find(|(n, _)| n == "simd.add.packed_calls").unwrap();
        assert_eq!(add.1, 8192);
        let h = &merged.hists[0];
        assert_eq!(h.count, 1024);
        assert_eq!(h.buckets, vec![(10, 1000), (63, 24)]);
        // Profile sites with identical identity merge field-wise.
        assert_eq!(merged.profiles.len(), 1);
        let p = &merged.profiles[0];
        assert_eq!(p.count, 1280);
        assert_eq!(p.total_ns, 10400);
        assert!((p.in_width_sum - 2.5e-13).abs() < 1e-25);
        assert_eq!(p.amp, vec![(33, 1200), (63, 80)]);
    }

    #[test]
    fn errors_name_the_line() {
        let err = Snapshot::from_jsonl("{\"type\":\"span\"}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err =
            Snapshot::from_jsonl("{\"type\":\"counter\",\"name\":\"x\",\"value\":1}\nnot json\n")
                .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = Snapshot::from_jsonl("{\"type\":\"mystery\"}\n").unwrap_err();
        assert!(err.contains("unknown record type"), "{err}");
    }

    #[test]
    fn truncated_final_line_is_a_one_line_error() {
        // A crashed writer leaves a half-record at the end of the file:
        // the error names that line and nothing panics.
        let snap = sample();
        let mut text = snap.to_jsonl();
        let full_lines = text.lines().count();
        text.truncate(text.len() - 20);
        let err = Snapshot::from_jsonl(&text).unwrap_err();
        assert!(err.starts_with(&format!("line {full_lines}:")), "{err}");
        assert_eq!(err.lines().count(), 1, "one-line error: {err}");
    }

    #[test]
    fn malformed_profile_records_error_not_panic() {
        // Missing required field.
        let err = Snapshot::from_jsonl("{\"type\":\"profile\",\"unit\":\"f\"}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        // Malformed amp pair.
        let err = Snapshot::from_jsonl(
            "{\"type\":\"profile\",\"unit\":\"f\",\"site\":0,\"line\":1,\"col\":1,\
             \"op\":\"add\",\"count\":1,\"total_ns\":2,\"in_w\":0e0,\"out_w\":0e0,\
             \"amp\":[[1]]}\n",
        )
        .unwrap_err();
        assert!(err.contains("amp pair"), "{err}");
    }

    #[test]
    fn duplicate_counter_keys_merge_by_summing() {
        // The documented behavior for repeated keys: counters sum.
        let snap = Snapshot::from_jsonl(
            "{\"type\":\"counter\",\"name\":\"x\",\"value\":2}\n\
             {\"type\":\"counter\",\"name\":\"x\",\"value\":40}\n",
        )
        .unwrap();
        assert_eq!(snap.counters, vec![("x".to_string(), 42)]);
    }

    #[test]
    fn empty_trace_is_empty_snapshot() {
        assert_eq!(Snapshot::from_jsonl("").unwrap(), Snapshot::default());
        assert_eq!(Snapshot::default().to_jsonl(), "");
    }

    #[test]
    fn metrics_text_exposes_every_kind() {
        let m = sample().to_metrics_text();
        assert!(m.contains("igen_span_count{name=\"compile.lower\"} 1"), "{m}");
        assert!(m.contains("igen_counter{name=\"simd.add.packed_calls\"} 4096"), "{m}");
        assert!(m.contains("igen_width_count{name=\"width.batch.dot\"} 512"), "{m}");
        assert!(m.contains("igen_width_unbounded{name=\"width.batch.dot\"} 12"), "{m}");
        assert!(m.contains("igen_profile_count{unit=\"henon_map\",site=\"3\",line=\"7\""), "{m}");
        assert!(m.contains("igen_profile_total_ns"), "{m}");
        assert!(m.contains("igen_profile_mean_amp_log2"), "{m}");
        // Every line is `name{labels} value`.
        for line in m.lines() {
            assert!(line.contains('{') && line.contains("} "), "bad metrics line: {line}");
        }
    }

    #[test]
    fn mean_amp_weights_buckets() {
        let p = sample().profiles.remove(0);
        // (600*1 + 40*31) / 640 = 2.875
        let amp = p.mean_amp_log2().unwrap();
        assert!((amp - 2.875).abs() < 1e-12, "{amp}");
    }
}
