//! Human-readable rendering of a [`Snapshot`] (`igen-cli report`).
//!
//! The report derives the headline soundness diagnostics from raw
//! counters — notably the per-op SIMD *guard-failure rate*: packed
//! kernels process 4 lanes per call and fall back to a `#[cold]` scalar
//! patch for each lane whose operands violate the backend's exactness
//! guards, so `lanes_patched / (4 * packed_calls)` is the fraction of
//! lanes that left the fast path.
//!
//! Always compiled: reporting works on traces read from disk even in
//! builds without the `enabled` recording feature.

use crate::hist::{bucket_log2, BUCKETS};
use crate::trace::{HistRec, Snapshot};

/// Renders `snap` as the human report: span timings grouped by name,
/// derived SIMD guard-failure rates, backend-dispatch outcomes,
/// per-rule peephole rewrite totals, interval width summaries,
/// instruction-site profiles, and the raw counter table.
pub fn render_report(snap: &Snapshot) -> String {
    let mut out = String::new();
    render_spans(&mut out, snap);
    render_simd(&mut out, snap);
    render_peephole(&mut out, snap);
    render_session(&mut out, snap);
    render_counters(&mut out, snap);
    render_hists(&mut out, snap);
    render_profiles(&mut out, snap);
    if out.is_empty() {
        out.push_str("trace is empty (no spans, counters, histograms or profiles recorded)\n");
    }
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 100_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 100_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn render_spans(out: &mut String, snap: &Snapshot) {
    if snap.spans.is_empty() {
        return;
    }
    // Group by name, ordered by earliest start so the compile phases
    // read in pipeline order.
    let mut groups: Vec<(&str, u64, u64, u64)> = Vec::new(); // name, count, total_ns, first_start
    for s in &snap.spans {
        match groups.iter_mut().find(|(n, ..)| *n == s.name) {
            Some((_, count, total, first)) => {
                *count += 1;
                *total += s.dur_ns;
                *first = (*first).min(s.start_ns);
            }
            None => groups.push((&s.name, 1, s.dur_ns, s.start_ns)),
        }
    }
    groups.sort_by_key(|&(_, _, _, first)| first);
    let name_w = groups.iter().map(|(n, ..)| n.len()).max().unwrap_or(0).max(4);
    out.push_str(&format!("spans ({} recorded)\n", snap.spans.len()));
    out.push_str(&format!(
        "  {:<name_w$}  {:>7}  {:>10}  {:>10}\n",
        "name", "count", "total", "mean"
    ));
    for (name, count, total, _) in &groups {
        out.push_str(&format!(
            "  {:<name_w$}  {:>7}  {:>10}  {:>10}\n",
            name,
            count,
            fmt_ns(*total),
            fmt_ns(total / count)
        ));
    }
    out.push('\n');
}

fn counter(snap: &Snapshot, name: &str) -> Option<u64> {
    snap.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
}

fn render_simd(out: &mut String, snap: &Snapshot) {
    // Guard-failure rate per packed op.
    let mut rows: Vec<(&str, u64, u64)> = Vec::new();
    for op in ["add", "mul", "div", "max", "sqrt", "sqr", "abs", "cmp"] {
        let packed = counter(snap, &format!("simd.{op}.packed_calls"));
        let patched = counter(snap, &format!("simd.{op}.lanes_patched"));
        if let Some(packed) = packed {
            rows.push((op, packed, patched.unwrap_or(0)));
        }
    }
    if !rows.is_empty() {
        out.push_str("simd guard failures (lanes patched / 4-wide packed calls)\n");
        for (op, packed, patched) in &rows {
            let lanes = packed * 4;
            let rate = if lanes > 0 { *patched as f64 / lanes as f64 * 100.0 } else { 0.0 };
            out.push_str(&format!(
                "  {:<4} {:>12} calls  {:>12} lanes patched  ({rate:.4}%)\n",
                op, packed, patched
            ));
        }
        out.push('\n');
    }
    let dispatch: Vec<&(String, u64)> =
        snap.counters.iter().filter(|(n, _)| n.starts_with("simd.dispatch.")).collect();
    if !dispatch.is_empty() {
        let total: u64 = dispatch.iter().map(|(_, v)| *v).sum();
        out.push_str("backend dispatch\n");
        for (name, v) in &dispatch {
            let backend = name.trim_start_matches("simd.dispatch.");
            let pct = if total > 0 { *v as f64 / total as f64 * 100.0 } else { 0.0 };
            out.push_str(&format!("  {backend:<10} {v:>12}  ({pct:.1}%)\n"));
        }
        out.push('\n');
    }
}

fn render_peephole(out: &mut String, snap: &Snapshot) {
    // One line per rewrite rule, so peephole behavior is auditable per
    // program (the raw counters repeat below; this is the readable view).
    let rules = [
        ("dedup", "constant pool entries deduplicated"),
        ("neg_fold", "add/sub-of-neg folded"),
        ("sqr", "mul(x,x) strengthened to sqr"),
        ("dce", "dead instructions removed"),
        ("fuse", "mul+acc fused to muladd/mulsub"),
        ("renumber", "registers reclaimed by renumbering"),
    ];
    let rows: Vec<(&str, &str, u64)> = rules
        .iter()
        .filter_map(|(key, what)| {
            counter(snap, &format!("vm.peephole.{key}")).map(|v| (*key, *what, v))
        })
        .collect();
    if rows.is_empty() {
        return;
    }
    let total: u64 = rows.iter().map(|(.., v)| *v).sum();
    out.push_str(&format!("peephole rewrites ({total} total)\n"));
    for (key, what, v) in &rows {
        out.push_str(&format!("  {key:<9} {v:>10}  {what}\n"));
    }
    out.push('\n');
}

fn render_session(out: &mut String, snap: &Snapshot) {
    // Session-layer health: compile-cache effectiveness and the worker
    // queue's high-water mark (raw counters repeat below).
    let hits = counter(snap, "session.cache.hits");
    let misses = counter(snap, "session.cache.misses");
    if hits.is_none() && misses.is_none() {
        return;
    }
    let (hits, misses) = (hits.unwrap_or(0), misses.unwrap_or(0));
    let evictions = counter(snap, "session.cache.evictions").unwrap_or(0);
    let lookups = hits + misses;
    let rate = if lookups > 0 { hits as f64 / lookups as f64 * 100.0 } else { 0.0 };
    out.push_str("session\n");
    out.push_str(&format!(
        "  compile cache  {hits} hits / {lookups} lookups  ({rate:.1}%)  {evictions} evicted\n"
    ));
    if let Some(depth) = counter(snap, "session.queue.depth_max") {
        out.push_str(&format!("  queue depth    {depth} max\n"));
    }
    out.push('\n');
}

fn render_counters(out: &mut String, snap: &Snapshot) {
    if snap.counters.is_empty() {
        return;
    }
    let name_w = snap.counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0).max(4);
    out.push_str("counters\n");
    for (name, value) in &snap.counters {
        out.push_str(&format!("  {name:<name_w$}  {value:>12}\n"));
    }
    out.push('\n');
}

fn hist_summary(h: &HistRec) -> String {
    let exact = h.buckets.iter().find(|(i, _)| *i == 0).map_or(0, |(_, v)| *v);
    let unbounded = h.buckets.iter().find(|(i, _)| *i == BUCKETS as i32 - 1).map_or(0, |(_, v)| *v);
    let pct = |n: u64| if h.count > 0 { n as f64 / h.count as f64 * 100.0 } else { 0.0 };
    // Median bucket over the finite, nonzero-width samples.
    let finite: u64 =
        h.buckets.iter().filter(|(i, _)| *i > 0 && *i < BUCKETS as i32 - 1).map(|(_, v)| *v).sum();
    let median = if finite == 0 {
        "-".to_string()
    } else {
        let mut seen = 0u64;
        let mut med = 0usize;
        for (i, v) in &h.buckets {
            if *i <= 0 || *i >= BUCKETS as i32 - 1 {
                continue;
            }
            seen += v;
            if seen * 2 >= finite {
                med = *i as usize;
                break;
            }
        }
        format!("2^{}", bucket_log2(med))
    };
    format!(
        "{:>10} samples  exact {:.1}%  median rel width {}  unbounded {:.2}%",
        h.count,
        pct(exact),
        median,
        pct(unbounded)
    )
}

fn render_hists(out: &mut String, snap: &Snapshot) {
    if snap.hists.is_empty() {
        return;
    }
    let name_w = snap.hists.iter().map(|h| h.name.len()).max().unwrap_or(0).max(4);
    out.push_str("interval width\n");
    for h in &snap.hists {
        out.push_str(&format!("  {:<name_w$}  {}\n", h.name, hist_summary(h)));
    }
    out.push('\n');
}

fn render_profiles(out: &mut String, snap: &Snapshot) {
    if snap.profiles.is_empty() {
        return;
    }
    let total_ns: u64 = snap.profiles.iter().map(|p| p.total_ns).sum();
    let mut by_time: Vec<&crate::trace::ProfileRec> = snap.profiles.iter().collect();
    by_time.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.site.cmp(&b.site)));
    out.push_str(&format!(
        "instruction-site profile ({} sites, {} total)\n",
        snap.profiles.len(),
        fmt_ns(total_ns)
    ));
    out.push_str(&format!(
        "  {:<20} {:>4}  {:<6} {:>9} {:>10} {:>7} {:>9}  {}\n",
        "unit", "site", "op", "count", "time", "time%", "amp", "source"
    ));
    for p in by_time.iter().take(16) {
        let share = if total_ns > 0 { p.total_ns as f64 / total_ns as f64 * 100.0 } else { 0.0 };
        let amp = p.mean_amp_log2().map_or("-".to_string(), |a| format!("2^{a:+.1}"));
        let src = if p.line > 0 { format!("line {}:{}", p.line, p.col) } else { "?".to_string() };
        out.push_str(&format!(
            "  {:<20} {:>4}  {:<6} {:>9} {:>10} {:>6.1}% {:>9}  {}\n",
            p.unit,
            p.site,
            p.op,
            p.count,
            fmt_ns(p.total_ns),
            share,
            amp,
            src
        ));
    }
    if by_time.len() > 16 {
        out.push_str(&format!("  ... {} more sites\n", by_time.len() - 16));
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanRec;

    #[test]
    fn report_covers_all_sections() {
        let snap = Snapshot {
            spans: vec![
                SpanRec {
                    name: "compile.lower".into(),
                    thread: 0,
                    depth: 0,
                    start_ns: 0,
                    dur_ns: 1000,
                },
                SpanRec {
                    name: "pass.cse".into(),
                    thread: 0,
                    depth: 1,
                    start_ns: 100,
                    dur_ns: 400,
                },
                SpanRec {
                    name: "pass.cse".into(),
                    thread: 0,
                    depth: 1,
                    start_ns: 600,
                    dur_ns: 200,
                },
            ],
            counters: vec![
                ("simd.add.lanes_patched".into(), 8),
                ("simd.add.packed_calls".into(), 1000),
                ("simd.sqrt.lanes_patched".into(), 2),
                ("simd.sqrt.packed_calls".into(), 100),
                ("simd.cmp.packed_calls".into(), 50),
                ("simd.dispatch.avx2_fma".into(), 3),
                ("simd.dispatch.sse2".into(), 1),
                ("vm.peephole.dedup".into(), 4),
                ("vm.peephole.neg_fold".into(), 2),
                ("vm.peephole.dce".into(), 5),
            ],
            hists: vec![HistRec {
                name: "width.batch.dot".into(),
                count: 100,
                buckets: vec![(0, 10), (10, 80), (63, 10)],
            }],
            profiles: vec![crate::trace::ProfileRec {
                unit: "henon_map".into(),
                site: 3,
                line: 7,
                col: 14,
                op: "mul".into(),
                count: 640,
                total_ns: 5200,
                in_width_sum: 1.2e-13,
                out_width_sum: 3.4e-13,
                amp: vec![(33, 640)],
            }],
        };
        let r = render_report(&snap);
        assert!(r.contains("pass.cse"), "{r}");
        assert!(r.contains("compile.lower"), "{r}");
        // 8 / 4000 lanes = 0.2%.
        assert!(r.contains("(0.2000%)"), "{r}");
        // 2 / 400 lanes = 0.5%; cmp shows up with zero patched lanes.
        assert!(r.contains("(0.5000%)"), "{r}");
        assert!(r.contains("sqrt"), "{r}");
        assert!(r.contains("cmp"), "{r}");
        assert!(r.contains("avx2_fma"), "{r}");
        assert!(r.contains("(75.0%)"), "{r}");
        assert!(r.contains("exact 10.0%"), "{r}");
        assert!(r.contains("median rel width 2^-52"), "{r}");
        assert!(r.contains("unbounded 10.00%"), "{r}");
        // Per-rule peephole section (11 total across the three rules).
        assert!(r.contains("peephole rewrites (11 total)"), "{r}");
        assert!(r.contains("neg_fold"), "{r}");
        assert!(r.contains("dead instructions removed"), "{r}");
        // Instruction-site profile section with source attribution.
        assert!(r.contains("instruction-site profile (1 sites"), "{r}");
        assert!(r.contains("henon_map"), "{r}");
        assert!(r.contains("line 7:14"), "{r}");
        assert!(r.contains("2^+1.0"), "{r}");
    }

    #[test]
    fn session_section_derives_the_hit_rate() {
        let snap = Snapshot {
            counters: vec![
                ("session.cache.evictions".into(), 1),
                ("session.cache.hits".into(), 3),
                ("session.cache.misses".into(), 1),
                ("session.queue.depth_max".into(), 5),
            ],
            ..Default::default()
        };
        let r = render_report(&snap);
        assert!(r.contains("session\n"), "{r}");
        assert!(r.contains("3 hits / 4 lookups  (75.0%)  1 evicted"), "{r}");
        assert!(r.contains("queue depth    5 max"), "{r}");
        // Absent counters: no session section.
        let r2 = render_report(&Snapshot::default());
        assert!(!r2.contains("session\n"), "{r2}");
    }

    #[test]
    fn empty_snapshot_reports_empty() {
        let r = render_report(&Snapshot::default());
        assert!(r.contains("trace is empty"), "{r}");
    }

    #[test]
    fn span_means_divide_by_count() {
        let snap = Snapshot {
            spans: vec![
                SpanRec { name: "x".into(), thread: 0, depth: 0, start_ns: 0, dur_ns: 100 },
                SpanRec { name: "x".into(), thread: 0, depth: 0, start_ns: 200, dur_ns: 300 },
            ],
            ..Default::default()
        };
        let r = render_report(&snap);
        assert!(r.contains("200ns"), "mean should be 200ns: {r}");
    }
}
