//! `igen-telemetry`: unified tracing, metrics and soundness diagnostics
//! for the IGen workspace.
//!
//! Three performance-critical subsystems — the compiler pass pipeline
//! (`igen-core`), the packed directed-rounding kernels
//! (`igen-round::simd`) and the threaded batch engine (`igen-batch`) —
//! report through this one substrate:
//!
//! * **Spans** ([`span`], [`span_joined`]) — nestable, monotonic-clock
//!   timed scopes. A span is recorded when its [`SpanGuard`] drops;
//!   records carry the thread, nesting depth and start/duration in
//!   nanoseconds relative to a process-wide epoch. Span recording is
//!   additionally gated by the runtime [`recording`] flag so an enabled
//!   build pays nothing until a trace is requested.
//! * **Counters** ([`Counter`]) — lock-free `static` atomic counters for
//!   runtime hot paths (packed-kernel invocations, per-lane scalar
//!   patches, directed-rounding ulp bumps, backend-dispatch outcomes).
//!   Increments are a single relaxed `fetch_add`; counters register
//!   themselves in a global registry on first use.
//! * **Width histograms** ([`WidthHist`]) — log2-bucketed histograms of
//!   *relative interval width* at kernel outputs, so precision
//!   regressions are observable alongside wall-clock regressions.
//!
//! # Zero cost when disabled
//!
//! Everything above is gated by the `enabled` cargo feature. With the
//! feature off (the default), [`Counter`], [`SpanGuard`] and
//! [`WidthHist`] are zero-sized types whose methods are empty
//! `#[inline(always)]` functions, and [`recording`] is a constant
//! `false` — call sites guarded by it are dead-code-eliminated. The
//! `zero_cost` tests pin this, and the CI `telemetry` job additionally
//! smoke-runs the hot-op benchmarks against a disabled build.
//!
//! # Trace format
//!
//! [`snapshot`] gathers everything recorded so far into a [`Snapshot`],
//! which serializes to JSON lines ([`Snapshot::to_jsonl`]) and parses
//! back ([`Snapshot::from_jsonl`], which also merges concatenated
//! traces by summing counters and histograms). [`render_report`] turns
//! a snapshot into the human per-phase/per-op table printed by
//! `igen-cli report`.
//!
//! # Example
//!
//! ```
//! use igen_telemetry as tel;
//!
//! static CALLS: tel::Counter = tel::Counter::new("example.calls");
//!
//! tel::set_recording(true);
//! {
//!     let _outer = tel::span("example.outer");
//!     let _inner = tel::span_joined("example.", "inner");
//!     CALLS.inc();
//! }
//! let snap = tel::snapshot();
//! let jsonl = snap.to_jsonl();
//! let parsed = tel::Snapshot::from_jsonl(&jsonl).unwrap();
//! // With the `enabled` feature the trace round-trips; without it the
//! // snapshot is empty — either way this compiles and runs.
//! assert_eq!(parsed.spans.len(), snap.spans.len());
//! # tel::set_recording(false);
//! # tel::reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod hist;
pub mod json;
pub mod profile;
mod report;
mod span;
mod trace;

pub use counter::{counters_snapshot, Counter};
pub use hist::{hists_snapshot, WidthHist};
pub use profile::{profiles_snapshot, UnitProfiler};
pub use report::render_report;
pub use span::{recording, set_recording, span, span_joined, SpanGuard};
pub use trace::{HistRec, ProfileRec, Snapshot, SpanRec};

/// Whether telemetry recording was compiled in (the `enabled` feature).
///
/// Lets callers print an honest "built without telemetry" note instead
/// of silently producing an empty trace.
#[cfg(feature = "enabled")]
pub const COMPILED_IN: bool = true;
/// Whether telemetry recording was compiled in (the `enabled` feature).
#[cfg(not(feature = "enabled"))]
pub const COMPILED_IN: bool = false;

/// Records a timed scope: `span!("name")` or `span!("prefix.", detail)`.
///
/// Expands to [`span`]/[`span_joined`]; bind the result to keep the
/// scope open (`let _g = span!(...)`). Compiles to nothing without the
/// `enabled` feature.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($prefix:expr, $detail:expr) => {
        $crate::span_joined($prefix, $detail)
    };
}

/// Collects everything recorded so far into a [`Snapshot`]: all finished
/// spans, every registered counter's value, every registered histogram.
///
/// Without the `enabled` feature this returns an empty snapshot.
pub fn snapshot() -> Snapshot {
    Snapshot {
        spans: span::spans_snapshot(),
        counters: counters_snapshot().into_iter().map(|(n, v)| (n.to_string(), v)).collect(),
        hists: hists_snapshot(),
        profiles: profiles_snapshot(),
    }
}

/// Clears recorded spans and instruction-site profiles, zeroes every
/// registered counter and histogram, and re-anchors the span epoch so
/// spans opened after the reset have offsets measured from the reset,
/// not from process start. Lets per-run numbers be measured from a
/// long-lived process. No-op without the `enabled` feature.
pub fn reset() {
    span::reset_spans();
    span::reset_epoch();
    counter::reset_counters();
    hist::reset_hists();
    profile::reset_profiles();
}

#[cfg(all(test, not(feature = "enabled")))]
mod zero_cost {
    //! The zero-cost-when-disabled guarantee, pinned: with the feature
    //! off every recording primitive is a ZST and the recording flag is
    //! constant false.

    use super::*;

    #[test]
    fn disabled_primitives_are_zero_sized() {
        assert_eq!(std::mem::size_of::<Counter>(), 0);
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
        assert_eq!(std::mem::size_of::<WidthHist>(), 0);
        assert_eq!(std::mem::size_of::<UnitProfiler>(), 0);
    }

    #[test]
    fn disabled_recording_is_inert() {
        set_recording(true);
        assert!(!recording());
        static C: Counter = Counter::new("zero.cost");
        C.inc();
        C.add(41);
        assert_eq!(C.value(), 0);
        static H: WidthHist = WidthHist::new("zero.hist");
        H.record(1.0, 2.0);
        let _g = span("dead");
        let _h = span_joined("dead.", "joined");
        let mut p = UnitProfiler::start("zero.profile", 8);
        assert!(!p.active());
        p.set_meta(0, 1, 1, "mul");
        p.add_time(0, p.now_ns());
        p.add_sample(0, 1e-10, 2e-10);
        p.finish();
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.hists.is_empty());
        assert!(snap.profiles.is_empty());
        // This module only compiles with the feature off, where the
        // flag must read false.
        assert!(!std::hint::black_box(COMPILED_IN));
    }
}
