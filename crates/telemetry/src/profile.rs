//! Per-instruction-site width-provenance profiles.
//!
//! The profiler answers "*why* is my interval this wide?": for every
//! bytecode instruction (or interpreter expression) *site* it records
//! how often the site executed, how long it took, the relative widths
//! flowing in and out, and a **width-amplification** statistic — the
//! log2 ratio of the output's relative width to the widest input's.
//! Amplification reuses the histogram idea of [`crate::hist`]: samples
//! land in 64 power-of-two buckets centered on "no amplification"
//! ([`AMP_ZERO`]), so bucket 33 means "this operation doubled the
//! relative width", bucket 31 means it halved it, and the top bucket
//! collects unbounded blow-ups (a wide output from point inputs, or a
//! NaN/infinite enclosure).
//!
//! Recording is two-phase so the executor hot loop never takes a lock:
//! a [`UnitProfiler`] accumulates rows locally (plain `u64`/`f64`
//! fields, one row per site) and merges them into the global profile
//! registry once, when [`UnitProfiler::finish`] is called. With the
//! `enabled` feature off the profiler is a zero-sized type whose
//! methods are empty `#[inline(always)]` functions and whose
//! constructor reports inactive, so guarded call sites fold away.

/// Number of amplification buckets (mirrors [`crate::hist::BUCKETS`]).
pub const AMP_BUCKETS: usize = 64;

/// The bucket meaning "relative width unchanged" (amplification 2^0).
/// Buckets `AMP_ZERO + k` hold samples whose output relative width is
/// `~2^k` times the widest input's; bucket 0 and bucket 63 absorb
/// everything below 2^-32 and above 2^31 (or undefined ratios).
pub const AMP_ZERO: usize = 32;

/// `log2` amplification represented by bucket `i` (valid for the
/// interior buckets `1..=62`).
pub fn amp_bucket_log2(i: usize) -> i32 {
    i as i32 - AMP_ZERO as i32
}

/// Relative width of `[lo, hi]`: `width / max(|lo|, |hi|)`, or the raw
/// width for intervals containing only zero. NaN endpoints yield NaN.
/// This is the same statistic [`crate::WidthHist::record`] buckets.
pub fn rel_width(lo: f64, hi: f64) -> f64 {
    if lo.is_nan() || hi.is_nan() {
        return f64::NAN;
    }
    let width = hi - lo;
    let mag = lo.abs().max(hi.abs());
    if mag > 0.0 {
        width / mag
    } else {
        width
    }
}

/// Buckets one width-amplification sample: `log2(out_rel / max_in_rel)`
/// shifted so [`AMP_ZERO`] means "unchanged", clamped to the interior
/// buckets. Special cases:
///
/// * both widths zero (exact in, exact out) — [`AMP_ZERO`] (no blow-up);
/// * exact inputs but a nonzero output width — top bucket (the site
///   *introduced* width, an unbounded amplification);
/// * zero output from nonzero inputs — bucket 0 (collapsed to exact);
/// * NaN or infinite ratio — top bucket.
pub fn amp_bucket(max_in_rel: f64, out_rel: f64) -> usize {
    if max_in_rel.is_nan() || out_rel.is_nan() || out_rel.is_infinite() {
        return AMP_BUCKETS - 1;
    }
    if max_in_rel == 0.0 {
        return if out_rel == 0.0 { AMP_ZERO } else { AMP_BUCKETS - 1 };
    }
    if out_rel == 0.0 {
        return 0;
    }
    let ratio = out_rel / max_in_rel;
    if ratio.is_nan() || ratio.is_infinite() {
        return AMP_BUCKETS - 1;
    }
    // floor(log2(ratio)) from the biased exponent (cf. WidthHist).
    let e = ((ratio.to_bits() >> 52) & 0x7ff) as i32 - 1023;
    (e + AMP_ZERO as i32).clamp(1, AMP_BUCKETS as i32 - 2) as usize
}

#[cfg(feature = "enabled")]
mod imp {
    use super::AMP_BUCKETS;
    use crate::trace::ProfileRec;
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    /// One site's locally-accumulated profile row.
    #[derive(Clone)]
    struct SiteRow {
        line: u32,
        col: u32,
        op: String,
        count: u64,
        total_ns: u64,
        in_width_sum: f64,
        out_width_sum: f64,
        amp: Box<[u64; AMP_BUCKETS]>,
    }

    impl SiteRow {
        fn new() -> SiteRow {
            SiteRow {
                line: 0,
                col: 0,
                op: String::new(),
                count: 0,
                total_ns: 0,
                in_width_sum: 0.0,
                out_width_sum: 0.0,
                amp: Box::new([0; AMP_BUCKETS]),
            }
        }

        fn touched(&self) -> bool {
            self.count > 0 || self.total_ns > 0
        }
    }

    struct GlobalRow {
        unit: String,
        site: u32,
        row: SiteRow,
    }

    fn registry() -> &'static Mutex<Vec<GlobalRow>> {
        static REGISTRY: OnceLock<Mutex<Vec<GlobalRow>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    /// A per-execution profile accumulator for one *unit* (a compiled
    /// program or interpreted function). Lock-free while recording;
    /// merges into the global registry on [`UnitProfiler::finish`].
    pub struct UnitProfiler {
        unit: String,
        rows: Vec<SiteRow>,
        active: bool,
        t0: Instant,
    }

    impl UnitProfiler {
        /// Starts profiling `n_sites` sites of `unit`. Inactive (and
        /// allocation-free) unless [`crate::recording`] is on.
        pub fn start(unit: &str, n_sites: usize) -> UnitProfiler {
            let active = crate::recording();
            UnitProfiler {
                unit: if active { unit.to_string() } else { String::new() },
                rows: if active { vec![SiteRow::new(); n_sites] } else { Vec::new() },
                active,
                t0: Instant::now(),
            }
        }

        /// Whether this profiler is live (recording was on at start).
        #[inline]
        pub fn active(&self) -> bool {
            self.active
        }

        /// Ensures at least `n_sites` rows exist. Used by callers that
        /// discover sites dynamically (the interpreter) instead of
        /// knowing the count up front like the VM executors do.
        pub fn grow(&mut self, n_sites: usize) {
            if self.active && self.rows.len() < n_sites {
                self.rows.resize_with(n_sites, SiteRow::new);
            }
        }

        /// Monotonic nanoseconds since the profiler started — the
        /// timestamp source for [`UnitProfiler::add_time`].
        #[inline]
        pub fn now_ns(&self) -> u64 {
            self.t0.elapsed().as_nanos() as u64
        }

        /// Attaches source metadata to a site (idempotent; last wins).
        pub fn set_meta(&mut self, site: usize, line: u32, col: u32, op: &str) {
            if let Some(r) = self.rows.get_mut(site) {
                r.line = line;
                r.col = col;
                r.op = op.to_string();
            }
        }

        /// Adds wall-clock nanoseconds to a site.
        #[inline]
        pub fn add_time(&mut self, site: usize, dur_ns: u64) {
            if let Some(r) = self.rows.get_mut(site) {
                r.total_ns += dur_ns;
            }
        }

        /// Adds one width sample to a site: the widest input's relative
        /// width, the output's, and the derived amplification bucket.
        #[inline]
        pub fn add_sample(&mut self, site: usize, max_in_rel: f64, out_rel: f64) {
            if let Some(r) = self.rows.get_mut(site) {
                r.count += 1;
                if max_in_rel.is_finite() {
                    r.in_width_sum += max_in_rel;
                }
                if out_rel.is_finite() {
                    r.out_width_sum += out_rel;
                }
                r.amp[super::amp_bucket(max_in_rel, out_rel)] += 1;
            }
        }

        /// Merges the local rows into the global profile registry (rows
        /// never touched are skipped).
        pub fn finish(self) {
            if !self.active {
                return;
            }
            let mut reg = registry().lock().expect("telemetry profile registry poisoned");
            for (site, row) in self.rows.into_iter().enumerate() {
                if !row.touched() {
                    continue;
                }
                let site = site as u32;
                match reg.iter_mut().find(|g| g.unit == self.unit && g.site == site) {
                    Some(g) => {
                        g.row.count += row.count;
                        g.row.total_ns += row.total_ns;
                        g.row.in_width_sum += row.in_width_sum;
                        g.row.out_width_sum += row.out_width_sum;
                        for (a, b) in g.row.amp.iter_mut().zip(row.amp.iter()) {
                            *a += b;
                        }
                        if g.row.op.is_empty() {
                            g.row.line = row.line;
                            g.row.col = row.col;
                            g.row.op = row.op;
                        }
                    }
                    None => reg.push(GlobalRow { unit: self.unit.clone(), site, row }),
                }
            }
        }
    }

    /// Every recorded profile row, sorted by unit then site index.
    pub fn profiles_snapshot() -> Vec<ProfileRec> {
        let reg = registry().lock().expect("telemetry profile registry poisoned");
        let mut out: Vec<ProfileRec> = reg
            .iter()
            .map(|g| ProfileRec {
                unit: g.unit.clone(),
                site: g.site,
                line: g.row.line,
                col: g.row.col,
                op: g.row.op.clone(),
                count: g.row.count,
                total_ns: g.row.total_ns,
                in_width_sum: g.row.in_width_sum,
                out_width_sum: g.row.out_width_sum,
                amp: g
                    .row
                    .amp
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| **v > 0)
                    .map(|(i, v)| (i as i32, *v))
                    .collect(),
            })
            .collect();
        out.sort_unstable_by(|a, b| a.unit.cmp(&b.unit).then(a.site.cmp(&b.site)));
        out
    }

    pub(crate) fn reset_profiles() {
        registry().lock().expect("telemetry profile registry poisoned").clear();
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use crate::trace::ProfileRec;

    /// A per-execution profile accumulator — disabled build: zero-sized,
    /// always inactive, every method an empty inline function.
    pub struct UnitProfiler {
        _private: (),
    }

    impl UnitProfiler {
        /// Starts profiling. Always inactive in this build.
        #[inline(always)]
        pub fn start(_unit: &str, _n_sites: usize) -> UnitProfiler {
            UnitProfiler { _private: () }
        }

        /// Whether this profiler is live — constant `false` in this
        /// build, so guarded call sites are dead-code-eliminated.
        #[inline(always)]
        pub fn active(&self) -> bool {
            false
        }

        /// Timestamp source (always 0 in this build).
        #[inline(always)]
        pub fn now_ns(&self) -> u64 {
            0
        }

        /// Ensures at least `n_sites` rows exist. No-op in this build.
        #[inline(always)]
        pub fn grow(&mut self, _n_sites: usize) {}

        /// Attaches source metadata to a site. No-op in this build.
        #[inline(always)]
        pub fn set_meta(&mut self, _site: usize, _line: u32, _col: u32, _op: &str) {}

        /// Adds wall-clock nanoseconds to a site. No-op in this build.
        #[inline(always)]
        pub fn add_time(&mut self, _site: usize, _dur_ns: u64) {}

        /// Adds one width sample to a site. No-op in this build.
        #[inline(always)]
        pub fn add_sample(&mut self, _site: usize, _max_in_rel: f64, _out_rel: f64) {}

        /// Merges into the global registry. No-op in this build.
        #[inline(always)]
        pub fn finish(self) {}
    }

    /// Every recorded profile row — empty in this build.
    pub fn profiles_snapshot() -> Vec<ProfileRec> {
        Vec::new()
    }

    pub(crate) fn reset_profiles() {}
}

pub(crate) use imp::reset_profiles;
pub use imp::{profiles_snapshot, UnitProfiler};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amp_buckets_are_centered_and_clamped() {
        // Unchanged width.
        assert_eq!(amp_bucket(1e-10, 1e-10), AMP_ZERO);
        // Doubled / halved.
        assert_eq!(amp_bucket(1e-10, 2e-10), AMP_ZERO + 1);
        assert_eq!(amp_bucket(2e-10, 1e-10), AMP_ZERO - 1);
        // Exact in and out: neutral. Width introduced from points: top.
        assert_eq!(amp_bucket(0.0, 0.0), AMP_ZERO);
        assert_eq!(amp_bucket(0.0, 1e-16), AMP_BUCKETS - 1);
        // Collapsed to exact: bottom. NaN: top.
        assert_eq!(amp_bucket(1e-10, 0.0), 0);
        assert_eq!(amp_bucket(f64::NAN, 1e-10), AMP_BUCKETS - 1);
        assert_eq!(amp_bucket(1e-300, f64::INFINITY), AMP_BUCKETS - 1);
        // Extreme ratios clamp into the interior.
        assert_eq!(amp_bucket(1e-300, 1.0), AMP_BUCKETS - 2);
        assert_eq!(amp_bucket(1.0, 1e-300), 1);
        assert_eq!(amp_bucket_log2(AMP_ZERO + 3), 3);
    }

    #[test]
    fn rel_width_matches_hist_convention() {
        assert_eq!(rel_width(1.0, 1.0), 0.0);
        assert_eq!(rel_width(2.0, 4.0), 0.5);
        assert_eq!(rel_width(0.0, 0.0), 0.0);
        assert!(rel_width(f64::NAN, 1.0).is_nan());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn profiler_inactive_without_recording_flag() {
        // Never turn recording on here: other tests share the registry.
        let mut p = UnitProfiler::start("test.unit.inactive", 4);
        assert!(!p.active() || crate::recording());
        if !p.active() {
            p.add_sample(0, 1e-10, 2e-10);
            p.add_time(0, 100);
            p.finish();
            assert!(!profiles_snapshot().iter().any(|r| r.unit == "test.unit.inactive"));
        }
    }
}
