//! Log2-bucketed histograms of relative interval width.
//!
//! Precision is a first-class diagnostic next to wall-clock: a change
//! that speeds a kernel up but silently widens its enclosures is a
//! regression. Kernels record the relative width of output intervals
//! (`width / max(|lo|, |hi|)`) into a [`WidthHist`]; each sample lands
//! in a power-of-two bucket keyed by `floor(log2(rel_width))`, so the
//! histogram reads as "how many results were within 2^-52 relative,
//! how many within 2^-40, …".
//!
//! Bucket layout (64 buckets):
//! * bucket 0 — exact (zero-width point intervals);
//! * buckets 1..=62 — `log2(rel_width)` clamped to `-61..=0`
//!   (`idx = log2 + 62`), i.e. bucket 10 holds widths in
//!   `[2^-52, 2^-51)`;
//! * bucket 63 — width ≥ 1 relative, infinite, or NaN (an unbounded or
//!   invalid enclosure).

/// Number of buckets in a [`WidthHist`].
pub const BUCKETS: usize = 64;

/// `log2(rel_width)` represented by bucket `i` (1..=62); the ends are
/// open-coded by the writers/readers.
pub(crate) fn bucket_log2(i: usize) -> i32 {
    i as i32 - 62
}

#[cfg(feature = "enabled")]
mod imp {
    use super::BUCKETS;
    use crate::trace::HistRec;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// A log2-bucketed histogram of relative interval widths (see the
    /// module docs for the bucket layout).
    pub struct WidthHist {
        name: &'static str,
        registered: AtomicBool,
        buckets: [AtomicU64; BUCKETS],
    }

    fn registry() -> &'static Mutex<Vec<&'static WidthHist>> {
        static REGISTRY: OnceLock<Mutex<Vec<&'static WidthHist>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    #[allow(clippy::declare_interior_mutable_const)] // array-init seed only
    const ZERO: AtomicU64 = AtomicU64::new(0);

    impl WidthHist {
        /// Creates a histogram (usable in `static` position).
        pub const fn new(name: &'static str) -> WidthHist {
            WidthHist { name, registered: AtomicBool::new(false), buckets: [ZERO; BUCKETS] }
        }

        /// Records one interval `[lo, hi]` by its relative width.
        ///
        /// NaN endpoints and infinite widths land in the top bucket;
        /// point intervals land in bucket 0 ("exact").
        pub fn record(&'static self, lo: f64, hi: f64) {
            let idx = if lo.is_nan() || hi.is_nan() {
                BUCKETS - 1
            } else {
                let width = hi - lo;
                let mag = lo.abs().max(hi.abs());
                let rel = if mag > 0.0 { width / mag } else { width };
                if rel == 0.0 {
                    0
                } else if rel >= 1.0 || rel.is_nan() {
                    // >= 1 relative, infinite, or inf-inf width.
                    BUCKETS - 1
                } else {
                    // floor(log2(rel)) from the biased exponent; subnormal
                    // rel (biased 0) is far below any bucket — clamp low.
                    let e = ((rel.to_bits() >> 52) & 0x7ff) as i32 - 1023;
                    (e + 62).clamp(1, BUCKETS as i32 - 2) as usize
                }
            };
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
            if !self.registered.load(Ordering::Relaxed) {
                self.register();
            }
        }

        #[cold]
        fn register(&'static self) {
            if !self.registered.swap(true, Ordering::AcqRel) {
                registry().lock().expect("telemetry registry poisoned").push(self);
            }
        }

        /// The histogram's stable name.
        pub fn name(&self) -> &'static str {
            self.name
        }

        /// Total samples recorded.
        pub fn count(&self) -> u64 {
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
        }

        fn record_snapshot(&self) -> HistRec {
            let mut buckets = Vec::new();
            for (i, b) in self.buckets.iter().enumerate() {
                let v = b.load(Ordering::Relaxed);
                if v > 0 {
                    buckets.push((i as i32, v));
                }
            }
            HistRec { name: self.name.to_string(), count: self.count(), buckets }
        }
    }

    /// Every registered histogram's snapshot (nonzero buckets only,
    /// keyed by bucket index), sorted by name.
    pub fn hists_snapshot() -> Vec<HistRec> {
        let reg = registry().lock().expect("telemetry registry poisoned");
        let mut out: Vec<HistRec> = reg.iter().map(|h| h.record_snapshot()).collect();
        out.sort_unstable_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Zeroes every registered histogram.
    pub(crate) fn reset_hists() {
        let reg = registry().lock().expect("telemetry registry poisoned");
        for h in reg.iter() {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use crate::trace::HistRec;

    /// A log2-bucketed histogram of relative interval widths — disabled
    /// build: zero-sized, every method an empty inline function.
    pub struct WidthHist {
        _private: (),
    }

    impl WidthHist {
        /// Creates a histogram (usable in `static` position).
        pub const fn new(_name: &'static str) -> WidthHist {
            WidthHist { _private: () }
        }

        /// Records one interval. No-op in this build.
        #[inline(always)]
        pub fn record(&'static self, _lo: f64, _hi: f64) {}

        /// The histogram's stable name (empty in this build).
        #[inline(always)]
        pub fn name(&self) -> &'static str {
            ""
        }

        /// Total samples recorded (always 0 in this build).
        #[inline(always)]
        pub fn count(&self) -> u64 {
            0
        }
    }

    /// Every registered histogram's snapshot — empty in this build.
    pub fn hists_snapshot() -> Vec<HistRec> {
        Vec::new()
    }

    pub(crate) fn reset_hists() {}
}

pub(crate) use imp::reset_hists;
pub use imp::{hists_snapshot, WidthHist};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn bucketing_by_relative_width() {
        static H: WidthHist = WidthHist::new("test.hist.buckets");
        // Exact point.
        H.record(1.0, 1.0);
        // Two-ulp interval at magnitude 1: rel width just under 2^-51
        // (2^-51 / (1 + 2^-51)), so floor(log2) = -52.
        H.record(1.0, 1.0 + 2.0 * f64::EPSILON);
        // Huge relative width.
        H.record(-1.0, 1.0);
        // NaN endpoint.
        H.record(f64::NAN, 1.0);
        let snap = hists_snapshot();
        let h = snap.iter().find(|h| h.name == "test.hist.buckets").unwrap();
        assert_eq!(h.count, 4);
        let get = |idx: i32| h.buckets.iter().find(|(i, _)| *i == idx).map_or(0, |(_, v)| *v);
        assert_eq!(get(0), 1, "exact bucket");
        assert_eq!(get(-52 + 62), 1, "one-ulp bucket: {:?}", h.buckets);
        assert_eq!(get(BUCKETS as i32 - 1), 2, "top bucket (wide + NaN)");
    }

    #[test]
    fn bucket_log2_roundtrip() {
        assert_eq!(bucket_log2(62), 0);
        assert_eq!(bucket_log2(10), -52);
        assert_eq!(bucket_log2(1), -61);
    }
}
