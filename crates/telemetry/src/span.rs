//! Nestable, monotonic-clock timed scopes.
//!
//! [`span`] returns a [`SpanGuard`]; when the guard drops, a record with
//! the thread, nesting depth, start offset and duration (nanoseconds
//! since a process-wide epoch) is appended to the global span log.
//! Spans are coarse by design — one per compiler phase, one per batch
//! worker chunk — so the per-record mutex push is far off any hot path.
//!
//! Recording is gated by a runtime flag ([`set_recording`]) on top of
//! the compile-time feature: an `enabled` build pays one relaxed atomic
//! load per span site until a trace is actually requested.

#[cfg(feature = "enabled")]
mod imp {
    use crate::trace::SpanRec;
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    static RECORDING: AtomicBool = AtomicBool::new(false);

    /// Turns span recording on or off (counters and histograms gate on
    /// this flag too at their call sites, via [`recording`]).
    pub fn set_recording(on: bool) {
        RECORDING.store(on, Ordering::Release);
    }

    /// Whether a trace is currently being recorded.
    #[inline]
    pub fn recording() -> bool {
        RECORDING.load(Ordering::Relaxed)
    }

    // The trace epoch is resettable: `reset()` re-anchors it so spans
    // recorded after a reset carry offsets measured from the reset, not
    // from process start (one mutex lock per span open is fine — spans
    // are coarse by design).
    fn epoch_cell() -> &'static Mutex<Instant> {
        static EPOCH: OnceLock<Mutex<Instant>> = OnceLock::new();
        EPOCH.get_or_init(|| Mutex::new(Instant::now()))
    }

    fn epoch() -> Instant {
        *epoch_cell().lock().expect("telemetry epoch poisoned")
    }

    pub(crate) fn reset_epoch() {
        *epoch_cell().lock().expect("telemetry epoch poisoned") = Instant::now();
    }

    fn spans() -> &'static Mutex<Vec<SpanRec>> {
        static SPANS: OnceLock<Mutex<Vec<SpanRec>>> = OnceLock::new();
        SPANS.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static DEPTH: Cell<u32> = const { Cell::new(0) };
        static THREAD_ID: u64 = {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            NEXT.fetch_add(1, Ordering::Relaxed)
        };
    }

    struct ActiveSpan {
        name: String,
        thread: u64,
        depth: u32,
        start_ns: u64,
        start: Instant,
    }

    /// An open span; records itself on drop. Hold it in a local:
    /// `let _g = span("phase");`.
    pub struct SpanGuard(Option<ActiveSpan>);

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if let Some(a) = self.0.take() {
                let dur_ns = a.start.elapsed().as_nanos() as u64;
                DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
                spans().lock().expect("telemetry span log poisoned").push(SpanRec {
                    name: a.name,
                    thread: a.thread,
                    depth: a.depth,
                    start_ns: a.start_ns,
                    dur_ns,
                });
            }
        }
    }

    fn open(name: String) -> SpanGuard {
        let start = Instant::now();
        let start_ns = start.duration_since(epoch()).as_nanos() as u64;
        let thread = THREAD_ID.with(|t| *t);
        let depth = DEPTH.with(|d| {
            let cur = d.get();
            d.set(cur + 1);
            cur
        });
        SpanGuard(Some(ActiveSpan { name, thread, depth, start_ns, start }))
    }

    /// Opens a span named `name` (inert unless [`recording`]).
    pub fn span(name: &str) -> SpanGuard {
        if !recording() {
            return SpanGuard(None);
        }
        open(name.to_string())
    }

    /// Opens a span named `prefix` + `detail`, formatting only when a
    /// trace is actually being recorded.
    pub fn span_joined(prefix: &'static str, detail: &str) -> SpanGuard {
        if !recording() {
            return SpanGuard(None);
        }
        open(format!("{prefix}{detail}"))
    }

    /// All finished spans recorded so far, in completion order.
    pub(crate) fn spans_snapshot() -> Vec<SpanRec> {
        spans().lock().expect("telemetry span log poisoned").clone()
    }

    pub(crate) fn reset_spans() {
        spans().lock().expect("telemetry span log poisoned").clear();
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use crate::trace::SpanRec;

    /// An open span — disabled build: zero-sized, dropping does nothing.
    pub struct SpanGuard;

    /// Turns span recording on or off. No-op in this build.
    #[inline(always)]
    pub fn set_recording(_on: bool) {}

    /// Whether a trace is currently being recorded — constant `false` in
    /// this build, so guarded call sites are dead-code-eliminated.
    #[inline(always)]
    pub fn recording() -> bool {
        false
    }

    /// Opens a span named `name`. No-op in this build.
    #[inline(always)]
    pub fn span(_name: &str) -> SpanGuard {
        SpanGuard
    }

    /// Opens a span named `prefix` + `detail`. No-op in this build.
    #[inline(always)]
    pub fn span_joined(_prefix: &'static str, _detail: &str) -> SpanGuard {
        SpanGuard
    }

    pub(crate) fn spans_snapshot() -> Vec<SpanRec> {
        Vec::new()
    }

    pub(crate) fn reset_spans() {}

    pub(crate) fn reset_epoch() {}
}

pub use imp::{recording, set_recording, span, span_joined, SpanGuard};
pub(crate) use imp::{reset_epoch, reset_spans, spans_snapshot};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    /// Serializes tests that toggle the global recording flag.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spans_nest_and_record() {
        let _l = lock();
        set_recording(true);
        let before = spans_snapshot().len();
        {
            let _a = span("test.outer");
            let _b = span_joined("test.", "inner");
        }
        set_recording(false);
        let spans = spans_snapshot();
        let new: Vec<_> = spans[before..].iter().collect();
        assert_eq!(new.len(), 2);
        // Inner drops first.
        assert_eq!(new[0].name, "test.inner");
        assert_eq!(new[0].depth, 1);
        assert_eq!(new[1].name, "test.outer");
        assert_eq!(new[1].depth, 0);
        assert_eq!(new[0].thread, new[1].thread);
        // Containment: the inner span starts no earlier and ends no later.
        assert!(new[0].start_ns >= new[1].start_ns);
        assert!(new[0].start_ns + new[0].dur_ns <= new[1].start_ns + new[1].dur_ns);
    }

    #[test]
    fn not_recording_records_nothing() {
        let _l = lock();
        set_recording(false);
        let before = spans_snapshot().len();
        {
            let _a = span("test.dead");
        }
        assert_eq!(spans_snapshot().len(), before);
    }
}
