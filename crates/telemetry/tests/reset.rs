//! Regression test for `igen_telemetry::reset()`: a reset must leave
//! the *whole* snapshot empty (spans, counters, histograms, profiles)
//! and re-anchor the span epoch so later spans carry offsets measured
//! from the reset. Runs as an integration test so the process-global
//! telemetry state is not shared with the library's unit tests.
#![cfg(feature = "enabled")]

use igen_telemetry as tel;

static COUNTER: tel::Counter = tel::Counter::new("reset.test.counter");
static HIST: tel::WidthHist = tel::WidthHist::new("reset.test.hist");

#[test]
fn reset_clears_everything_and_reanchors_the_epoch() {
    tel::set_recording(true);

    // Anchor the (lazily initialized) epoch, then put enough wall-clock
    // before the reset that stale epoch offsets would be visibly large.
    {
        let _g = tel::span("reset.test.anchor");
    }
    std::thread::sleep(std::time::Duration::from_millis(20));
    {
        let _g = tel::span("reset.test.before");
    }
    COUNTER.add(7);
    HIST.record(1.0, 1.5);
    let mut prof = tel::UnitProfiler::start("reset.test.unit", 2);
    assert!(prof.active());
    prof.set_meta(0, 3, 1, "mul");
    prof.add_time(0, 100);
    prof.add_sample(0, 1e-12, 2e-12);
    prof.finish();

    let before = tel::snapshot();
    assert!(!before.spans.is_empty());
    assert!(before.counters.iter().any(|(n, v)| n == "reset.test.counter" && *v == 7));
    assert!(before.hists.iter().any(|h| h.name == "reset.test.hist" && h.count == 1));
    assert!(before.profiles.iter().any(|p| p.unit == "reset.test.unit" && p.count == 1));
    let old_span = before.spans.iter().find(|s| s.name == "reset.test.before").unwrap();
    // The pre-reset span started at least the sleep after the old epoch.
    assert!(old_span.start_ns >= 20_000_000, "start_ns = {}", old_span.start_ns);

    let t_reset = std::time::Instant::now();
    tel::reset();

    // Snapshot after reset is empty across every record kind.
    let after = tel::snapshot();
    assert!(after.spans.is_empty(), "{:?}", after.spans);
    assert!(after.counters.iter().all(|(_, v)| *v == 0), "{:?}", after.counters);
    assert!(after.hists.iter().all(|h| h.count == 0), "{:?}", after.hists);
    assert!(after.profiles.is_empty(), "{:?}", after.profiles);

    // A span opened right after the reset has a sane offset: no larger
    // than the wall-clock elapsed since the reset (a stale epoch would
    // report at least the 20ms slept before it).
    {
        let _g = tel::span("reset.test.after");
    }
    let elapsed_ns = t_reset.elapsed().as_nanos() as u64;
    let snap = tel::snapshot();
    let new_span = snap.spans.iter().find(|s| s.name == "reset.test.after").unwrap();
    assert!(
        new_span.start_ns <= elapsed_ns,
        "span epoch not re-anchored: start_ns = {} but only {} ns since reset",
        new_span.start_ns,
        elapsed_ns
    );
    tel::set_recording(false);
}
