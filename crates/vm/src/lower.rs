//! Lowering: optimized `IrFunction` → register bytecode, by tracing.
//!
//! The pass is an abstract interpreter over the IR: integer values and
//! control flow (loop counters, index math, branches on integer
//! conditions) are evaluated *concretely* at lowering time — loops
//! unroll, indices resolve — while every interval operation emits one
//! [`Insn`] into the instruction stream against a fresh virtual
//! register. Copies (`x = y`, argument shuffles through temporaries)
//! become register aliases and cost nothing at run time; constants are
//! deduplicated by bit pattern and materialized once.
//!
//! The traced subset is exactly the code the interval compiler emits
//! for straight-line numerics over arrays: `ia_{add,sub,mul,div,neg,
//! sqrt,abs,sqr,min,max,pow,set,set_int,set_ddx,set_dd}`. Everything
//! whose control flow depends on *interval* values (tri-state branch
//! conversion), whose semantics need runtime state (accumulators,
//! tolerances on runtime values), or that has no packed kernel
//! contract yet (transcendentals, floor/ceil, join) is rejected with a
//! precise [`LowerError`] — soundness is never traded for coverage,
//! and the differential interpreter remains the fallback for rejected
//! functions.

use crate::bytecode::{DebugMap, Insn, OutputSlot, PoolConst, Precision, Program, SrcLoc};
use igen_cfront::{AssignOp, BinOp, Loc, Type, UnOp};
use igen_interval::capi;
use igen_interval::{DdI, F64I};
use igen_ir::{IrExpr, IrFunction, IrStmt, OpKind, Sfx};
use std::collections::HashMap;

/// Default abstract-interpretation step budget (same order as the
/// reference interpreter's: protects against runaway loop bounds).
pub const DEFAULT_STEP_BUDGET: u64 = 50_000_000;

/// Hard cap on emitted instructions: bounds both the program and the
/// per-worker register file (`n_regs` tracks `insns` closely, and the
/// packed register file costs 64 bytes per register).
pub const MAX_INSNS: usize = 1 << 18;

/// How one function parameter is bound when compiling to bytecode.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgBind {
    /// A scalar interval parameter: one program input per item.
    Ival,
    /// An integer parameter fixed at compile time (loop bounds, sizes).
    Int(i64),
    /// An interval array parameter read per item: `len` program inputs.
    In(usize),
    /// An interval array parameter written per item: `len` program
    /// outputs, no inputs (reading an unwritten cell is an error).
    Out(usize),
    /// An interval array parameter read and written per item: `len`
    /// inputs *and* `len` outputs.
    InOut(usize),
    /// An interval array shared by every item, baked into the constant
    /// pool as `[lo, hi]` pairs (weight matrices, shared operands).
    Uniform(Vec<(f64, f64)>),
}

/// Bindings for every parameter of the function, in order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BindSpec {
    /// One binding per parameter.
    pub args: Vec<ArgBind>,
}

impl BindSpec {
    /// A binding list in parameter order.
    pub fn new(args: Vec<ArgBind>) -> BindSpec {
        BindSpec { args }
    }
}

/// Why a function cannot be compiled to bytecode.
#[derive(Debug, Clone, PartialEq)]
pub enum LowerError {
    /// An interval opcode outside the traced subset.
    UnsupportedOp(String),
    /// A statement or expression form outside the traced subset.
    Unsupported(String),
    /// `f32` precision (no packed `f32` kernel contract).
    Precision(String),
    /// `ia_pow` exponent that is not a compile-time integer.
    NonConstExponent,
    /// Control flow depends on an interval value.
    IntervalBranch,
    /// A read of a variable or array cell that was never written.
    UninitRead(String),
    /// Array access outside the bound length.
    OutOfBounds {
        /// Array (parameter or local) name.
        array: String,
        /// Offending index.
        index: i64,
        /// Bound length.
        len: usize,
    },
    /// Parameter/binding mismatch.
    BadBinding(String),
    /// The function has no body.
    NoBody,
    /// Abstract-interpretation step budget exhausted.
    Budget,
    /// The program exceeds [`MAX_INSNS`].
    TooLarge(usize),
    /// Integer evaluation error (division by zero, bad shift).
    IntEval(String),
}

impl core::fmt::Display for LowerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LowerError::UnsupportedOp(op) => write!(f, "unsupported interval op `{op}`"),
            LowerError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
            LowerError::Precision(p) => write!(f, "unsupported precision `{p}`"),
            LowerError::NonConstExponent => {
                write!(f, "ia_pow exponent is not a compile-time integer")
            }
            LowerError::IntervalBranch => {
                write!(f, "control flow depends on an interval value (tri-state branch)")
            }
            LowerError::UninitRead(what) => write!(f, "read of uninitialized value `{what}`"),
            LowerError::OutOfBounds { array, index, len } => {
                write!(f, "index {index} out of bounds for `{array}` (len {len})")
            }
            LowerError::BadBinding(msg) => write!(f, "binding mismatch: {msg}"),
            LowerError::NoBody => write!(f, "function has no body"),
            LowerError::Budget => write!(f, "lowering step budget exhausted"),
            LowerError::TooLarge(n) => {
                write!(f, "program too large: {n} instructions (max {MAX_INSNS})")
            }
            LowerError::IntEval(msg) => write!(f, "integer evaluation: {msg}"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Abstract value of an expression during the trace.
#[derive(Clone, Copy, Debug)]
enum Av {
    /// A concrete integer.
    Int(i64),
    /// An interval held in a register.
    Iv(u32),
    /// A pointer into array `arr` at element offset `off`.
    Ptr { arr: usize, off: i64 },
    /// A declared-but-unassigned variable.
    Uninit,
    /// Statement value / void return.
    Void,
}

/// One interval array during the trace: per-cell registers, lazily
/// materialized uniform constants, and whether the final cells are
/// harvested as program outputs.
struct ArrObj {
    name: String,
    cells: Vec<Option<u32>>,
    uniform: Option<Vec<(f64, f64)>>,
    harvest: bool,
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Av),
}

struct Lowerer {
    precision: Precision,
    sfx: Sfx,
    insns: Vec<Insn>,
    /// One source site per emitted instruction, kept in lock-step with
    /// `insns` so the [`DebugMap`] side-table stays parallel.
    sites: Vec<SrcLoc>,
    consts: Vec<PoolConst>,
    pool_idx: HashMap<[u64; 4], u32>,
    const_reg: HashMap<[u64; 4], u32>,
    next_reg: u32,
    arrays: Vec<ArrObj>,
    scopes: Vec<HashMap<String, Av>>,
    temps: HashMap<u32, Av>,
    steps: u64,
}

/// Lowers `f` (already optimized and renumbered) into bytecode under
/// the given parameter bindings.
pub fn lower(f: &IrFunction, bind: &BindSpec) -> Result<Program, LowerError> {
    let precision = detect_precision(f)?;
    let mut lw = Lowerer {
        precision,
        sfx: match precision {
            Precision::F64 => Sfx::F64,
            Precision::Dd => Sfx::Dd,
        },
        insns: Vec::new(),
        sites: Vec::new(),
        consts: Vec::new(),
        pool_idx: HashMap::new(),
        const_reg: HashMap::new(),
        next_reg: 0,
        arrays: Vec::new(),
        scopes: vec![HashMap::new()],
        temps: HashMap::new(),
        steps: 0,
    };

    if bind.args.len() != f.params.len() {
        return Err(LowerError::BadBinding(format!(
            "function `{}` has {} parameters, got {} bindings",
            f.name,
            f.params.len(),
            bind.args.len()
        )));
    }

    // Bind parameters: interval scalars and in/inout array cells become
    // input registers 0..n_inputs in parameter order.
    let mut inputs = Vec::new();
    for (p, b) in f.params.iter().zip(&bind.args) {
        let scalar_ival = is_interval_named(&p.ty, precision);
        let ptr_ival = matches!(&p.ty, Type::Ptr(inner) | Type::Array(inner, _)
            if is_interval_named(inner, precision));
        match b {
            ArgBind::Ival => {
                if !scalar_ival {
                    return Err(bad_bind(&p.name, "interval scalar", &p.ty));
                }
                let r = lw.next_reg;
                lw.next_reg += 1;
                inputs.push(p.name.clone());
                lw.scopes[0].insert(p.name.clone(), Av::Iv(r));
            }
            ArgBind::Int(v) => {
                if !is_int_type(&p.ty) {
                    return Err(bad_bind(&p.name, "integer", &p.ty));
                }
                lw.scopes[0].insert(p.name.clone(), Av::Int(*v));
            }
            ArgBind::In(len) | ArgBind::InOut(len) => {
                if !ptr_ival {
                    return Err(bad_bind(&p.name, "interval array", &p.ty));
                }
                let harvest = matches!(b, ArgBind::InOut(_));
                let mut cells = Vec::with_capacity(*len);
                for i in 0..*len {
                    let r = lw.next_reg;
                    lw.next_reg += 1;
                    inputs.push(format!("{}[{i}]", p.name));
                    cells.push(Some(r));
                }
                let arr = lw.arrays.len();
                lw.arrays.push(ArrObj { name: p.name.clone(), cells, uniform: None, harvest });
                lw.scopes[0].insert(p.name.clone(), Av::Ptr { arr, off: 0 });
            }
            ArgBind::Out(len) => {
                if !ptr_ival {
                    return Err(bad_bind(&p.name, "interval array", &p.ty));
                }
                let arr = lw.arrays.len();
                lw.arrays.push(ArrObj {
                    name: p.name.clone(),
                    cells: vec![None; *len],
                    uniform: None,
                    harvest: true,
                });
                lw.scopes[0].insert(p.name.clone(), Av::Ptr { arr, off: 0 });
            }
            ArgBind::Uniform(pairs) => {
                if !ptr_ival {
                    return Err(bad_bind(&p.name, "interval array", &p.ty));
                }
                let arr = lw.arrays.len();
                lw.arrays.push(ArrObj {
                    name: p.name.clone(),
                    cells: vec![None; pairs.len()],
                    uniform: Some(pairs.clone()),
                    harvest: false,
                });
                lw.scopes[0].insert(p.name.clone(), Av::Ptr { arr, off: 0 });
            }
        }
    }
    let n_inputs = lw.next_reg;

    // Trace the body.
    let body = f.body.as_ref().ok_or(LowerError::NoBody)?;
    let mut ret = Av::Void;
    for s in body {
        match lw.exec_stmt(s)? {
            Flow::Normal => {}
            Flow::Return(v) => {
                ret = v;
                break;
            }
            Flow::Break | Flow::Continue => {
                return Err(LowerError::Unsupported("break/continue outside a loop".into()))
            }
        }
    }

    // Harvest outputs: function return first, then out/inout cells in
    // parameter order.
    let mut outputs = Vec::new();
    if is_interval_named(&f.ret, precision) {
        let reg = match ret {
            Av::Iv(r) => r,
            _ => return Err(LowerError::UninitRead("return value".into())),
        };
        outputs.push(OutputSlot { label: "return".into(), reg });
    } else if !matches!(f.ret, Type::Void) {
        return Err(LowerError::Unsupported(format!("return type `{:?}`", f.ret)));
    }
    for a in &lw.arrays {
        if !a.harvest {
            continue;
        }
        for (i, cell) in a.cells.iter().enumerate() {
            match cell {
                Some(r) => outputs.push(OutputSlot { label: format!("{}[{i}]", a.name), reg: *r }),
                None => return Err(LowerError::UninitRead(format!("{}[{i}]", a.name))),
            }
        }
    }
    if outputs.is_empty() {
        return Err(LowerError::Unsupported("function computes no interval outputs".into()));
    }

    let prog = Program {
        name: f.name.clone(),
        precision,
        n_inputs,
        n_regs: lw.next_reg,
        consts: lw.consts,
        insns: lw.insns,
        inputs,
        outputs,
        debug: DebugMap { sites: lw.sites },
    };
    debug_assert_eq!(prog.validate_ssa(), Ok(()));
    Ok(prog)
}

fn site(loc: Loc) -> SrcLoc {
    SrcLoc { line: loc.line, col: loc.col }
}

/// Best-effort source site for an expression form that does not carry
/// its own location (unary minus, casts): walk inward until a located
/// node is found.
fn expr_site(e: &IrExpr) -> SrcLoc {
    match e {
        IrExpr::Op { loc, .. }
        | IrExpr::Call { loc, .. }
        | IrExpr::Binary { loc, .. }
        | IrExpr::Assign { loc, .. }
        | IrExpr::Var(_, loc) => site(*loc),
        IrExpr::Unary(_, inner) | IrExpr::PostIncDec(inner, _) | IrExpr::Cast(_, inner) => {
            expr_site(inner)
        }
        IrExpr::Index(base, _) => expr_site(base),
        _ => SrcLoc::default(),
    }
}

fn bad_bind(name: &str, want: &str, got: &Type) -> LowerError {
    LowerError::BadBinding(format!("parameter `{name}`: binding expects {want}, type is {got:?}"))
}

fn is_int_type(ty: &Type) -> bool {
    matches!(ty, Type::Int | Type::UInt | Type::Long | Type::ULong)
}

fn is_interval_named(ty: &Type, p: Precision) -> bool {
    match ty {
        Type::Named(n) => match p {
            Precision::F64 => n == "f64i",
            Precision::Dd => n == "ddi",
        },
        _ => false,
    }
}

/// Scans parameter and return types for the interval precision; the
/// compiled unit is single-precision, so mixing is impossible, but
/// `f32i` is rejected here.
fn detect_precision(f: &IrFunction) -> Result<Precision, LowerError> {
    let mut found = None;
    let mut visit = |ty: &Type| -> Result<(), LowerError> {
        let name = match ty {
            Type::Named(n) => n.as_str(),
            Type::Ptr(inner) | Type::Array(inner, _) => match inner.as_ref() {
                Type::Named(n) => n.as_str(),
                _ => return Ok(()),
            },
            _ => return Ok(()),
        };
        let p = match name {
            "f64i" => Precision::F64,
            "ddi" => Precision::Dd,
            "f32i" => return Err(LowerError::Precision("f32".into())),
            _ => return Ok(()),
        };
        match found {
            None => found = Some(p),
            Some(prev) if prev == p => {}
            Some(_) => return Err(LowerError::Unsupported("mixed interval precisions".into())),
        }
        Ok(())
    };
    for p in &f.params {
        visit(&p.ty)?;
    }
    visit(&f.ret)?;
    found.ok_or_else(|| LowerError::Unsupported("no interval parameters or return".into()))
}

impl Lowerer {
    fn step(&mut self) -> Result<(), LowerError> {
        self.steps += 1;
        if self.steps > DEFAULT_STEP_BUDGET {
            return Err(LowerError::Budget);
        }
        Ok(())
    }

    fn fresh(&mut self) -> u32 {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn emit(&mut self, insn: Insn, loc: SrcLoc) -> Result<u32, LowerError> {
        if self.insns.len() >= MAX_INSNS {
            return Err(LowerError::TooLarge(self.insns.len() + 1));
        }
        let dst = insn.dst();
        self.insns.push(insn);
        self.sites.push(loc);
        Ok(dst)
    }

    /// Materializes a pooled constant into a register, deduplicating
    /// both the pool entry and the `Const` instruction by bit pattern.
    /// A deduplicated constant keeps the site of its *first* use.
    fn konst(&mut self, c: PoolConst, loc: SrcLoc) -> Result<u32, LowerError> {
        let bits = c.bits();
        if let Some(&r) = self.const_reg.get(&bits) {
            return Ok(r);
        }
        let idx = match self.pool_idx.get(&bits) {
            Some(&i) => i,
            None => {
                let i = self.consts.len() as u32;
                self.consts.push(c);
                self.pool_idx.insert(bits, i);
                i
            }
        };
        let dst = self.fresh();
        self.emit(Insn::Const { dst, idx }, loc)?;
        self.const_reg.insert(bits, dst);
        Ok(dst)
    }

    fn f64i_const(&mut self, v: &F64I, loc: SrcLoc) -> Result<u32, LowerError> {
        self.konst(PoolConst::f64_pair(v.lo(), v.hi()), loc)
    }

    fn ddi_const(&mut self, v: &DdI, loc: SrcLoc) -> Result<u32, LowerError> {
        let (lo, hi) = (v.lo(), v.hi());
        self.konst(
            PoolConst { lo_hi: lo.hi(), lo_lo: lo.lo(), hi_hi: hi.hi(), hi_lo: hi.lo() },
            loc,
        )
    }

    // --- variable environment -------------------------------------------

    fn lookup(&self, name: &str) -> Option<Av> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(*v);
            }
        }
        None
    }

    fn set_var(&mut self, name: &str, v: Av) -> Result<(), LowerError> {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = v;
                return Ok(());
            }
        }
        Err(LowerError::UninitRead(format!("assignment to undeclared `{name}`")))
    }

    // --- array cells ----------------------------------------------------

    fn cell_index(&self, arr: usize, idx: i64) -> Result<usize, LowerError> {
        let a = &self.arrays[arr];
        if idx < 0 || idx as usize >= a.cells.len() {
            return Err(LowerError::OutOfBounds {
                array: a.name.clone(),
                index: idx,
                len: a.cells.len(),
            });
        }
        Ok(idx as usize)
    }

    fn read_cell(&mut self, arr: usize, idx: i64) -> Result<u32, LowerError> {
        let i = self.cell_index(arr, idx)?;
        if let Some(r) = self.arrays[arr].cells[i] {
            return Ok(r);
        }
        if let Some(pairs) = &self.arrays[arr].uniform {
            let (lo, hi) = pairs[i];
            // Uniform cells have no single source expression; their
            // `Const` carries an unknown site.
            let r = match self.precision {
                Precision::F64 => {
                    let v = capi::ia_set_f64(lo, hi);
                    self.f64i_const(&v, SrcLoc::default())?
                }
                Precision::Dd => {
                    // Uniform pairs promote exactly like the interp
                    // reference: a full-width f64 interval.
                    let v = DdI::from_f64i(&capi::ia_set_f64(lo, hi));
                    self.ddi_const(&v, SrcLoc::default())?
                }
            };
            self.arrays[arr].cells[i] = Some(r);
            return Ok(r);
        }
        let name = self.arrays[arr].name.clone();
        Err(LowerError::UninitRead(format!("{name}[{i}]")))
    }

    fn write_cell(&mut self, arr: usize, idx: i64, reg: u32) -> Result<(), LowerError> {
        let i = self.cell_index(arr, idx)?;
        self.arrays[arr].cells[i] = Some(reg);
        Ok(())
    }

    // --- expression evaluation ------------------------------------------

    fn want_iv(&self, v: Av, what: &str) -> Result<u32, LowerError> {
        match v {
            Av::Iv(r) => Ok(r),
            Av::Uninit => Err(LowerError::UninitRead(what.into())),
            other => Err(LowerError::Unsupported(format!(
                "expected an interval value for {what}, got {other:?}"
            ))),
        }
    }

    fn want_int(&self, v: Av, what: &str) -> Result<i64, LowerError> {
        match v {
            Av::Int(i) => Ok(i),
            Av::Uninit => Err(LowerError::UninitRead(what.into())),
            Av::Iv(_) => Err(LowerError::IntervalBranch),
            other => Err(LowerError::Unsupported(format!(
                "expected an integer value for {what}, got {other:?}"
            ))),
        }
    }

    fn eval(&mut self, e: &IrExpr) -> Result<Av, LowerError> {
        self.step()?;
        match e {
            IrExpr::Int { value, .. } => Ok(Av::Int(*value)),
            IrExpr::Float { .. } => {
                Err(LowerError::Unsupported("bare float literal outside a set op".into()))
            }
            IrExpr::Var(name, _) => {
                self.lookup(name).ok_or_else(|| LowerError::UninitRead(name.clone()))
            }
            IrExpr::Temp(n) => {
                self.temps.get(n).copied().ok_or_else(|| LowerError::UninitRead(format!("t{n}")))
            }
            IrExpr::Op { op, sfx, args, loc } => self.eval_op(op.clone(), *sfx, args, site(*loc)),
            IrExpr::Call { name, .. } => Err(LowerError::Unsupported(format!("call to `{name}`"))),
            IrExpr::Unary(op, inner) => self.eval_unary(*op, inner),
            IrExpr::PostIncDec(target, inc) => {
                let old = self.eval(target)?;
                let v = self.want_int(old, "++/-- target")?;
                let new = if *inc { v.wrapping_add(1) } else { v.wrapping_sub(1) };
                self.store(target, Av::Int(new))?;
                Ok(Av::Int(v))
            }
            IrExpr::Binary { op, lhs, rhs, .. } => self.eval_binary(*op, lhs, rhs),
            IrExpr::Assign { op, lhs, rhs, loc } => self.eval_assign(*op, lhs, rhs, site(*loc)),
            IrExpr::Index(base, idx) => {
                let b = self.eval(base)?;
                let (arr, off) = match b {
                    Av::Ptr { arr, off } => (arr, off),
                    _ => return Err(LowerError::Unsupported("index into non-array".into())),
                };
                let i = {
                    let v = self.eval(idx)?;
                    self.want_int(v, "array index")?
                };
                let r = self.read_cell(arr, off + i)?;
                Ok(Av::Iv(r))
            }
            IrExpr::Member { .. } => Err(LowerError::Unsupported("member access".into())),
            IrExpr::Cast(ty, inner) => {
                let v = self.eval(inner)?;
                match (ty, v) {
                    // Int-family casts keep the concrete value (the
                    // interpreter models ints as i64 too).
                    (t, Av::Int(i)) if is_int_type(t) => Ok(Av::Int(i)),
                    // Casts on interval values are representation no-ops.
                    (_, Av::Iv(r)) => Ok(Av::Iv(r)),
                    (_, Av::Ptr { arr, off }) => Ok(Av::Ptr { arr, off }),
                    _ => Err(LowerError::Unsupported(format!("cast to {ty:?}"))),
                }
            }
            IrExpr::Cond(c, t, f) => {
                let cv = self.eval(c)?;
                if self.want_int(cv, "?: condition")? != 0 {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
        }
    }

    fn float_arg(&self, e: &IrExpr) -> Result<f64, LowerError> {
        match e {
            IrExpr::Float { value, .. } => Ok(*value),
            IrExpr::Int { value, .. } => Ok(*value as f64),
            IrExpr::Unary(UnOp::Neg, inner) => Ok(-self.float_arg(inner)?),
            _ => Err(LowerError::Unsupported("non-literal argument to a set op".into())),
        }
    }

    fn eval_op(
        &mut self,
        op: OpKind,
        sfx: Sfx,
        args: &[IrExpr],
        loc: SrcLoc,
    ) -> Result<Av, LowerError> {
        use OpKind::*;
        // Pure arithmetic must carry the program's precision; the
        // constructor opcodes are checked structurally below.
        match op {
            Add | Sub | Mul | Div | Neg | Sqr | Pow | Sqrt | Abs | Min | Max if sfx != self.sfx => {
                return Err(LowerError::Precision(format!("{sfx:?}")));
            }
            _ => {}
        }
        let bin = |lw: &mut Self, args: &[IrExpr], f: fn(u32, u32, u32) -> Insn| {
            let a = {
                let v = lw.eval(&args[0])?;
                lw.want_iv(v, "operand")?
            };
            let b = {
                let v = lw.eval(&args[1])?;
                lw.want_iv(v, "operand")?
            };
            let dst = lw.fresh();
            lw.emit(f(dst, a, b), loc)?;
            Ok(Av::Iv(dst))
        };
        let un = |lw: &mut Self, args: &[IrExpr], f: fn(u32, u32) -> Insn| {
            let a = {
                let v = lw.eval(&args[0])?;
                lw.want_iv(v, "operand")?
            };
            let dst = lw.fresh();
            lw.emit(f(dst, a), loc)?;
            Ok(Av::Iv(dst))
        };
        match op {
            Add => bin(self, args, |dst, a, b| Insn::Add { dst, a, b }),
            Sub => bin(self, args, |dst, a, b| Insn::Sub { dst, a, b }),
            Mul => bin(self, args, |dst, a, b| Insn::Mul { dst, a, b }),
            Div => bin(self, args, |dst, a, b| Insn::Div { dst, a, b }),
            Min => bin(self, args, |dst, a, b| Insn::Min { dst, a, b }),
            Max => bin(self, args, |dst, a, b| Insn::Max { dst, a, b }),
            Neg => un(self, args, |dst, a| Insn::Neg { dst, a }),
            Sqrt => un(self, args, |dst, a| Insn::Sqrt { dst, a }),
            Abs => un(self, args, |dst, a| Insn::Abs { dst, a }),
            Sqr => un(self, args, |dst, a| Insn::Sqr { dst, a }),
            Pow => {
                let a = {
                    let v = self.eval(&args[0])?;
                    self.want_iv(v, "pow base")?
                };
                let n = match self.eval(&args[1]) {
                    Ok(Av::Int(n)) => n,
                    _ => return Err(LowerError::NonConstExponent),
                };
                // Same clamp as the ia_pow_* builtins.
                let n = n.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
                let dst = self.fresh();
                self.emit(Insn::Pow { dst, a, n }, loc)?;
                Ok(Av::Iv(dst))
            }
            Set => {
                if args.len() != 2 {
                    return Err(LowerError::Unsupported("set with wrong arity".into()));
                }
                let lo = self.float_arg(&args[0])?;
                let hi = self.float_arg(&args[1])?;
                if lo > hi {
                    return Err(LowerError::Unsupported(format!("inverted set [{lo}, {hi}]")));
                }
                let r = match self.precision {
                    Precision::F64 => {
                        let v = capi::ia_set_f64(lo, hi);
                        self.f64i_const(&v, loc)?
                    }
                    Precision::Dd => {
                        let v = capi::ia_set_dd(lo, hi);
                        self.ddi_const(&v, loc)?
                    }
                };
                Ok(Av::Iv(r))
            }
            SetDdx => {
                if self.precision != Precision::Dd || args.len() != 4 {
                    return Err(LowerError::Unsupported("set_ddx outside a dd program".into()));
                }
                let lo_hi = self.float_arg(&args[0])?;
                let lo_lo = self.float_arg(&args[1])?;
                let hi_hi = self.float_arg(&args[2])?;
                let hi_lo = self.float_arg(&args[3])?;
                let v = capi::ia_set_ddx(lo_hi, lo_lo, hi_hi, hi_lo);
                let r = self.ddi_const(&v, loc)?;
                Ok(Av::Iv(r))
            }
            SetInt => {
                let n = {
                    let v = self.eval(&args[0])?;
                    self.want_int(v, "set_int argument")?
                };
                let r = match self.precision {
                    Precision::F64 => {
                        let v = capi::ia_set_int_f64(n);
                        self.f64i_const(&v, loc)?
                    }
                    Precision::Dd => {
                        let v = capi::ia_set_int_dd(n);
                        self.ddi_const(&v, loc)?
                    }
                };
                Ok(Av::Iv(r))
            }
            other => Err(LowerError::UnsupportedOp(format!("{other:?}"))),
        }
    }

    fn eval_unary(&mut self, op: UnOp, inner: &IrExpr) -> Result<Av, LowerError> {
        match op {
            UnOp::Deref => {
                let v = self.eval(inner)?;
                match v {
                    Av::Ptr { arr, off } => {
                        let r = self.read_cell(arr, off)?;
                        Ok(Av::Iv(r))
                    }
                    _ => Err(LowerError::Unsupported("deref of non-pointer".into())),
                }
            }
            UnOp::Addr => Err(LowerError::Unsupported("address-of".into())),
            UnOp::PreInc | UnOp::PreDec => {
                let old = self.eval(inner)?;
                let v = self.want_int(old, "++/-- target")?;
                let new = if op == UnOp::PreInc { v.wrapping_add(1) } else { v.wrapping_sub(1) };
                self.store(inner, Av::Int(new))?;
                Ok(Av::Int(new))
            }
            UnOp::Neg => {
                let v = self.eval(inner)?;
                match v {
                    Av::Int(i) => Ok(Av::Int(i.wrapping_neg())),
                    // Unary minus on intervals lowers to ia_neg before
                    // this pass, but stay permissive.
                    Av::Iv(r) => {
                        let dst = self.fresh();
                        self.emit(Insn::Neg { dst, a: r }, expr_site(inner))?;
                        Ok(Av::Iv(dst))
                    }
                    _ => Err(LowerError::Unsupported("unary minus operand".into())),
                }
            }
            UnOp::Plus => self.eval(inner),
            UnOp::Not => {
                let v = self.eval(inner)?;
                let i = self.want_int(v, "! operand")?;
                Ok(Av::Int((i == 0) as i64))
            }
            UnOp::BitNot => {
                let v = self.eval(inner)?;
                let i = self.want_int(v, "~ operand")?;
                Ok(Av::Int(!i))
            }
        }
    }

    fn eval_binary(&mut self, op: BinOp, lhs: &IrExpr, rhs: &IrExpr) -> Result<Av, LowerError> {
        // Short-circuit forms first.
        if matches!(op, BinOp::And | BinOp::Or) {
            let l = {
                let v = self.eval(lhs)?;
                self.want_int(v, "logical operand")?
            };
            return match (op, l != 0) {
                (BinOp::And, false) => Ok(Av::Int(0)),
                (BinOp::Or, true) => Ok(Av::Int(1)),
                _ => {
                    let r = {
                        let v = self.eval(rhs)?;
                        self.want_int(v, "logical operand")?
                    };
                    Ok(Av::Int((r != 0) as i64))
                }
            };
        }
        let l = self.eval(lhs)?;
        let r = self.eval(rhs)?;
        // Pointer arithmetic.
        if let (Av::Ptr { arr, off }, Av::Int(i)) = (l, r) {
            return match op {
                BinOp::Add => Ok(Av::Ptr { arr, off: off + i }),
                BinOp::Sub => Ok(Av::Ptr { arr, off: off - i }),
                _ => Err(LowerError::Unsupported("pointer arithmetic".into())),
            };
        }
        if let (Av::Int(i), Av::Ptr { arr, off }) = (l, r) {
            if op == BinOp::Add {
                return Ok(Av::Ptr { arr, off: off + i });
            }
        }
        let a = self.want_int(l, "integer operand")?;
        let b = self.want_int(r, "integer operand")?;
        let v = match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return Err(LowerError::IntEval("division by zero".into()));
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return Err(LowerError::IntEval("remainder by zero".into()));
                }
                a.wrapping_rem(b)
            }
            BinOp::Shl => a.wrapping_shl(b as u32),
            BinOp::Shr => a.wrapping_shr(b as u32),
            BinOp::Lt => (a < b) as i64,
            BinOp::Le => (a <= b) as i64,
            BinOp::Gt => (a > b) as i64,
            BinOp::Ge => (a >= b) as i64,
            BinOp::Eq => (a == b) as i64,
            BinOp::Ne => (a != b) as i64,
            BinOp::BitAnd => a & b,
            BinOp::BitOr => a | b,
            BinOp::BitXor => a ^ b,
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        };
        Ok(Av::Int(v))
    }

    fn eval_assign(
        &mut self,
        op: AssignOp,
        lhs: &IrExpr,
        rhs: &IrExpr,
        loc: SrcLoc,
    ) -> Result<Av, LowerError> {
        let rv = self.eval(rhs)?;
        let stored = match op.bin_op() {
            None => rv,
            Some(bop) => {
                // Compound assignment: integer targets fold, interval
                // targets emit the operation.
                let old = self.eval(lhs)?;
                match (old, rv) {
                    (Av::Int(_), _) | (_, Av::Int(_)) => {
                        let a = self.want_int(old, "compound target")?;
                        let b = self.want_int(rv, "compound value")?;
                        self.fold_int(bop, a, b)?
                    }
                    (Av::Iv(a), Av::Iv(b)) => {
                        let dst = self.fresh();
                        let insn = match bop {
                            BinOp::Add => Insn::Add { dst, a, b },
                            BinOp::Sub => Insn::Sub { dst, a, b },
                            BinOp::Mul => Insn::Mul { dst, a, b },
                            BinOp::Div => Insn::Div { dst, a, b },
                            _ => {
                                return Err(LowerError::Unsupported(
                                    "compound interval assignment".into(),
                                ))
                            }
                        };
                        self.emit(insn, loc)?;
                        Av::Iv(dst)
                    }
                    _ => return Err(LowerError::Unsupported("compound assignment".into())),
                }
            }
        };
        self.store(lhs, stored)?;
        Ok(stored)
    }

    fn fold_int(&self, op: BinOp, a: i64, b: i64) -> Result<Av, LowerError> {
        let v = match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return Err(LowerError::IntEval("division by zero".into()));
                }
                a.wrapping_div(b)
            }
            _ => return Err(LowerError::Unsupported("compound integer assignment".into())),
        };
        Ok(Av::Int(v))
    }

    /// Stores `v` into an lvalue: variable, temporary, array cell, or
    /// pointer deref.
    fn store(&mut self, lhs: &IrExpr, v: Av) -> Result<(), LowerError> {
        match lhs {
            IrExpr::Var(name, _) => self.set_var(name, v),
            IrExpr::Temp(n) => {
                self.temps.insert(*n, v);
                Ok(())
            }
            IrExpr::Index(base, idx) => {
                let b = self.eval(base)?;
                let (arr, off) = match b {
                    Av::Ptr { arr, off } => (arr, off),
                    _ => return Err(LowerError::Unsupported("store into non-array".into())),
                };
                let i = {
                    let iv = self.eval(idx)?;
                    self.want_int(iv, "store index")?
                };
                match v {
                    Av::Iv(r) => self.write_cell(arr, off + i, r),
                    Av::Int(_) => Err(LowerError::Unsupported("integer array store".into())),
                    _ => Err(LowerError::UninitRead("stored value".into())),
                }
            }
            IrExpr::Unary(UnOp::Deref, inner) => {
                let b = self.eval(inner)?;
                match (b, v) {
                    (Av::Ptr { arr, off }, Av::Iv(r)) => self.write_cell(arr, off, r),
                    _ => Err(LowerError::Unsupported("deref store".into())),
                }
            }
            _ => Err(LowerError::Unsupported("unsupported lvalue".into())),
        }
    }

    // --- statements -----------------------------------------------------

    fn exec_stmt(&mut self, s: &IrStmt) -> Result<Flow, LowerError> {
        self.step()?;
        match s {
            IrStmt::Def { temp, init, .. } => {
                let v = self.eval(init)?;
                self.temps.insert(*temp, v);
                Ok(Flow::Normal)
            }
            IrStmt::Decl { ty, name, init } => {
                self.exec_decl(ty, name, init.as_ref())?;
                Ok(Flow::Normal)
            }
            IrStmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            IrStmt::Block(stmts) => {
                self.scopes.push(HashMap::new());
                let mut flow = Flow::Normal;
                for st in stmts {
                    match self.exec_stmt(st)? {
                        Flow::Normal => {}
                        f => {
                            flow = f;
                            break;
                        }
                    }
                }
                self.scopes.pop();
                Ok(flow)
            }
            IrStmt::If { cond, then_branch, else_branch } => {
                let c = {
                    let v = self.eval(cond)?;
                    self.want_int(v, "if condition")?
                };
                if c != 0 {
                    self.exec_stmt(then_branch)
                } else if let Some(e) = else_branch {
                    self.exec_stmt(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            IrStmt::For { init, cond, step, body } => {
                self.scopes.push(HashMap::new());
                let result = (|| {
                    if let Some(i) = init {
                        match self.exec_stmt(i)? {
                            Flow::Normal => {}
                            _ => {
                                return Err(LowerError::Unsupported(
                                    "control flow in for-init".into(),
                                ))
                            }
                        }
                    }
                    loop {
                        self.step()?;
                        if let Some(c) = cond {
                            let v = self.eval(c)?;
                            if self.want_int(v, "for condition")? == 0 {
                                break;
                            }
                        }
                        match self.exec_stmt(body)? {
                            Flow::Normal | Flow::Continue => {}
                            Flow::Break => break,
                            Flow::Return(v) => return Ok(Flow::Return(v)),
                        }
                        if let Some(st) = step {
                            self.eval(st)?;
                        }
                    }
                    Ok(Flow::Normal)
                })();
                self.scopes.pop();
                result
            }
            IrStmt::While { cond, body } => loop {
                self.step()?;
                let v = self.eval(cond)?;
                if self.want_int(v, "while condition")? == 0 {
                    return Ok(Flow::Normal);
                }
                match self.exec_stmt(body)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => return Ok(Flow::Normal),
                    Flow::Return(v) => return Ok(Flow::Return(v)),
                }
            },
            IrStmt::DoWhile { body, cond } => loop {
                self.step()?;
                match self.exec_stmt(body)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => return Ok(Flow::Normal),
                    Flow::Return(v) => return Ok(Flow::Return(v)),
                }
                let v = self.eval(cond)?;
                if self.want_int(v, "do-while condition")? == 0 {
                    return Ok(Flow::Normal);
                }
            },
            IrStmt::Switch { cond, arms } => {
                let v = {
                    let c = self.eval(cond)?;
                    self.want_int(c, "switch condition")?
                };
                let start = arms
                    .iter()
                    .position(|a| a.label == Some(v))
                    .or_else(|| arms.iter().position(|a| a.label.is_none()));
                let Some(start) = start else { return Ok(Flow::Normal) };
                for arm in &arms[start..] {
                    for st in &arm.body {
                        match self.exec_stmt(st)? {
                            Flow::Normal => {}
                            Flow::Break => return Ok(Flow::Normal),
                            f => return Ok(f),
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            IrStmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Av::Void,
                };
                Ok(Flow::Return(v))
            }
            IrStmt::Break => Ok(Flow::Break),
            IrStmt::Continue => Ok(Flow::Continue),
            IrStmt::Pragma(_) | IrStmt::Empty => Ok(Flow::Normal),
        }
    }

    fn exec_decl(
        &mut self,
        ty: &Type,
        name: &str,
        init: Option<&IrExpr>,
    ) -> Result<(), LowerError> {
        let v = match ty {
            Type::Array(elem, len) if is_interval_named(elem, self.precision) => {
                if init.is_some() {
                    return Err(LowerError::Unsupported("array initializer".into()));
                }
                let Some(len) = len else {
                    return Err(LowerError::Unsupported("unsized local array".into()));
                };
                let arr = self.arrays.len();
                self.arrays.push(ArrObj {
                    name: name.to_string(),
                    cells: vec![None; *len],
                    uniform: None,
                    harvest: false,
                });
                Av::Ptr { arr, off: 0 }
            }
            t if is_int_type(t) || is_interval_named(t, self.precision) => match init {
                Some(e) => self.eval(e)?,
                None => Av::Uninit,
            },
            other => return Err(LowerError::Unsupported(format!("declaration of type {other:?}"))),
        };
        self.scopes.last_mut().expect("scope stack never empty").insert(name.to_string(), v);
        Ok(())
    }
}
