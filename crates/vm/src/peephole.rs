//! The bytecode peephole pass: endpoint-exact rewrites plus
//! liveness-based register renumbering.
//!
//! Every rewrite here preserves *every endpoint bit* of every program
//! output — the pass runs between lowering and the differential
//! interpreter check, so a rewrite that merely preserved mathematical
//! values (or even tightened them) would break the trust anchor. The
//! admitted rewrites and the exactness argument for each:
//!
//! * **`Add(y, Neg(x)) → Sub(y, x)`** and **`Sub(y, Neg(x)) → Add(y, x)`**
//!   — the interval `sub` kernel *is* `add` with the subtrahend's
//!   endpoint columns swapped (`igen_interval::F64I::sub`, `DdI::sub`,
//!   and the packed twins), and interval negation is the exact,
//!   rounding-free column swap. Substituting feeds the same bits to the
//!   same IEEE operation sequence in the same operand order, so the
//!   result is bit-identical — including NaN payloads. The *commuted*
//!   form `Add(Neg(x), y)` is deliberately left alone: it would swap
//!   the operand order of the underlying `add_ru`, which is only
//!   value-commutative (two NaN operands with different payloads may
//!   propagate differently), and "almost bit-identical" is not a
//!   rewrite this pass is allowed to make.
//! * **`Mul(x, x) → Sqr(x)`** — only when `x` is *statically strictly
//!   positive* (see [`strict-positive lattice`](#strict-positive-lattice)
//!   below). The dependency-aware square differs from self-multiplication
//!   on zero-straddling intervals (`[-1,2]² = [0,4]` vs `[-2,4]`) and
//!   even at `lo == 0` the two produce differently signed zero lower
//!   endpoints; for `0 < lo ≤ hi < ∞` both reduce to
//!   `[RD(lo·lo), RU(hi·hi)]` computed by the same directed-rounding
//!   primitives, which is pinned by this module's property tests. The
//!   rewrite is **f64-only**: the double-double kernels agree in value
//!   but can disagree in the zero *sign* of the low residual component
//!   (`mul` of `[1,1]` carries a `-0.0` low word where `sqr` carries
//!   `+0.0`), and a signed-zero bit is still a bit.
//! * **duplicate-constant dedup** — pool entries are merged by bit
//!   pattern and redundant `Const` materializations forward to the
//!   first; reading the same pool bits from a different register index
//!   cannot change any result bit.
//! * **dead-code elimination and liveness-based register renumbering**
//!   — removing instructions no output depends on and renaming
//!   registers never changes any computed value; renumbering reuses
//!   dead scratch registers so the tile executor's register bank stays
//!   cache-resident (`regs 62 → 12` on the golden Hénon kernel).
//! * **accumulate dispatch fusion** — an adjacent
//!   `Mul(t, a, b); Add(d, acc, t)` pair whose product register `t` has
//!   no other reader becomes `MulAdd(d, a, b, acc)` (likewise
//!   `Sub(d, acc, t)` → `MulSub`). The superinstruction executes the
//!   *same two rounded interval operations in the same operand order* —
//!   the product stays the right operand of the accumulate — so every
//!   endpoint bit is preserved; only the temp register round-trip and
//!   the second dispatch disappear. The mirrored form
//!   `Add(d, t, acc)` (product on the left) is left alone: encoding it
//!   would either swap `add_ru` operand order (only value-commutative)
//!   or double the opcode surface for a pattern the accumulate idiom
//!   never produces.
//!
//! What the pass must **not** do, ever: contract `Mul`+`Add` into an
//! FMA. A fused multiply-add rounds once where the source rounds twice,
//! so the fused result differs in the last bit — sound, but no longer
//! the bits the differential interpreter computes. `MulAdd` above is
//! emphatically not that: it fuses the *dispatch*, never the rounding.
//! The same goes for reassociation: interval `add` is not associative
//! at the bit level.
//!
//! # Strict-positive lattice
//!
//! `Mul(x,x) → Sqr(x)` needs `0 < lo(x)` *and* NaN/∞-freedom (an
//! infinite endpoint can turn an EFT residual into a NaN on one side
//! but not the other). The pass proves it with a tiny forward
//! analysis; a register is strictly positive iff it is defined by:
//!
//! * `Const` whose four pool components are finite with `lo_hi > 0`;
//! * `Sqrt(a)`, `Min(a,b)`, `Max(a,b)`, `Add(a,b)`, `Mul(a,b)` of
//!   strictly positive operands are **not all admitted**: only `Sqrt`,
//!   `Min` and `Max` are closed under (0, ∞) *without overflow or
//!   underflow to zero*. `Add` can overflow to `[MAX, +∞]` and `Mul`
//!   can round its lower product down to `+0`, both of which exit the
//!   provable region, so they stay out of the lattice.
//!
//! The lattice is deliberately tiny: it exists to make the rewrite
//! *provably* exact, not to maximize hit rate.

use crate::bytecode::{DebugMap, Insn, PoolConst, Precision, Program, SrcLoc};
use igen_telemetry::Counter;

/// Constant-pool entries merged plus redundant `Const` materializations
/// forwarded, across all [`peephole`] calls. Zero-sized no-op unless
/// the `telemetry` feature is on — as are the five counters below.
pub static VM_PEEPHOLE_DEDUP: Counter = Counter::new("vm.peephole.dedup");
/// `Add`/`Sub`-of-`Neg` strength reductions applied.
pub static VM_PEEPHOLE_NEG_FOLD: Counter = Counter::new("vm.peephole.neg_fold");
/// `Mul(x,x)` → `Sqr(x)` strength reductions applied.
pub static VM_PEEPHOLE_SQR: Counter = Counter::new("vm.peephole.sqr");
/// Dead instructions removed.
pub static VM_PEEPHOLE_DCE: Counter = Counter::new("vm.peephole.dce");
/// `Mul`+accumulate pairs fused into `MulAdd`/`MulSub`.
pub static VM_PEEPHOLE_FUSE: Counter = Counter::new("vm.peephole.fuse");
/// Registers reclaimed by the liveness renumbering.
pub static VM_PEEPHOLE_RENUMBER: Counter = Counter::new("vm.peephole.renumber");

/// What [`peephole`] did to a program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeepholeStats {
    /// `Add(y, Neg(x))` strength-reduced to `Sub(y, x)`.
    pub neg_add_to_sub: usize,
    /// `Sub(y, Neg(x))` strength-reduced to `Add(y, x)`.
    pub neg_sub_to_add: usize,
    /// `Mul(x, x)` with provably strictly positive `x` reduced to
    /// `Sqr(x)`.
    pub mul_to_sqr: usize,
    /// Adjacent `Mul`+`Add`/`Sub` pairs fused into `MulAdd`/`MulSub`
    /// superinstructions (dispatch fusion; both roundings preserved).
    pub mul_acc_fused: usize,
    /// Duplicate pool entries merged plus redundant `Const`
    /// materializations forwarded.
    pub consts_deduped: usize,
    /// Instructions removed as dead (orphaned `Neg`s, forwarded
    /// `Const`s, anything no output depends on).
    pub insns_removed: usize,
    /// Registers saved by the liveness renumbering
    /// (`n_regs before - n_regs after`).
    pub regs_saved: u32,
}

impl PeepholeStats {
    /// Total counted rewrites (the telemetry increment).
    pub fn rewrites(&self) -> usize {
        self.neg_add_to_sub
            + self.neg_sub_to_add
            + self.mul_to_sqr
            + self.mul_acc_fused
            + self.consts_deduped
            + self.insns_removed
    }
}

/// Runs the peephole pass; returns the rewritten program and what was
/// done. The output satisfies [`Program::validate`] (registers may be
/// reused, but every read still follows a write); it is generally *not*
/// single-assignment, so [`Program::validate_ssa`] no longer applies.
///
/// If the input carries a [`DebugMap`], the output's map stays parallel
/// to the rewritten stream: a strength-reduced instruction keeps its
/// own site, a fused `MulAdd`/`MulSub` takes the *accumulate*'s site
/// (that is the instruction whose destination survives), and dropped
/// instructions drop their sites.
///
/// # Panics
///
/// Panics if `p` itself fails [`Program::validate`] — the pass only
/// transforms well-formed programs.
pub fn peephole(p: &Program) -> (Program, PeepholeStats) {
    p.validate().expect("peephole input must validate");
    let mut stats = PeepholeStats::default();

    // Provenance side-table, carried in lock-step with the instruction
    // stream through every stage below. A program without a debug map
    // stays without one.
    let track_sites = !p.debug.sites.is_empty();
    let in_sites: Vec<SrcLoc> = if track_sites {
        p.debug.sites.clone() // validate() pinned the length
    } else {
        vec![SrcLoc::default(); p.insns.len()]
    };

    // 1. Pool dedup by bit pattern.
    let (consts, pool_remap, pool_merged) = dedup_pool(&p.consts);
    stats.consts_deduped += pool_merged;

    // 2. Forward rewrite pass: operand forwarding for redundant Const
    //    materializations, Neg+Add/Sub strength reduction, guarded
    //    Mul(x,x)→Sqr. `alias` forwards a register to an equivalent
    //    earlier one; `def` remembers each register's *current*
    //    defining instruction (registers are single-assignment on
    //    input, so "current" is unambiguous).
    let n = p.n_regs as usize;
    let mut alias: Vec<u32> = (0..p.n_regs).collect();
    let mut def: Vec<Option<Insn>> = vec![None; n];
    // First materialization of each (deduped) pool index.
    let mut first_const: Vec<Option<u32>> = vec![None; consts.len()];
    let mut strict_pos = vec![false; n];
    let mut insns: Vec<Insn> = Vec::with_capacity(p.insns.len());
    let mut sites: Vec<SrcLoc> = Vec::with_capacity(p.insns.len());
    for (insn, site) in p.insns.iter().zip(&in_sites) {
        let fwd = |r: u32, alias: &[u32]| alias[r as usize];
        let mut rewritten = match *insn {
            Insn::Const { dst, idx } => Insn::Const { dst, idx: pool_remap[idx as usize] },
            Insn::Add { dst, a, b } => Insn::Add { dst, a: fwd(a, &alias), b: fwd(b, &alias) },
            Insn::Sub { dst, a, b } => Insn::Sub { dst, a: fwd(a, &alias), b: fwd(b, &alias) },
            Insn::Mul { dst, a, b } => Insn::Mul { dst, a: fwd(a, &alias), b: fwd(b, &alias) },
            Insn::Div { dst, a, b } => Insn::Div { dst, a: fwd(a, &alias), b: fwd(b, &alias) },
            Insn::Min { dst, a, b } => Insn::Min { dst, a: fwd(a, &alias), b: fwd(b, &alias) },
            Insn::Max { dst, a, b } => Insn::Max { dst, a: fwd(a, &alias), b: fwd(b, &alias) },
            Insn::Neg { dst, a } => Insn::Neg { dst, a: fwd(a, &alias) },
            Insn::Sqrt { dst, a } => Insn::Sqrt { dst, a: fwd(a, &alias) },
            Insn::Abs { dst, a } => Insn::Abs { dst, a: fwd(a, &alias) },
            Insn::Sqr { dst, a } => Insn::Sqr { dst, a: fwd(a, &alias) },
            Insn::Pow { dst, a, n } => Insn::Pow { dst, a: fwd(a, &alias), n },
            // Never produced by lowering, but forwarded for closure
            // (running the pass on its own output must be sound).
            Insn::MulAdd { dst, a, b, acc } => {
                Insn::MulAdd { dst, a: fwd(a, &alias), b: fwd(b, &alias), acc: fwd(acc, &alias) }
            }
            Insn::MulSub { dst, a, b, acc } => {
                Insn::MulSub { dst, a: fwd(a, &alias), b: fwd(b, &alias), acc: fwd(acc, &alias) }
            }
        };

        // Redundant Const: forward to the first materialization.
        if let Insn::Const { dst, idx } = rewritten {
            match first_const[idx as usize] {
                Some(reg) => {
                    alias[dst as usize] = reg;
                    stats.consts_deduped += 1;
                    continue; // the instruction itself is dropped
                }
                None => first_const[idx as usize] = Some(dst),
            }
        }

        // Strength reductions.
        match rewritten {
            // a + (-x) → a - x: `sub` is `add` with the subtrahend's
            // columns swapped, bit for bit, in this operand order.
            Insn::Add { dst, a, b } => {
                if let Some(Insn::Neg { a: x, .. }) = def[b as usize] {
                    rewritten = Insn::Sub { dst, a, b: x };
                    stats.neg_add_to_sub += 1;
                }
            }
            // a - (-x) → a + x, by the same column-swap identity.
            Insn::Sub { dst, a, b } => {
                if let Some(Insn::Neg { a: x, .. }) = def[b as usize] {
                    rewritten = Insn::Add { dst, a, b: x };
                    stats.neg_sub_to_add += 1;
                }
            }
            // x * x → sqr(x) only under the strict-positive proof, and
            // only at f64 precision: the double-double kernels disagree
            // in the *low* component's zero sign (mul's directed
            // product of [1,1] carries a -0.0 residual where sqr's
            // carries +0.0), so the rewrite is not bit-exact for dd.
            Insn::Mul { dst, a, b }
                if a == b && strict_pos[a as usize] && p.precision == Precision::F64 =>
            {
                rewritten = Insn::Sqr { dst, a };
                stats.mul_to_sqr += 1;
            }
            _ => {}
        }

        // Strict-positive transfer function (see the module docs).
        let sp = match rewritten {
            Insn::Const { idx, .. } => {
                let c = &consts[idx as usize];
                c.lo_hi > 0.0
                    && c.lo_hi.is_finite()
                    && c.lo_lo.is_finite()
                    && c.hi_hi.is_finite()
                    && c.hi_lo.is_finite()
            }
            Insn::Sqrt { a, .. } => strict_pos[a as usize],
            Insn::Min { a, b, .. } | Insn::Max { a, b, .. } => {
                strict_pos[a as usize] && strict_pos[b as usize]
            }
            _ => false,
        };
        strict_pos[rewritten.dst() as usize] = sp;
        def[rewritten.dst() as usize] = Some(rewritten);
        insns.push(rewritten);
        sites.push(*site);
    }
    let outputs: Vec<(String, u32)> =
        p.outputs.iter().map(|o| (o.label.clone(), alias[o.reg as usize])).collect();

    // 3. Dead-code elimination (backward liveness).
    let mut live = vec![false; n];
    for (_, r) in &outputs {
        live[*r as usize] = true;
    }
    let mut keep = vec![false; insns.len()];
    for (i, insn) in insns.iter().enumerate().rev() {
        if !live[insn.dst() as usize] {
            continue;
        }
        keep[i] = true;
        for r in srcs(insn) {
            live[r as usize] = true;
        }
    }
    let before = insns.len();
    let insns: Vec<Insn> =
        insns.into_iter().zip(&keep).filter_map(|(i, k)| k.then_some(i)).collect();
    let sites: Vec<SrcLoc> =
        sites.into_iter().zip(&keep).filter_map(|(s, k)| k.then_some(s)).collect();
    stats.insns_removed += before - insns.len();

    // 4. Accumulate dispatch fusion on the (still single-assignment)
    //    stream: Mul(t,a,b) immediately followed by Add(d,acc,t) or
    //    Sub(d,acc,t), where t has no other reader and is not an
    //    output, fuses into one superinstruction. The product stays the
    //    right operand of the accumulate, so both rounded operations
    //    are unchanged — see the module docs.
    let mut uses = vec![0usize; n];
    for insn in &insns {
        for r in srcs(insn) {
            uses[r as usize] += 1;
        }
    }
    let mut is_output = vec![false; n];
    for (_, r) in &outputs {
        is_output[*r as usize] = true;
    }
    let mut fused: Vec<Insn> = Vec::with_capacity(insns.len());
    let mut fused_sites: Vec<SrcLoc> = Vec::with_capacity(sites.len());
    let mut i = 0;
    while i < insns.len() {
        if let Insn::Mul { dst: t, a, b } = insns[i] {
            if i + 1 < insns.len() && uses[t as usize] == 1 && !is_output[t as usize] {
                let fuse = match insns[i + 1] {
                    Insn::Add { dst, a: acc, b: prod } if prod == t && acc != t => {
                        Some(Insn::MulAdd { dst, a, b, acc })
                    }
                    Insn::Sub { dst, a: acc, b: prod } if prod == t && acc != t => {
                        Some(Insn::MulSub { dst, a, b, acc })
                    }
                    _ => None,
                };
                if let Some(f) = fuse {
                    fused.push(f);
                    // The superinstruction's destination is the
                    // accumulate's; so is its blame site.
                    fused_sites.push(sites[i + 1]);
                    stats.mul_acc_fused += 1;
                    i += 2;
                    continue;
                }
            }
        }
        fused.push(insns[i]);
        fused_sites.push(sites[i]);
        i += 1;
    }
    let insns = fused;
    let sites = fused_sites;

    // 5. Liveness-based renumbering. Layout: inputs keep 0..n_inputs,
    //    each surviving Const gets a pinned register right after (so
    //    the prepared executor can fill a constant bank once and trust
    //    it for the program's lifetime), and everything else shares a
    //    reused scratch region sized by the maximum number of
    //    simultaneously live temporaries.
    let n_inputs = p.n_inputs;
    let n_const_regs = insns.iter().filter(|i| matches!(i, Insn::Const { .. })).count() as u32;
    // Hoist constants to the front: they have no operands and pinned
    // destinations, so execution order is preserved for everything that
    // reads them, and the dump shows the constant bank contiguously.
    // Sites partition along with their instructions.
    type SitedInsns = Vec<(Insn, SrcLoc)>;
    let (const_part, body_part): (SitedInsns, SitedInsns) =
        insns.into_iter().zip(sites).partition(|(i, _)| matches!(i, Insn::Const { .. }));
    let (const_insns, const_sites): (Vec<Insn>, Vec<SrcLoc>) = const_part.into_iter().unzip();
    let (body, body_sites): (Vec<Insn>, Vec<SrcLoc>) = body_part.into_iter().unzip();

    // Last read of each (old) register over the body + outputs.
    let mut last_use = vec![0usize; n];
    for (i, insn) in body.iter().enumerate() {
        for r in srcs(insn) {
            last_use[r as usize] = i + 1; // body positions are 1-based;
        }
    }
    for (_, r) in &outputs {
        last_use[*r as usize] = usize::MAX; // outputs are read at the end
    }

    let mut map: Vec<Option<u32>> = vec![None; n];
    for r in 0..n_inputs {
        map[r as usize] = Some(r);
    }
    let mut new_consts: Vec<Insn> = Vec::with_capacity(const_insns.len());
    for (next_const, insn) in (n_inputs..).zip(const_insns) {
        let Insn::Const { dst, idx } = insn else { unreachable!("partitioned") };
        map[dst as usize] = Some(next_const);
        new_consts.push(Insn::Const { dst: next_const, idx });
    }
    let scratch_base = n_inputs + n_const_regs;
    let mut free: Vec<u32> = Vec::new();
    let mut high_water = scratch_base;
    let mut new_body: Vec<Insn> = Vec::with_capacity(body.len());
    for (i, insn) in body.iter().enumerate() {
        let pos = i + 1;
        let mapped: Vec<u32> = srcs(insn)
            .into_iter()
            .map(|r| map[r as usize].expect("validated: read after write"))
            .collect();
        // Release scratch slots whose old register dies at this read.
        for r in srcs(insn) {
            if last_use[r as usize] == pos {
                if let Some(slot) = map[r as usize] {
                    if slot >= scratch_base {
                        free.push(slot);
                        map[r as usize] = None;
                    }
                }
            }
        }
        let dst_slot = free.pop().unwrap_or_else(|| {
            let s = high_water;
            high_water += 1;
            s
        });
        map[insn.dst() as usize] = Some(dst_slot);
        new_body.push(with_regs(insn, dst_slot, &mapped));
    }

    let out = Program {
        name: p.name.clone(),
        precision: p.precision,
        n_inputs: p.n_inputs,
        n_regs: high_water.max(scratch_base),
        consts,
        insns: new_consts.into_iter().chain(new_body).collect(),
        inputs: p.inputs.clone(),
        outputs: outputs
            .into_iter()
            .map(|(label, r)| crate::bytecode::OutputSlot {
                label,
                reg: map[r as usize].expect("output register is live"),
            })
            .collect(),
        debug: if track_sites {
            DebugMap { sites: const_sites.into_iter().chain(body_sites).collect() }
        } else {
            DebugMap::default()
        },
    };
    stats.regs_saved = p.n_regs.saturating_sub(out.n_regs);
    debug_assert_eq!(out.validate(), Ok(()));
    VM_PEEPHOLE_DEDUP.add(stats.consts_deduped as u64);
    VM_PEEPHOLE_NEG_FOLD.add((stats.neg_add_to_sub + stats.neg_sub_to_add) as u64);
    VM_PEEPHOLE_SQR.add(stats.mul_to_sqr as u64);
    VM_PEEPHOLE_DCE.add(stats.insns_removed as u64);
    VM_PEEPHOLE_FUSE.add(stats.mul_acc_fused as u64);
    VM_PEEPHOLE_RENUMBER.add(stats.regs_saved as u64);
    (out, stats)
}

/// Merges pool entries with identical bit patterns; returns the new
/// pool, the old→new index map, and how many entries merged away.
fn dedup_pool(pool: &[PoolConst]) -> (Vec<PoolConst>, Vec<u32>, usize) {
    let mut out: Vec<PoolConst> = Vec::with_capacity(pool.len());
    let mut keys: Vec<[u64; 4]> = Vec::with_capacity(pool.len());
    let mut remap = Vec::with_capacity(pool.len());
    for c in pool {
        let key = c.bits();
        match keys.iter().position(|k| *k == key) {
            Some(i) => remap.push(i as u32),
            None => {
                remap.push(out.len() as u32);
                keys.push(key);
                out.push(*c);
            }
        }
    }
    let merged = pool.len() - out.len();
    (out, remap, merged)
}

/// Source registers of an instruction, in operand order.
pub(crate) fn srcs(insn: &Insn) -> Vec<u32> {
    match *insn {
        Insn::Const { .. } => vec![],
        Insn::Add { a, b, .. }
        | Insn::Sub { a, b, .. }
        | Insn::Mul { a, b, .. }
        | Insn::Div { a, b, .. }
        | Insn::Min { a, b, .. }
        | Insn::Max { a, b, .. } => vec![a, b],
        Insn::Neg { a, .. }
        | Insn::Sqrt { a, .. }
        | Insn::Abs { a, .. }
        | Insn::Sqr { a, .. }
        | Insn::Pow { a, .. } => vec![a],
        Insn::MulAdd { a, b, acc, .. } | Insn::MulSub { a, b, acc, .. } => vec![a, b, acc],
    }
}

/// Rebuilds `insn` with a new destination and remapped sources (in the
/// order [`srcs`] returned them).
fn with_regs(insn: &Insn, dst: u32, s: &[u32]) -> Insn {
    match *insn {
        Insn::Const { idx, .. } => Insn::Const { dst, idx },
        Insn::Add { .. } => Insn::Add { dst, a: s[0], b: s[1] },
        Insn::Sub { .. } => Insn::Sub { dst, a: s[0], b: s[1] },
        Insn::Mul { .. } => Insn::Mul { dst, a: s[0], b: s[1] },
        Insn::Div { .. } => Insn::Div { dst, a: s[0], b: s[1] },
        Insn::Min { .. } => Insn::Min { dst, a: s[0], b: s[1] },
        Insn::Max { .. } => Insn::Max { dst, a: s[0], b: s[1] },
        Insn::Neg { .. } => Insn::Neg { dst, a: s[0] },
        Insn::Sqrt { .. } => Insn::Sqrt { dst, a: s[0] },
        Insn::Abs { .. } => Insn::Abs { dst, a: s[0] },
        Insn::Sqr { .. } => Insn::Sqr { dst, a: s[0] },
        Insn::Pow { n, .. } => Insn::Pow { dst, a: s[0], n },
        Insn::MulAdd { .. } => Insn::MulAdd { dst, a: s[0], b: s[1], acc: s[2] },
        Insn::MulSub { .. } => Insn::MulSub { dst, a: s[0], b: s[1], acc: s[2] },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{OutputSlot, Precision};
    use crate::exec::run_scalar;
    use igen_interval::{DdI, F64I};

    fn prog(
        n_inputs: u32,
        n_regs: u32,
        consts: Vec<PoolConst>,
        insns: Vec<Insn>,
        out: u32,
    ) -> Program {
        let p = Program {
            name: "t".into(),
            precision: Precision::F64,
            n_inputs,
            n_regs,
            consts,
            insns,
            inputs: (0..n_inputs).map(|i| format!("x{i}")).collect(),
            outputs: vec![OutputSlot { label: "return".into(), reg: out }],
            debug: DebugMap::default(),
        };
        p.validate().expect("test program validates");
        p
    }

    #[test]
    fn debug_sites_follow_instructions_through_every_stage() {
        // r3 = -x1 @6:1; r4 = x0 + r3 @7:5; r5 = x0 * x1 @8:5;
        // r6 = r4 + r5 @9:5  — exercises strength reduction (Neg dies),
        // fusion (Mul+Add → MulAdd taking the Add's site), and
        // renumbering, with a distinct site on every instruction.
        let mut p = prog(
            2,
            7,
            vec![],
            vec![
                Insn::Neg { dst: 2, a: 1 },
                Insn::Add { dst: 3, a: 0, b: 2 },
                Insn::Mul { dst: 4, a: 0, b: 1 },
                Insn::Add { dst: 5, a: 3, b: 4 },
            ],
            5,
        );
        let s = |line, col| SrcLoc { line, col };
        p.debug.sites = vec![s(6, 1), s(7, 5), s(8, 5), s(9, 5)];
        p.validate().expect("debug map parallel");
        let (q, st) = peephole(&p);
        assert_eq!(st.neg_add_to_sub, 1);
        assert_eq!(st.mul_acc_fused, 1);
        assert_eq!(q.validate(), Ok(()));
        assert_eq!(q.debug.sites.len(), q.insns.len());
        // The strength-reduced Sub keeps the Add's own site; the fused
        // MulAdd takes the accumulate's site, not the Mul's.
        let sub_at = q.insns.iter().position(|i| matches!(i, Insn::Sub { .. })).unwrap();
        assert_eq!(q.debug.site(sub_at), s(7, 5));
        let fused_at = q.insns.iter().position(|i| matches!(i, Insn::MulAdd { .. })).unwrap();
        assert_eq!(q.debug.site(fused_at), s(9, 5));
        // A program without a debug map stays without one.
        let bare = prog(2, 3, vec![], vec![Insn::Add { dst: 2, a: 0, b: 1 }], 2);
        let (q, _) = peephole(&bare);
        assert!(q.debug.sites.is_empty());
    }

    #[test]
    fn neg_add_becomes_sub_and_orphan_neg_dies() {
        // r2 = -x1; r3 = x0 + r2  ⇒  r3 = x0 - x1
        let p = prog(
            2,
            4,
            vec![],
            vec![Insn::Neg { dst: 2, a: 1 }, Insn::Add { dst: 3, a: 0, b: 2 }],
            3,
        );
        let (q, st) = peephole(&p);
        assert_eq!(st.neg_add_to_sub, 1);
        assert_eq!(st.insns_removed, 1, "the Neg is dead after the rewrite");
        assert_eq!(q.insns, vec![Insn::Sub { dst: 2, a: 0, b: 1 }]);
        for (a, b) in [(1.5, 2.5), (-3.0, 0.25), (0.0, -0.0)] {
            let x = [F64I::new(a, a.max(b)).unwrap(), F64I::new(b.min(a), b.max(a)).unwrap()];
            let want = run_scalar::<F64I>(&p, &x)[0];
            let got = run_scalar::<F64I>(&q, &x)[0];
            assert_eq!(want.lo().to_bits(), got.lo().to_bits());
            assert_eq!(want.hi().to_bits(), got.hi().to_bits());
        }
    }

    #[test]
    fn commuted_neg_add_is_left_alone() {
        // r2 = -x1; r3 = r2 + x0: rewriting would swap add_ru operand
        // order, which is only value-commutative.
        let p = prog(
            2,
            4,
            vec![],
            vec![Insn::Neg { dst: 2, a: 1 }, Insn::Add { dst: 3, a: 2, b: 0 }],
            3,
        );
        let (q, st) = peephole(&p);
        assert_eq!(st.neg_add_to_sub, 0);
        assert!(q.insns.iter().any(|i| matches!(i, Insn::Neg { .. })));
    }

    #[test]
    fn sub_of_neg_becomes_add() {
        let p = prog(
            2,
            4,
            vec![],
            vec![Insn::Neg { dst: 2, a: 1 }, Insn::Sub { dst: 3, a: 0, b: 2 }],
            3,
        );
        let (q, st) = peephole(&p);
        assert_eq!(st.neg_sub_to_add, 1);
        assert_eq!(q.insns, vec![Insn::Add { dst: 2, a: 0, b: 1 }]);
    }

    #[test]
    fn mul_self_rewrites_only_under_the_strict_positive_proof() {
        // sqrt(c) with c = [2, 3] is strictly positive ⇒ rewrite fires.
        let pos = prog(
            0,
            3,
            vec![PoolConst::f64_pair(2.0, 3.0)],
            vec![
                Insn::Const { dst: 0, idx: 0 },
                Insn::Sqrt { dst: 1, a: 0 },
                Insn::Mul { dst: 2, a: 1, b: 1 },
            ],
            2,
        );
        let (q, st) = peephole(&pos);
        assert_eq!(st.mul_to_sqr, 1);
        assert!(q.insns.iter().any(|i| matches!(i, Insn::Sqr { .. })));

        // An input has unknown sign ⇒ no rewrite (mul(x,x) ≠ sqr(x)
        // on zero-straddling intervals).
        let unknown = prog(1, 2, vec![], vec![Insn::Mul { dst: 1, a: 0, b: 0 }], 1);
        let (q, st) = peephole(&unknown);
        assert_eq!(st.mul_to_sqr, 0);
        assert!(q.insns.iter().any(|i| matches!(i, Insn::Mul { .. })));

        // A constant touching zero ⇒ no rewrite (signed-zero endpoints
        // differ between mul(x,x) and sqr(x)).
        let zero = prog(
            0,
            2,
            vec![PoolConst::f64_pair(0.0, 2.0)],
            vec![Insn::Const { dst: 0, idx: 0 }, Insn::Mul { dst: 1, a: 0, b: 0 }],
            1,
        );
        let (_, st) = peephole(&zero);
        assert_eq!(st.mul_to_sqr, 0);
    }

    /// The exactness claim behind Mul(x,x)→Sqr: for `0 < lo ≤ hi < ∞`,
    /// f64 self-multiplication and the dependency-aware square agree
    /// bit for bit, across magnitude extremes (subnormal underflow on
    /// the low product, overflow on the high). The dd pair does NOT —
    /// `mul([1,1],[1,1])` carries a `-0.0` low residual where `sqr`
    /// carries `+0.0` — which is why the pass gates the rewrite to f64;
    /// that counterexample is pinned below.
    #[test]
    fn mul_self_equals_sqr_bitwise_on_strictly_positive_intervals() {
        let mut xs: Vec<(f64, f64)> = vec![
            (1.0, 1.0),
            (0.5, 2.0),
            (1e-200, 1e-150),
            (4.9e-324, 1e-300), // lo² underflows to zero
            (1e150, 1.7e308),   // hi² overflows to +∞
            (f64::MIN_POSITIVE, f64::MAX),
            (0.1, 0.30000000000000004),
        ];
        // A deterministic pseudo-random sweep.
        let mut s = 0x9e3779b97f4a7c15u64;
        for _ in 0..500 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = f64::from_bits(0x3FF0000000000000 | (s >> 12)) - 1.0; // [0,1)
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let b = f64::from_bits(0x3FF0000000000000 | (s >> 12)) - 1.0;
            let lo = 1e-3 + a * 10.0;
            let hi = lo + b * 10.0;
            xs.push((lo, hi));
        }
        for (lo, hi) in xs {
            let x = F64I::new(lo, hi).unwrap();
            let m = x.mul(&x);
            let q = x.sqr();
            assert_eq!(
                (m.lo().to_bits(), m.hi().to_bits()),
                (q.lo().to_bits(), q.hi().to_bits()),
                "f64 [{lo:e}, {hi:e}]"
            );
        }
        // The dd counterexample that keeps the rewrite f64-only: same
        // value, different low-word zero sign.
        let one = DdI::from_f64i(&F64I::new(1.0, 1.0).unwrap());
        let m = one.mul(&one);
        let q = one.sqr();
        assert_eq!(m.lo().hi().to_bits(), q.lo().hi().to_bits());
        assert_ne!(
            m.lo().lo().to_bits(),
            q.lo().lo().to_bits(),
            "if the dd kernels ever agree bitwise, the pass could admit dd Mul(x,x)→Sqr"
        );
    }

    #[test]
    fn duplicate_consts_merge_in_pool_and_materialization() {
        let c = PoolConst::f64_pair(1.5, 2.5);
        let p = prog(
            1,
            4,
            vec![c, c],
            vec![
                Insn::Const { dst: 1, idx: 0 },
                Insn::Const { dst: 2, idx: 1 },
                Insn::Mul { dst: 3, a: 1, b: 2 },
            ],
            3,
        );
        let (q, st) = peephole(&p);
        assert_eq!(q.consts.len(), 1);
        // One pool merge + one forwarded materialization.
        assert_eq!(st.consts_deduped, 2);
        let const_count = q.insns.iter().filter(|i| matches!(i, Insn::Const { .. })).count();
        assert_eq!(const_count, 1);
        // Both operands now read the single materialization, which
        // makes the Mul self-referential; the constant is strictly
        // positive, so the Sqr strength reduction fires on top.
        assert!(q.insns.iter().any(|i| matches!(i, Insn::Sqr { .. })));
        let x = [F64I::new(-1.0, 2.0).unwrap()];
        let want = run_scalar::<F64I>(&p, &x)[0];
        let got = run_scalar::<F64I>(&q, &x)[0];
        assert_eq!(want.lo().to_bits(), got.lo().to_bits());
        assert_eq!(want.hi().to_bits(), got.hi().to_bits());
    }

    #[test]
    fn accumulate_chains_fuse_into_muladd() {
        // s1 = s0 + x0*x1; s2 = s1 + x2*x0 — the dot-product idiom.
        let p = prog(
            3,
            8,
            vec![],
            vec![
                Insn::Add { dst: 3, a: 0, b: 1 }, // seed accumulator
                Insn::Mul { dst: 4, a: 0, b: 1 },
                Insn::Add { dst: 5, a: 3, b: 4 },
                Insn::Mul { dst: 6, a: 2, b: 0 },
                Insn::Sub { dst: 7, a: 5, b: 6 },
            ],
            7,
        );
        let (q, st) = peephole(&p);
        assert_eq!(st.mul_acc_fused, 2);
        assert!(q.insns.iter().any(|i| matches!(i, Insn::MulAdd { .. })));
        assert!(q.insns.iter().any(|i| matches!(i, Insn::MulSub { .. })));
        assert!(!q.insns.iter().any(|i| matches!(i, Insn::Mul { .. })));
        for (a, b, c) in [(1.5f64, -2.0f64, 0.25f64), (0.0, 1e300, -4.0), (-0.5, -0.5, 3.0)] {
            let x = [
                F64I::new(a.min(b), a.max(b)).unwrap(),
                F64I::new(b.min(c), b.max(c)).unwrap(),
                F64I::new(c.min(a), c.max(a)).unwrap(),
            ];
            let want = run_scalar::<F64I>(&p, &x)[0];
            let got = run_scalar::<F64I>(&q, &x)[0];
            assert_eq!(want.lo().to_bits(), got.lo().to_bits());
            assert_eq!(want.hi().to_bits(), got.hi().to_bits());
        }
    }

    #[test]
    fn product_on_the_left_of_the_add_is_not_fused() {
        // d = (x0*x1) + s: fusing would swap add_ru operand order.
        let p = prog(
            3,
            5,
            vec![],
            vec![Insn::Mul { dst: 3, a: 0, b: 1 }, Insn::Add { dst: 4, a: 3, b: 2 }],
            4,
        );
        let (q, st) = peephole(&p);
        assert_eq!(st.mul_acc_fused, 0);
        assert!(q.insns.iter().any(|i| matches!(i, Insn::Mul { .. })));
    }

    #[test]
    fn a_product_with_a_second_reader_is_not_fused() {
        // t feeds both the accumulate and a later abs: the temp must
        // survive, so no fusion.
        let mut p = prog(
            3,
            6,
            vec![],
            vec![
                Insn::Mul { dst: 3, a: 0, b: 1 },
                Insn::Add { dst: 4, a: 2, b: 3 },
                Insn::Abs { dst: 5, a: 3 },
            ],
            4,
        );
        p.outputs.push(OutputSlot { label: "aux".into(), reg: 5 });
        p.validate().expect("two-output program validates");
        let (q, st) = peephole(&p);
        assert_eq!(st.mul_acc_fused, 0);
        assert!(q.insns.iter().any(|i| matches!(i, Insn::Mul { .. })));
        let x = [
            F64I::new(-1.0, 2.0).unwrap(),
            F64I::new(0.5, 0.75).unwrap(),
            F64I::new(-3.0, -2.0).unwrap(),
        ];
        let want = run_scalar::<F64I>(&p, &x);
        let got = run_scalar::<F64I>(&q, &x);
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.lo().to_bits(), g.lo().to_bits());
            assert_eq!(w.hi().to_bits(), g.hi().to_bits());
        }
    }

    #[test]
    fn renumbering_reuses_dead_scratch_registers() {
        // A chain of adds: SSA needs a fresh register per step, the
        // renumbered program needs exactly one scratch slot beyond the
        // accumulator pattern.
        let mut insns = Vec::new();
        let mut cur = 0u32;
        for step in 0..16u32 {
            let dst = 1 + step;
            insns.push(Insn::Add { dst, a: cur, b: 0 });
            cur = dst;
        }
        let p = prog(1, 17, vec![], insns, 16);
        let (q, st) = peephole(&p);
        assert!(q.n_regs <= 3, "chain should collapse to ~2 scratch slots, got {}", q.n_regs);
        assert_eq!(st.regs_saved, 17 - q.n_regs);
        assert_eq!(q.validate(), Ok(()));
        let x = [F64I::new(0.25, 0.5).unwrap()];
        let want = run_scalar::<F64I>(&p, &x)[0];
        let got = run_scalar::<F64I>(&q, &x)[0];
        assert_eq!(want.lo().to_bits(), got.lo().to_bits());
        assert_eq!(want.hi().to_bits(), got.hi().to_bits());
    }

    #[test]
    fn consts_are_hoisted_and_pinned_after_inputs() {
        let p = prog(
            1,
            4,
            vec![PoolConst::f64_pair(1.0, 1.0)],
            vec![
                Insn::Neg { dst: 1, a: 0 },
                Insn::Const { dst: 2, idx: 0 },
                Insn::Add { dst: 3, a: 1, b: 2 },
            ],
            3,
        );
        let (q, _) = peephole(&p);
        // Const first, register right after the inputs.
        assert_eq!(q.insns[0], Insn::Const { dst: 1, idx: 0 });
    }

    #[test]
    fn output_registers_survive_reuse() {
        // Two outputs, one an early intermediate: its register must not
        // be recycled by later instructions.
        let mut p = prog(
            1,
            5,
            vec![],
            vec![
                Insn::Sqr { dst: 1, a: 0 },
                Insn::Neg { dst: 2, a: 0 },
                Insn::Add { dst: 3, a: 2, b: 1 },
                Insn::Abs { dst: 4, a: 3 },
            ],
            4,
        );
        p.outputs.push(OutputSlot { label: "mid".into(), reg: 1 });
        p.validate().expect("two-output program validates");
        let (q, _) = peephole(&p);
        assert_eq!(q.validate(), Ok(()));
        let x = [F64I::new(-2.0, 3.0).unwrap()];
        let want = run_scalar::<F64I>(&p, &x);
        let got = run_scalar::<F64I>(&q, &x);
        assert_eq!(want.len(), got.len());
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.lo().to_bits(), g.lo().to_bits());
            assert_eq!(w.hi().to_bits(), g.hi().to_bits());
        }
    }
}
