//! The tiled, instruction-major executor.
//!
//! [`run_lanes`](crate::exec::run_lanes) pays the full instruction
//! match and operand decode once per 4-item group; on short programs
//! that dispatch overhead is most of the runtime. [`run_tile`] flips
//! the loop nest: the register file becomes a SoA *bank* of `TILE`
//! packed groups per register (`bank[reg * tile + g]`), each
//! instruction is decoded once per tile, and the inner loop is a
//! tight, branch-free sweep over the contiguous group column — the
//! classic vectorized-interpreter trick, applied to interval lanes.
//! With `TILE = 8` packed groups, one decode covers 32 items.
//!
//! Two pieces of per-call waste are also hoisted to preparation time:
//!
//! * [`PreparedProgram`] decodes every pool constant **once per
//!   (program, element type)** — `Insn::Const` in the plain executor
//!   re-decodes and re-splats on every call.
//! * [`TileBank`] is built once per worker and pre-fills the constant
//!   columns, so a call only writes the input columns and the scratch
//!   registers the program itself defines. There is no per-call
//!   zeroing: [`Program::validate`] guarantees every read follows a
//!   write, so stale scratch from the previous tile is never observed.
//!
//! Execution order within a tile is *group-major per instruction*
//! (instruction-major overall), but every value computed for group `g`
//! depends only on column `g` — the columns never interact — so the
//! results are bit-identical to running each group alone through
//! `run_lanes`, for any tile size. That keeps the batch determinism
//! guarantee: tile size, like thread count, cannot change a single
//! endpoint bit.

use crate::bytecode::{Insn, Program};
use crate::exec::{VmElem, VM_INSNS_EXECUTED};
use igen_kernels::LaneOrScalar;
use igen_telemetry::Counter;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Tiles executed by [`run_tile`] (one count per call, independent of
/// tile size and lane width).
pub static VM_TILES: Counter = Counter::new("vm.tiles");

/// Default number of packed groups per tile (8 groups = 32 items at
/// packed width). Chosen so a register bank of a few dozen slots stays
/// comfortably inside L1 while still amortizing the per-instruction
/// decode ~8×; measured flat from 4–16 on the gauntlet kernels.
pub const DEFAULT_TILE_GROUPS: usize = 8;

static NEXT_PREP_ID: AtomicU64 = AtomicU64::new(0);

/// A [`Program`] with its per-call setup paid up front for element type
/// `T`: constants decoded from the pool once, and `Const` instructions
/// whose register is never rewritten split out of the executed body so
/// a [`TileBank`] can hold them for the program's lifetime.
///
/// Clones share the preparation identity, so a [`TileBank`] built for
/// one clone works with any other — the hoisted constants are
/// identical by construction.
#[derive(Debug, Clone)]
pub struct PreparedProgram<T: VmElem> {
    prog: Program,
    id: u64,
    /// Hoisted constants: `(register, decoded value)`. A `Const` is
    /// hoistable iff its destination is written exactly once in the
    /// whole program and is not an input register — then its value is
    /// call-invariant and lives in the bank.
    consts: Vec<(u32, T)>,
    /// The instructions executed per call (everything not hoisted, in
    /// original order).
    body: Vec<Insn>,
    /// For each body instruction, its index in `prog.insns` — the key
    /// into the program's [`DebugMap`](crate::bytecode::DebugMap) and
    /// the profiler's site table (hoisting shifts body positions, so
    /// body index ≠ instruction index).
    body_idx: Vec<u32>,
}

impl<T: VmElem> PreparedProgram<T> {
    /// Prepares `prog` for tiled execution.
    ///
    /// # Panics
    ///
    /// Panics if `T`'s precision does not match the program's, or if
    /// the program fails [`Program::validate`].
    pub fn new(prog: Program) -> PreparedProgram<T> {
        assert_eq!(T::PRECISION, prog.precision, "element precision does not match program");
        prog.validate().expect("prepared program must validate");
        let mut writes = vec![0u32; prog.n_regs as usize];
        for insn in &prog.insns {
            writes[insn.dst() as usize] += 1;
        }
        let mut consts = Vec::new();
        let mut body = Vec::new();
        let mut body_idx = Vec::new();
        for (i, insn) in prog.insns.iter().enumerate() {
            if let Insn::Const { dst, idx } = *insn {
                if dst >= prog.n_inputs && writes[dst as usize] == 1 {
                    consts.push((dst, T::from_const(&prog.consts[idx as usize])));
                    continue;
                }
            }
            body.push(*insn);
            body_idx.push(i as u32);
        }
        let id = NEXT_PREP_ID.fetch_add(1, Ordering::Relaxed);
        PreparedProgram { prog, id, consts, body, body_idx }
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// Instructions executed per call (hoisted constants excluded).
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// Constants hoisted into the bank.
    pub fn hoisted_consts(&self) -> usize {
        self.consts.len()
    }
}

/// The SoA register bank for one worker: `n_regs` columns of `tile`
/// lane vectors, laid out `bank[reg * tile + g]` so each instruction's
/// inner sweep walks contiguous memory. Constant columns are filled at
/// construction and never touched by [`run_tile`]; build one bank per
/// worker thread and reuse it across every tile that worker executes.
#[derive(Debug)]
pub struct TileBank<T: VmElem, L: LaneOrScalar<T>> {
    bank: Vec<L>,
    tile: usize,
    n_inputs: usize,
    prep_id: u64,
    _elem: PhantomData<T>,
}

impl<T: VmElem, L: LaneOrScalar<T>> TileBank<T, L> {
    /// Builds a bank of `tile` groups per register for `prep`,
    /// pre-filling the hoisted constant columns.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is zero.
    pub fn new(prep: &PreparedProgram<T>, tile: usize) -> TileBank<T, L> {
        assert!(tile > 0, "tile must be at least one group");
        let n_regs = prep.prog.n_regs as usize;
        let mut bank = vec![L::splat_l(T::zero()); n_regs * tile];
        for &(reg, c) in &prep.consts {
            let v = L::splat_l(c);
            bank[reg as usize * tile..(reg as usize + 1) * tile].fill(v);
        }
        TileBank {
            bank,
            tile,
            n_inputs: prep.prog.n_inputs as usize,
            prep_id: prep.id,
            _elem: PhantomData,
        }
    }

    /// Groups per tile.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// The mutable input column for register `reg`: `tile` lane
    /// vectors, group-major. Fill `0..n_groups` before [`run_tile`];
    /// groups past `n_groups` are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not an input register.
    pub fn input_column(&mut self, reg: u32) -> &mut [L] {
        assert!((reg as usize) < self.n_inputs, "r{reg} is not an input register");
        let base = reg as usize * self.tile;
        &mut self.bank[base..base + self.tile]
    }
}

#[inline(always)]
fn sweep2<L: Copy>(
    bank: &mut [L],
    tile: usize,
    n: usize,
    dst: u32,
    a: u32,
    b: u32,
    f: impl Fn(L, L) -> L,
) {
    let (di, ai, bi) = (dst as usize * tile, a as usize * tile, b as usize * tile);
    // One bounds proof up front lets the inner loop run unchecked.
    assert!(di + n <= bank.len() && ai + n <= bank.len() && bi + n <= bank.len());
    for g in 0..n {
        // Read-before-write per element, so dst == a or dst == b (the
        // peephole reuses registers) is still exact.
        bank[di + g] = f(bank[ai + g], bank[bi + g]);
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn sweep3<L: Copy>(
    bank: &mut [L],
    tile: usize,
    n: usize,
    dst: u32,
    a: u32,
    b: u32,
    c: u32,
    f: impl Fn(L, L, L) -> L,
) {
    let (di, ai, bi, ci) =
        (dst as usize * tile, a as usize * tile, b as usize * tile, c as usize * tile);
    assert!(
        di + n <= bank.len()
            && ai + n <= bank.len()
            && bi + n <= bank.len()
            && ci + n <= bank.len()
    );
    for g in 0..n {
        bank[di + g] = f(bank[ai + g], bank[bi + g], bank[ci + g]);
    }
}

#[inline(always)]
fn sweep1<L: Copy>(bank: &mut [L], tile: usize, n: usize, dst: u32, a: u32, f: impl Fn(L) -> L) {
    let (di, ai) = (dst as usize * tile, a as usize * tile);
    assert!(di + n <= bank.len() && ai + n <= bank.len());
    for g in 0..n {
        bank[di + g] = f(bank[ai + g]);
    }
}

/// Executes `prep` over the first `n_groups` group columns of `bank`
/// (inputs already written via [`TileBank::input_column`]). Declared
/// outputs land in `outputs` slot-major: `outputs[slot * n_groups + g]`
/// is output `slot` for group `g`.
///
/// Bit-identical to running each group alone through
/// [`run_lanes`](crate::exec::run_lanes), for every tile size and lane
/// width — see the module docs.
///
/// # Panics
///
/// Panics if `bank` was built for a different [`PreparedProgram`] or if
/// `n_groups` exceeds the bank's tile.
pub fn run_tile<T: VmElem, L: LaneOrScalar<T>>(
    prep: &PreparedProgram<T>,
    bank: &mut TileBank<T, L>,
    n_groups: usize,
    outputs: &mut Vec<L>,
) {
    assert_eq!(bank.prep_id, prep.id, "tile bank was built for a different program");
    assert!(n_groups <= bank.tile, "n_groups {} exceeds tile {}", n_groups, bank.tile);
    let tile = bank.tile;
    let bk = &mut bank.bank[..];
    for insn in &prep.body {
        match *insn {
            // Only non-hoistable constants reach the body (rewritten
            // register or input-register destination).
            Insn::Const { dst, idx } => {
                let v = L::splat_l(T::from_const(&prep.prog.consts[idx as usize]));
                sweep1(bk, tile, n_groups, dst, dst, |_| v);
            }
            Insn::Add { dst, a, b } => sweep2(bk, tile, n_groups, dst, a, b, |x, y| x + y),
            Insn::Sub { dst, a, b } => sweep2(bk, tile, n_groups, dst, a, b, |x, y| x - y),
            Insn::Mul { dst, a, b } => sweep2(bk, tile, n_groups, dst, a, b, |x, y| x * y),
            Insn::Div { dst, a, b } => sweep2(bk, tile, n_groups, dst, a, b, |x, y| x / y),
            Insn::Min { dst, a, b } => sweep2(bk, tile, n_groups, dst, a, b, |x, y| x.min_l(y)),
            Insn::Max { dst, a, b } => sweep2(bk, tile, n_groups, dst, a, b, |x, y| x.max_l(y)),
            Insn::Neg { dst, a } => sweep1(bk, tile, n_groups, dst, a, |x| -x),
            Insn::Sqrt { dst, a } => sweep1(bk, tile, n_groups, dst, a, |x| x.sqrt_l()),
            Insn::Abs { dst, a } => sweep1(bk, tile, n_groups, dst, a, |x| x.abs_l()),
            Insn::Sqr { dst, a } => sweep1(bk, tile, n_groups, dst, a, |x| x.sqr_l()),
            Insn::Pow { dst, a, n } => {
                // No packed powi kernel: lane-wise is bit-identical
                // because the lanes are independent.
                sweep1(bk, tile, n_groups, dst, a, |x| L::from_fn_l(|i| x.lane_l(i).powi_e(n)))
            }
            // The accumulate superinstructions keep the product in a
            // machine register instead of round-tripping a temp column
            // through the bank — both interval roundings preserved.
            Insn::MulAdd { dst, a, b, acc } => {
                sweep3(bk, tile, n_groups, dst, a, b, acc, |x, y, z| z + (x * y))
            }
            Insn::MulSub { dst, a, b, acc } => {
                sweep3(bk, tile, n_groups, dst, a, b, acc, |x, y, z| z - (x * y))
            }
        }
    }
    VM_INSNS_EXECUTED.add(prep.body.len() as u64);
    VM_TILES.inc();
    outputs.clear();
    for o in &prep.prog.outputs {
        let oi = o.reg as usize * tile;
        outputs.extend_from_slice(&bk[oi..oi + n_groups]);
    }
}

/// [`run_tile`] with per-instruction profiling. Each body instruction's
/// sweep over the tile is timed as one sample against its *original*
/// instruction index (the hoisted-constant split shifts body positions,
/// so the prepared program carries the index map), and every element it
/// produced contributes an input/output width sample.
///
/// The sweeps themselves are the exact loops of [`run_tile`] — the
/// profiler reads the bank between instructions, never inside a sweep —
/// so the outputs are bit-identical to an unprofiled run. When `prof`
/// is inactive this falls straight through to [`run_tile`].
pub fn run_tile_profiled<T: VmElem, L: LaneOrScalar<T>>(
    prep: &PreparedProgram<T>,
    bank: &mut TileBank<T, L>,
    n_groups: usize,
    outputs: &mut Vec<L>,
    prof: &mut igen_telemetry::UnitProfiler,
) {
    use igen_telemetry::profile::rel_width;
    if !prof.active() {
        return run_tile(prep, bank, n_groups, outputs);
    }
    assert_eq!(bank.prep_id, prep.id, "tile bank was built for a different program");
    assert!(n_groups <= bank.tile, "n_groups {} exceeds tile {}", n_groups, bank.tile);
    let tile = bank.tile;
    for (bi, insn) in prep.body.iter().enumerate() {
        let oi = prep.body_idx[bi] as usize;
        let site = prep.prog.debug.site(oi);
        prof.set_meta(oi, site.line, site.col, insn.op_name());
        // Input widths are read before the sweep: the renumbered
        // programs reuse registers, so dst may alias a source.
        let mut max_in = vec![0.0f64; n_groups * L::WIDTH];
        for g in 0..n_groups {
            for l in 0..L::WIDTH {
                max_in[g * L::WIDTH + l] = crate::exec::max_src_rel(insn, |r| {
                    bank.bank[r as usize * tile + g].lane_l(l).endpoints_f64()
                });
            }
        }
        let t0 = prof.now_ns();
        {
            let bk = &mut bank.bank[..];
            match *insn {
                Insn::Const { dst, idx } => {
                    let v = L::splat_l(T::from_const(&prep.prog.consts[idx as usize]));
                    sweep1(bk, tile, n_groups, dst, dst, |_| v);
                }
                Insn::Add { dst, a, b } => sweep2(bk, tile, n_groups, dst, a, b, |x, y| x + y),
                Insn::Sub { dst, a, b } => sweep2(bk, tile, n_groups, dst, a, b, |x, y| x - y),
                Insn::Mul { dst, a, b } => sweep2(bk, tile, n_groups, dst, a, b, |x, y| x * y),
                Insn::Div { dst, a, b } => sweep2(bk, tile, n_groups, dst, a, b, |x, y| x / y),
                Insn::Min { dst, a, b } => sweep2(bk, tile, n_groups, dst, a, b, |x, y| x.min_l(y)),
                Insn::Max { dst, a, b } => sweep2(bk, tile, n_groups, dst, a, b, |x, y| x.max_l(y)),
                Insn::Neg { dst, a } => sweep1(bk, tile, n_groups, dst, a, |x| -x),
                Insn::Sqrt { dst, a } => sweep1(bk, tile, n_groups, dst, a, |x| x.sqrt_l()),
                Insn::Abs { dst, a } => sweep1(bk, tile, n_groups, dst, a, |x| x.abs_l()),
                Insn::Sqr { dst, a } => sweep1(bk, tile, n_groups, dst, a, |x| x.sqr_l()),
                Insn::Pow { dst, a, n } => {
                    sweep1(bk, tile, n_groups, dst, a, |x| L::from_fn_l(|i| x.lane_l(i).powi_e(n)))
                }
                Insn::MulAdd { dst, a, b, acc } => {
                    sweep3(bk, tile, n_groups, dst, a, b, acc, |x, y, z| z + (x * y))
                }
                Insn::MulSub { dst, a, b, acc } => {
                    sweep3(bk, tile, n_groups, dst, a, b, acc, |x, y, z| z - (x * y))
                }
            }
        }
        prof.add_time(oi, prof.now_ns().saturating_sub(t0));
        let di = insn.dst() as usize * tile;
        for g in 0..n_groups {
            for l in 0..L::WIDTH {
                let (lo, hi) = bank.bank[di + g].lane_l(l).endpoints_f64();
                prof.add_sample(oi, max_in[g * L::WIDTH + l], rel_width(lo, hi));
            }
        }
    }
    VM_INSNS_EXECUTED.add(prep.body.len() as u64);
    VM_TILES.inc();
    outputs.clear();
    for o in &prep.prog.outputs {
        let oi = o.reg as usize * tile;
        outputs.extend_from_slice(&bank.bank[oi..oi + n_groups]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{OutputSlot, PoolConst, Precision};
    use crate::exec::run_scalar;
    use igen_interval::{F64Ix4, F64I};

    fn quad() -> Program {
        // return -b + sqrt(b² - 4ac), same shape as the exec tests.
        let p = Program {
            name: "quad".into(),
            precision: Precision::F64,
            n_inputs: 3,
            n_regs: 11,
            consts: vec![PoolConst::f64_pair(4.0, 4.0)],
            insns: vec![
                Insn::Sqr { dst: 3, a: 1 },
                Insn::Const { dst: 4, idx: 0 },
                Insn::Mul { dst: 5, a: 4, b: 0 },
                Insn::Mul { dst: 6, a: 5, b: 2 },
                Insn::Sub { dst: 7, a: 3, b: 6 },
                Insn::Sqrt { dst: 8, a: 7 },
                Insn::Neg { dst: 9, a: 1 },
                Insn::Add { dst: 10, a: 9, b: 8 },
            ],
            inputs: vec!["a".into(), "b".into(), "c".into()],
            outputs: vec![OutputSlot { label: "return".into(), reg: 10 }],
            debug: crate::bytecode::DebugMap::default(),
        };
        p.validate().expect("valid test program");
        p
    }

    fn item(i: usize) -> [F64I; 3] {
        let f = i as f64;
        [
            F64I::new(1.0 + 0.25 * f, 1.0 + 0.3 * f).unwrap(),
            F64I::new(-3.5 - f, -3.0 - f).unwrap(),
            F64I::new(0.5, 0.75 + 0.1 * f).unwrap(),
        ]
    }

    #[test]
    fn constants_are_hoisted_out_of_the_body() {
        let prep = PreparedProgram::<F64I>::new(quad());
        assert_eq!(prep.hoisted_consts(), 1);
        assert_eq!(prep.body_len(), 7);
    }

    #[test]
    fn tiled_scalar_matches_run_scalar_at_every_fill_level() {
        let p = quad();
        let prep = PreparedProgram::<F64I>::new(p.clone());
        let mut bank = TileBank::<F64I, F64I>::new(&prep, 5);
        let mut out = Vec::new();
        for n_groups in [0usize, 1, 3, 5] {
            for (g, it) in (0..n_groups).map(|g| (g, item(g + 7 * n_groups))) {
                for (r, v) in it.iter().enumerate() {
                    bank.input_column(r as u32)[g] = *v;
                }
            }
            run_tile(&prep, &mut bank, n_groups, &mut out);
            assert_eq!(out.len(), n_groups);
            for (g, got) in out.iter().enumerate() {
                let want = run_scalar(&p, &item(g + 7 * n_groups))[0];
                assert_eq!(got.lo().to_bits(), want.lo().to_bits());
                assert_eq!(got.hi().to_bits(), want.hi().to_bits());
            }
        }
    }

    #[test]
    fn tiled_packed_matches_scalar_per_lane_and_bank_reuse_is_clean() {
        let p = quad();
        let prep = PreparedProgram::<F64I>::new(p.clone());
        let mut bank = TileBank::<F64I, F64Ix4>::new(&prep, 3);
        let mut out = Vec::new();
        // Two consecutive calls through the same bank: the second must
        // not observe anything from the first (constants persist,
        // scratch is dead by validation).
        for call in 0..2usize {
            let n_groups = if call == 0 { 3 } else { 2 };
            for g in 0..n_groups {
                for r in 0..3u32 {
                    bank.input_column(r)[g] = <F64Ix4 as LaneOrScalar<F64I>>::from_fn_l(|l| {
                        item(100 * call + 4 * g + l)[r as usize]
                    });
                }
            }
            run_tile(&prep, &mut bank, n_groups, &mut out);
            for (g, group) in out.iter().enumerate().take(n_groups) {
                for l in 0..4 {
                    let want = run_scalar(&p, &item(100 * call + 4 * g + l))[0];
                    let got = group.lane_l(l);
                    assert_eq!(got.lo().to_bits(), want.lo().to_bits(), "call {call} g{g} l{l}");
                    assert_eq!(got.hi().to_bits(), want.hi().to_bits(), "call {call} g{g} l{l}");
                }
            }
        }
    }

    #[test]
    fn register_reuse_with_dst_equal_to_src_is_exact() {
        // r1 = x + x; r1 = r1 * r1 (relaxed form, dst == both srcs).
        let p = Program {
            name: "reuse".into(),
            precision: Precision::F64,
            n_inputs: 1,
            n_regs: 2,
            consts: vec![],
            insns: vec![Insn::Add { dst: 1, a: 0, b: 0 }, Insn::Mul { dst: 1, a: 1, b: 1 }],
            inputs: vec!["x".into()],
            outputs: vec![OutputSlot { label: "return".into(), reg: 1 }],
            debug: crate::bytecode::DebugMap::default(),
        };
        p.validate().expect("relaxed form validates");
        let prep = PreparedProgram::<F64I>::new(p.clone());
        let mut bank = TileBank::<F64I, F64I>::new(&prep, 4);
        let mut out = Vec::new();
        for g in 0..4 {
            bank.input_column(0)[g] = F64I::new(-1.5 - g as f64, 2.0 + g as f64).unwrap();
        }
        run_tile(&prep, &mut bank, 4, &mut out);
        for (g, got) in out.iter().enumerate() {
            let x = F64I::new(-1.5 - g as f64, 2.0 + g as f64).unwrap();
            let want = run_scalar(&p, &[x])[0];
            assert_eq!(got.lo().to_bits(), want.lo().to_bits());
            assert_eq!(got.hi().to_bits(), want.hi().to_bits());
        }
    }

    #[test]
    fn profiled_tile_is_bit_identical_to_plain() {
        let p = quad();
        let prep = PreparedProgram::<F64I>::new(p.clone());
        let mut bank = TileBank::<F64I, F64I>::new(&prep, 4);
        let mut plain = Vec::new();
        for g in 0..4 {
            for (r, v) in item(g).iter().enumerate() {
                bank.input_column(r as u32)[g] = *v;
            }
        }
        run_tile(&prep, &mut bank, 4, &mut plain);
        let mut profiled = Vec::new();
        let mut prof = igen_telemetry::UnitProfiler::start(&p.name, p.insns.len());
        for g in 0..4 {
            for (r, v) in item(g).iter().enumerate() {
                bank.input_column(r as u32)[g] = *v;
            }
        }
        run_tile_profiled(&prep, &mut bank, 4, &mut profiled, &mut prof);
        prof.finish();
        assert_eq!(plain.len(), profiled.len());
        for (w, g) in plain.iter().zip(&profiled) {
            assert_eq!(w.lo().to_bits(), g.lo().to_bits());
            assert_eq!(w.hi().to_bits(), g.hi().to_bits());
        }
    }

    #[test]
    fn body_index_map_names_original_instructions() {
        // quad hoists the single Const (original index 1): every body
        // instruction keeps its index into prog.insns.
        let prep = PreparedProgram::<F64I>::new(quad());
        assert_eq!(prep.body_idx.len(), prep.body.len());
        assert_eq!(prep.body_idx, vec![0, 2, 3, 4, 5, 6, 7]);
        for (bi, &oi) in prep.body_idx.iter().enumerate() {
            assert_eq!(prep.body[bi], prep.prog.insns[oi as usize]);
        }
    }

    #[test]
    #[should_panic(expected = "different program")]
    fn bank_is_pinned_to_its_program() {
        let prep_a = PreparedProgram::<F64I>::new(quad());
        let prep_b = PreparedProgram::<F64I>::new(quad());
        let mut bank = TileBank::<F64I, F64I>::new(&prep_a, 2);
        let mut out = Vec::new();
        run_tile(&prep_b, &mut bank, 1, &mut out);
    }
}
