//! The register bytecode: a flat instruction list over dense virtual
//! registers, with pooled constants and declared inputs/outputs.
//!
//! A [`Program`] is precision-tagged but otherwise representation-free:
//! the same bytecode runs width-1 scalar (`F64I`, `DdI`) and 4-wide
//! packed (`F64Ix4`, `DdIx4`) through the one executor loop in
//! [`crate::exec`]. Registers are single-assignment by construction
//! (the lowering pass emits a fresh register per operation and aliases
//! copies away), input registers are `0..n_inputs`, and every constant
//! lives in the pool as four binary64 components — enough to hold a
//! double-double interval exactly, with the low components zero for
//! `f64` programs.

/// Target endpoint precision of a program. The bytecode deliberately
/// has no `f32` variant: the lowering pass rejects `f32i` functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Binary64 endpoints (`f64i`).
    F64,
    /// Double-double endpoints (`ddi`).
    Dd,
}

impl Precision {
    /// Stable lower-case name (matches `igen_core::Config::suffix`).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::Dd => "dd",
        }
    }
}

impl core::fmt::Display for Precision {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// One pooled constant: a full double-double interval as four binary64
/// components `[lo_hi + lo_lo, hi_hi + hi_lo]` (the `ia_set_ddx`
/// layout). `f64` programs use only `lo_hi`/`hi_hi` and keep the low
/// components at zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolConst {
    /// High component of the lower endpoint.
    pub lo_hi: f64,
    /// Low component of the lower endpoint.
    pub lo_lo: f64,
    /// High component of the upper endpoint.
    pub hi_hi: f64,
    /// Low component of the upper endpoint.
    pub hi_lo: f64,
}

impl PoolConst {
    /// An `f64` constant `[lo, hi]` (low components zero).
    pub fn f64_pair(lo: f64, hi: f64) -> PoolConst {
        PoolConst { lo_hi: lo, lo_lo: 0.0, hi_hi: hi, hi_lo: 0.0 }
    }

    /// The bit-pattern key used to deduplicate pool entries (`-0.0`
    /// and `0.0` are distinct, NaN payloads are preserved).
    pub fn bits(&self) -> [u64; 4] {
        [self.lo_hi.to_bits(), self.lo_lo.to_bits(), self.hi_hi.to_bits(), self.hi_lo.to_bits()]
    }
}

/// One bytecode instruction. Operands are virtual register indices;
/// `dst` is always a previously unwritten register (single assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `dst ← consts[idx]`
    Const {
        /// Destination register.
        dst: u32,
        /// Constant-pool index.
        idx: u32,
    },
    /// `dst ← a + b`
    Add {
        /// Destination register.
        dst: u32,
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
    /// `dst ← a - b`
    Sub {
        /// Destination register.
        dst: u32,
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
    /// `dst ← a * b`
    Mul {
        /// Destination register.
        dst: u32,
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
    /// `dst ← a / b`
    Div {
        /// Destination register.
        dst: u32,
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
    /// `dst ← min(a, b)` pointwise
    Min {
        /// Destination register.
        dst: u32,
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
    /// `dst ← max(a, b)` pointwise
    Max {
        /// Destination register.
        dst: u32,
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
    /// `dst ← -a`
    Neg {
        /// Destination register.
        dst: u32,
        /// Operand register.
        a: u32,
    },
    /// `dst ← sqrt(a)`
    Sqrt {
        /// Destination register.
        dst: u32,
        /// Operand register.
        a: u32,
    },
    /// `dst ← |a|`
    Abs {
        /// Destination register.
        dst: u32,
        /// Operand register.
        a: u32,
    },
    /// `dst ← a²` (the dependency-aware square)
    Sqr {
        /// Destination register.
        dst: u32,
        /// Operand register.
        a: u32,
    },
    /// `dst ← aⁿ` (integer exponent, clamped to `i32` like the
    /// `ia_pow_*` builtins)
    Pow {
        /// Destination register.
        dst: u32,
        /// Operand register.
        a: u32,
        /// Exponent.
        n: i32,
    },
    /// `dst ← acc + (a * b)` — a *dispatch-fused* multiply-accumulate:
    /// the product is rounded exactly as a standalone `Mul` and the sum
    /// exactly as a standalone `Add` with the product as the **right**
    /// operand, so the result is bit-identical to the unfused pair.
    /// This is not an FMA (which would round once); only the temporary
    /// register and the second dispatch are eliminated.
    MulAdd {
        /// Destination register.
        dst: u32,
        /// Product left operand register.
        a: u32,
        /// Product right operand register.
        b: u32,
        /// Accumulator register (left operand of the add).
        acc: u32,
    },
    /// `dst ← acc - (a * b)` — the subtracting twin of [`Insn::MulAdd`],
    /// with the product as the subtrahend. Same exactness argument:
    /// both roundings are preserved, only the dispatch is fused.
    MulSub {
        /// Destination register.
        dst: u32,
        /// Product left operand register.
        a: u32,
        /// Product right operand register.
        b: u32,
        /// Accumulator register (minuend of the sub).
        acc: u32,
    },
}

impl Insn {
    /// The instruction's lower-case mnemonic (matches [`Program::dump`]).
    pub fn op_name(&self) -> &'static str {
        match self {
            Insn::Const { .. } => "const",
            Insn::Add { .. } => "add",
            Insn::Sub { .. } => "sub",
            Insn::Mul { .. } => "mul",
            Insn::Div { .. } => "div",
            Insn::Min { .. } => "min",
            Insn::Max { .. } => "max",
            Insn::Neg { .. } => "neg",
            Insn::Sqrt { .. } => "sqrt",
            Insn::Abs { .. } => "abs",
            Insn::Sqr { .. } => "sqr",
            Insn::Pow { .. } => "pow",
            Insn::MulAdd { .. } => "muladd",
            Insn::MulSub { .. } => "mulsub",
        }
    }

    /// The destination register.
    pub fn dst(&self) -> u32 {
        match *self {
            Insn::Const { dst, .. }
            | Insn::Add { dst, .. }
            | Insn::Sub { dst, .. }
            | Insn::Mul { dst, .. }
            | Insn::Div { dst, .. }
            | Insn::Min { dst, .. }
            | Insn::Max { dst, .. }
            | Insn::Neg { dst, .. }
            | Insn::Sqrt { dst, .. }
            | Insn::Abs { dst, .. }
            | Insn::Sqr { dst, .. }
            | Insn::Pow { dst, .. }
            | Insn::MulAdd { dst, .. }
            | Insn::MulSub { dst, .. } => dst,
        }
    }
}

/// The source location one bytecode instruction originated from
/// (1-based line and column of the source expression; 0 = unknown,
/// e.g. synthesized constants with no single source site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct SrcLoc {
    /// 1-based source line (0 = unknown).
    pub line: u32,
    /// 1-based source column (0 = unknown).
    pub col: u32,
}

impl SrcLoc {
    /// Whether this location names a real source site.
    pub fn is_known(&self) -> bool {
        self.line > 0
    }
}

/// Source-provenance side table: `sites[i]` is the source location of
/// `insns[i]`. Kept *parallel* to the instruction stream (never encoded
/// into it), so [`Program::dump`] — and therefore the golden bytecode
/// listings — are unchanged by provenance. Every transformation that
/// reorders, drops or fuses instructions (peephole rewriting, dead-code
/// elimination, liveness renumbering) transforms the side table
/// identically; [`Program::validate`] checks the lengths stay in sync.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DebugMap {
    /// One source location per instruction, by instruction index.
    /// Empty means "no provenance recorded" (hand-built programs).
    pub sites: Vec<SrcLoc>,
}

impl DebugMap {
    /// The source location of instruction `insn_idx` (unknown when the
    /// map is empty or out of range).
    pub fn site(&self, insn_idx: usize) -> SrcLoc {
        self.sites.get(insn_idx).copied().unwrap_or_default()
    }
}

/// One declared program output: a label (for dumps and diagnostics)
/// and the register holding the value after the last instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputSlot {
    /// Human-readable label (`return`, `y[3]`, …).
    pub label: String,
    /// Source register.
    pub reg: u32,
}

/// A compiled register-bytecode program (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Source function name.
    pub name: String,
    /// Endpoint precision.
    pub precision: Precision,
    /// Number of input registers (`0..n_inputs` are inputs, in binding
    /// order).
    pub n_inputs: u32,
    /// Total register-file size.
    pub n_regs: u32,
    /// Constant pool (deduplicated by bit pattern).
    pub consts: Vec<PoolConst>,
    /// The instruction stream, in execution order.
    pub insns: Vec<Insn>,
    /// One label per input register (`x0`, `y[2]`, …).
    pub inputs: Vec<String>,
    /// Declared outputs, in harvest order (function return first, then
    /// `out`/`inout` array cells in parameter order).
    pub outputs: Vec<OutputSlot>,
    /// Source-provenance side table (parallel to `insns`; may be empty).
    pub debug: DebugMap,
}

impl Program {
    /// Renders the deterministic text listing pinned by the golden
    /// tests: header, constant pool, input bindings, instructions,
    /// output bindings. Floats print in Rust's shortest-roundtrip
    /// form, so equal programs dump to equal strings and vice versa.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "program {} precision={} inputs={} regs={} consts={} insns={}",
            self.name,
            self.precision,
            self.n_inputs,
            self.n_regs,
            self.consts.len(),
            self.insns.len()
        );
        for (i, c) in self.consts.iter().enumerate() {
            match self.precision {
                Precision::F64 => {
                    let _ = writeln!(s, "  c{} = [{:?}, {:?}]", i, c.lo_hi, c.hi_hi);
                }
                Precision::Dd => {
                    let _ = writeln!(
                        s,
                        "  c{} = [{:?} {:?}, {:?} {:?}]",
                        i, c.lo_hi, c.lo_lo, c.hi_hi, c.hi_lo
                    );
                }
            }
        }
        for (i, label) in self.inputs.iter().enumerate() {
            let _ = writeln!(s, "  in r{i} = {label}");
        }
        for insn in &self.insns {
            let line = match *insn {
                Insn::Const { dst, idx } => format!("r{dst} = const c{idx}"),
                Insn::Add { dst, a, b } => format!("r{dst} = add r{a}, r{b}"),
                Insn::Sub { dst, a, b } => format!("r{dst} = sub r{a}, r{b}"),
                Insn::Mul { dst, a, b } => format!("r{dst} = mul r{a}, r{b}"),
                Insn::Div { dst, a, b } => format!("r{dst} = div r{a}, r{b}"),
                Insn::Min { dst, a, b } => format!("r{dst} = min r{a}, r{b}"),
                Insn::Max { dst, a, b } => format!("r{dst} = max r{a}, r{b}"),
                Insn::Neg { dst, a } => format!("r{dst} = neg r{a}"),
                Insn::Sqrt { dst, a } => format!("r{dst} = sqrt r{a}"),
                Insn::Abs { dst, a } => format!("r{dst} = abs r{a}"),
                Insn::Sqr { dst, a } => format!("r{dst} = sqr r{a}"),
                Insn::Pow { dst, a, n } => format!("r{dst} = pow r{a}, {n}"),
                Insn::MulAdd { dst, a, b, acc } => {
                    format!("r{dst} = muladd r{acc}, r{a}, r{b}")
                }
                Insn::MulSub { dst, a, b, acc } => {
                    format!("r{dst} = mulsub r{acc}, r{a}, r{b}")
                }
            };
            let _ = writeln!(s, "  {line}");
        }
        for o in &self.outputs {
            let _ = writeln!(s, "  out {} = r{}", o.label, o.reg);
        }
        s
    }

    /// Structural sanity the executors rely on: every operand register
    /// is written (or an input) before it is read, register/constant
    /// indices are in range, and outputs name written registers.
    /// Registers **may** be reused — the peephole pass renumbers into a
    /// compact reusable file. Raw lowering output additionally
    /// satisfies the stricter [`Program::validate_ssa`].
    pub fn validate(&self) -> Result<(), String> {
        self.check(false)
    }

    /// [`Program::validate`] plus single assignment: every `dst` is a
    /// fresh register. Lowering emits this form; the peephole pass
    /// consumes it and returns programs that only satisfy the relaxed
    /// [`Program::validate`].
    pub fn validate_ssa(&self) -> Result<(), String> {
        self.check(true)
    }

    fn check(&self, ssa: bool) -> Result<(), String> {
        let n = self.n_regs as usize;
        if !self.debug.sites.is_empty() && self.debug.sites.len() != self.insns.len() {
            return Err(format!(
                "debug map has {} sites for {} instructions",
                self.debug.sites.len(),
                self.insns.len()
            ));
        }
        if (self.n_inputs as usize) != self.inputs.len() {
            return Err(format!(
                "n_inputs={} but {} input labels",
                self.n_inputs,
                self.inputs.len()
            ));
        }
        let mut written = vec![false; n];
        for w in written.iter_mut().take(self.n_inputs as usize) {
            *w = true;
        }
        let read_ok = |written: &[bool], r: u32| -> Result<(), String> {
            match written.get(r as usize) {
                Some(true) => Ok(()),
                Some(false) => Err(format!("register r{r} read before written")),
                None => Err(format!("register r{r} out of range (regs={n})")),
            }
        };
        for insn in &self.insns {
            match *insn {
                Insn::Const { idx, .. } => {
                    if idx as usize >= self.consts.len() {
                        return Err(format!("constant c{idx} out of range"));
                    }
                }
                Insn::Add { a, b, .. }
                | Insn::Sub { a, b, .. }
                | Insn::Mul { a, b, .. }
                | Insn::Div { a, b, .. }
                | Insn::Min { a, b, .. }
                | Insn::Max { a, b, .. } => {
                    read_ok(&written, a)?;
                    read_ok(&written, b)?;
                }
                Insn::Neg { a, .. }
                | Insn::Sqrt { a, .. }
                | Insn::Abs { a, .. }
                | Insn::Sqr { a, .. }
                | Insn::Pow { a, .. } => read_ok(&written, a)?,
                Insn::MulAdd { a, b, acc, .. } | Insn::MulSub { a, b, acc, .. } => {
                    read_ok(&written, a)?;
                    read_ok(&written, b)?;
                    read_ok(&written, acc)?;
                }
            }
            let dst = insn.dst() as usize;
            if dst >= n {
                return Err(format!("destination r{dst} out of range (regs={n})"));
            }
            if ssa && written[dst] {
                return Err(format!("register r{dst} written twice"));
            }
            written[dst] = true;
        }
        for o in &self.outputs {
            read_ok(&written, o.reg).map_err(|e| format!("output {}: {e}", o.label))?;
        }
        if self.outputs.is_empty() {
            return Err("program declares no outputs".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Program {
        Program {
            name: "toy".into(),
            precision: Precision::F64,
            n_inputs: 2,
            n_regs: 4,
            consts: vec![PoolConst::f64_pair(1.0, 1.0)],
            insns: vec![Insn::Const { dst: 2, idx: 0 }, Insn::Add { dst: 3, a: 0, b: 2 }],
            inputs: vec!["a".into(), "b".into()],
            outputs: vec![OutputSlot { label: "return".into(), reg: 3 }],
            debug: DebugMap::default(),
        }
    }

    #[test]
    fn dump_is_deterministic_and_complete() {
        let p = toy();
        let d = p.dump();
        assert_eq!(d, p.dump());
        assert!(d.contains("program toy precision=f64 inputs=2 regs=4 consts=1 insns=2"));
        assert!(d.contains("c0 = [1.0, 1.0]"));
        assert!(d.contains("in r0 = a"));
        assert!(d.contains("r3 = add r0, r2"));
        assert!(d.contains("out return = r3"));
    }

    #[test]
    fn validate_catches_structural_bugs() {
        assert!(toy().validate().is_ok());
        let mut p = toy();
        p.insns[1] = Insn::Add { dst: 3, a: 0, b: 3 };
        assert!(p.validate().unwrap_err().contains("read before written"));
        let mut p = toy();
        p.outputs[0].reg = 9;
        assert!(p.validate().unwrap_err().contains("out of range"));
    }

    #[test]
    fn debug_map_must_stay_parallel_to_insns() {
        let mut p = toy();
        p.debug.sites = vec![SrcLoc { line: 3, col: 5 }];
        assert!(p.validate().unwrap_err().contains("debug map"), "length mismatch rejected");
        p.debug.sites.push(SrcLoc::default());
        assert!(p.validate().is_ok(), "full-length map accepted");
        assert_eq!(p.debug.site(0), SrcLoc { line: 3, col: 5 });
        assert!(!p.debug.site(1).is_known());
        assert!(!p.debug.site(99).is_known(), "out of range reads as unknown");
        // Provenance never leaks into the golden-pinned listing.
        assert_eq!(p.dump(), toy().dump());
    }

    #[test]
    fn ssa_validation_rejects_register_reuse_but_validate_allows_it() {
        let mut p = toy();
        p.insns[1] = Insn::Add { dst: 2, a: 0, b: 1 };
        p.outputs[0].reg = 2;
        assert!(p.validate().is_ok(), "relaxed form permits reuse");
        assert!(p.validate_ssa().unwrap_err().contains("written twice"));
        assert!(toy().validate_ssa().is_ok(), "SSA lowering output passes both");
    }
}
