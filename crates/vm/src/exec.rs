//! The lane-generic bytecode executor.
//!
//! One interpreter loop, two instantiations per precision: `L = T`
//! runs a single item (the scalar reference), `L = T::Lane` runs four
//! items at once over the packed `LaneOps` kernels. Because every
//! packed operation is lane-wise bit-identical to its scalar
//! counterpart (the contract pinned in `igen-interval`), the two
//! instantiations produce bit-identical endpoints item for item — the
//! same argument that makes the hand-written batch kernels
//! thread-count invariant extends to every compiled program.

use crate::bytecode::{Insn, PoolConst, Precision, Program};
use igen_interval::{DdI, F64I};
use igen_kernels::{LaneOrScalar, Numeric};
use igen_telemetry::{Counter, WidthHist};

/// Total bytecode instructions retired by [`run_lanes`] (one count per
/// instruction per call, independent of lane width).
pub static VM_INSNS_EXECUTED: Counter = Counter::new("vm.insns_executed");

/// [`run_lanes`] invocations at packed width (4 items per call).
pub static VM_PACKED_CALLS: Counter = Counter::new("vm.packed_calls");

/// [`run_lanes`] invocations at scalar width (tail items and
/// reference runs).
pub static VM_SCALAR_CALLS: Counter = Counter::new("vm.scalar_calls");

/// An interval element the bytecode executor can run over: a
/// [`Numeric`] type plus constant-pool decoding and the clamped
/// integer power the `ia_pow_*` builtins implement.
pub trait VmElem: Numeric {
    /// The bytecode precision this element executes.
    const PRECISION: Precision;

    /// Decodes a pooled constant (exact: the pool stores full
    /// double-double components).
    fn from_const(c: &PoolConst) -> Self;

    /// Integer power, matching `ia_pow_f64`/`ia_pow_dd` bit for bit.
    fn powi_e(self, n: i32) -> Self;

    /// Tightest enclosing f64 endpoint pair (for width telemetry and
    /// endpoint comparisons).
    fn endpoints_f64(&self) -> (f64, f64);
}

impl VmElem for F64I {
    const PRECISION: Precision = Precision::F64;

    fn from_const(c: &PoolConst) -> F64I {
        // Same as `ia_set_f64(lo_hi, hi_hi)`; lowering guarantees an
        // ordered pair.
        F64I::new(c.lo_hi, c.hi_hi).expect("pool constant is ordered")
    }
    fn powi_e(self, n: i32) -> F64I {
        self.powi(n)
    }
    fn endpoints_f64(&self) -> (f64, f64) {
        (self.lo(), self.hi())
    }
}

impl VmElem for DdI {
    const PRECISION: Precision = Precision::Dd;

    fn from_const(c: &PoolConst) -> DdI {
        // Same as `ia_set_ddx(lo_hi, lo_lo, hi_hi, hi_lo)`.
        DdI::new(igen_dd::Dd::new(c.lo_hi, c.lo_lo), igen_dd::Dd::new(c.hi_hi, c.hi_lo))
            .expect("pool constant is ordered")
    }
    fn powi_e(self, n: i32) -> DdI {
        self.powi(n)
    }
    fn endpoints_f64(&self) -> (f64, f64) {
        let f = self.to_f64i();
        (f.lo(), f.hi())
    }
}

/// Executes `p` over a register file of lanes: `inputs` feeds registers
/// `0..n_inputs` (one lane vector per input, so `L::WIDTH` items run at
/// once), `regs` is caller-owned scratch reused across calls, and the
/// declared outputs land in `outputs` in declaration order.
///
/// # Panics
///
/// Panics if the element precision does not match the program's or if
/// `inputs.len() != n_inputs`. Register/constant indices are trusted
/// (lowering validates them; see [`Program::validate`]).
pub fn run_lanes<T: VmElem, L: LaneOrScalar<T>>(
    p: &Program,
    inputs: &[L],
    regs: &mut Vec<L>,
    outputs: &mut Vec<L>,
) {
    assert_eq!(T::PRECISION, p.precision, "element precision does not match program");
    assert_eq!(inputs.len(), p.n_inputs as usize, "program expects {} inputs", p.n_inputs);
    // Grow-only: stale values from a previous call are never read
    // because validation guarantees every read follows a write, so a
    // reused register file skips the full zero-reinit per call.
    if regs.len() < p.n_regs as usize {
        regs.resize(p.n_regs as usize, L::splat_l(T::zero()));
    }
    regs[..inputs.len()].copy_from_slice(inputs);
    for insn in &p.insns {
        let v = match *insn {
            Insn::Const { idx, .. } => L::splat_l(T::from_const(&p.consts[idx as usize])),
            Insn::Add { a, b, .. } => regs[a as usize] + regs[b as usize],
            Insn::Sub { a, b, .. } => regs[a as usize] - regs[b as usize],
            Insn::Mul { a, b, .. } => regs[a as usize] * regs[b as usize],
            Insn::Div { a, b, .. } => regs[a as usize] / regs[b as usize],
            Insn::Min { a, b, .. } => regs[a as usize].min_l(regs[b as usize]),
            Insn::Max { a, b, .. } => regs[a as usize].max_l(regs[b as usize]),
            Insn::Neg { a, .. } => -regs[a as usize],
            Insn::Sqrt { a, .. } => regs[a as usize].sqrt_l(),
            Insn::Abs { a, .. } => regs[a as usize].abs_l(),
            Insn::Sqr { a, .. } => regs[a as usize].sqr_l(),
            Insn::Pow { a, n, .. } => {
                // No packed powi kernel: lane-wise is bit-identical
                // because the lanes are independent.
                let x = regs[a as usize];
                L::from_fn_l(|i| x.lane_l(i).powi_e(n))
            }
            // Dispatch-fused multiply-accumulate: the same two rounded
            // interval ops as the Mul+Add/Sub pair it replaced, product
            // on the right of the accumulate, so bit-identical.
            Insn::MulAdd { a, b, acc, .. } => {
                regs[acc as usize] + (regs[a as usize] * regs[b as usize])
            }
            Insn::MulSub { a, b, acc, .. } => {
                regs[acc as usize] - (regs[a as usize] * regs[b as usize])
            }
        };
        regs[insn.dst() as usize] = v;
    }
    VM_INSNS_EXECUTED.add(p.insns.len() as u64);
    if L::WIDTH > 1 {
        VM_PACKED_CALLS.inc();
    } else {
        VM_SCALAR_CALLS.inc();
    }
    outputs.clear();
    outputs.extend(p.outputs.iter().map(|o| regs[o.reg as usize]));
}

/// One-item convenience wrapper: runs `p` at scalar width and returns
/// the outputs in declaration order.
pub fn run_scalar<T: VmElem>(p: &Program, inputs: &[T]) -> Vec<T> {
    let mut regs = Vec::new();
    let mut out = Vec::new();
    run_lanes::<T, T>(p, inputs, &mut regs, &mut out);
    out
}

/// Largest relative input width of `insn`'s source registers, or `0.0`
/// for a zero-operand instruction (a `Const` is a width *source*: any
/// width at its output is width introduced, not amplified).
pub(crate) fn max_src_rel(insn: &Insn, at: impl Fn(u32) -> (f64, f64)) -> f64 {
    use igen_telemetry::profile::rel_width;
    let mut max_in = 0.0f64;
    for r in crate::peephole::srcs(insn) {
        let (lo, hi) = at(r);
        let w = rel_width(lo, hi);
        // NaN operands poison the max (NaN.max keeps the other side,
        // so propagate by hand): the sample lands in the top bucket.
        if w.is_nan() {
            return f64::NAN;
        }
        max_in = max_in.max(w);
    }
    max_in
}

/// [`run_scalar`] with per-instruction profiling: execution time,
/// input/output relative widths and the width-amplification statistic
/// accumulate into `prof` under each instruction's [`DebugMap`] site.
///
/// The arithmetic is the *same operations in the same order* as
/// [`run_lanes`] at scalar width, so the returned endpoints are
/// bit-identical to an unprofiled run — profiling only observes values,
/// it never re-rounds them. When `prof` is inactive (telemetry compiled
/// out or recording off) this falls straight through to [`run_scalar`]
/// and pays nothing per instruction.
pub fn run_scalar_profiled<T: VmElem>(
    p: &Program,
    inputs: &[T],
    prof: &mut igen_telemetry::UnitProfiler,
) -> Vec<T> {
    use igen_telemetry::profile::rel_width;
    if !prof.active() {
        return run_scalar(p, inputs);
    }
    assert_eq!(T::PRECISION, p.precision, "element precision does not match program");
    assert_eq!(inputs.len(), p.n_inputs as usize, "program expects {} inputs", p.n_inputs);
    let mut regs: Vec<T> = vec![T::zero(); p.n_regs as usize];
    regs[..inputs.len()].copy_from_slice(inputs);
    for (i, insn) in p.insns.iter().enumerate() {
        let site = p.debug.site(i);
        prof.set_meta(i, site.line, site.col, insn.op_name());
        // Sources are read before the write: the peephole reuses
        // registers, so dst may alias a source.
        let max_in = max_src_rel(insn, |r| regs[r as usize].endpoints_f64());
        let t0 = prof.now_ns();
        let v = match *insn {
            Insn::Const { idx, .. } => T::from_const(&p.consts[idx as usize]),
            Insn::Add { a, b, .. } => regs[a as usize] + regs[b as usize],
            Insn::Sub { a, b, .. } => regs[a as usize] - regs[b as usize],
            Insn::Mul { a, b, .. } => regs[a as usize] * regs[b as usize],
            Insn::Div { a, b, .. } => regs[a as usize] / regs[b as usize],
            Insn::Min { a, b, .. } => regs[a as usize].min_l(regs[b as usize]),
            Insn::Max { a, b, .. } => regs[a as usize].max_l(regs[b as usize]),
            Insn::Neg { a, .. } => -regs[a as usize],
            Insn::Sqrt { a, .. } => regs[a as usize].sqrt_l(),
            Insn::Abs { a, .. } => regs[a as usize].abs_l(),
            Insn::Sqr { a, .. } => regs[a as usize].sqr_l(),
            Insn::Pow { a, n, .. } => regs[a as usize].powi_e(n),
            Insn::MulAdd { a, b, acc, .. } => {
                regs[acc as usize] + (regs[a as usize] * regs[b as usize])
            }
            Insn::MulSub { a, b, acc, .. } => {
                regs[acc as usize] - (regs[a as usize] * regs[b as usize])
            }
        };
        prof.add_time(i, prof.now_ns().saturating_sub(t0));
        let (lo, hi) = v.endpoints_f64();
        prof.add_sample(i, max_in, rel_width(lo, hi));
        regs[insn.dst() as usize] = v;
    }
    VM_INSNS_EXECUTED.add(p.insns.len() as u64);
    VM_SCALAR_CALLS.inc();
    p.outputs.iter().map(|o| regs[o.reg as usize]).collect()
}

/// The per-program output-width histogram `width.vm.<name>`.
///
/// The telemetry registry holds `'static` histograms, so per-program
/// instances are interned and leaked on first use — programs are few
/// and long-lived, and in non-telemetry builds the histogram is a
/// zero-sized no-op.
pub fn program_width_hist(name: &str) -> &'static WidthHist {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static TABLE: OnceLock<Mutex<HashMap<String, &'static WidthHist>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut t = table.lock().expect("vm hist table poisoned");
    if let Some(h) = t.get(name) {
        return h;
    }
    let full: &'static str = Box::leak(format!("width.vm.{name}").into_boxed_str());
    let h: &'static WidthHist = Box::leak(Box::new(WidthHist::new(full)));
    t.insert(name.to_string(), h);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::OutputSlot;

    fn quad() -> Program {
        // return -b + sqrt(b² - 4ac) with a=r0, b=r1, c=r2.
        let p = Program {
            name: "quad".into(),
            precision: Precision::F64,
            n_inputs: 3,
            n_regs: 11,
            consts: vec![PoolConst::f64_pair(4.0, 4.0)],
            insns: vec![
                Insn::Sqr { dst: 3, a: 1 },
                Insn::Const { dst: 4, idx: 0 },
                Insn::Mul { dst: 5, a: 4, b: 0 },
                Insn::Mul { dst: 6, a: 5, b: 2 },
                Insn::Sub { dst: 7, a: 3, b: 6 },
                Insn::Sqrt { dst: 8, a: 7 },
                Insn::Neg { dst: 9, a: 1 },
                Insn::Add { dst: 10, a: 9, b: 8 },
            ],
            inputs: vec!["a".into(), "b".into(), "c".into()],
            outputs: vec![OutputSlot { label: "return".into(), reg: 10 }],
            debug: crate::bytecode::DebugMap::default(),
        };
        p.validate().expect("valid test program");
        p
    }

    #[test]
    fn packed_is_bit_identical_to_scalar() {
        let p = quad();
        let items: Vec<[F64I; 3]> = (0..4)
            .map(|i| {
                let f = i as f64;
                [
                    F64I::new(1.0 + 0.25 * f, 1.0 + 0.3 * f).unwrap(),
                    F64I::new(-3.5 - f, -3.0 - f).unwrap(),
                    F64I::new(0.5, 0.75 + 0.1 * f).unwrap(),
                ]
            })
            .collect();
        // Scalar, one item at a time.
        let scalar: Vec<Vec<F64I>> = items.iter().map(|it| run_scalar(&p, it)).collect();
        // Packed, all four in one call.
        let inputs: Vec<igen_interval::F64Ix4> = (0..3)
            .map(|j| <igen_interval::F64Ix4 as LaneOrScalar<F64I>>::from_fn_l(|l| items[l][j]))
            .collect();
        let mut regs = Vec::new();
        let mut out = Vec::new();
        run_lanes::<F64I, igen_interval::F64Ix4>(&p, &inputs, &mut regs, &mut out);
        for (l, want) in scalar.iter().enumerate() {
            let got = out[0].lane_l(l);
            assert_eq!(got.lo().to_bits(), want[0].lo().to_bits());
            assert_eq!(got.hi().to_bits(), want[0].hi().to_bits());
        }
    }

    #[test]
    fn dd_constants_roundtrip_through_the_pool() {
        use igen_dd::Dd;
        let c = PoolConst { lo_hi: 1.05, lo_lo: -4.44e-17, hi_hi: 1.05, hi_lo: -4.4e-17 };
        let v = DdI::from_const(&c);
        assert_eq!(v.lo().hi(), 1.05);
        assert_eq!(v.lo().lo(), -4.44e-17);
        let p = Program {
            name: "c".into(),
            precision: Precision::Dd,
            n_inputs: 0,
            n_regs: 1,
            consts: vec![c],
            insns: vec![Insn::Const { dst: 0, idx: 0 }],
            inputs: vec![],
            outputs: vec![OutputSlot { label: "return".into(), reg: 0 }],
            debug: crate::bytecode::DebugMap::default(),
        };
        let out = run_scalar::<DdI>(&p, &[]);
        assert_eq!(out[0].hi().cmp_num(&Dd::new(1.05, -4.4e-17)), Some(core::cmp::Ordering::Equal));
    }

    #[test]
    #[should_panic(expected = "precision")]
    fn precision_mismatch_panics() {
        let p = quad();
        let _ = run_scalar::<DdI>(&p, &[DdI::ZERO, DdI::ZERO, DdI::ZERO]);
    }

    #[test]
    fn profiled_run_is_bit_identical_to_plain() {
        // Holds whether or not the profiler is live: inactive it falls
        // through to run_scalar, active it runs the same operations in
        // the same order and only observes the values.
        let p = quad();
        let x = [
            F64I::new(1.25, 1.5).unwrap(),
            F64I::new(-4.0, -3.5).unwrap(),
            F64I::new(0.5, 0.625).unwrap(),
        ];
        let want = run_scalar(&p, &x);
        let mut prof = igen_telemetry::UnitProfiler::start(&p.name, p.insns.len());
        let got = run_scalar_profiled(&p, &x, &mut prof);
        prof.finish();
        assert_eq!(want.len(), got.len());
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.lo().to_bits(), g.lo().to_bits());
            assert_eq!(w.hi().to_bits(), g.hi().to_bits());
        }
    }
}
