//! Register bytecode for IGen interval programs.
//!
//! This crate turns an optimized, renumbered [`igen_ir::IrFunction`]
//! into a compact register [`Program`] — one flat instruction stream
//! over dense virtual registers, constants pooled and deduplicated,
//! inputs and outputs declared up front — and executes it with a
//! single lane-generic interpreter loop, [`run_lanes`].
//!
//! The same program runs at scalar width (`F64I`, `DdI`) and at packed
//! width (`F64Ix4`, `DdIx4` via the `LaneOps` kernels) from one code
//! path. Because every packed kernel is lane-wise bit-identical to its
//! scalar counterpart, the packed execution of a compiled program is
//! bit-identical, endpoint for endpoint, to the scalar reference —
//! which is in turn pinned against the differential IR interpreter.
//! That chain is what lets `igen-batch` fan an arbitrary compiled
//! function out across threads with a determinism guarantee instead of
//! a tolerance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytecode;
pub mod exec;
pub mod lower;
pub mod peephole;
pub mod prepared;

pub use bytecode::{DebugMap, Insn, OutputSlot, PoolConst, Precision, Program, SrcLoc};
pub use exec::{program_width_hist, run_lanes, run_scalar, run_scalar_profiled, VmElem};
pub use lower::{lower, ArgBind, BindSpec, LowerError, DEFAULT_STEP_BUDGET, MAX_INSNS};
pub use peephole::{peephole, PeepholeStats};
pub use prepared::{run_tile, run_tile_profiled, PreparedProgram, TileBank, DEFAULT_TILE_GROUPS};
