//! Telemetry under concurrency (satellite of the telemetry PR): the
//! runtime counters aggregated across `igen-batch` worker threads must
//! equal the single-thread totals for the same workload — the batch
//! engine partitions work, it must not change *what* runs — and the
//! spans emitted to JSON must nest well-formedly per thread.
//!
//! The whole file needs real counters, so it only exists with the
//! `telemetry` feature on (`cargo test -p igen-batch --features
//! telemetry`).
#![cfg(feature = "telemetry")]

use igen_batch::engine::par_map;
use igen_batch::{dot_batch, henon_ensemble, BatchConfig, BatchF64I};
use igen_interval::{F64Ix4, LaneOps};
use igen_kernels::workload;
use igen_telemetry::Snapshot;
use proptest::prelude::*;

/// Counter/hist snapshots are process-global; the tests here reset and
/// re-read them, so they must not interleave.
static TEL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn sample(seed: u64, len: usize) -> BatchF64I {
    let mut rng = workload::rng(seed);
    BatchF64I::from_intervals(&workload::intervals_1ulp(&workload::random_points(
        &mut rng, len, -2.0, 2.0,
    )))
}

/// Runs `work` from a clean telemetry slate and returns the snapshot it
/// produced. The caller holds `TEL_LOCK`.
fn traced(work: impl FnOnce()) -> Snapshot {
    igen_telemetry::reset();
    igen_telemetry::set_recording(true);
    work();
    igen_telemetry::set_recording(false);
    let snap = igen_telemetry::snapshot();
    igen_telemetry::reset();
    snap
}

/// Counters whose value legitimately depends on the chunking itself
/// rather than on the work performed (one `batch.chunks` tick per
/// worker range).
fn partitioning_dependent(name: &str) -> bool {
    name == "batch.chunks"
}

fn workload_counters(snap: &Snapshot) -> Vec<(String, u64)> {
    snap.counters.iter().filter(|(n, _)| !partitioning_dependent(n)).cloned().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The same workload run at 1, 2 and 3 worker threads produces
    /// identical workload-counter totals (SIMD dispatches, guard
    /// patches, ulp bumps, ...) and identical width histograms.
    #[test]
    fn counters_are_thread_count_invariant(
        batch in 4usize..32,
        n in 1usize..24,
        seed in 0u64..1024,
    ) {
        let _serial = TEL_LOCK.lock().unwrap();
        let xs = sample(seed, batch * n);
        let ys = sample(seed ^ 0x9e37_79b9, batch * n);
        // Lane groups for a packed sqrt/sqr/compare sweep, so the
        // unary/comparison patch-site counters are exercised too.
        let groups: Vec<F64Ix4> =
            (0..batch * n / 4).map(|g| xs.load_x4_contig(g * 4)).collect();
        let run = |threads: usize| {
            let cfg = BatchConfig::new().with_threads(threads).with_seq_threshold(0);
            traced(|| {
                igen_bench_sink(dot_batch(&cfg, n, &xs, &ys));
                igen_bench_sink(par_map(&cfg, &groups, |v| {
                    let root = v.abs().sqrt();
                    let square = v.sqr();
                    (root, square, v.cmp_lt(square).lane(0))
                }));
            })
        };
        let base = run(1);
        let base_counters = workload_counters(&base);
        prop_assert!(
            base_counters.iter().any(|(n, v)| n.starts_with("simd.") && *v > 0),
            "the workload must actually exercise the instrumented kernels: {base_counters:?}"
        );
        for op in ["sqrt", "sqr", "abs", "cmp"] {
            let name = format!("simd.{op}.packed_calls");
            prop_assert!(
                base_counters.iter().any(|(n, v)| *n == name && *v > 0),
                "the sweep must tick {name}: {base_counters:?}"
            );
        }
        for threads in [2usize, 3] {
            let multi = run(threads);
            prop_assert_eq!(
                &workload_counters(&multi),
                &base_counters,
                "counter totals diverged at {} threads",
                threads
            );
            prop_assert_eq!(&multi.hists, &base.hists, "width histograms diverged");
        }
    }
}

/// Keeps results observable without depending on the bench crate.
fn igen_bench_sink<T>(v: T) {
    let _ = std::hint::black_box(v);
}

/// Spans from a multi-threaded run, serialized to JSON lines and parsed
/// back, nest well-formedly: per thread, every span lies inside its
/// parent's extent and its recorded depth equals the enclosing stack
/// depth.
#[test]
fn emitted_spans_nest_well_formed() {
    let _serial = TEL_LOCK.lock().unwrap();
    let xs = sample(7, 64);
    let ys = sample(8, 64);
    let cfg = BatchConfig::new().with_threads(3).with_seq_threshold(0);
    let snap = traced(|| {
        igen_bench_sink(dot_batch(&cfg, 16, &xs, &ys));
        igen_bench_sink(henon_ensemble(&cfg, 5, &xs, &ys));
    });
    // Round-trip through the emitted JSON, as the CLI would.
    let parsed = Snapshot::from_jsonl(&snap.to_jsonl()).expect("re-parse own trace");
    assert!(!parsed.spans.is_empty(), "the parallel path must record spans");
    assert!(
        parsed.spans.iter().any(|s| s.name == "batch.chunk"),
        "per-worker chunk spans missing: {:?}",
        parsed.spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
    );

    let mut by_thread: std::collections::BTreeMap<u64, Vec<&igen_telemetry::SpanRec>> =
        std::collections::BTreeMap::new();
    for s in &parsed.spans {
        by_thread.entry(s.thread).or_default().push(s);
    }
    for (thread, mut spans) in by_thread {
        // Parents start no later than children; at equal starts the
        // shallower span is the parent.
        spans.sort_by_key(|s| (s.start_ns, s.depth));
        let mut stack: Vec<&igen_telemetry::SpanRec> = Vec::new();
        for s in spans {
            while let Some(top) = stack.last() {
                if top.start_ns + top.dur_ns <= s.start_ns && s.depth <= top.depth {
                    stack.pop();
                } else {
                    break;
                }
            }
            assert_eq!(
                s.depth as usize,
                stack.len(),
                "thread {thread}: span {} at depth {} under stack {:?}",
                s.name,
                s.depth,
                stack.iter().map(|t| t.name.as_str()).collect::<Vec<_>>()
            );
            if let Some(parent) = stack.last() {
                assert!(
                    s.start_ns >= parent.start_ns
                        && s.start_ns + s.dur_ns <= parent.start_ns + parent.dur_ns,
                    "thread {thread}: span {} [{}..{}] escapes parent {} [{}..{}]",
                    s.name,
                    s.start_ns,
                    s.start_ns + s.dur_ns,
                    parent.name,
                    parent.start_ns,
                    parent.start_ns + parent.dur_ns
                );
            }
            stack.push(s);
        }
    }
}
