//! Bit-identity of the packed batched kernels against the scalar paper
//! kernels, across thread counts and SIMD backends.
//!
//! `gemm_row_blocks` evolves four columns of `C` per packed register
//! (`linalg::gemm_packed`) and `ffnn_batch` forwards four batch items
//! per register group (`Ffnn::forward_lanes`); both must reproduce the
//! scalar `gemm`/`forward` results bit for bit at any thread count and
//! on every backend the host supports — including the forced-SSE2
//! downgrade CI exercises on AVX2 hosts.
//!
//! The backend override is process-global, so every forced section takes
//! a mutex; no other test in this binary touches the lane types outside
//! of it.

use igen_batch::{ffnn_batch, gemm_row_blocks, BatchConfig};
use igen_interval::{DdI, F64I};
use igen_kernels::ffnn::Ffnn;
use igen_kernels::linalg::{gemm, gemm_lanes, gemm_packed};
use igen_kernels::workload;
use igen_round::simd::{self, Backend};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes `force_backend` sections (the override is process-global).
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn with_backend<T>(bk: Backend, f: impl FnOnce() -> T) -> T {
    let _guard = BACKEND_LOCK.lock().unwrap();
    simd::force_backend(Some(bk));
    let out = f();
    simd::force_backend(None);
    out
}

fn backends() -> Vec<Backend> {
    [Backend::Portable, Backend::Sse2, Backend::Avx2Fma]
        .into_iter()
        .filter(|&bk| bk <= simd::detected_backend())
        .collect()
}

fn cfg(threads: usize) -> BatchConfig {
    BatchConfig::new().with_threads(threads).with_seq_threshold(0)
}

fn sample(seed: u64, len: usize) -> Vec<F64I> {
    let mut rng = workload::rng(seed);
    workload::intervals_1ulp(&workload::random_points(&mut rng, len, -2.0, 2.0))
}

fn same_all(got: &[F64I], want: &[F64I]) -> bool {
    got.len() == want.len()
        && got.iter().zip(want).all(|(g, w)| {
            g.neg_lo().to_bits() == w.neg_lo().to_bits() && g.hi().to_bits() == w.hi().to_bits()
        })
}

/// The scalar reference never dispatches to packed kernels, so it is
/// computed once outside the forced sections.
#[test]
fn gemm_row_blocks_bit_identical_all_backends_and_threads() {
    // Dimensions chosen to exercise full lane groups, the column tail
    // (n = 11 ≡ 3 mod 4) and a partial trailing row block.
    let (m, k, n) = (10, 7, 11);
    let a = sample(40, m * k);
    let b = sample(41, k * n);
    let c0 = sample(42, m * n);
    let mut want = c0.clone();
    gemm(m, k, n, &a, &b, &mut want);
    for bk in backends() {
        for threads in 1..=4 {
            let got = with_backend(bk, || {
                let mut c = c0.clone();
                gemm_row_blocks(&cfg(threads), m, k, n, &a, &b, &mut c, 3);
                c
            });
            assert!(same_all(&got, &want), "{bk:?} at {threads} threads diverged from scalar gemm");
        }
    }
}

#[test]
fn ffnn_batch_bit_identical_all_backends_and_threads() {
    let net = Ffnn::synthetic(12, 3);
    // 7 inputs: one full 4-wide register group plus a scalar tail of 3.
    let inputs: Vec<Vec<f64>> = (0..7).map(Ffnn::synthetic_input).collect();
    let want: Vec<Vec<F64I>> = inputs.iter().map(|x| net.forward::<F64I>(x)).collect();
    for bk in backends() {
        for threads in 1..=4 {
            let got: Vec<Vec<F64I>> = with_backend(bk, || ffnn_batch(&cfg(threads), &net, &inputs));
            assert_eq!(got.len(), want.len());
            for (b, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    same_all(g, w),
                    "{bk:?} at {threads} threads: item {b} diverged from scalar forward"
                );
            }
        }
    }
}

/// Named for the CI leg that forces the SSE2 backend on AVX2 hosts: the
/// packed batch kernels must survive the downgrade bit-identically.
#[test]
fn forced_sse2_batch_kernels_bit_identical() {
    if simd::detected_backend() < Backend::Sse2 {
        return; // nothing to force on this host
    }
    let (m, k, n) = (6, 5, 9);
    let a = sample(50, m * k);
    let b = sample(51, k * n);
    let c0 = sample(52, m * n);
    let mut want = c0.clone();
    gemm(m, k, n, &a, &b, &mut want);
    let net = Ffnn::synthetic(8, 9);
    let inputs: Vec<Vec<f64>> = (0..5).map(Ffnn::synthetic_input).collect();
    let want_ffnn: Vec<Vec<F64I>> = inputs.iter().map(|x| net.forward::<F64I>(x)).collect();
    let (got_gemm, got_ffnn) = with_backend(Backend::Sse2, || {
        let mut c = c0.clone();
        gemm_row_blocks(&cfg(2), m, k, n, &a, &b, &mut c, 2);
        let f: Vec<Vec<F64I>> = ffnn_batch(&cfg(2), &net, &inputs);
        (c, f)
    });
    assert!(same_all(&got_gemm, &want), "forced SSE2 gemm diverged");
    for (b, (g, w)) in got_ffnn.iter().zip(&want_ffnn).enumerate() {
        assert!(same_all(g, w), "forced SSE2 ffnn item {b} diverged");
    }
}

/// The double-double lane types have no packed backend, but the same
/// generic kernels drive them: the batched results must still equal the
/// scalar references exactly.
#[test]
fn gemm_and_ffnn_packed_dd_match_scalar() {
    let (m, k, n) = (5, 4, 6);
    let mk = |seed: u64, len: usize| -> Vec<DdI> {
        sample(seed, len).iter().map(DdI::from_f64i).collect()
    };
    let (a, b, c0) = (mk(60, m * k), mk(61, k * n), mk(62, m * n));
    let mut want = c0.clone();
    gemm(m, k, n, &a, &b, &mut want);
    let mut got = c0.clone();
    gemm_row_blocks(&cfg(3), m, k, n, &a, &b, &mut got, 2);
    assert_eq!(got, want);
    let net = Ffnn::synthetic(8, 4);
    let inputs: Vec<Vec<f64>> = (0..5).map(Ffnn::synthetic_input).collect();
    let got: Vec<Vec<DdI>> = ffnn_batch(&cfg(2), &net, &inputs);
    for (b, input) in inputs.iter().enumerate() {
        assert_eq!(got[b], net.forward::<DdI>(input), "dd item {b}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random shapes and thread counts: `gemm_lanes` at the packed width
    /// equals the scalar instantiation, through the batch entry point.
    #[test]
    fn gemm_row_blocks_bit_identical_random_shapes(
        seed in 0u64..1000,
        m in 1usize..9,
        k in 1usize..7,
        n in 1usize..13,
        threads in 1usize..5,
        row_block in 1usize..5,
    ) {
        let a = sample(seed, m * k);
        let b = sample(seed + 1, k * n);
        let c0 = sample(seed + 2, m * n);
        let mut want = c0.clone();
        gemm_lanes::<F64I, F64I>(m, k, n, &a, &b, &mut want);
        let mut direct = c0.clone();
        gemm_packed(m, k, n, &a, &b, &mut direct);
        prop_assert!(same_all(&direct, &want), "gemm_packed diverged from scalar gemm_lanes");
        let mut got = c0.clone();
        gemm_row_blocks(&cfg(threads), m, k, n, &a, &b, &mut got, row_block);
        prop_assert!(same_all(&got, &want), "gemm_row_blocks diverged at {threads} threads");
    }
}
