//! The batch engine's contract, pinned by property tests: batched
//! evaluation is **bit-identical** to the scalar kernels at every thread
//! count (software directed rounding is deterministic, and each batch
//! item executes the scalar operation sequence), and chunked reductions
//! are invariant in the thread count. Sizes are drawn to cover the empty
//! batch, lane-width tails (batch not a multiple of 4), and length-1
//! vectors.

use igen_batch::engine::par_reduce;
use igen_batch::{
    dot_batch, ffnn_batch, gemm_row_blocks, henon_ensemble, mvm_batch, BatchConfig, BatchF64I,
};
use igen_interval::F64I;
use igen_kernels::ffnn::Ffnn;
use igen_kernels::linalg::{dot, gemm, mvm};
use igen_kernels::{henon_from, workload};
use proptest::prelude::*;

/// The thread counts every property is checked at: sequential, the
/// smallest parallel count, and everything the host offers.
fn thread_counts() -> Vec<usize> {
    let mut ts = vec![1, 2, igen_batch::available_threads()];
    ts.sort_unstable();
    ts.dedup();
    ts
}

fn cfg(threads: usize) -> BatchConfig {
    // seq_threshold 0: force the parallel path even for tiny batches.
    BatchConfig::new().with_threads(threads).with_seq_threshold(0)
}

/// Seeded 1-ulp-wide interval batch (the paper's input distribution).
fn batch_1ulp(seed: u64, len: usize) -> BatchF64I {
    let mut rng = workload::rng(seed);
    BatchF64I::from_intervals(&workload::intervals_1ulp(&workload::random_points(
        &mut rng, len, -3.0, 3.0,
    )))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // dot: every batch item bitwise equals the scalar fold, at 1 / 2 /
    // max threads. `batch in 0..11` crosses the empty batch and both
    // lane tails (1..3 and 5..7 mod 4).
    #[test]
    fn dot_batch_bit_identical_to_scalar(
        n in 1usize..24,
        batch in 0usize..11,
        seed in proptest::strategy::any::<u64>(),
    ) {
        let xs = batch_1ulp(seed, batch * n);
        let ys = batch_1ulp(seed ^ 0xdead_beef, batch * n);
        let xv = xs.to_intervals();
        let yv = ys.to_intervals();
        let want: Vec<F64I> =
            (0..batch).map(|b| dot(&xv[b * n..(b + 1) * n], &yv[b * n..(b + 1) * n])).collect();
        for t in thread_counts() {
            let got = dot_batch(&cfg(t), n, &xs, &ys);
            prop_assert_eq!(got.to_intervals(), want.clone(), "threads = {}", t);
        }
    }

    // mvm: shared matrix, batched vectors; per item bitwise equal to the
    // scalar mvm.
    #[test]
    fn mvm_batch_bit_identical_to_scalar(
        m in 1usize..10,
        n in 1usize..10,
        batch in 0usize..9,
        seed in proptest::strategy::any::<u64>(),
    ) {
        let a = batch_1ulp(seed, m * n).to_intervals();
        let xs = batch_1ulp(seed ^ 1, batch * n);
        let ys = batch_1ulp(seed ^ 2, batch * m);
        let xv = xs.to_intervals();
        let mut want = ys.to_intervals();
        for b in 0..batch {
            let mut y = want[b * m..(b + 1) * m].to_vec();
            mvm(m, n, &a, &xv[b * n..(b + 1) * n], &mut y);
            want[b * m..(b + 1) * m].copy_from_slice(&y);
        }
        for t in thread_counts() {
            let got = mvm_batch(&cfg(t), m, n, &a, &xs, &ys);
            prop_assert_eq!(got.to_intervals(), want.clone(), "threads = {}", t);
        }
    }

    // Hénon ensembles: each orbit bitwise equals the scalar iteration
    // from its initial point.
    #[test]
    fn henon_ensemble_bit_identical_to_scalar(
        batch in 0usize..13,
        iters in 0usize..40,
        seed in proptest::strategy::any::<u64>(),
    ) {
        let x0s = batch_1ulp(seed, batch);
        let y0s = batch_1ulp(seed ^ 3, batch);
        let want: Vec<F64I> =
            (0..batch).map(|b| henon_from(x0s.get(b), y0s.get(b), iters)).collect();
        for t in thread_counts() {
            let got = henon_ensemble(&cfg(t), iters, &x0s, &y0s);
            prop_assert_eq!(got.to_intervals(), want.clone(), "threads = {}", t);
        }
    }

    // GEMM parallelized over row blocks bitwise equals the scalar triple
    // loop, for any block size (including blocks larger than the matrix).
    #[test]
    fn gemm_row_blocks_bit_identical_to_scalar(
        m in 1usize..8,
        k in 1usize..8,
        n in 1usize..8,
        row_block in 1usize..10,
        seed in proptest::strategy::any::<u64>(),
    ) {
        let a = batch_1ulp(seed, m * k).to_intervals();
        let b = batch_1ulp(seed ^ 4, k * n).to_intervals();
        let c0 = batch_1ulp(seed ^ 5, m * n).to_intervals();
        let mut want = c0.clone();
        gemm(m, k, n, &a, &b, &mut want);
        for t in thread_counts() {
            let mut got = c0.clone();
            gemm_row_blocks(&cfg(t), m, k, n, &a, &b, &mut got, row_block);
            prop_assert_eq!(&got, &want, "threads = {}", t);
        }
    }

    // Chunked interval-sum reduction: identical bits at every thread
    // count (the combine order is pinned by the chunk size, never by the
    // thread count).
    #[test]
    fn par_reduce_thread_count_invariant(
        len in 0usize..400,
        chunk in 1usize..64,
        seed in proptest::strategy::any::<u64>(),
    ) {
        let xs = batch_1ulp(seed, len).to_intervals();
        let run = |t: usize| {
            par_reduce(
                &cfg(t),
                xs.len(),
                chunk,
                |r| r.fold(F64I::ZERO, |acc, i| acc + xs[i]),
                |a, b| a + b,
            )
        };
        let want = run(1);
        for t in thread_counts() {
            prop_assert_eq!(run(t), want, "threads = {}", t);
        }
        prop_assert_eq!(want.is_none(), len == 0);
    }
}

proptest! {
    // FFNN forward passes are slow; fewer cases suffice for an
    // embarrassingly-parallel map.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ffnn_batch_bit_identical_to_scalar(
        width in 4usize..12,
        batch in 0usize..6,
        seed in proptest::strategy::any::<u64>(),
    ) {
        let net = Ffnn::synthetic(width, seed);
        let inputs: Vec<Vec<f64>> =
            (0..batch as u64).map(|i| Ffnn::synthetic_input(seed.wrapping_add(i))).collect();
        let want: Vec<Vec<F64I>> = inputs.iter().map(|x| net.forward::<F64I>(x)).collect();
        for t in thread_counts() {
            let got: Vec<Vec<F64I>> = ffnn_batch(&cfg(t), &net, &inputs);
            prop_assert_eq!(&got, &want, "threads = {}", t);
        }
    }
}

/// Deterministic edge cases the strategies above only hit by chance.
#[test]
fn lane_tail_edges_exact() {
    for batch in [1usize, 2, 3, 4, 5, 7, 8, 9] {
        let n = 5;
        let xs = batch_1ulp(11, batch * n);
        let ys = batch_1ulp(13, batch * n);
        let got = dot_batch(&cfg(2), n, &xs, &ys);
        assert_eq!(got.len(), batch);
        let xv = xs.to_intervals();
        let yv = ys.to_intervals();
        for b in 0..batch {
            assert_eq!(
                got.get(b),
                dot(&xv[b * n..(b + 1) * n], &yv[b * n..(b + 1) * n]),
                "batch = {batch}, item = {b}"
            );
        }
    }
}

#[test]
fn empty_batch_is_empty_everywhere() {
    let e = BatchF64I::new();
    for t in thread_counts() {
        assert!(dot_batch(&cfg(t), 7, &e, &e).is_empty());
        assert!(henon_ensemble(&cfg(t), 25, &e, &e).is_empty());
        let a = batch_1ulp(1, 6).to_intervals();
        assert!(mvm_batch(&cfg(t), 2, 3, &a, &e, &e).is_empty());
        let got: Vec<Vec<F64I>> = ffnn_batch(&cfg(t), &Ffnn::synthetic(6, 1), &[]);
        assert!(got.is_empty());
    }
}

#[test]
fn seq_threshold_does_not_change_results() {
    let n = 8;
    let batch = 12;
    let xs = batch_1ulp(17, batch * n);
    let ys = batch_1ulp(19, batch * n);
    let base = dot_batch(&cfg(1), n, &xs, &ys);
    for threshold in [0, 1, batch, 10 * batch] {
        let c = BatchConfig::new().with_threads(3).with_seq_threshold(threshold);
        assert_eq!(dot_batch(&c, n, &xs, &ys), base, "threshold = {threshold}");
    }
}
