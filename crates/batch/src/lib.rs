//! `igen-batch`: a parallel batch-evaluation engine over the IGen
//! interval runtime.
//!
//! The paper's runtime (and this reproduction's `igen-interval` /
//! `igen-kernels` crates) evaluates one kernel instance at a time. Real
//! deployments of a sound-arithmetic runtime are batch-shaped — many dot
//! products, many initial conditions, many inference inputs — so this
//! crate adds the missing throughput layer:
//!
//! * [`soa`] — structure-of-arrays interval buffers ([`BatchF64I`],
//!   [`BatchDdI`]): endpoint columns stored in the intervals' internal
//!   (negated-low) representation, feeding the `vector.rs` lane types
//!   with plain strided loads.
//! * [`engine`] — a chunked multi-threaded map/reduce
//!   ([`engine::par_map`], [`engine::par_reduce`]) built on
//!   `std::thread::scope` (`rayon` is unavailable offline — documented
//!   substitution), with a configurable sequential fallback threshold
//!   ([`BatchConfig`]).
//! * [`kernels`] — batched entry points for the paper kernels: dot
//!   products, matrix-vector products, GEMM row blocks, Hénon orbit
//!   ensembles, and FFNN inference batches.
//!
//! # Soundness and determinism
//!
//! All directed rounding in this workspace is *software* rounding via
//! error-free transformations — a pure function of its inputs. Batching
//! therefore cannot change results: every batched kernel executes, per
//! batch item, exactly the scalar kernel's operation sequence (four
//! items per packed register, element-wise lane ops), so outputs are
//! **bit-identical to the scalar path at any thread count**. Reductions
//! pin their combine order to fixed-size chunks so they too are
//! reproducible across thread counts. The property tests in
//! `tests/batch_properties.rs` enforce both guarantees.
//!
//! # Example
//!
//! ```
//! use igen_batch::{dot_batch, BatchConfig, BatchF64I};
//! use igen_interval::F64I;
//!
//! // 8 vectors of length 3, batched item-major.
//! let xs: BatchF64I = (0..24).map(|i| F64I::point(i as f64)).collect();
//! let cfg = BatchConfig::new().with_threads(2).with_seq_threshold(0);
//! let dots = dot_batch(&cfg, 3, &xs, &xs);
//! assert_eq!(dots.len(), 8);
//! assert_eq!(dots.get(0).hi(), 0.0 + 1.0 + 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod kernels;
pub mod program;
pub mod soa;

pub use engine::{available_threads, BatchConfig, DEFAULT_SEQ_THRESHOLD};
pub use igen_vm::DEFAULT_TILE_GROUPS;
pub use kernels::{
    dot_batch, dot_batch_dd, ffnn_batch, gemm_row_blocks, henon_ensemble, henon_ensemble_dd,
    mvm_batch, mvm_batch_dd,
};
pub use program::BatchProgram;
pub use soa::{BatchDdI, BatchF64I};
