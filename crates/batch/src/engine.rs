//! The chunked parallel execution engine.
//!
//! `rayon` is not available in the build environment, so the engine is
//! built on `std::thread::scope` (std since 1.63): work is split into
//! contiguous index ranges, one scoped thread per range, and per-range
//! results are stitched back together *in range order*. Because every
//! interval operation in this workspace rounds via deterministic software
//! EFTs, a pure per-element function returns bit-identical results no
//! matter which thread runs it — so `par_map` output is byte-for-byte the
//! sequential output, at any thread count.
//!
//! Reductions are different: interval addition is *not* associative at
//! the bit level, so a reduction's combine order must be pinned for the
//! result to be reproducible. [`par_reduce`] therefore cuts the index
//! space into fixed-size chunks whose boundaries depend only on the
//! configured chunk length — never on the thread count — computes one
//! partial per chunk, and folds the partials left-to-right in chunk
//! order. The result is identical for 1, 2, or N threads.

use std::num::NonZeroUsize;
use std::ops::Range;

use igen_telemetry::Counter;

/// Worker chunks executed by the engine (one per spawned range, so the
/// value depends on the thread count, unlike the arithmetic counters).
/// Zero-sized no-op unless the `telemetry` feature is enabled.
static BATCH_CHUNKS: Counter = Counter::new("batch.chunks");

/// Execution parameters for the batch engine.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    threads: usize,
    seq_threshold: usize,
    tile_groups: usize,
}

/// Below this many work items the engine stays sequential by default —
/// spawning threads for tiny batches costs more than it saves.
pub const DEFAULT_SEQ_THRESHOLD: usize = 32;

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            threads: available_threads(),
            seq_threshold: DEFAULT_SEQ_THRESHOLD,
            tile_groups: igen_vm::DEFAULT_TILE_GROUPS,
        }
    }
}

/// The machine's available parallelism (1 if it cannot be queried).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

impl BatchConfig {
    /// The default configuration: all available cores, default sequential
    /// fallback threshold.
    pub fn new() -> BatchConfig {
        BatchConfig::default()
    }

    /// Sets the worker thread count (`0` means "all available cores").
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> BatchConfig {
        self.threads = if threads == 0 { available_threads() } else { threads };
        self
    }

    /// Sets the sequential fallback threshold: batches of at most this
    /// many items run on the calling thread.
    #[must_use]
    pub fn with_seq_threshold(mut self, seq_threshold: usize) -> BatchConfig {
        self.seq_threshold = seq_threshold;
        self
    }

    /// Sets the tiled-executor tile size in packed groups per tile
    /// (`0` means the default, [`igen_vm::DEFAULT_TILE_GROUPS`]). Tile
    /// size never changes a result bit — only how much instruction
    /// decode is amortized per sweep.
    #[must_use]
    pub fn with_tile_groups(mut self, tile_groups: usize) -> BatchConfig {
        self.tile_groups =
            if tile_groups == 0 { igen_vm::DEFAULT_TILE_GROUPS } else { tile_groups };
        self
    }

    /// Configured worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Configured packed groups per executor tile.
    pub fn tile_groups(&self) -> usize {
        self.tile_groups
    }

    /// Configured sequential fallback threshold.
    pub fn seq_threshold(&self) -> usize {
        self.seq_threshold
    }

    /// Number of worker threads a batch of `n` items will actually use.
    pub fn effective_threads(&self, n: usize) -> usize {
        if n <= self.seq_threshold {
            return 1;
        }
        self.threads.clamp(1, n.max(1))
    }
}

/// Splits `0..n` into `parts` contiguous ranges whose lengths differ by
/// at most one (earlier ranges get the extra items).
fn split_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    debug_assert!(parts >= 1);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Applies `f` to every index in `0..n`, in parallel, preserving index
/// order in the output. Bit-identical to the sequential
/// `(0..n).map(f).collect()` because `f` runs once per index with no
/// cross-index state.
pub fn par_map_indexed<O, F>(cfg: &BatchConfig, n: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    par_map_indexed_with(cfg, n, || (), |(), i| f(i))
}

/// [`par_map_indexed`] with per-worker mutable state: `init` runs once
/// on each worker thread and the resulting state is threaded through
/// every call that worker makes, in index order. Used to reuse
/// expensive scratch (tile register banks) across a worker's chunk
/// without any cross-index data flow — `f` must still be a pure
/// function of its index for the determinism guarantee to hold; the
/// state may only carry *allocations*, never values that influence
/// results.
pub fn par_map_indexed_with<S, O, Init, F>(cfg: &BatchConfig, n: usize, init: Init, f: F) -> Vec<O>
where
    O: Send,
    Init: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> O + Sync,
{
    let threads = cfg.effective_threads(n);
    if threads == 1 {
        BATCH_CHUNKS.inc();
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    let _span = igen_telemetry::span("batch.par_map");
    let ranges = split_ranges(n, threads);
    let mut parts: Vec<Vec<O>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let (f, init) = (&f, &init);
                scope.spawn(move || {
                    let _span = igen_telemetry::span("batch.chunk");
                    BATCH_CHUNKS.inc();
                    let mut state = init();
                    r.map(|i| f(&mut state, i)).collect::<Vec<O>>()
                })
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("batch worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Applies `f` to every item of `items`, in parallel, preserving order.
pub fn par_map<I, O, F>(cfg: &BatchConfig, items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    par_map_indexed(cfg, items.len(), |i| f(&items[i]))
}

/// Splits `data` into consecutive blocks of `block_len` items (the last
/// block may be shorter) and runs `f(block_index, block)` on every block,
/// distributing contiguous runs of blocks across threads. Each block is
/// handed out as a disjoint `&mut` slice, so `f` may freely mutate it.
///
/// # Panics
///
/// Panics if `block_len == 0`.
pub fn par_for_each_block<T, F>(cfg: &BatchConfig, data: &mut [T], block_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(block_len > 0, "block_len must be positive");
    let nblocks = data.len().div_ceil(block_len);
    let threads = cfg.effective_threads(nblocks);
    if threads == 1 {
        BATCH_CHUNKS.inc();
        for (bi, block) in data.chunks_mut(block_len).enumerate() {
            f(bi, block);
        }
        return;
    }
    let _span = igen_telemetry::span("batch.for_each_block");
    let ranges = split_ranges(nblocks, threads);
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut handles = Vec::with_capacity(threads);
        for r in ranges {
            let bytes = (r.len() * block_len).min(rest.len());
            let (head, tail) = rest.split_at_mut(bytes);
            rest = tail;
            let f = &f;
            handles.push(scope.spawn(move || {
                let _span = igen_telemetry::span("batch.chunk");
                BATCH_CHUNKS.inc();
                for (off, block) in head.chunks_mut(block_len).enumerate() {
                    f(r.start + off, block);
                }
            }));
        }
        for h in handles {
            h.join().expect("batch worker panicked");
        }
    });
}

/// Chunked deterministic reduction over `0..n`.
///
/// The index space is cut into chunks of exactly `chunk` indices (the
/// last may be shorter); `map_chunk` produces one partial per chunk (in
/// parallel), and the partials are folded left-to-right in chunk order
/// with `combine`. Chunk boundaries depend only on `chunk`, so the
/// result is bitwise identical at every thread count — the property the
/// proptests pin down. Returns `None` when `n == 0`.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn par_reduce<A, F, G>(
    cfg: &BatchConfig,
    n: usize,
    chunk: usize,
    map_chunk: F,
    combine: G,
) -> Option<A>
where
    A: Send,
    F: Fn(Range<usize>) -> A + Sync,
    G: Fn(A, A) -> A,
{
    assert!(chunk > 0, "chunk must be positive");
    if n == 0 {
        return None;
    }
    let nchunks = n.div_ceil(chunk);
    let chunk_range = |ci: usize| ci * chunk..((ci + 1) * chunk).min(n);
    let partials = par_map_indexed(cfg, nchunks, |ci| map_chunk(chunk_range(ci)));
    partials.into_iter().reduce(combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_everything_in_order() {
        for n in [0, 1, 7, 64, 100] {
            for parts in [1, 2, 3, 8] {
                let rs = split_ranges(n, parts);
                assert_eq!(rs.len(), parts);
                let mut next = 0;
                for r in &rs {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n);
                let (min, max) = rs
                    .iter()
                    .fold((usize::MAX, 0), |(lo, hi), r| (lo.min(r.len()), hi.max(r.len())));
                assert!(max - min <= 1, "unbalanced: {rs:?}");
            }
        }
    }

    #[test]
    fn par_map_matches_sequential() {
        let cfg = BatchConfig::new().with_threads(4).with_seq_threshold(0);
        let seq: Vec<u64> = (0..1000).map(|i| (i as u64).wrapping_mul(0x9e37)).collect();
        let par = par_map_indexed(&cfg, 1000, |i| (i as u64).wrapping_mul(0x9e37));
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_with_state_matches_sequential_at_any_thread_count() {
        // The state is a scratch buffer; results must not depend on
        // which worker owned it or how work was split.
        let run = |threads| {
            let cfg = BatchConfig::new().with_threads(threads).with_seq_threshold(0);
            par_map_indexed_with(&cfg, 777, Vec::<u64>::new, |scratch, i| {
                scratch.clear();
                scratch.extend((0..4).map(|k| (i as u64 + k) * 31));
                scratch.iter().copied().fold(0u64, u64::wrapping_add)
            })
        };
        let one = run(1);
        for t in [2, 3, 8] {
            assert_eq!(one, run(t), "threads = {t}");
        }
    }

    #[test]
    fn tile_groups_default_and_zero_roundtrip() {
        assert_eq!(BatchConfig::new().tile_groups(), igen_vm::DEFAULT_TILE_GROUPS);
        assert_eq!(
            BatchConfig::new().with_tile_groups(0).tile_groups(),
            igen_vm::DEFAULT_TILE_GROUPS
        );
        assert_eq!(BatchConfig::new().with_tile_groups(16).tile_groups(), 16);
    }

    #[test]
    fn seq_threshold_forces_one_thread() {
        let cfg = BatchConfig::new().with_threads(8).with_seq_threshold(100);
        assert_eq!(cfg.effective_threads(100), 1);
        assert_eq!(cfg.effective_threads(101), 8);
        assert_eq!(cfg.effective_threads(0), 1);
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let cfg = BatchConfig::new().with_threads(0);
        assert_eq!(cfg.threads(), available_threads());
    }

    #[test]
    fn blocks_visit_disjoint_slices_once() {
        let cfg = BatchConfig::new().with_threads(3).with_seq_threshold(0);
        let mut data = vec![0u32; 103]; // non-multiple of the block length
        par_for_each_block(&cfg, &mut data, 10, |bi, block| {
            for (i, v) in block.iter_mut().enumerate() {
                *v = (bi * 10 + i) as u32 + 1;
            }
        });
        let want: Vec<u32> = (1..=103).collect();
        assert_eq!(data, want);
    }

    #[test]
    fn reduce_is_thread_count_invariant() {
        // f64 addition is non-associative, exactly like interval addition:
        // if chunk boundaries drifted with the thread count this would
        // differ bitwise.
        let vals: Vec<f64> = (0..10_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let run = |threads| {
            let cfg = BatchConfig::new().with_threads(threads).with_seq_threshold(0);
            par_reduce(&cfg, vals.len(), 64, |r| r.fold(0.0f64, |a, i| a + vals[i]), |a, b| a + b)
                .unwrap()
        };
        let one = run(1);
        for t in [2, 3, 8] {
            assert_eq!(one.to_bits(), run(t).to_bits(), "threads = {t}");
        }
    }

    #[test]
    fn reduce_empty_is_none() {
        let cfg = BatchConfig::new();
        let r: Option<u32> = par_reduce(&cfg, 0, 8, |_| 1, |a, b| a + b);
        assert_eq!(r, None);
    }
}
