//! Batched entry points for the paper kernels.
//!
//! Batches are stored *item-major*: a batch of `B` vectors of length `n`
//! occupies one [`BatchF64I`] of `B·n` intervals where item `b`'s
//! element `j` sits at index `b·n + j`. The batched kernels then evolve
//! **four batch items per packed register**: element `j` of items
//! `b..b+4` is gathered from the SoA columns into one
//! [`igen_interval::F64Ix4`] (stride-`n` loads, no shuffling), and every
//! lane operation is element-wise. Each lane therefore executes *exactly*
//! the scalar kernel's operation sequence for its item — with software
//! directed rounding this makes the batched results bit-identical to the
//! scalar kernels at any thread count, which the proptests enforce.
//!
//! Trailing items (`B mod 4`) run the scalar kernel directly.

use crate::engine::{par_for_each_block, par_map_indexed, BatchConfig};
use crate::soa::{BatchDdI, BatchF64I};
use igen_interval::{DdI, DdIx4, F64Ix4, LaneOps, F64I};
use igen_kernels::ffnn::Ffnn;
use igen_kernels::linalg::gemm_packed;
use igen_kernels::{henon_from, LaneOrScalar, Numeric};

/// Batch items evolved per packed register group.
const LANES: usize = 4;

/// Interval endpoints as f64 for the telemetry width histograms
/// (approximate — head component only — for double-double intervals).
trait TelEndpoints {
    fn tel_lo_hi(&self) -> (f64, f64);
}

impl TelEndpoints for F64I {
    #[inline]
    fn tel_lo_hi(&self) -> (f64, f64) {
        (self.lo(), self.hi())
    }
}

impl TelEndpoints for DdI {
    #[inline]
    fn tel_lo_hi(&self) -> (f64, f64) {
        (self.lo().hi(), self.hi().hi())
    }
}

/// Records every interval in `part` into `hist` when a telemetry trace
/// is being recorded (compiles to nothing without the feature; the
/// `recording()` gate keeps untraced runs at one branch per chunk).
#[inline]
fn record_widths<T: TelEndpoints>(hist: &'static igen_telemetry::WidthHist, part: &[T]) {
    if igen_telemetry::recording() {
        for v in part {
            let (lo, hi) = v.tel_lo_hi();
            hist.record(lo, hi);
        }
    }
}

macro_rules! lane_batch_kernels {
    ($batch:ty, $lane:ty, $elem:ty, $dot:ident, $mvm:ident, $henon:ident) => {
        /// Batched dot products: `xs`/`ys` hold `B` item-major vectors of
        /// length `n`; returns the `B` interval dot products, each
        /// bit-identical to [`igen_kernels::linalg::dot`] on that item.
        pub fn $dot(cfg: &BatchConfig, n: usize, xs: &$batch, ys: &$batch) -> $batch {
            static WIDTH: igen_telemetry::WidthHist =
                igen_telemetry::WidthHist::new(concat!("width.batch.", stringify!($dot)));
            assert_eq!(xs.len(), ys.len());
            if xs.is_empty() {
                return <$batch>::new();
            }
            assert!(n > 0 && xs.len() % n == 0, "batch must be a multiple of n");
            let batch = xs.len() / n;
            let groups = batch.div_ceil(LANES);
            let parts = par_map_indexed(cfg, groups, |g| {
                let first = g * LANES;
                let items = LANES.min(batch - first);
                let mut out = Vec::with_capacity(items);
                if items == LANES {
                    let mut acc = <$lane>::splat(<$elem>::ZERO);
                    for j in 0..n {
                        acc = acc + xs.load_x4(first * n + j, n) * ys.load_x4(first * n + j, n);
                    }
                    for l in 0..LANES {
                        out.push(acc.lane(l));
                    }
                } else {
                    for b in first..first + items {
                        let mut acc = <$elem>::ZERO;
                        for j in 0..n {
                            acc = acc + xs.get(b * n + j) * ys.get(b * n + j);
                        }
                        out.push(acc);
                    }
                }
                record_widths(&WIDTH, &out);
                out
            });
            parts.into_iter().flatten().collect()
        }

        /// Batched matrix-vector products `y ← A·x + y`: one shared
        /// row-major `m×n` matrix `a`, `B` item-major input vectors `xs`
        /// (length `n`) and accumulator vectors `ys` (length `m`). Each
        /// item's result is bit-identical to
        /// [`igen_kernels::linalg::mvm`] on that item.
        pub fn $mvm(
            cfg: &BatchConfig,
            m: usize,
            n: usize,
            a: &[$elem],
            xs: &$batch,
            ys: &$batch,
        ) -> $batch {
            static WIDTH: igen_telemetry::WidthHist =
                igen_telemetry::WidthHist::new(concat!("width.batch.", stringify!($mvm)));
            assert_eq!(a.len(), m * n);
            if xs.is_empty() && ys.is_empty() {
                return <$batch>::new();
            }
            assert!(n > 0 && m > 0, "matrix dimensions must be positive");
            assert!(xs.len() % n == 0 && ys.len() % m == 0);
            let batch = xs.len() / n;
            assert_eq!(ys.len() / m, batch);
            let groups = batch.div_ceil(LANES);
            let parts = par_map_indexed(cfg, groups, |g| {
                let first = g * LANES;
                let items = LANES.min(batch - first);
                let mut out = vec![<$elem>::ZERO; items * m];
                if items == LANES {
                    for i in 0..m {
                        let mut acc = ys.load_x4(first * m + i, m);
                        for j in 0..n {
                            let aij = <$lane>::splat(a[i * n + j]);
                            acc = acc + aij * xs.load_x4(first * n + j, n);
                        }
                        for l in 0..LANES {
                            out[l * m + i] = acc.lane(l);
                        }
                    }
                } else {
                    for (l, b) in (first..first + items).enumerate() {
                        for i in 0..m {
                            let mut acc = ys.get(b * m + i);
                            for j in 0..n {
                                acc = acc + a[i * n + j] * xs.get(b * n + j);
                            }
                            out[l * m + i] = acc;
                        }
                    }
                }
                record_widths(&WIDTH, &out);
                out
            });
            parts.into_iter().flatten().collect()
        }

        /// A Hénon orbit ensemble: evolves one orbit per batch item from
        /// its initial point `(x0s[b], y0s[b])`, four orbits per packed
        /// register, returning the final `x` values. Each item is
        /// bit-identical to [`igen_kernels::henon_from`].
        pub fn $henon(cfg: &BatchConfig, iterations: usize, x0s: &$batch, y0s: &$batch) -> $batch {
            static WIDTH: igen_telemetry::WidthHist =
                igen_telemetry::WidthHist::new(concat!("width.batch.", stringify!($henon)));
            assert_eq!(x0s.len(), y0s.len());
            let batch = x0s.len();
            let groups = batch.div_ceil(LANES);
            let parts = par_map_indexed(cfg, groups, |g| {
                let first = g * LANES;
                let items = LANES.min(batch - first);
                let mut out = Vec::with_capacity(items);
                if items == LANES {
                    let a = <$lane>::splat(<$elem as Numeric>::from_rational(105, 100));
                    let b = <$lane>::splat(<$elem as Numeric>::from_rational(3, 10));
                    let one = <$lane>::splat(<$elem as Numeric>::one());
                    let mut x = x0s.load_x4_contig(first);
                    let mut y = y0s.load_x4_contig(first);
                    for _ in 0..iterations {
                        let xi = x;
                        x = one - a * xi * xi + y;
                        y = b * xi;
                    }
                    for l in 0..LANES {
                        out.push(x.lane(l));
                    }
                } else {
                    for i in first..first + items {
                        out.push(henon_from(x0s.get(i), y0s.get(i), iterations));
                    }
                }
                record_widths(&WIDTH, &out);
                out
            });
            parts.into_iter().flatten().collect()
        }
    };
}

lane_batch_kernels!(BatchF64I, F64Ix4, F64I, dot_batch, mvm_batch, henon_ensemble);
lane_batch_kernels!(BatchDdI, DdIx4, DdI, dot_batch_dd, mvm_batch_dd, henon_ensemble_dd);

/// One GEMM `C += A·B` parallelized over blocks of `row_block` rows of
/// `C`: every thread runs [`igen_kernels::linalg::gemm_packed`] on a
/// disjoint row block, evolving four columns of `C` per packed register
/// (for the IGen interval types — scalar otherwise). Each register lane
/// executes exactly the scalar [`igen_kernels::linalg::gemm`] loop for
/// its own column, so the result is bit-identical to the scalar GEMM at
/// any thread count.
// The parameter list mirrors `linalg::gemm` plus the engine config and
// block size; bundling dims into a struct would diverge from the
// kernel-crate idiom.
#[allow(clippy::too_many_arguments)]
pub fn gemm_row_blocks<T: Numeric>(
    cfg: &BatchConfig,
    m: usize,
    k: usize,
    n: usize,
    a: &[T],
    b: &[T],
    c: &mut [T],
    row_block: usize,
) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    assert!(row_block > 0, "row_block must be positive");
    if m == 0 || n == 0 {
        return;
    }
    par_for_each_block(cfg, c, row_block * n, |bi, c_block| {
        let r0 = bi * row_block;
        let rows = c_block.len() / n;
        gemm_packed(rows, k, n, &a[r0 * k..(r0 + rows) * k], b, c_block);
    });
}

/// Batched FFNN inference: forwards `T::Lane::WIDTH` batch items per
/// packed register group (one item per lane, weights splat across the
/// lanes), with trailing items on the scalar pass. Each lane executes
/// exactly the scalar forward's operation sequence for its item, so
/// every output equals [`igen_kernels::ffnn::Ffnn::forward`] on that
/// input bit-for-bit, at any thread count.
pub fn ffnn_batch<T: Numeric>(cfg: &BatchConfig, net: &Ffnn, inputs: &[Vec<f64>]) -> Vec<Vec<T>> {
    let width = <T::Lane as LaneOrScalar<T>>::WIDTH;
    if inputs.is_empty() {
        return Vec::new();
    }
    let groups = inputs.len().div_ceil(width);
    let parts = par_map_indexed(cfg, groups, |g| {
        let first = g * width;
        let items = width.min(inputs.len() - first);
        if items == width && width > 1 {
            let refs: Vec<&[f64]> =
                inputs[first..first + width].iter().map(Vec::as_slice).collect();
            net.forward_lanes::<T, T::Lane>(&refs)
        } else {
            inputs[first..first + items].iter().map(|input| net.forward::<T>(input)).collect()
        }
    });
    parts.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use igen_kernels::linalg::{dot, gemm, mvm};
    use igen_kernels::workload;

    fn cfg(threads: usize) -> BatchConfig {
        BatchConfig::new().with_threads(threads).with_seq_threshold(0)
    }

    fn sample_batch(seed: u64, len: usize) -> BatchF64I {
        let mut rng = workload::rng(seed);
        let pts = workload::random_points(&mut rng, len, -2.0, 2.0);
        BatchF64I::from_intervals(&workload::intervals_1ulp(&pts))
    }

    #[test]
    fn dot_batch_matches_scalar_incl_tail() {
        let (batch, n) = (7, 33); // 7 items: one full lane group + tail of 3
        let xs = sample_batch(1, batch * n);
        let ys = sample_batch(2, batch * n);
        let got = dot_batch(&cfg(3), n, &xs, &ys);
        assert_eq!(got.len(), batch);
        let xv = xs.to_intervals();
        let yv = ys.to_intervals();
        for b in 0..batch {
            let want = dot(&xv[b * n..(b + 1) * n], &yv[b * n..(b + 1) * n]);
            assert_eq!(got.get(b), want, "item {b}");
        }
    }

    #[test]
    fn mvm_batch_matches_scalar() {
        let (batch, m, n) = (6, 5, 17);
        let a = sample_batch(3, m * n).to_intervals();
        let xs = sample_batch(4, batch * n);
        let ys = sample_batch(5, batch * m);
        let got = mvm_batch(&cfg(4), m, n, &a, &xs, &ys);
        let xv = xs.to_intervals();
        for b in 0..batch {
            let mut want = ys.to_intervals()[b * m..(b + 1) * m].to_vec();
            mvm(m, n, &a, &xv[b * n..(b + 1) * n], &mut want);
            for (i, w) in want.iter().enumerate() {
                assert_eq!(got.get(b * m + i), *w, "item {b} row {i}");
            }
        }
    }

    #[test]
    fn henon_ensemble_matches_scalar() {
        let x0s = sample_batch(6, 9);
        let y0s = sample_batch(7, 9);
        let got = henon_ensemble(&cfg(2), 20, &x0s, &y0s);
        for b in 0..9 {
            assert_eq!(got.get(b), henon_from(x0s.get(b), y0s.get(b), 20), "orbit {b}");
        }
    }

    #[test]
    fn henon_ensemble_dd_matches_scalar() {
        let x0s: BatchDdI = (0..5).map(|i| DdI::point_f64(0.01 * i as f64)).collect();
        let y0s: BatchDdI = (0..5).map(|i| DdI::point_f64(-0.02 * i as f64)).collect();
        let got = henon_ensemble_dd(&cfg(2), 15, &x0s, &y0s);
        for b in 0..5 {
            assert_eq!(got.get(b), henon_from(x0s.get(b), y0s.get(b), 15), "orbit {b}");
        }
    }

    #[test]
    fn gemm_row_blocks_matches_scalar() {
        let (m, k, n) = (13, 9, 11);
        let a = sample_batch(8, m * k).to_intervals();
        let b = sample_batch(9, k * n).to_intervals();
        let mut c_seq = sample_batch(10, m * n).to_intervals();
        let mut c_par = c_seq.clone();
        gemm(m, k, n, &a, &b, &mut c_seq);
        gemm_row_blocks(&cfg(4), m, k, n, &a, &b, &mut c_par, 3);
        assert_eq!(c_seq, c_par);
    }

    #[test]
    fn ffnn_batch_matches_scalar() {
        let net = Ffnn::synthetic(16, 3);
        let inputs: Vec<Vec<f64>> = (0..5).map(Ffnn::synthetic_input).collect();
        let got: Vec<Vec<F64I>> = ffnn_batch(&cfg(3), &net, &inputs);
        for (b, input) in inputs.iter().enumerate() {
            assert_eq!(got[b], net.forward::<F64I>(input), "input {b}");
        }
    }

    #[test]
    fn empty_batches_are_fine() {
        let e = BatchF64I::new();
        assert!(dot_batch(&cfg(4), 8, &e, &e).is_empty());
        assert!(mvm_batch(&cfg(4), 3, 4, &sample_batch(1, 12).to_intervals(), &e, &e).is_empty());
        assert!(henon_ensemble(&cfg(4), 10, &e, &e).is_empty());
        let got: Vec<Vec<F64I>> = ffnn_batch(&cfg(4), &Ffnn::synthetic(8, 1), &[]);
        assert!(got.is_empty());
        let d = BatchDdI::new();
        assert!(dot_batch_dd(&cfg(2), 4, &d, &d).is_empty());
    }
}
