//! Structure-of-arrays interval buffers.
//!
//! A `Vec<F64I>` stores intervals as `(neg_lo, hi)` pairs — fine for one
//! kernel invocation, but a batch of thousands of intervals is better
//! stored as *columns*: one slice of negated lower endpoints and one of
//! upper endpoints. The columns are the interval types' internal
//! representation verbatim (the lower endpoint is stored negated so every
//! operation rounds upward — see `igen-interval`), so reassembling an
//! interval is two plain loads with **no negation and no per-element
//! shuffling**, and a lane type ([`igen_interval::F64Ix4`]) is filled by
//! four strided loads per column. The columns are also exactly what an
//! AVX gather or a future GPU port wants to touch.

use igen_dd::Dd;
use igen_interval::{DdI, DdIx2, DdIx4, F64Ix2, F64Ix4, LaneOps, F64I};

/// A batch of double-precision intervals in structure-of-arrays layout:
/// one column of negated lower endpoints, one of upper endpoints.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchF64I {
    neg_lo: Vec<f64>,
    hi: Vec<f64>,
}

impl BatchF64I {
    /// An empty batch.
    pub fn new() -> BatchF64I {
        BatchF64I::default()
    }

    /// An empty batch with room for `n` intervals per column.
    pub fn with_capacity(n: usize) -> BatchF64I {
        BatchF64I { neg_lo: Vec::with_capacity(n), hi: Vec::with_capacity(n) }
    }

    /// Columnizes a slice of intervals.
    pub fn from_intervals(xs: &[F64I]) -> BatchF64I {
        BatchF64I {
            neg_lo: xs.iter().map(F64I::neg_lo).collect(),
            hi: xs.iter().map(F64I::hi).collect(),
        }
    }

    /// Point intervals (width zero) from raw doubles.
    pub fn from_points(xs: &[f64]) -> BatchF64I {
        BatchF64I { neg_lo: xs.iter().map(|&x| -x).collect(), hi: xs.to_vec() }
    }

    /// Number of intervals in the batch.
    pub fn len(&self) -> usize {
        self.neg_lo.len()
    }

    /// True when the batch holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.neg_lo.is_empty()
    }

    /// Appends one interval.
    pub fn push(&mut self, v: F64I) {
        self.neg_lo.push(v.neg_lo());
        self.hi.push(v.hi());
    }

    /// The `i`-th interval, reassembled from the columns (two loads, no
    /// negation).
    pub fn get(&self, i: usize) -> F64I {
        F64I::from_neg_lo_hi(self.neg_lo[i], self.hi[i])
    }

    /// Overwrites the `i`-th interval.
    pub fn set(&mut self, i: usize, v: F64I) {
        self.neg_lo[i] = v.neg_lo();
        self.hi[i] = v.hi();
    }

    /// The negated-lower-endpoint column.
    pub fn neg_lo_col(&self) -> &[f64] {
        &self.neg_lo
    }

    /// The upper-endpoint column.
    pub fn hi_col(&self) -> &[f64] {
        &self.hi
    }

    /// Materializes the batch back to array-of-structs form.
    pub fn to_intervals(&self) -> Vec<F64I> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Loads lanes `start, start+stride, ..` into a 2-wide lane vector.
    /// The lane vector's columns are filled straight from the batch
    /// columns — no per-element interval reassembly.
    pub fn load_x2(&self, start: usize, stride: usize) -> F64Ix2 {
        F64Ix2::from_columns(
            [self.neg_lo[start], self.neg_lo[start + stride]],
            [self.hi[start], self.hi[start + stride]],
        )
    }

    /// Loads lanes `start, start+stride, ..` into a 4-wide lane vector —
    /// the shape the batched kernels use to evolve four batch elements
    /// per packed register. Column-to-column gather, no reassembly.
    pub fn load_x4(&self, start: usize, stride: usize) -> F64Ix4 {
        let idx = [start, start + stride, start + 2 * stride, start + 3 * stride];
        F64Ix4::from_columns(idx.map(|i| self.neg_lo[i]), idx.map(|i| self.hi[i]))
    }

    /// Loads four *consecutive* lanes starting at `start` — the
    /// contiguous fast path (each column is one unit-stride 256-bit
    /// load) used when batch items are adjacent, e.g. the Hénon
    /// ensemble. Equivalent to `load_x4(start, 1)`.
    pub fn load_x4_contig(&self, start: usize) -> F64Ix4 {
        let nl: &[f64; 4] = self.neg_lo[start..start + 4].try_into().expect("4 lanes");
        let h: &[f64; 4] = self.hi[start..start + 4].try_into().expect("4 lanes");
        F64Ix4::from_columns(*nl, *h)
    }

    /// Stores a 4-wide lane vector back to lanes `start, start+stride, ..`
    /// (column-to-column scatter).
    pub fn store_x4(&mut self, start: usize, stride: usize, v: F64Ix4) {
        for l in 0..F64Ix4::LANES {
            self.neg_lo[start + l * stride] = v.neg_lo_col()[l];
            self.hi[start + l * stride] = v.hi_col()[l];
        }
    }
}

impl FromIterator<F64I> for BatchF64I {
    fn from_iter<I: IntoIterator<Item = F64I>>(iter: I) -> BatchF64I {
        let mut b = BatchF64I::new();
        for v in iter {
            b.push(v);
        }
        b
    }
}

/// A batch of double-double intervals in structure-of-arrays layout.
///
/// A `DdI` endpoint is itself a double-double pair, so the batch carries
/// four columns: the hi/lo components of the negated lower endpoint and
/// of the upper endpoint.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchDdI {
    neg_lo_hi: Vec<f64>,
    neg_lo_lo: Vec<f64>,
    hi_hi: Vec<f64>,
    hi_lo: Vec<f64>,
}

impl BatchDdI {
    /// An empty batch.
    pub fn new() -> BatchDdI {
        BatchDdI::default()
    }

    /// An empty batch with component capacity reserved for `n` items.
    pub fn with_capacity(n: usize) -> BatchDdI {
        BatchDdI {
            neg_lo_hi: Vec::with_capacity(n),
            neg_lo_lo: Vec::with_capacity(n),
            hi_hi: Vec::with_capacity(n),
            hi_lo: Vec::with_capacity(n),
        }
    }

    /// Columnizes a slice of double-double intervals.
    pub fn from_intervals(xs: &[DdI]) -> BatchDdI {
        let mut b = BatchDdI::new();
        for x in xs {
            b.push(*x);
        }
        b
    }

    /// Point intervals (width zero) from raw doubles.
    pub fn from_points(xs: &[f64]) -> BatchDdI {
        xs.iter().map(|&x| DdI::point_f64(x)).collect()
    }

    /// Number of intervals in the batch.
    pub fn len(&self) -> usize {
        self.neg_lo_hi.len()
    }

    /// True when the batch holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.neg_lo_hi.is_empty()
    }

    /// Appends one interval.
    pub fn push(&mut self, v: DdI) {
        let (nl, h) = (v.neg_lo(), v.hi());
        self.neg_lo_hi.push(nl.hi());
        self.neg_lo_lo.push(nl.lo());
        self.hi_hi.push(h.hi());
        self.hi_lo.push(h.lo());
    }

    /// The `i`-th interval, reassembled from the four columns.
    pub fn get(&self, i: usize) -> DdI {
        DdI::from_neg_lo_hi(
            Dd::from_parts_unchecked(self.neg_lo_hi[i], self.neg_lo_lo[i]),
            Dd::from_parts_unchecked(self.hi_hi[i], self.hi_lo[i]),
        )
    }

    /// Overwrites the `i`-th interval.
    pub fn set(&mut self, i: usize, v: DdI) {
        let (nl, h) = (v.neg_lo(), v.hi());
        self.neg_lo_hi[i] = nl.hi();
        self.neg_lo_lo[i] = nl.lo();
        self.hi_hi[i] = h.hi();
        self.hi_lo[i] = h.lo();
    }

    /// Materializes the batch back to array-of-structs form.
    pub fn to_intervals(&self) -> Vec<DdI> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Loads lanes `start, start+stride, ..` into a 2-wide lane vector.
    pub fn load_x2(&self, start: usize, stride: usize) -> DdIx2 {
        DdIx2([self.get(start), self.get(start + stride)])
    }

    /// Loads lanes `start, start+stride, ..` into a 4-wide lane vector.
    pub fn load_x4(&self, start: usize, stride: usize) -> DdIx4 {
        DdIx4([
            self.get(start),
            self.get(start + stride),
            self.get(start + 2 * stride),
            self.get(start + 3 * stride),
        ])
    }

    /// Loads four consecutive lanes starting at `start` (API parity with
    /// [`BatchF64I::load_x4_contig`]; the dd lane types have no packed
    /// backend, so this is simply the unit-stride load).
    pub fn load_x4_contig(&self, start: usize) -> DdIx4 {
        self.load_x4(start, 1)
    }

    /// Stores a 4-wide lane vector back to lanes `start, start+stride, ..`.
    pub fn store_x4(&mut self, start: usize, stride: usize, v: DdIx4) {
        for l in 0..DdIx4::LANES {
            self.set(start + l * stride, v.lane(l));
        }
    }
}

impl FromIterator<DdI> for BatchDdI {
    fn from_iter<I: IntoIterator<Item = DdI>>(iter: I) -> BatchDdI {
        let mut b = BatchDdI::new();
        for v in iter {
            b.push(v);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_f64i(n: usize) -> Vec<F64I> {
        (0..n)
            .map(|i| {
                let x = (i as f64) * 0.37 - 3.0;
                F64I::new(x, igen_round::next_up(x)).unwrap()
            })
            .collect()
    }

    #[test]
    fn f64i_roundtrip_is_exact() {
        let xs = sample_f64i(17);
        let b = BatchF64I::from_intervals(&xs);
        assert_eq!(b.len(), 17);
        assert_eq!(b.to_intervals(), xs);
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(b.get(i), *x);
        }
    }

    #[test]
    fn f64i_columns_hold_raw_representation() {
        let x = F64I::new(-2.0, 5.0).unwrap();
        let b = BatchF64I::from_intervals(&[x]);
        // neg_lo column stores the *negated* lower endpoint: no shuffle
        // between batch memory and the interval representation.
        assert_eq!(b.neg_lo_col(), &[2.0]);
        assert_eq!(b.hi_col(), &[5.0]);
    }

    #[test]
    fn f64i_lane_loads_match_gets() {
        let xs = sample_f64i(12);
        let b = BatchF64I::from_intervals(&xs);
        let v = b.load_x4(1, 2); // lanes 1, 3, 5, 7
        for l in 0..4 {
            assert_eq!(v.lane(l), xs[1 + 2 * l]);
        }
        let v2 = b.load_x2(0, 6);
        assert_eq!(v2.lane(0), xs[0]);
        assert_eq!(v2.lane(1), xs[6]);
    }

    #[test]
    fn f64i_store_x4_roundtrips() {
        let xs = sample_f64i(8);
        let mut b = BatchF64I::from_intervals(&xs);
        let v = b.load_x4(0, 2);
        let mut b2 = BatchF64I::from_intervals(&sample_f64i(8));
        b2.store_x4(0, 2, v);
        assert_eq!(b2.get(2), b.get(2));
        b.set(3, F64I::point(9.0));
        assert_eq!(b.get(3), F64I::point(9.0));
    }

    #[test]
    fn ddi_roundtrip_is_exact() {
        let xs: Vec<DdI> = (0..9)
            .map(|i| {
                let x = Dd::new(0.1 * i as f64, 1e-20 * i as f64);
                DdI::new(x, x + Dd::from(1.0)).unwrap()
            })
            .collect();
        let b = BatchDdI::from_intervals(&xs);
        assert_eq!(b.len(), 9);
        assert_eq!(b.to_intervals(), xs);
        let v = b.load_x4(0, 2);
        for l in 0..4 {
            assert_eq!(v.lane(l), xs[2 * l]);
        }
    }

    #[test]
    fn empty_batches() {
        assert!(BatchF64I::new().is_empty());
        assert!(BatchDdI::new().is_empty());
        assert_eq!(BatchF64I::from_intervals(&[]).to_intervals(), vec![]);
        assert_eq!(BatchDdI::from_points(&[]).len(), 0);
    }

    #[test]
    fn from_points_are_points() {
        let b = BatchF64I::from_points(&[1.5, -2.25]);
        assert_eq!(b.get(0), F64I::point(1.5));
        assert_eq!(b.get(1), F64I::point(-2.25));
        let d = BatchDdI::from_points(&[0.1]);
        assert_eq!(d.get(0), DdI::point_f64(0.1));
    }
}
