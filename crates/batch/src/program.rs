//! Batched execution of compiled bytecode programs.
//!
//! [`BatchProgram`] wraps an [`igen_vm::Program`] and fans it out over
//! a structure-of-arrays input batch exactly like the hand-written
//! batch kernels: items are grouped four at a time onto the packed
//! lane path (`F64Ix4`/`DdIx4`), the tail runs scalar, and groups are
//! distributed across threads with [`par_map_indexed`]'s pinned,
//! order-preserving combine. Because the lane-generic executor is
//! bit-identical across widths, the output batch is **bit-identical at
//! any thread count** — the same guarantee the named kernels enjoy,
//! now for arbitrary compiled functions.

use crate::engine::{par_map_indexed, BatchConfig};
use crate::soa::{BatchDdI, BatchF64I};
use igen_interval::{DdI, DdIx4, F64Ix4, F64I};
use igen_kernels::LaneOrScalar;
use igen_vm::{program_width_hist, run_lanes, Precision, Program};

/// A compiled program ready for batched evaluation.
///
/// Inputs are consumed item-major: item `i` occupies elements
/// `i * n_inputs .. (i + 1) * n_inputs` of the input batch, in the
/// program's declared input order; outputs are produced item-major in
/// the program's declared output order.
#[derive(Debug, Clone)]
pub struct BatchProgram {
    prog: Program,
}

impl BatchProgram {
    /// Wraps a lowered program.
    ///
    /// # Panics
    ///
    /// Panics if the program declares no inputs (a closed program has
    /// nothing to batch over).
    pub fn new(prog: Program) -> BatchProgram {
        assert!(prog.n_inputs > 0, "batched programs need at least one input");
        BatchProgram { prog }
    }

    /// The wrapped program.
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// Items contained in an input batch of this length.
    ///
    /// # Panics
    ///
    /// Panics if `len` is not a multiple of the program's input count.
    pub fn items_in(&self, len: usize) -> usize {
        let nin = self.prog.n_inputs as usize;
        assert_eq!(len % nin, 0, "input batch length must be a multiple of {nin}");
        len / nin
    }

    /// Runs an `f64` program over an item-major input batch; returns
    /// the item-major output batch.
    ///
    /// # Panics
    ///
    /// Panics if the program is not `f64` precision or the batch
    /// length is not a multiple of the input count.
    pub fn run(&self, cfg: &BatchConfig, inputs: &BatchF64I) -> BatchF64I {
        assert_eq!(self.prog.precision, Precision::F64, "run_dd executes dd programs");
        let _span = igen_telemetry::span_joined("vm.batch", &self.prog.name);
        let nin = self.prog.n_inputs as usize;
        let nout = self.prog.outputs.len();
        let items = self.items_in(inputs.len());
        let groups = items / 4;
        let tail = items % 4;
        let n_tasks = groups + usize::from(tail > 0);
        let parts: Vec<Vec<F64I>> = par_map_indexed(cfg, n_tasks, |g| {
            let mut part = Vec::new();
            if g < groups {
                // Full group: four items per packed register.
                let lanes: Vec<F64Ix4> =
                    (0..nin).map(|j| inputs.load_x4(g * 4 * nin + j, nin)).collect();
                let mut regs = Vec::new();
                let mut out = Vec::new();
                run_lanes::<F64I, F64Ix4>(&self.prog, &lanes, &mut regs, &mut out);
                for l in 0..4 {
                    part.extend(out.iter().map(|v| v.lane_l(l)));
                }
            } else {
                // Tail: remaining items one at a time, same executor.
                let mut regs = Vec::new();
                let mut out = Vec::new();
                for i in (groups * 4)..items {
                    let scalars: Vec<F64I> = (0..nin).map(|j| inputs.get(i * nin + j)).collect();
                    run_lanes::<F64I, F64I>(&self.prog, &scalars, &mut regs, &mut out);
                    part.extend(out.iter().copied());
                }
            }
            part
        });
        let mut result = BatchF64I::with_capacity(items * nout);
        let hist = program_width_hist(&self.prog.name);
        for part in parts {
            for v in part {
                hist.record(v.lo(), v.hi());
                result.push(v);
            }
        }
        result
    }

    /// Runs a `dd` program over an item-major input batch; returns the
    /// item-major output batch.
    ///
    /// # Panics
    ///
    /// Panics if the program is not `dd` precision or the batch length
    /// is not a multiple of the input count.
    pub fn run_dd(&self, cfg: &BatchConfig, inputs: &BatchDdI) -> BatchDdI {
        assert_eq!(self.prog.precision, Precision::Dd, "run executes f64 programs");
        let _span = igen_telemetry::span_joined("vm.batch", &self.prog.name);
        let nin = self.prog.n_inputs as usize;
        let nout = self.prog.outputs.len();
        let items = self.items_in(inputs.len());
        let groups = items / 4;
        let tail = items % 4;
        let n_tasks = groups + usize::from(tail > 0);
        let parts: Vec<Vec<DdI>> = par_map_indexed(cfg, n_tasks, |g| {
            let mut part = Vec::new();
            if g < groups {
                let lanes: Vec<DdIx4> =
                    (0..nin).map(|j| inputs.load_x4(g * 4 * nin + j, nin)).collect();
                let mut regs = Vec::new();
                let mut out = Vec::new();
                run_lanes::<DdI, DdIx4>(&self.prog, &lanes, &mut regs, &mut out);
                for l in 0..4 {
                    part.extend(out.iter().map(|v| v.lane_l(l)));
                }
            } else {
                let mut regs = Vec::new();
                let mut out = Vec::new();
                for i in (groups * 4)..items {
                    let scalars: Vec<DdI> = (0..nin).map(|j| inputs.get(i * nin + j)).collect();
                    run_lanes::<DdI, DdI>(&self.prog, &scalars, &mut regs, &mut out);
                    part.extend(out.iter().copied());
                }
            }
            part
        });
        let mut result = BatchDdI::with_capacity(items * nout);
        let hist = program_width_hist(&self.prog.name);
        for part in parts {
            for v in part {
                let f = v.to_f64i();
                hist.record(f.lo(), f.hi());
                result.push(v);
            }
        }
        result
    }
}
