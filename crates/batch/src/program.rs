//! Batched execution of compiled bytecode programs.
//!
//! [`BatchProgram`] prepares an [`igen_vm::Program`] once — constants
//! decoded and hoisted into a persistent register bank — and fans it
//! out over a structure-of-arrays input batch through the tiled,
//! instruction-major executor ([`igen_vm::run_tile`]): items are
//! grouped four at a time onto the packed lane path (`F64Ix4`/`DdIx4`),
//! tiles of [`BatchConfig::tile_groups`] groups share one instruction
//! decode per opcode, and the scalar tail runs through the *same* tiled
//! executor at width 1. Tiles are distributed across threads with the
//! engine's pinned, order-preserving combine, and each worker reuses
//! one register bank across all its tiles, so per-call setup is gone
//! from both the packed and the tail path.
//!
//! Because the tile executor is bit-identical to per-group execution
//! for every tile size and lane width, the output batch is
//! **bit-identical at any thread count and any tile size** — the same
//! guarantee the named kernels enjoy, now for arbitrary compiled
//! functions.

use crate::engine::{par_map_indexed_with, BatchConfig};
use crate::soa::{BatchDdI, BatchF64I};
use igen_interval::{DdI, DdIx4, F64Ix4, F64I};
use igen_kernels::LaneOrScalar;
use igen_vm::{
    program_width_hist, run_tile, run_tile_profiled, Precision, PreparedProgram, Program, TileBank,
};
use std::sync::Mutex;

/// Upper bound on pooled scratch sets kept across calls — enough for
/// any realistic worker count without hoarding memory on huge machines.
const POOL_CAP: usize = 64;

#[derive(Debug, Clone)]
enum Prepared {
    F64(PreparedProgram<F64I>),
    Dd(PreparedProgram<DdI>),
}

impl Prepared {
    fn program(&self) -> &Program {
        match self {
            Prepared::F64(p) => p.program(),
            Prepared::Dd(p) => p.program(),
        }
    }
}

/// A compiled program ready for batched evaluation.
///
/// Inputs are consumed item-major: item `i` occupies elements
/// `i * n_inputs .. (i + 1) * n_inputs` of the input batch, in the
/// program's declared input order; outputs are produced item-major in
/// the program's declared output order.
#[derive(Debug)]
pub struct BatchProgram {
    prepared: Prepared,
    // Scratch pools: tile banks handed back after every run so repeated
    // calls (the benchmark loop, long-lived services) stop paying bank
    // allocation and constant fill. Pools hold allocations only, never
    // values, so sharing them across calls cannot change a result bit.
    pool_f64: Mutex<Vec<Scratch>>,
    pool_dd: Mutex<Vec<ScratchDd>>,
}

impl Clone for BatchProgram {
    fn clone(&self) -> BatchProgram {
        // Scratch is per-instance cache, not state: clones start empty.
        BatchProgram {
            prepared: self.prepared.clone(),
            pool_f64: Mutex::new(Vec::new()),
            pool_dd: Mutex::new(Vec::new()),
        }
    }
}

/// Per-worker scratch: the tile register banks and output buffers one
/// worker thread reuses across every tile it executes. Banks are built
/// lazily so a worker that only sees the tail never allocates the
/// packed one (and vice versa). Scratch carries allocations only —
/// never values — so it cannot perturb the determinism guarantee.
#[derive(Debug)]
struct Scratch {
    /// Tile size the packed bank was built for; a pooled scratch with a
    /// different tile drops its packed bank and rebuilds. Banks are
    /// sized to the tile actually *used* (never wider than the batch
    /// has groups): a wider bank would stride its sweeps past cold
    /// slots and waste cache-line bandwidth on every instruction.
    tile: usize,
    packed: Option<(TileBank<F64I, F64Ix4>, Vec<F64Ix4>)>,
    /// Items in the scalar-tail bank (1–3); same exact-fit rationale.
    tail_tile: usize,
    tail: Option<(TileBank<F64I, F64I>, Vec<F64I>)>,
}

#[derive(Debug)]
struct ScratchDd {
    tile: usize,
    packed: Option<(TileBank<DdI, DdIx4>, Vec<DdIx4>)>,
    tail_tile: usize,
    tail: Option<(TileBank<DdI, DdI>, Vec<DdI>)>,
}

/// Checks a scratch set out of a pool and returns it on drop (even on
/// worker panic unwinding), capped at [`POOL_CAP`].
struct Lease<'a, S> {
    scratch: Option<S>,
    pool: &'a Mutex<Vec<S>>,
}

impl<S> Lease<'_, S> {
    fn get(&mut self) -> &mut S {
        self.scratch.as_mut().expect("lease holds scratch until drop")
    }
}

impl<S> Drop for Lease<'_, S> {
    fn drop(&mut self) {
        if let (Some(s), Ok(mut pool)) = (self.scratch.take(), self.pool.lock()) {
            if pool.len() < POOL_CAP {
                pool.push(s);
            }
        }
    }
}

impl BatchProgram {
    /// Prepares a lowered program for batched evaluation (decodes the
    /// constant pool once, per the program's precision).
    ///
    /// # Panics
    ///
    /// Panics if the program declares no inputs (a closed program has
    /// nothing to batch over).
    pub fn new(prog: Program) -> BatchProgram {
        assert!(prog.n_inputs > 0, "batched programs need at least one input");
        let prepared = match prog.precision {
            Precision::F64 => Prepared::F64(PreparedProgram::new(prog)),
            Precision::Dd => Prepared::Dd(PreparedProgram::new(prog)),
        };
        BatchProgram { prepared, pool_f64: Mutex::new(Vec::new()), pool_dd: Mutex::new(Vec::new()) }
    }

    /// The wrapped program.
    pub fn program(&self) -> &Program {
        self.prepared.program()
    }

    /// Items contained in an input batch of this length.
    ///
    /// # Panics
    ///
    /// Panics if `len` is not a multiple of the program's input count.
    pub fn items_in(&self, len: usize) -> usize {
        let nin = self.program().n_inputs as usize;
        assert_eq!(len % nin, 0, "input batch length must be a multiple of {nin}");
        len / nin
    }

    /// Runs an `f64` program over an item-major input batch; returns
    /// the item-major output batch.
    ///
    /// # Panics
    ///
    /// Panics if the program is not `f64` precision or the batch
    /// length is not a multiple of the input count.
    pub fn run(&self, cfg: &BatchConfig, inputs: &BatchF64I) -> BatchF64I {
        let Prepared::F64(prep) = &self.prepared else {
            panic!("run_dd executes dd programs");
        };
        let prog = prep.program();
        let _span = igen_telemetry::span_joined("vm.batch.", &prog.name);
        let nin = prog.n_inputs as usize;
        let nout = prog.outputs.len();
        let items = self.items_in(inputs.len());
        let groups = items / 4;
        let tail = items % 4;
        // Exact-fit tile: never wider than the batch has groups, so the
        // bank sweeps touch only warm, contiguous slots.
        let tile = cfg.tile_groups().min(groups.max(1));
        let tile_tasks = groups.div_ceil(tile);
        let n_tasks = tile_tasks + usize::from(tail > 0);
        let parts: Vec<Vec<F64I>> = par_map_indexed_with(
            cfg,
            n_tasks,
            || {
                let mut s = self
                    .pool_f64
                    .lock()
                    .ok()
                    .and_then(|mut p| p.pop())
                    .unwrap_or(Scratch { tile, packed: None, tail_tile: tail, tail: None });
                if s.tile != tile {
                    s.packed = None;
                    s.tile = tile;
                }
                if s.tail_tile != tail {
                    s.tail = None;
                    s.tail_tile = tail;
                }
                Lease { scratch: Some(s), pool: &self.pool_f64 }
            },
            |lease, t| {
                let scratch = lease.get();
                let mut part = Vec::new();
                if t < tile_tasks {
                    // A tile of up to `tile` packed groups: fill the
                    // input columns, one instruction-major sweep, read
                    // the slot-major outputs back item-major.
                    let g0 = t * tile;
                    let ng = (groups - g0).min(tile);
                    let (bank, out) = scratch
                        .packed
                        .get_or_insert_with(|| (TileBank::new(prep, tile), Vec::new()));
                    for j in 0..nin {
                        let col = bank.input_column(j as u32);
                        for (g, slot) in col.iter_mut().enumerate().take(ng) {
                            *slot = inputs.load_x4((g0 + g) * 4 * nin + j, nin);
                        }
                    }
                    run_tile(prep, bank, ng, out);
                    part.reserve(ng * 4 * nout);
                    for g in 0..ng {
                        for l in 0..4 {
                            for s in 0..nout {
                                part.push(out[s * ng + g].lane_l(l));
                            }
                        }
                    }
                } else {
                    // Tail: remaining items at scalar width, still one
                    // tiled call — no per-item setup.
                    let (bank, out) =
                        scratch.tail.get_or_insert_with(|| (TileBank::new(prep, tail), Vec::new()));
                    for j in 0..nin {
                        let col = bank.input_column(j as u32);
                        for (g, slot) in col.iter_mut().enumerate().take(tail) {
                            *slot = inputs.get((groups * 4 + g) * nin + j);
                        }
                    }
                    run_tile(prep, bank, tail, out);
                    part.reserve(tail * nout);
                    for g in 0..tail {
                        for s in 0..nout {
                            part.push(out[s * tail + g]);
                        }
                    }
                }
                part
            },
        );
        let mut result = BatchF64I::with_capacity(items * nout);
        // Width recording only while a trace is live — same one-branch
        // guard the named kernels use, so untraced runs pay nothing.
        let recording = igen_telemetry::recording();
        let hist = program_width_hist(&prog.name);
        for part in parts {
            for v in part {
                if recording {
                    hist.record(v.lo(), v.hi());
                }
                result.push(v);
            }
        }
        result
    }

    /// Runs a `dd` program over an item-major input batch; returns the
    /// item-major output batch.
    ///
    /// # Panics
    ///
    /// Panics if the program is not `dd` precision or the batch length
    /// is not a multiple of the input count.
    pub fn run_dd(&self, cfg: &BatchConfig, inputs: &BatchDdI) -> BatchDdI {
        let Prepared::Dd(prep) = &self.prepared else {
            panic!("run executes f64 programs");
        };
        let prog = prep.program();
        let _span = igen_telemetry::span_joined("vm.batch.", &prog.name);
        let nin = prog.n_inputs as usize;
        let nout = prog.outputs.len();
        let items = self.items_in(inputs.len());
        let groups = items / 4;
        let tail = items % 4;
        let tile = cfg.tile_groups().min(groups.max(1));
        let tile_tasks = groups.div_ceil(tile);
        let n_tasks = tile_tasks + usize::from(tail > 0);
        let parts: Vec<Vec<DdI>> = par_map_indexed_with(
            cfg,
            n_tasks,
            || {
                let mut s = self
                    .pool_dd
                    .lock()
                    .ok()
                    .and_then(|mut p| p.pop())
                    .unwrap_or(ScratchDd { tile, packed: None, tail_tile: tail, tail: None });
                if s.tile != tile {
                    s.packed = None;
                    s.tile = tile;
                }
                if s.tail_tile != tail {
                    s.tail = None;
                    s.tail_tile = tail;
                }
                Lease { scratch: Some(s), pool: &self.pool_dd }
            },
            |lease, t| {
                let scratch = lease.get();
                let mut part = Vec::new();
                if t < tile_tasks {
                    let g0 = t * tile;
                    let ng = (groups - g0).min(tile);
                    let (bank, out) = scratch
                        .packed
                        .get_or_insert_with(|| (TileBank::new(prep, tile), Vec::new()));
                    for j in 0..nin {
                        let col = bank.input_column(j as u32);
                        for (g, slot) in col.iter_mut().enumerate().take(ng) {
                            *slot = inputs.load_x4((g0 + g) * 4 * nin + j, nin);
                        }
                    }
                    run_tile(prep, bank, ng, out);
                    part.reserve(ng * 4 * nout);
                    for g in 0..ng {
                        for l in 0..4 {
                            for s in 0..nout {
                                part.push(out[s * ng + g].lane_l(l));
                            }
                        }
                    }
                } else {
                    let (bank, out) =
                        scratch.tail.get_or_insert_with(|| (TileBank::new(prep, tail), Vec::new()));
                    for j in 0..nin {
                        let col = bank.input_column(j as u32);
                        for (g, slot) in col.iter_mut().enumerate().take(tail) {
                            *slot = inputs.get((groups * 4 + g) * nin + j);
                        }
                    }
                    run_tile(prep, bank, tail, out);
                    part.reserve(tail * nout);
                    for g in 0..tail {
                        for s in 0..nout {
                            part.push(out[s * tail + g]);
                        }
                    }
                }
                part
            },
        );
        let mut result = BatchDdI::with_capacity(items * nout);
        let recording = igen_telemetry::recording();
        let hist = program_width_hist(&prog.name);
        for part in parts {
            for v in part {
                if recording {
                    let f = v.to_f64i();
                    hist.record(f.lo(), f.hi());
                }
                result.push(v);
            }
        }
        result
    }

    /// Runs an `f64` program with per-instruction width-provenance
    /// profiling into `prof` ([`igen_vm::run_tile_profiled`]).
    ///
    /// Sequential by design: profiling wants undistorted per-site
    /// timing, and the output is bit-identical to [`BatchProgram::run`]
    /// at any thread count regardless. The program-level width
    /// histogram is *not* fed here — the profile rows already carry the
    /// widths, site by site.
    ///
    /// # Panics
    ///
    /// Panics if the program is not `f64` precision or the batch
    /// length is not a multiple of the input count.
    pub fn run_profiled(
        &self,
        cfg: &BatchConfig,
        inputs: &BatchF64I,
        prof: &mut igen_telemetry::UnitProfiler,
    ) -> BatchF64I {
        let Prepared::F64(prep) = &self.prepared else {
            panic!("run_dd_profiled executes dd programs");
        };
        let prog = prep.program();
        let _span = igen_telemetry::span_joined("vm.batch.profiled.", &prog.name);
        let nin = prog.n_inputs as usize;
        let nout = prog.outputs.len();
        let items = self.items_in(inputs.len());
        let groups = items / 4;
        let tail = items % 4;
        let tile = cfg.tile_groups().min(groups.max(1));
        let mut result = BatchF64I::with_capacity(items * nout);
        let mut packed: Option<(TileBank<F64I, F64Ix4>, Vec<F64Ix4>)> = None;
        let mut g0 = 0usize;
        while g0 < groups {
            let ng = (groups - g0).min(tile);
            let (bank, out) = packed.get_or_insert_with(|| (TileBank::new(prep, tile), Vec::new()));
            for j in 0..nin {
                let col = bank.input_column(j as u32);
                for (g, slot) in col.iter_mut().enumerate().take(ng) {
                    *slot = inputs.load_x4((g0 + g) * 4 * nin + j, nin);
                }
            }
            run_tile_profiled(prep, bank, ng, out, prof);
            for g in 0..ng {
                for l in 0..4 {
                    for s in 0..nout {
                        result.push(out[s * ng + g].lane_l(l));
                    }
                }
            }
            g0 += ng;
        }
        if tail > 0 {
            let mut bank = TileBank::<F64I, F64I>::new(prep, tail);
            let mut out = Vec::new();
            for j in 0..nin {
                let col = bank.input_column(j as u32);
                for (g, slot) in col.iter_mut().enumerate().take(tail) {
                    *slot = inputs.get((groups * 4 + g) * nin + j);
                }
            }
            run_tile_profiled(prep, &mut bank, tail, &mut out, prof);
            for g in 0..tail {
                for s in 0..nout {
                    result.push(out[s * tail + g]);
                }
            }
        }
        result
    }

    /// [`BatchProgram::run_profiled`] for `dd` programs — sequential,
    /// bit-identical to [`BatchProgram::run_dd`].
    ///
    /// # Panics
    ///
    /// Panics if the program is not `dd` precision or the batch length
    /// is not a multiple of the input count.
    pub fn run_dd_profiled(
        &self,
        cfg: &BatchConfig,
        inputs: &BatchDdI,
        prof: &mut igen_telemetry::UnitProfiler,
    ) -> BatchDdI {
        let Prepared::Dd(prep) = &self.prepared else {
            panic!("run_profiled executes f64 programs");
        };
        let prog = prep.program();
        let _span = igen_telemetry::span_joined("vm.batch.profiled.", &prog.name);
        let nin = prog.n_inputs as usize;
        let nout = prog.outputs.len();
        let items = self.items_in(inputs.len());
        let groups = items / 4;
        let tail = items % 4;
        let tile = cfg.tile_groups().min(groups.max(1));
        let mut result = BatchDdI::with_capacity(items * nout);
        let mut packed: Option<(TileBank<DdI, DdIx4>, Vec<DdIx4>)> = None;
        let mut g0 = 0usize;
        while g0 < groups {
            let ng = (groups - g0).min(tile);
            let (bank, out) = packed.get_or_insert_with(|| (TileBank::new(prep, tile), Vec::new()));
            for j in 0..nin {
                let col = bank.input_column(j as u32);
                for (g, slot) in col.iter_mut().enumerate().take(ng) {
                    *slot = inputs.load_x4((g0 + g) * 4 * nin + j, nin);
                }
            }
            run_tile_profiled(prep, bank, ng, out, prof);
            for g in 0..ng {
                for l in 0..4 {
                    for s in 0..nout {
                        result.push(out[s * ng + g].lane_l(l));
                    }
                }
            }
            g0 += ng;
        }
        if tail > 0 {
            let mut bank = TileBank::<DdI, DdI>::new(prep, tail);
            let mut out = Vec::new();
            for j in 0..nin {
                let col = bank.input_column(j as u32);
                for (g, slot) in col.iter_mut().enumerate().take(tail) {
                    *slot = inputs.get((groups * 4 + g) * nin + j);
                }
            }
            run_tile_profiled(prep, &mut bank, tail, &mut out, prof);
            for g in 0..tail {
                for s in 0..nout {
                    result.push(out[s * tail + g]);
                }
            }
        }
        result
    }
}
