//! Property tests of the 256-bit oracle itself against binary64 hardware
//! arithmetic: at 53-bit granularity the oracle must agree bit-for-bit
//! with the machine (RN), and its directed conversions must bracket.

use igen_mpf::{Mpf, Rm};
use proptest::prelude::*;

fn finite() -> impl Strategy<Value = f64> {
    prop_oneof![
        5 => -1e15f64..1e15,
        3 => any::<f64>().prop_filter("finite", |x| x.is_finite()),
        1 => prop_oneof![
            Just(0.0),
            Just(-0.0),
            Just(f64::MIN_POSITIVE),
            Just(f64::from_bits(1)),
            Just(f64::MAX),
            Just(-f64::MAX),
        ],
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1500))]

    #[test]
    fn roundtrip_is_exact(x in finite()) {
        for rm in [Rm::Nearest, Rm::Up, Rm::Down, Rm::Zero] {
            prop_assert_eq!(Mpf::from_f64(x).to_f64(rm).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn add_matches_hardware_rn(a in -1e18f64..1e18, b in -1e18f64..1e18) {
        // Exponents here span < 190 binades, so the 256-bit sum is exact
        // and its nearest-53 rounding must equal the hardware sum.
        let s = Mpf::from_f64(a).add(&Mpf::from_f64(b), Rm::Nearest);
        prop_assert_eq!(s.to_f64(Rm::Nearest).to_bits(), (a + b).to_bits(),
            "{} + {}", a, b);
    }

    #[test]
    fn mul_matches_hardware_rn(a in finite(), b in finite()) {
        // Products of doubles are exact at 256 bits, so nearest-53 of the
        // oracle product is the hardware product.
        let p = Mpf::from_f64(a).mul(&Mpf::from_f64(b), Rm::Nearest);
        prop_assert_eq!(p.to_f64(Rm::Nearest).to_bits(), (a * b).to_bits(),
            "{} * {}", a, b);
    }

    #[test]
    fn div_brackets_hardware(a in finite(), b in finite()) {
        prop_assume!(b != 0.0);
        let lo = Mpf::from_f64(a).div(&Mpf::from_f64(b), Rm::Down).to_f64(Rm::Down);
        let hi = Mpf::from_f64(a).div(&Mpf::from_f64(b), Rm::Up).to_f64(Rm::Up);
        let q = a / b;
        if q.is_finite() {
            prop_assert!(lo <= q && q <= hi, "{a}/{b}: [{lo}, {hi}] vs {q}");
        }
    }

    #[test]
    fn directed_conversions_bracket_nearest(a in finite(), b in finite()) {
        let v = Mpf::from_f64(a).add(&Mpf::from_f64(b), Rm::Nearest);
        let (dn, rn, up) = (v.to_f64(Rm::Down), v.to_f64(Rm::Nearest), v.to_f64(Rm::Up));
        if dn.is_finite() && up.is_finite() {
            prop_assert!(dn <= rn && rn <= up);
            prop_assert!(igen_round::ulps_between(dn, up) <= 1);
        }
    }

    #[test]
    fn sqrt_squares_back(x in 0.0f64..1e300) {
        let lo = Mpf::from_f64(x).sqrt(Rm::Down);
        let hi = Mpf::from_f64(x).sqrt(Rm::Up);
        let lo2 = lo.mul(&lo, Rm::Down);
        let hi2 = hi.mul(&hi, Rm::Up);
        let xm = Mpf::from_f64(x);
        use core::cmp::Ordering::*;
        prop_assert!(lo2.cmp_num(&xm) != Some(Greater));
        prop_assert!(hi2.cmp_num(&xm) != Some(Less));
    }

    #[test]
    fn scale2_matches_ldexp_semantics(x in -1e10f64..1e10, k in -60i64..60) {
        prop_assume!(x != 0.0);
        let v = Mpf::from_f64(x).scale2(k).to_f64(Rm::Nearest);
        let expect = x * 2f64.powi(k as i32);
        if expect.is_finite() && expect != 0.0 {
            prop_assert_eq!(v.to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn comparison_total_on_non_nan(a in finite(), b in finite()) {
        let (ma, mb) = (Mpf::from_f64(a), Mpf::from_f64(b));
        let want = a.partial_cmp(&b);
        prop_assert_eq!(ma.cmp_num(&mb), want);
    }
}
