//! `igen-mpf`: an arbitrary-precision (256-bit significand) binary
//! floating-point type with correct directed rounding, plus an interval
//! type built on it.
//!
//! This crate is the workspace's substitute for **MPFI**, the
//! multi-precision interval library the IGen paper uses to validate its
//! interval runtime (Section IV-A). It has no dependencies and is written
//! for *clarity and correctness*, not speed: it is the oracle every other
//! crate's soundness is property-tested against.
//!
//! # Example
//!
//! ```
//! use igen_mpf::{Mpf, MpfInterval, Rm};
//!
//! // Correct directed rounding at 256 bits:
//! let x = Mpf::from_f64(1.0).div(&Mpf::from_f64(10.0), Rm::Down);
//! assert!(x.to_f64(Rm::Down) <= 0.1);
//!
//! // Oracle interval arithmetic: the enclosure of sqrt(2) squares back
//! // to an interval containing 2 exactly.
//! let i = MpfInterval::from_f64(2.0).sqrt();
//! assert!(i.mul(&i).contains_f64(2.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod float;
mod interval;
pub mod limbs;

pub use float::{Mpf, Rm, PREC};
pub use interval::MpfInterval;

#[cfg(test)]
mod tests {
    use super::*;
    use core::cmp::Ordering;

    fn rt(x: f64) -> f64 {
        Mpf::from_f64(x).to_f64(Rm::Nearest)
    }

    #[test]
    fn f64_roundtrip_exact() {
        let cases = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            std::f64::consts::PI,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::from_bits(1),
            -f64::from_bits(0x000f_ffff_ffff_ffff),
            1e-300,
            6.02214076e23,
        ];
        for x in cases {
            let y = rt(x);
            assert_eq!(y.to_bits(), x.to_bits(), "roundtrip of {x}");
            for rm in [Rm::Down, Rm::Up, Rm::Zero] {
                assert_eq!(Mpf::from_f64(x).to_f64(rm).to_bits(), x.to_bits());
            }
        }
        assert!(rt(f64::NAN).is_nan());
        assert_eq!(rt(f64::INFINITY), f64::INFINITY);
        assert_eq!(rt(f64::NEG_INFINITY), f64::NEG_INFINITY);
    }

    #[test]
    fn add_matches_f64_when_exact() {
        let cases = [(1.0, 2.0), (0.5, 0.25), (-3.0, 3.0), (1e10, 1e-10), (0.1, 0.2)];
        for (a, b) in cases {
            // At 256 bits the sum of two doubles is always exact, so
            // rounding the Mpf sum to f64-nearest must equal a + b.
            let s = Mpf::from_f64(a).add(&Mpf::from_f64(b), Rm::Nearest);
            assert_eq!(s.to_f64(Rm::Nearest), a + b, "{a} + {b}");
        }
    }

    #[test]
    fn sub_cancellation_is_exact() {
        let a = Mpf::from_f64(1.0 + f64::EPSILON);
        let b = Mpf::from_f64(1.0);
        let d = a.sub(&b, Rm::Nearest);
        assert_eq!(d.to_f64(Rm::Nearest), f64::EPSILON);
        // Total cancellation gives signed zero per IEEE.
        let z = b.sub(&b, Rm::Nearest);
        assert!(z.is_zero());
        assert!(!z.is_sign_negative());
        let zd = b.sub(&b, Rm::Down);
        assert!(zd.is_zero() && zd.is_sign_negative());
    }

    #[test]
    fn mul_matches_f64_exact_products() {
        let cases = [(3.0, 5.0), (0.5, -8.0), (1.5, 1.5), (1e150, 1e150)];
        for (a, b) in cases {
            let p = Mpf::from_f64(a).mul(&Mpf::from_f64(b), Rm::Nearest);
            assert_eq!(p.to_f64(Rm::Nearest), a * b, "{a} * {b}");
        }
    }

    #[test]
    fn mul_directed_rounding_brackets() {
        // 0.1 * 0.1 at 256 bits is inexact (the double 0.1 squared needs
        // 106 bits — representable! so exact). Use values needing > 256
        // bits: impossible for two doubles (106 max). So check bracketing
        // against a third multiplication instead:
        let x = Mpf::from_f64(0.1);
        let sq = x.mul(&x, Rm::Nearest); // exact: 106 bits
        let lo = sq.mul(&sq, Rm::Down); // 212 bits: still exact
        let hi = sq.mul(&sq, Rm::Up);
        assert_eq!(lo.cmp_num(&hi), Some(Ordering::Equal));
        // Force inexactness with a third squaring (424 bits > 256):
        let lo2 = lo.mul(&lo, Rm::Down);
        let hi2 = hi.mul(&hi, Rm::Up);
        assert_eq!(lo2.cmp_num(&hi2), Some(Ordering::Less));
    }

    #[test]
    fn div_correctly_rounded_vs_f64() {
        // For quotients of small integers, the 53-bit rounding of the
        // 256-bit quotient must match hardware division.
        for a in 1..50i64 {
            for b in 1..50i64 {
                let q = Mpf::from_i64(a).div(&Mpf::from_i64(b), Rm::Nearest);
                assert_eq!(q.to_f64(Rm::Nearest), a as f64 / b as f64, "{a}/{b}");
            }
        }
        let third = Mpf::from_i64(1).div(&Mpf::from_i64(3), Rm::Down);
        let third_up = Mpf::from_i64(1).div(&Mpf::from_i64(3), Rm::Up);
        assert_eq!(third.cmp_num(&third_up), Some(Ordering::Less));
        // RD(3 * RD(1/3)) < 1 < RU(3 * RU(1/3)).
        let m = third.mul(&Mpf::from_i64(3), Rm::Down);
        assert_eq!(m.cmp_num(&Mpf::from_i64(1)), Some(Ordering::Less));
        let m2 = third_up.mul(&Mpf::from_i64(3), Rm::Up);
        assert_eq!(m2.cmp_num(&Mpf::from_i64(1)), Some(Ordering::Greater));
    }

    #[test]
    fn div_special_values() {
        let one = Mpf::from_f64(1.0);
        assert!(one.div(&Mpf::ZERO, Rm::Nearest).is_infinite());
        assert!(Mpf::ZERO.div(&Mpf::ZERO, Rm::Nearest).is_nan());
        assert!(one.div(&Mpf::INFINITY, Rm::Nearest).is_zero());
        assert!(Mpf::INFINITY.div(&Mpf::INFINITY, Rm::Nearest).is_nan());
        let m = one.neg().div(&Mpf::ZERO, Rm::Nearest);
        assert!(m.is_infinite() && m.is_sign_negative());
    }

    #[test]
    fn sqrt_exact_squares() {
        for v in [4.0, 9.0, 16.0, 2.25, 1e10 * 1e10] {
            let s = Mpf::from_f64(v).sqrt(Rm::Down);
            let s2 = Mpf::from_f64(v).sqrt(Rm::Up);
            assert_eq!(s.cmp_num(&s2), Some(Ordering::Equal), "sqrt({v}) exact");
            assert_eq!(s.to_f64(Rm::Nearest), v.sqrt());
        }
    }

    #[test]
    fn sqrt_directed_brackets() {
        let lo = Mpf::from_f64(2.0).sqrt(Rm::Down);
        let hi = Mpf::from_f64(2.0).sqrt(Rm::Up);
        assert_eq!(lo.cmp_num(&hi), Some(Ordering::Less));
        let lo2 = lo.mul(&lo, Rm::Nearest);
        let hi2 = hi.mul(&hi, Rm::Up);
        assert_eq!(lo2.cmp_num(&Mpf::from_i64(2)), Some(Ordering::Less));
        assert_eq!(hi2.cmp_num(&Mpf::from_i64(2)), Some(Ordering::Greater));
        assert!(Mpf::from_f64(-1.0).sqrt(Rm::Nearest).is_nan());
    }

    #[test]
    fn to_f64_overflow_and_underflow() {
        let big = Mpf::from_f64(f64::MAX).mul(&Mpf::from_f64(2.0), Rm::Nearest);
        assert_eq!(big.to_f64(Rm::Nearest), f64::INFINITY);
        assert_eq!(big.to_f64(Rm::Down), f64::MAX);
        assert_eq!(big.neg().to_f64(Rm::Up), -f64::MAX);
        assert_eq!(big.neg().to_f64(Rm::Nearest), f64::NEG_INFINITY);

        let tiny = Mpf::from_f64(f64::from_bits(1)).div(&Mpf::from_f64(4.0), Rm::Nearest);
        // 2^-1076: RN -> 0, RU -> minimum subnormal.
        assert_eq!(tiny.to_f64(Rm::Nearest), 0.0);
        assert_eq!(tiny.to_f64(Rm::Up), f64::from_bits(1));
        assert_eq!(tiny.to_f64(Rm::Down), 0.0);
        assert_eq!(tiny.neg().to_f64(Rm::Down), -f64::from_bits(1));
        // Exactly half the smallest subnormal: tie -> 0 under RN.
        let half = Mpf::from_f64(f64::from_bits(1)).div(&Mpf::from_f64(2.0), Rm::Nearest);
        assert_eq!(half.to_f64(Rm::Nearest), 0.0);
        // Slightly above the tie rounds up.
        let above = half.mul(&Mpf::from_f64(1.5), Rm::Nearest);
        assert_eq!(above.to_f64(Rm::Nearest), f64::from_bits(1));
    }

    #[test]
    fn to_f64_subnormal_rounding() {
        // A value between two subnormals.
        let a = Mpf::from_f64(f64::from_bits(5));
        let b = Mpf::from_f64(f64::from_bits(6));
        let mid = a.add(&b, Rm::Nearest).div(&Mpf::from_i64(2), Rm::Nearest);
        // Tie between bits 5 and 6: nearest-even -> 6.
        assert_eq!(mid.to_f64(Rm::Nearest).to_bits(), 6);
        assert_eq!(mid.to_f64(Rm::Down).to_bits(), 5);
        assert_eq!(mid.to_f64(Rm::Up).to_bits(), 6);
    }

    #[test]
    fn to_f64_nearest_even_ties() {
        // 1 + 2^-53 is exactly between 1.0 and 1.0+eps: ties to even -> 1.0.
        let t = Mpf::from_f64(1.0).add(&Mpf::from_f64(f64::EPSILON / 2.0), Rm::Nearest);
        assert_eq!(t.to_f64(Rm::Nearest), 1.0);
        assert_eq!(t.to_f64(Rm::Up), 1.0 + f64::EPSILON);
        assert_eq!(t.to_f64(Rm::Down), 1.0);
        // 1 + 3*2^-54 rounds up to 1+eps (not a tie).
        let t2 = Mpf::from_f64(1.0).add(&Mpf::from_f64(3.0 * f64::EPSILON / 4.0), Rm::Nearest);
        assert_eq!(t2.to_f64(Rm::Nearest), 1.0 + f64::EPSILON);
    }

    #[test]
    fn cmp_and_sign_handling() {
        assert_eq!(Mpf::from_f64(-0.0).cmp_num(&Mpf::from_f64(0.0)), Some(Ordering::Equal));
        assert_eq!(Mpf::from_f64(-1.0).cmp_num(&Mpf::from_f64(1.0)), Some(Ordering::Less));
        assert_eq!(Mpf::NEG_INFINITY.cmp_num(&Mpf::from_f64(-1e308)), Some(Ordering::Less));
        assert!(Mpf::NAN.cmp_num(&Mpf::NAN).is_none());
        assert!(Mpf::from_f64(-3.5).is_sign_negative());
        assert!(!Mpf::from_f64(-3.5).abs().is_sign_negative());
    }

    #[test]
    fn from_dd_recovers_both_parts() {
        let hi = 1.0;
        let lo = f64::EPSILON / 8.0;
        let v = Mpf::from_dd(hi, lo, Rm::Nearest);
        let back_hi = v.to_f64(Rm::Nearest);
        assert_eq!(back_hi, hi);
        let rem = v.sub(&Mpf::from_f64(back_hi), Rm::Nearest);
        assert_eq!(rem.to_f64(Rm::Nearest), lo);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Mpf::from_f64(1.0)), "0x1.0p0");
        assert_eq!(format!("{}", Mpf::from_f64(-2.0)), "-0x1.0p1");
        assert_eq!(format!("{}", Mpf::from_f64(3.0)), "0x1.8p1");
        assert_eq!(format!("{}", Mpf::NAN), "NaN");
        assert_eq!(format!("{}", Mpf::NEG_INFINITY), "-inf");
        assert_eq!(format!("{}", Mpf::ZERO), "0");
    }

    #[test]
    fn scale2_is_exact() {
        let x = Mpf::from_f64(3.0).scale2(-10);
        assert_eq!(x.to_f64(Rm::Nearest), 3.0 / 1024.0);
    }
}
