//! Fixed-width multi-limb integer helpers for the 256-bit significand.
//!
//! All values are little-endian arrays of `u64` limbs. These are internal
//! building blocks of [`crate::Mpf`]; they favour clarity over speed — the
//! crate is a test oracle, not a production bignum.

/// Number of 64-bit limbs in a significand.
pub const LIMBS: usize = 4;

/// A 256-bit unsigned significand, little-endian limbs.
pub type U256 = [u64; LIMBS];

/// A 512-bit product, little-endian limbs.
pub type U512 = [u64; 2 * LIMBS];

/// The zero significand.
pub const ZERO: U256 = [0; LIMBS];

/// Compare two significands as unsigned integers.
pub fn cmp(a: &U256, b: &U256) -> core::cmp::Ordering {
    for i in (0..LIMBS).rev() {
        match a[i].cmp(&b[i]) {
            core::cmp::Ordering::Equal => continue,
            o => return o,
        }
    }
    core::cmp::Ordering::Equal
}

/// True if every limb is zero.
pub fn is_zero(a: &U256) -> bool {
    a.iter().all(|&l| l == 0)
}

/// `a + b`, returning the carry out.
pub fn add(a: &U256, b: &U256) -> (U256, bool) {
    let mut out = ZERO;
    let mut carry = false;
    for i in 0..LIMBS {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(carry as u64);
        out[i] = s2;
        carry = c1 || c2;
    }
    (out, carry)
}

/// `a - b`, assuming `a >= b`.
///
/// # Panics
///
/// Debug-panics on underflow.
pub fn sub(a: &U256, b: &U256) -> U256 {
    let mut out = ZERO;
    let mut borrow = false;
    for i in 0..LIMBS {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow as u64);
        out[i] = d2;
        borrow = b1 || b2;
    }
    debug_assert!(!borrow, "limb subtraction underflow");
    out
}

/// Add one unit in the last place; returns the carry out.
pub fn inc(a: &U256) -> (U256, bool) {
    let one = {
        let mut o = ZERO;
        o[0] = 1;
        o
    };
    add(a, &one)
}

/// Index of the highest set bit (0-based), or `None` if zero.
pub fn highest_bit(a: &U256) -> Option<u32> {
    for i in (0..LIMBS).rev() {
        if a[i] != 0 {
            return Some(i as u32 * 64 + (63 - a[i].leading_zeros()));
        }
    }
    None
}

/// Logical left shift by `n < 256` bits (bits shifted out the top are lost;
/// callers ensure there is headroom).
pub fn shl(a: &U256, n: u32) -> U256 {
    if n == 0 {
        return *a;
    }
    let mut out = ZERO;
    let limb_shift = (n / 64) as usize;
    let bit_shift = n % 64;
    for i in (0..LIMBS).rev() {
        if i < limb_shift {
            continue;
        }
        let src = i - limb_shift;
        let mut v = a[src] << bit_shift;
        if bit_shift > 0 && src > 0 {
            v |= a[src - 1] >> (64 - bit_shift);
        }
        out[i] = v;
    }
    out
}

/// Logical right shift by `n` bits, returning `(shifted, sticky)` where
/// `sticky` is true iff any shifted-out bit was set. `n` may exceed 256.
pub fn shr_sticky(a: &U256, n: u64) -> (U256, bool) {
    if n == 0 {
        return (*a, false);
    }
    if n >= 256 {
        return (ZERO, !is_zero(a));
    }
    let n = n as u32;
    let limb_shift = (n / 64) as usize;
    let bit_shift = n % 64;
    let mut sticky = false;
    for (i, &limb) in a.iter().enumerate().take(limb_shift) {
        let _ = i;
        if limb != 0 {
            sticky = true;
        }
    }
    if bit_shift > 0 && a[limb_shift] << (64 - bit_shift) != 0 {
        sticky = true;
    }
    let mut out = ZERO;
    for (i, o) in out.iter_mut().enumerate() {
        let src = i + limb_shift;
        if src >= LIMBS {
            break;
        }
        let mut v = a[src] >> bit_shift;
        if bit_shift > 0 && src + 1 < LIMBS {
            v |= a[src + 1] << (64 - bit_shift);
        }
        *o = v;
    }
    (out, sticky)
}

/// Full 256x256 -> 512-bit schoolbook multiplication.
pub fn mul_wide(a: &U256, b: &U256) -> U512 {
    let mut out = [0u64; 2 * LIMBS];
    for i in 0..LIMBS {
        let mut carry: u128 = 0;
        for j in 0..LIMBS {
            let cur = out[i + j] as u128 + (a[i] as u128) * (b[j] as u128) + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        out[i + LIMBS] = carry as u64;
    }
    out
}

/// Index of the highest set bit of a 512-bit value, or `None` if zero.
pub fn highest_bit_512(a: &U512) -> Option<u32> {
    for i in (0..2 * LIMBS).rev() {
        if a[i] != 0 {
            return Some(i as u32 * 64 + (63 - a[i].leading_zeros()));
        }
    }
    None
}

/// Right shift of a 512-bit value by `n` bits with sticky collection,
/// truncated into the low 256 bits of the result (callers ensure the value
/// fits after shifting).
pub fn shr_512_to_256_sticky(a: &U512, n: u64) -> (U256, bool) {
    let mut sticky = false;
    let mut v = *a;
    let mut n = n;
    while n > 0 {
        let step = n.min(63) as u32;
        // Collect sticky from the bits about to fall off.
        if v[0] << (64 - step) != 0 {
            sticky = true;
        }
        let mut out = [0u64; 2 * LIMBS];
        for i in 0..2 * LIMBS {
            let mut x = v[i] >> step;
            if i + 1 < 2 * LIMBS {
                x |= v[i + 1] << (64 - step);
            }
            out[i] = x;
        }
        v = out;
        n -= step as u64;
    }
    debug_assert!(v[LIMBS..].iter().all(|&l| l == 0), "512->256 truncation loss");
    let mut out = ZERO;
    out.copy_from_slice(&v[..LIMBS]);
    (out, sticky)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        let mut x = ZERO;
        x[0] = v;
        x
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = [u64::MAX, 1, 2, 3];
        let b = [5, u64::MAX, 0, 1];
        let (s, c) = add(&a, &b);
        assert!(!c);
        assert_eq!(sub(&s, &b), a);
        assert_eq!(sub(&s, &a), b);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = [u64::MAX, u64::MAX, u64::MAX, 0];
        let (s, c) = add(&a, &u(1));
        assert!(!c);
        assert_eq!(s, [0, 0, 0, 1]);
        let top = [0, 0, 0, u64::MAX];
        let (_, c) = add(&top, &top);
        assert!(c);
    }

    #[test]
    fn shifts() {
        let a = [0b1011, 0, 0, 0];
        assert_eq!(shl(&a, 2), [0b101100, 0, 0, 0]);
        assert_eq!(shl(&a, 64), [0, 0b1011, 0, 0]);
        let (r, s) = shr_sticky(&[0b1011, 0, 0, 0], 1);
        assert_eq!(r, [0b101, 0, 0, 0]);
        assert!(s);
        let (r, s) = shr_sticky(&[0b1010, 0, 0, 0], 1);
        assert_eq!(r, [0b101, 0, 0, 0]);
        assert!(!s);
        let (r, s) = shr_sticky(&[1, 0, 0, 1 << 63], 300);
        assert_eq!(r, ZERO);
        assert!(s);
        let (r, s) = shr_sticky(&[0, 0, 0, 1 << 63], 255);
        assert_eq!(r, [1, 0, 0, 0]);
        assert!(!s);
    }

    #[test]
    fn mul_wide_small() {
        let p = mul_wide(&u(3), &u(5));
        assert_eq!(p[0], 15);
        assert!(p[1..].iter().all(|&l| l == 0));
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let p = mul_wide(&u(u64::MAX), &u(u64::MAX));
        assert_eq!(p[0], 1);
        assert_eq!(p[1], u64::MAX - 1);
    }

    #[test]
    fn highest_bits() {
        assert_eq!(highest_bit(&ZERO), None);
        assert_eq!(highest_bit(&u(1)), Some(0));
        assert_eq!(highest_bit(&[0, 0, 0, 1 << 63]), Some(255));
        assert_eq!(highest_bit_512(&mul_wide(&[0, 0, 0, 1 << 63], &[0, 0, 0, 1 << 63])), Some(510));
    }

    #[test]
    fn shr_512_collects_sticky() {
        let mut a = [0u64; 8];
        a[0] = 1;
        a[7] = 1 << 62;
        let (r, s) = shr_512_to_256_sticky(&a, 255);
        assert!(s);
        assert_eq!(r[3], 1 << 63);
    }
}
