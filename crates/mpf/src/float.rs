//! The 256-bit-significand binary floating-point type.

use crate::limbs::{self, LIMBS, U256, U512, ZERO};
use core::cmp::Ordering;

/// Significand precision in bits.
pub const PREC: u32 = 256;

/// Rounding mode for [`Mpf`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rm {
    /// Toward negative infinity.
    Down,
    /// Toward positive infinity.
    Up,
    /// To nearest, ties to even.
    Nearest,
    /// Toward zero.
    Zero,
}

/// Finite nonzero payload: `value = (-1)^neg * mant * 2^exp`, with `mant`
/// normalized so its top bit (bit 255) is set. `exp` is the weight of the
/// least significant bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Num {
    neg: bool,
    exp: i64,
    mant: U256,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Repr {
    Zero { neg: bool },
    Finite(Num),
    Inf { neg: bool },
    Nan,
}

/// A 256-bit-precision binary floating-point number with correct rounding.
///
/// This is the crate's MPFI-substitute oracle scalar: `igen-round`,
/// `igen-dd`, `igen-interval` and `igen-affine` are all validated against
/// it. 256 bits comfortably dominates both double (53) and double-double
/// (106) precision.
///
/// # Example
///
/// ```
/// use igen_mpf::{Mpf, Rm};
/// let third = Mpf::from_f64(1.0).div(&Mpf::from_f64(3.0), Rm::Nearest);
/// let back = third.mul(&Mpf::from_f64(3.0), Rm::Nearest).to_f64(Rm::Nearest);
/// assert_eq!(back, 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mpf {
    repr: Repr,
}

/// 384-bit working frame used by addition/subtraction: 256 significand
/// bits plus 64 fraction bits of headroom plus 64 carry bits.
type Frame = [u64; 6];

fn fr_zero() -> Frame {
    [0; 6]
}

fn fr_cmp(a: &Frame, b: &Frame) -> Ordering {
    for i in (0..6).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => continue,
            o => return o,
        }
    }
    Ordering::Equal
}

fn fr_add(a: &Frame, b: &Frame) -> Frame {
    let mut out = fr_zero();
    let mut carry = false;
    for i in 0..6 {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(carry as u64);
        out[i] = s2;
        carry = c1 || c2;
    }
    debug_assert!(!carry, "frame addition overflow");
    out
}

fn fr_sub(a: &Frame, b: &Frame) -> Frame {
    let mut out = fr_zero();
    let mut borrow = false;
    for i in 0..6 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow as u64);
        out[i] = d2;
        borrow = b1 || b2;
    }
    debug_assert!(!borrow, "frame subtraction underflow");
    out
}

fn fr_dec(a: &Frame) -> Frame {
    let mut one = fr_zero();
    one[0] = 1;
    fr_sub(a, &one)
}

fn fr_is_zero(a: &Frame) -> bool {
    a.iter().all(|&l| l == 0)
}

fn fr_highest_bit(a: &Frame) -> Option<u32> {
    for i in (0..6).rev() {
        if a[i] != 0 {
            return Some(i as u32 * 64 + (63 - a[i].leading_zeros()));
        }
    }
    None
}

fn fr_bit(a: &Frame, bit: u32) -> bool {
    (a[(bit / 64) as usize] >> (bit % 64)) & 1 == 1
}

/// True iff any of bits `[0, n)` is set.
fn fr_low_nonzero(a: &Frame, n: u32) -> bool {
    let full = (n / 64) as usize;
    for &l in a.iter().take(full) {
        if l != 0 {
            return true;
        }
    }
    let rem = n % 64;
    rem > 0 && full < 6 && a[full] << (64 - rem) != 0
}

fn fr_shl(a: &Frame, n: u32) -> Frame {
    if n == 0 {
        return *a;
    }
    let mut out = fr_zero();
    let limb_shift = (n / 64) as usize;
    let bit_shift = n % 64;
    for i in (0..6).rev() {
        if i < limb_shift {
            continue;
        }
        let src = i - limb_shift;
        let mut v = a[src] << bit_shift;
        if bit_shift > 0 && src > 0 {
            v |= a[src - 1] >> (64 - bit_shift);
        }
        out[i] = v;
    }
    out
}

/// Right shift with sticky collection; `n` may exceed the width.
fn fr_shr_sticky(a: &Frame, n: u64) -> (Frame, bool) {
    if n == 0 {
        return (*a, false);
    }
    if n >= 384 {
        return (fr_zero(), !fr_is_zero(a));
    }
    let n = n as u32;
    let sticky = fr_low_nonzero(a, n);
    let limb_shift = (n / 64) as usize;
    let bit_shift = n % 64;
    let mut out = fr_zero();
    for (i, o) in out.iter_mut().enumerate() {
        let src = i + limb_shift;
        if src >= 6 {
            break;
        }
        let mut v = a[src] >> bit_shift;
        if bit_shift > 0 && src + 1 < 6 {
            v |= a[src + 1] << (64 - bit_shift);
        }
        *o = v;
    }
    (out, sticky)
}

impl Mpf {
    /// Positive zero.
    pub const ZERO: Mpf = Mpf { repr: Repr::Zero { neg: false } };
    /// Positive infinity.
    pub const INFINITY: Mpf = Mpf { repr: Repr::Inf { neg: false } };
    /// Negative infinity.
    pub const NEG_INFINITY: Mpf = Mpf { repr: Repr::Inf { neg: true } };
    /// Not-a-number.
    pub const NAN: Mpf = Mpf { repr: Repr::Nan };

    /// Exact conversion from a binary64 value (always representable).
    pub fn from_f64(x: f64) -> Mpf {
        if x.is_nan() {
            return Mpf::NAN;
        }
        if x.is_infinite() {
            return Mpf { repr: Repr::Inf { neg: x < 0.0 } };
        }
        if x == 0.0 {
            return Mpf { repr: Repr::Zero { neg: x.is_sign_negative() } };
        }
        let neg = x < 0.0;
        let bits = x.abs().to_bits();
        let raw_exp = (bits >> 52) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mant53, exp) = if raw_exp == 0 {
            (frac, -1074i64) // subnormal
        } else {
            (frac | (1u64 << 52), raw_exp - 1075)
        };
        let hb = 63 - mant53.leading_zeros();
        let mut mant = ZERO;
        mant[0] = mant53;
        let shift = 255 - hb;
        let mant = limbs::shl(&mant, shift);
        Mpf { repr: Repr::Finite(Num { neg, exp: exp - shift as i64, mant }) }
    }

    /// Exact conversion from an `i64`.
    pub fn from_i64(x: i64) -> Mpf {
        if x == 0 {
            return Mpf::ZERO;
        }
        let neg = x < 0;
        let mag = x.unsigned_abs();
        let hb = 63 - mag.leading_zeros();
        let mut mant = ZERO;
        mant[0] = mag;
        let shift = 255 - hb;
        let mant = limbs::shl(&mant, shift);
        Mpf { repr: Repr::Finite(Num { neg, exp: -(shift as i64), mant }) }
    }

    /// Sum of a double-double pair `hi + lo`, rounded in `rm` (exact
    /// whenever the two components are within 203 binades of each other,
    /// which holds for every normalized double-double).
    pub fn from_dd(hi: f64, lo: f64, rm: Rm) -> Mpf {
        Mpf::from_f64(hi).add(&Mpf::from_f64(lo), rm)
    }

    /// True for NaN.
    pub fn is_nan(&self) -> bool {
        matches!(self.repr, Repr::Nan)
    }

    /// True for ±∞.
    pub fn is_infinite(&self) -> bool {
        matches!(self.repr, Repr::Inf { .. })
    }

    /// True for ±0.
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Zero { .. })
    }

    /// True for finite values (including zero).
    pub fn is_finite(&self) -> bool {
        matches!(self.repr, Repr::Zero { .. } | Repr::Finite(_))
    }

    /// True if the sign bit is set (NaN reports false; `-0.0` reports
    /// true while still comparing equal to `+0.0`).
    pub fn is_sign_negative(&self) -> bool {
        match self.repr {
            Repr::Zero { neg } => neg,
            Repr::Finite(n) => n.neg,
            Repr::Inf { neg } => neg,
            Repr::Nan => false,
        }
    }

    /// Negation (exact).
    #[must_use]
    pub fn neg(&self) -> Mpf {
        let repr = match self.repr {
            Repr::Zero { neg } => Repr::Zero { neg: !neg },
            Repr::Finite(n) => Repr::Finite(Num { neg: !n.neg, ..n }),
            Repr::Inf { neg } => Repr::Inf { neg: !neg },
            Repr::Nan => Repr::Nan,
        };
        Mpf { repr }
    }

    /// Absolute value (exact).
    #[must_use]
    pub fn abs(&self) -> Mpf {
        if self.is_sign_negative() {
            self.neg()
        } else {
            *self
        }
    }

    /// Exact scaling by `2^n`.
    #[must_use]
    pub fn scale2(&self, n: i64) -> Mpf {
        match self.repr {
            Repr::Finite(num) => Mpf { repr: Repr::Finite(Num { exp: num.exp + n, ..num }) },
            _ => *self,
        }
    }

    /// Numeric comparison; `None` if either operand is NaN. `-0 == +0`.
    pub fn cmp_num(&self, other: &Mpf) -> Option<Ordering> {
        use Repr::*;
        if self.is_nan() || other.is_nan() {
            return None;
        }
        let sgn = |m: &Mpf| -> i32 {
            match m.repr {
                Zero { .. } => 0,
                Finite(n) => {
                    if n.neg {
                        -1
                    } else {
                        1
                    }
                }
                Inf { neg } => {
                    if neg {
                        -1
                    } else {
                        1
                    }
                }
                Nan => 0,
            }
        };
        let (sa, sb) = (sgn(self), sgn(other));
        if sa != sb {
            return Some(sa.cmp(&sb));
        }
        if sa == 0 {
            return Some(Ordering::Equal);
        }
        let mag = match (self.repr, other.repr) {
            (Inf { .. }, Inf { .. }) => Ordering::Equal,
            (Inf { .. }, _) => Ordering::Greater,
            (_, Inf { .. }) => Ordering::Less,
            (Finite(a), Finite(b)) => {
                // Both normalized: compare binary exponents, then mantissas.
                match a.exp.cmp(&b.exp) {
                    Ordering::Equal => limbs::cmp(&a.mant, &b.mant),
                    o => o,
                }
            }
            _ => unreachable!(),
        };
        Some(if sa > 0 { mag } else { mag.reverse() })
    }

    /// Round a normalized 256-bit magnitude with explicit guard and sticky
    /// information. `mant` must have bit 255 set (or be zero with
    /// guard/sticky describing a sub-ulp value at `exp`'s scale).
    fn round_parts(neg: bool, exp: i64, mant: U256, guard: bool, sticky: bool, rm: Rm) -> Mpf {
        if limbs::is_zero(&mant) && !guard && !sticky {
            return Mpf { repr: Repr::Zero { neg } };
        }
        let round_up_mag = match rm {
            Rm::Zero => false,
            Rm::Up => !neg && (guard || sticky),
            Rm::Down => neg && (guard || sticky),
            Rm::Nearest => guard && (sticky || (mant[0] & 1 == 1)),
        };
        if limbs::is_zero(&mant) {
            // Magnitude entirely in the guard/sticky bits.
            if round_up_mag {
                let mut m = ZERO;
                m[LIMBS - 1] = 1 << 63;
                return Mpf { repr: Repr::Finite(Num { neg, exp: exp - 255, mant: m }) };
            }
            return Mpf { repr: Repr::Zero { neg } };
        }
        debug_assert_eq!(limbs::highest_bit(&mant), Some(255), "unnormalized round_parts");
        if round_up_mag {
            let (m2, carry) = limbs::inc(&mant);
            if carry {
                let mut m = ZERO;
                m[LIMBS - 1] = 1 << 63;
                return Mpf { repr: Repr::Finite(Num { neg, exp: exp + 1, mant: m }) };
            }
            return Mpf { repr: Repr::Finite(Num { neg, exp, mant: m2 }) };
        }
        Mpf { repr: Repr::Finite(Num { neg, exp, mant }) }
    }

    /// Normalize-and-round a frame known to be either exact
    /// (`below_sticky == false`) or the *truncation* of the true magnitude
    /// with a strictly positive sub-LSB fraction (`below_sticky == true`).
    /// `frame_exp` is the weight of the frame's bit 0.
    fn round_frame(neg: bool, frame_exp: i64, frame: Frame, below_sticky: bool, rm: Rm) -> Mpf {
        let hb = match fr_highest_bit(&frame) {
            Some(h) => h,
            None => {
                if !below_sticky {
                    return Mpf { repr: Repr::Zero { neg } };
                }
                // Value is in (0, 1) frame-ulp: sub-ulp magnitude.
                return Mpf::round_parts(neg, frame_exp, ZERO, false, true, rm);
            }
        };
        if hb <= 255 {
            // Fits in 256 bits: shift left to normalize.
            let sh = 255 - hb;
            if !below_sticky {
                let f2 = fr_shl(&frame, sh);
                let mut mant = ZERO;
                mant.copy_from_slice(&f2[..LIMBS]);
                debug_assert!(f2[LIMBS..].iter().all(|&l| l == 0));
                return Mpf::round_parts(neg, frame_exp - sh as i64, mant, false, false, rm);
            }
            // Truncated value with hb <= 255: the lost fraction sits right
            // below bit 0, so after shifting left it sits below bit `sh`;
            // it contributes only sticky unless sh == 0.
            let f2 = fr_shl(&frame, sh);
            let mut mant = ZERO;
            mant.copy_from_slice(&f2[..LIMBS]);
            if sh == 0 {
                return Mpf::round_parts(neg, frame_exp, mant, false, true, rm);
            }
            // The fraction is in (0,1) original-ulp = (0, 2^sh) new-ulp:
            // we only know the truncation to `sh` extra bits is 0. This
            // situation cannot occur in this crate: callers only pass
            // below_sticky with hb >= 318 (see add path). Be conservative.
            debug_assert!(false, "sticky with left-normalization");
            return Mpf::round_parts(neg, frame_exp, mant, true, true, rm);
        }
        // hb > 255: shift right, extracting guard and sticky.
        let s = hb - 255; // >= 1
        let guard = fr_bit(&frame, s - 1);
        let sticky = fr_low_nonzero(&frame, s - 1) || below_sticky;
        let (f2, _) = fr_shr_sticky(&frame, s as u64);
        let mut mant = ZERO;
        mant.copy_from_slice(&f2[..LIMBS]);
        Mpf::round_parts(neg, frame_exp + s as i64, mant, guard, sticky, rm)
    }

    /// Correctly rounded addition.
    pub fn add(&self, other: &Mpf, rm: Rm) -> Mpf {
        use Repr::*;
        match (self.repr, other.repr) {
            (Nan, _) | (_, Nan) => Mpf::NAN,
            (Inf { neg: a }, Inf { neg: b }) => {
                if a == b {
                    *self
                } else {
                    Mpf::NAN
                }
            }
            (Inf { .. }, _) => *self,
            (_, Inf { .. }) => *other,
            (Zero { neg: a }, Zero { neg: b }) => {
                let neg = if a == b { a } else { rm == Rm::Down };
                Mpf { repr: Zero { neg } }
            }
            (Zero { .. }, Finite(_)) => *other,
            (Finite(_), Zero { .. }) => *self,
            (Finite(a), Finite(b)) => Mpf::add_finite(a, b, rm),
        }
    }

    fn add_finite(a: Num, b: Num, rm: Rm) -> Mpf {
        // Order |hi| >= |lo|.
        let (hi, lo) = {
            let mag = match a.exp.cmp(&b.exp) {
                Ordering::Equal => limbs::cmp(&a.mant, &b.mant),
                o => o,
            };
            if mag == Ordering::Less {
                (b, a)
            } else {
                (a, b)
            }
        };
        let gap = (hi.exp - lo.exp) as u64;
        // Work frame: LSB weight = hi.exp - 64 (64 fraction bits).
        let frame_exp = hi.exp - 64;
        let hi_w = {
            let mut f = fr_zero();
            f[1..5].copy_from_slice(&hi.mant);
            f // hi.mant << 64
        };
        let (lo_w, lo_sticky) = {
            let mut f = fr_zero();
            f[1..5].copy_from_slice(&lo.mant);
            if gap <= 64 {
                // Shift left by (64 - gap) relative to f >> 64... i.e. the
                // frame holds lo.mant << (64 - gap): exact.
                (fr_shr_sticky(&f, gap).0, false)
            } else {
                fr_shr_sticky(&f, gap)
            }
        };
        if hi.neg == lo.neg {
            // Magnitude addition. True value = (hi_w + lo_w + delta)*2^fe,
            // delta in [0,1) nonzero iff lo_sticky.
            let sum = fr_add(&hi_w, &lo_w); // hb <= 320: fits
            Mpf::round_frame(hi.neg, frame_exp, sum, lo_sticky, rm)
        } else {
            // Magnitude subtraction: hi_w - lo_w (- delta).
            if !lo_sticky {
                if fr_cmp(&hi_w, &lo_w) == Ordering::Equal {
                    return Mpf { repr: Repr::Zero { neg: rm == Rm::Down } };
                }
                let diff = fr_sub(&hi_w, &lo_w);
                return Mpf::round_frame(hi.neg, frame_exp, diff, false, rm);
            }
            // delta in (0,1): true = (diff - 1) + (1 - delta), fraction in
            // (0,1). lo_sticky requires gap > 64, so lo_w < 2^256 while
            // hi_w >= 2^319: diff - 1 >= 2^318, far above bit 255, so
            // round_frame's right-shift path handles the fraction as a pure
            // sticky below bit 0.
            let diff = fr_sub(&hi_w, &lo_w);
            let trunc = fr_dec(&diff);
            debug_assert!(fr_highest_bit(&trunc).unwrap_or(0) >= 318);
            Mpf::round_frame(hi.neg, frame_exp, trunc, true, rm)
        }
    }

    /// Correctly rounded subtraction.
    pub fn sub(&self, other: &Mpf, rm: Rm) -> Mpf {
        self.add(&other.neg(), rm)
    }

    /// Correctly rounded multiplication.
    pub fn mul(&self, other: &Mpf, rm: Rm) -> Mpf {
        use Repr::*;
        match (self.repr, other.repr) {
            (Nan, _) | (_, Nan) => Mpf::NAN,
            (Inf { neg: a }, Inf { neg: b }) => Mpf { repr: Inf { neg: a != b } },
            (Inf { neg }, Finite(n)) | (Finite(n), Inf { neg }) => {
                Mpf { repr: Inf { neg: neg != n.neg } }
            }
            (Inf { .. }, Zero { .. }) | (Zero { .. }, Inf { .. }) => Mpf::NAN,
            (Zero { neg: a }, Zero { neg: b }) => Mpf { repr: Zero { neg: a != b } },
            (Zero { neg }, Finite(n)) | (Finite(n), Zero { neg }) => {
                Mpf { repr: Zero { neg: neg != n.neg } }
            }
            (Finite(a), Finite(b)) => {
                let neg = a.neg != b.neg;
                let wide = limbs::mul_wide(&a.mant, &b.mant);
                let hb = limbs::highest_bit_512(&wide).expect("nonzero product");
                debug_assert!(hb == 510 || hb == 511);
                let s = hb - 255; // 255 or 256
                let guard = bit_512(&wide, s - 1);
                let sticky = low_nonzero_512(&wide, s - 1);
                let mant = shr_512_into_256(&wide, s);
                // LSB weight: a.exp + b.exp + s.
                Mpf::round_parts(neg, a.exp + b.exp + s as i64, mant, guard, sticky, rm)
            }
        }
    }

    /// Correctly rounded division.
    pub fn div(&self, other: &Mpf, rm: Rm) -> Mpf {
        use Repr::*;
        match (self.repr, other.repr) {
            (Nan, _) | (_, Nan) => Mpf::NAN,
            (Inf { .. }, Inf { .. }) => Mpf::NAN,
            (Zero { .. }, Zero { .. }) => Mpf::NAN,
            (Inf { neg }, Zero { neg: zn }) => Mpf { repr: Inf { neg: neg != zn } },
            (Inf { neg }, Finite(n)) => Mpf { repr: Inf { neg: neg != n.neg } },
            (Zero { neg }, Finite(n)) => Mpf { repr: Zero { neg: neg != n.neg } },
            (Zero { neg }, Inf { neg: ni }) => Mpf { repr: Zero { neg: neg != ni } },
            (Finite(n), Inf { neg }) => Mpf { repr: Zero { neg: n.neg != neg } },
            (Finite(a), Zero { neg }) => Mpf { repr: Inf { neg: a.neg != neg } },
            (Finite(a), Finite(b)) => {
                let neg = a.neg != b.neg;
                // Restoring long division of (a.mant << 257) by b.mant:
                // quotient in (2^256, 2^258), i.e. 257 or 258 bits, plus a
                // remainder that only contributes sticky.
                // Remainder fits in 257 bits; track the 257th explicitly.
                let mut rem = ZERO;
                let mut rem_hi = false;
                let mut q = [0u64; 5]; // up to 258 bits
                let total = 256 + 257; // bits of the shifted numerator
                for i in (0..total).rev() {
                    // Shift remainder left one, bring in numerator bit i
                    // (numerator = a.mant << 257: bits 257..512 hold a.mant).
                    rem_hi = rem[LIMBS - 1] >> 63 == 1;
                    rem = limbs::shl(&rem, 1);
                    if i >= 257 {
                        let src = i - 257;
                        if (a.mant[(src / 64) as usize] >> (src % 64)) & 1 == 1 {
                            rem[0] |= 1;
                        }
                    }
                    let ge = rem_hi || limbs::cmp(&rem, &b.mant) != Ordering::Less;
                    // Shift quotient left one.
                    let mut carry = 0u64;
                    for l in q.iter_mut() {
                        let nv = (*l << 1) | carry;
                        carry = *l >> 63;
                        *l = nv;
                    }
                    debug_assert_eq!(carry, 0, "quotient overflow");
                    if ge {
                        if rem_hi && limbs::cmp(&rem, &b.mant) == Ordering::Less {
                            // rem = 2^256 + rem_low; rem - b =
                            // rem_low + (2^256 - b) (two's complement of b).
                            let mut comp = ZERO;
                            let mut carry = 1u64;
                            for (c, &bl) in comp.iter_mut().zip(b.mant.iter()) {
                                let (v, c2) = (!bl).overflowing_add(carry);
                                *c = v;
                                carry = c2 as u64;
                            }
                            let (r2, _) = limbs::add(&rem, &comp);
                            rem = r2;
                        } else {
                            rem = limbs::sub(&rem, &b.mant);
                        }
                        rem_hi = false;
                        q[0] |= 1;
                    }
                }
                let rem_sticky = rem_hi || !limbs::is_zero(&rem);
                // Quotient bits: hb is 256 or 257.
                let qhb = {
                    let mut h = 0;
                    for i in (0..5).rev() {
                        if q[i] != 0 {
                            h = i as u32 * 64 + (63 - q[i].leading_zeros());
                            break;
                        }
                    }
                    h
                };
                debug_assert!(qhb == 256 || qhb == 257, "quotient bits: {qhb}");
                let s = qhb - 255; // 1 or 2
                let guard = (q[((s - 1) / 64) as usize] >> ((s - 1) % 64)) & 1 == 1;
                let sticky = (s == 2 && q[0] & 1 == 1) || rem_sticky;
                let mut mant = ZERO;
                // mant = q >> s.
                for i in 0..LIMBS {
                    let mut v = q[i] >> s;
                    v |= q[i + 1] << (64 - s);
                    mant[i] = v;
                }
                // Weight: quotient integer Q = floor((Ma*2^257)/Mb) with
                // value a/b = Q * 2^(a.exp - b.exp - 257) (+ remainder).
                // After dropping s low bits, the LSB weight is
                // a.exp - b.exp - 257 + s.
                Mpf::round_parts(neg, a.exp - b.exp - 257 + s as i64, mant, guard, sticky, rm)
            }
        }
    }

    /// Square root: correctly rounded for the directed modes (`Up`,
    /// `Down`, `Zero`); *faithfully* rounded (within one ulp) for
    /// `Nearest`. Negative inputs give NaN.
    ///
    /// The oracle role of this crate only requires directed bounds, which
    /// are exact.
    pub fn sqrt(&self, rm: Rm) -> Mpf {
        use Repr::*;
        match self.repr {
            Nan => Mpf::NAN,
            Zero { neg } => Mpf { repr: Zero { neg } },
            Inf { neg } => {
                if neg {
                    Mpf::NAN
                } else {
                    Mpf::INFINITY
                }
            }
            Finite(n) if n.neg => Mpf::NAN,
            Finite(n) => {
                // Radicand = mant << 256 at exponent (exp - 256); make the
                // exponent even so the root's exponent is integral.
                let mut wide: U512 = [0; 2 * LIMBS];
                wide[LIMBS..].copy_from_slice(&n.mant);
                let mut exp = n.exp - 256;
                if exp.rem_euclid(2) != 0 {
                    // Shift radicand left 1 (headroom: top bit at 511 only
                    // if mant's bit 255 set and already shifted — the
                    // initial layout has the top bit at 511, so shifting
                    // left would overflow. Shift RIGHT instead and bump exp.
                    let mut carry = 0u64;
                    for i in (0..2 * LIMBS).rev() {
                        let nv = (wide[i] >> 1) | (carry << 63);
                        carry = wide[i] & 1;
                        wide[i] = nv;
                    }
                    // The dropped bit is zero: mant<<256 has 256 zero bits
                    // at the bottom.
                    debug_assert_eq!(carry, 0);
                    exp += 1;
                }
                debug_assert_eq!(exp.rem_euclid(2), 0);
                let (root, rem_nonzero) = isqrt_512(&wide);
                // root = floor(sqrt(radicand)), 255 or 256 bits.
                let hb = limbs::highest_bit(&root).expect("nonzero root");
                let half_exp = exp / 2;
                if hb == 255 {
                    // value = root * 2^half_exp, truncated (sticky =
                    // rem_nonzero).
                    Mpf::round_parts(false, half_exp, root, false, rem_nonzero, rm)
                } else {
                    // The radicand is always >= 2^510 (mantissa bit 255 set,
                    // shifted into the top half, at most one right-shift for
                    // parity), so the floor root is >= 2^255.
                    unreachable!("sqrt root is always 256 bits")
                }
            }
        }
    }

    /// Convert to binary64 with correct rounding in the given mode,
    /// including overflow to ±∞/±MAX and gradual underflow.
    pub fn to_f64(&self, rm: Rm) -> f64 {
        match self.repr {
            Repr::Nan => f64::NAN,
            Repr::Inf { neg } => {
                if neg {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }
            }
            Repr::Zero { neg } => {
                if neg {
                    -0.0
                } else {
                    0.0
                }
            }
            Repr::Finite(n) => {
                let e = n.exp + 255; // binary exponent: value in [2^e, 2^(e+1))
                if e > 1023 {
                    return Self::overflow_f64(n.neg, rm);
                }
                if e < -1075 {
                    // Below half the smallest subnormal: 0 or ±tiny.
                    return Self::underflow_f64(n.neg, rm);
                }
                if e == -1075 {
                    // Magnitude in [2^-1075, 2^-1074): RN rounds up except
                    // at the exact tie 2^-1075 (ties-to-even -> 0).
                    let tiny = f64::from_bits(1);
                    let is_tie = limbs::highest_bit(&n.mant) == Some(255)
                        && n.mant[..LIMBS - 1].iter().all(|&l| l == 0)
                        && n.mant[LIMBS - 1] == 1 << 63;
                    let mag = match rm {
                        Rm::Zero => 0.0,
                        Rm::Up => {
                            if n.neg {
                                0.0
                            } else {
                                tiny
                            }
                        }
                        Rm::Down => {
                            if n.neg {
                                tiny
                            } else {
                                0.0
                            }
                        }
                        Rm::Nearest => {
                            if is_tie {
                                0.0
                            } else {
                                tiny
                            }
                        }
                    };
                    return if n.neg { -mag } else { mag };
                }
                // Keep bits: 53 for normal, fewer when subnormal.
                let keep: u32 = if e >= -1022 { 53 } else { (53 + (e + 1022)) as u32 };
                debug_assert!((1..=53).contains(&keep));
                let shift = 256 - keep;
                let (top, _) = limbs::shr_sticky(&n.mant, shift as u64);
                let mant_trunc = top[0];
                let (_, sticky_below) = limbs::shr_sticky(&n.mant, (shift - 1) as u64);
                let guard = {
                    let (g, _) = limbs::shr_sticky(&n.mant, (shift - 1) as u64);
                    g[0] & 1 == 1
                };
                let sticky = sticky_below;
                let odd = mant_trunc & 1 == 1;
                let round_up = match rm {
                    Rm::Zero => false,
                    Rm::Up => !n.neg && (guard || sticky),
                    Rm::Down => n.neg && (guard || sticky),
                    Rm::Nearest => guard && (sticky || odd),
                };
                let mant_final = mant_trunc + round_up as u64;
                let mag = if e >= -1022 {
                    // Normal path; handle binade carry.
                    let (m53, e2) = if mant_final >> 53 != 0 {
                        (mant_final >> 1, e + 1)
                    } else {
                        (mant_final, e)
                    };
                    if e2 > 1023 {
                        return Self::overflow_f64(n.neg, rm);
                    }
                    debug_assert_eq!(m53 >> 52, 1);
                    f64::from_bits((((e2 + 1023) as u64) << 52) | (m53 & ((1 << 52) - 1)))
                } else {
                    // Subnormal encoding: LSB weight 2^-1074; a carry to
                    // 2^keep lands naturally in the next encoding slot
                    // (including the smallest normal).
                    f64::from_bits(mant_final)
                };
                if n.neg {
                    -mag
                } else {
                    mag
                }
            }
        }
    }

    fn overflow_f64(neg: bool, rm: Rm) -> f64 {
        match (rm, neg) {
            (Rm::Up, false) | (Rm::Nearest, false) => f64::INFINITY,
            (Rm::Up, true) | (Rm::Zero, true) => -f64::MAX,
            (Rm::Down, false) | (Rm::Zero, false) => f64::MAX,
            (Rm::Down, true) | (Rm::Nearest, true) => f64::NEG_INFINITY,
        }
    }

    fn underflow_f64(neg: bool, rm: Rm) -> f64 {
        let tiny = f64::from_bits(1);
        match (rm, neg) {
            (Rm::Up, false) => tiny,
            (Rm::Down, true) => -tiny,
            (_, true) => -0.0,
            (_, false) => 0.0,
        }
    }
}

fn bit_512(a: &U512, bit: u32) -> bool {
    (a[(bit / 64) as usize] >> (bit % 64)) & 1 == 1
}

fn low_nonzero_512(a: &U512, n: u32) -> bool {
    let full = (n / 64) as usize;
    for &l in a.iter().take(full) {
        if l != 0 {
            return true;
        }
    }
    let rem = n % 64;
    rem > 0 && full < 2 * LIMBS && a[full] << (64 - rem) != 0
}

/// `a >> s` truncated into 256 bits; caller guarantees the result fits.
fn shr_512_into_256(a: &U512, s: u32) -> U256 {
    let limb_shift = (s / 64) as usize;
    let bit_shift = s % 64;
    let mut out = ZERO;
    for (i, o) in out.iter_mut().enumerate() {
        let src = i + limb_shift;
        if src >= 2 * LIMBS {
            break;
        }
        let mut v = a[src] >> bit_shift;
        if bit_shift > 0 && src + 1 < 2 * LIMBS {
            v |= a[src + 1] << (64 - bit_shift);
        }
        *o = v;
    }
    out
}

/// Integer square root of a 512-bit value: floor root (256 bits) and
/// whether the remainder is nonzero.
fn isqrt_512(v: &U512) -> (U256, bool) {
    const W: usize = 9;
    type Wide = [u64; W];
    fn wcmp(a: &Wide, b: &Wide) -> Ordering {
        for i in (0..W).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }
    fn wsub(a: &mut Wide, b: &Wide) {
        let mut borrow = false;
        for i in 0..W {
            let (d1, b1) = a[i].overflowing_sub(b[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            a[i] = d2;
            borrow = b1 || b2;
        }
        debug_assert!(!borrow);
    }
    fn wshl(a: &mut Wide, n: u32) {
        debug_assert!(n > 0 && n < 64);
        for i in (0..W).rev() {
            let mut x = a[i] << n;
            if i > 0 {
                x |= a[i - 1] >> (64 - n);
            }
            a[i] = x;
        }
    }
    let mut rem: Wide = [0; W];
    let mut root: Wide = [0; W];
    for i in (0..256).rev() {
        wshl(&mut rem, 2);
        let hi_idx = 2 * i + 1;
        let bit_hi = (v[hi_idx / 64] >> (hi_idx % 64)) & 1;
        let bit_lo = (v[(2 * i) / 64] >> ((2 * i) % 64)) & 1;
        rem[0] |= (bit_hi << 1) | bit_lo;
        let mut trial = root;
        wshl(&mut trial, 2);
        trial[0] |= 1;
        wshl(&mut root, 1);
        if wcmp(&rem, &trial) != Ordering::Less {
            wsub(&mut rem, &trial);
            root[0] |= 1;
        }
    }
    let mut out = ZERO;
    out.copy_from_slice(&root[..LIMBS]);
    debug_assert!(root[LIMBS..].iter().all(|&l| l == 0));
    (out, rem.iter().any(|&l| l != 0))
}

impl core::fmt::Display for Mpf {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.repr {
            Repr::Nan => write!(f, "NaN"),
            Repr::Inf { neg } => write!(f, "{}inf", if neg { "-" } else { "" }),
            Repr::Zero { neg } => write!(f, "{}0", if neg { "-" } else { "" }),
            Repr::Finite(n) => {
                // Hex-float style: sign 0x1.<hex fraction>p<exp>.
                let frac = limbs::shl(&n.mant, 1); // drop the leading 1
                let mut digits = String::new();
                for i in 0..63 {
                    let top = 256 - 4 * (i + 1);
                    let limb = (top / 64) as usize;
                    let off = top % 64;
                    let nib = (frac[limb] >> off) & 0xf;
                    digits.push(core::char::from_digit(nib as u32, 16).unwrap());
                }
                let digits = digits.trim_end_matches('0');
                write!(
                    f,
                    "{}0x1.{}p{}",
                    if n.neg { "-" } else { "" },
                    if digits.is_empty() { "0" } else { digits },
                    n.exp + 255
                )
            }
        }
    }
}
