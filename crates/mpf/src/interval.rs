//! Multiprecision intervals — the MPFI-substitute oracle.
//!
//! The paper validates its interval library against MPFI (Section IV-A);
//! this module plays the same role for the whole workspace: every interval
//! operation in `igen-interval`, `igen-affine` and the end-to-end compiler
//! pipeline is property-tested for containment against [`MpfInterval`].

use crate::float::{Mpf, Rm};
use core::cmp::Ordering;

/// An interval with 256-bit-precision endpoints, outward rounded.
///
/// Empty intervals are not representable; invalid operations produce NaN
/// endpoints, mirroring the paper's semantics (an interval with a NaN
/// endpoint means "could be anything").
///
/// # Example
///
/// ```
/// use igen_mpf::MpfInterval;
/// let x = MpfInterval::from_f64(0.1);
/// let y = x.add(&x);
/// assert!(y.contains_f64(0.2));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MpfInterval {
    lo: Mpf,
    hi: Mpf,
}

impl MpfInterval {
    /// The point interval `[x, x]` (exact: any f64 is representable).
    pub fn from_f64(x: f64) -> MpfInterval {
        let v = Mpf::from_f64(x);
        MpfInterval { lo: v, hi: v }
    }

    /// The interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` (NaN endpoints are allowed).
    pub fn new(lo: Mpf, hi: Mpf) -> MpfInterval {
        if let Some(o) = lo.cmp_num(&hi) {
            assert!(o != Ordering::Greater, "MpfInterval::new: lo > hi");
        }
        MpfInterval { lo, hi }
    }

    /// The interval `[lo, hi]` from f64 endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn from_f64_pair(lo: f64, hi: f64) -> MpfInterval {
        MpfInterval::new(Mpf::from_f64(lo), Mpf::from_f64(hi))
    }

    /// Lower endpoint.
    pub fn lo(&self) -> Mpf {
        self.lo
    }

    /// Upper endpoint.
    pub fn hi(&self) -> Mpf {
        self.hi
    }

    /// True if `x` lies inside the interval. NaN endpoints absorb
    /// everything on their side (unknown bound), matching the paper's
    /// convention.
    pub fn contains(&self, x: &Mpf) -> bool {
        if x.is_nan() {
            return self.lo.is_nan() || self.hi.is_nan();
        }
        let lo_ok = self.lo.is_nan() || self.lo.cmp_num(x) != Some(Ordering::Greater);
        let hi_ok = self.hi.is_nan() || self.hi.cmp_num(x) != Some(Ordering::Less);
        lo_ok && hi_ok
    }

    /// True if the f64 value lies inside the interval.
    pub fn contains_f64(&self, x: f64) -> bool {
        self.contains(&Mpf::from_f64(x))
    }

    /// True if `other` is a subset of `self`.
    pub fn encloses(&self, other: &MpfInterval) -> bool {
        self.contains(&other.lo) && self.contains(&other.hi)
    }

    /// Outward-rounded addition.
    #[must_use]
    pub fn add(&self, other: &MpfInterval) -> MpfInterval {
        MpfInterval { lo: self.lo.add(&other.lo, Rm::Down), hi: self.hi.add(&other.hi, Rm::Up) }
    }

    /// Outward-rounded subtraction.
    #[must_use]
    pub fn sub(&self, other: &MpfInterval) -> MpfInterval {
        MpfInterval { lo: self.lo.sub(&other.hi, Rm::Down), hi: self.hi.sub(&other.lo, Rm::Up) }
    }

    /// Negation (exact).
    #[must_use]
    pub fn neg(&self) -> MpfInterval {
        MpfInterval { lo: self.hi.neg(), hi: self.lo.neg() }
    }

    /// Outward-rounded multiplication (all four endpoint products in both
    /// directions).
    #[must_use]
    pub fn mul(&self, other: &MpfInterval) -> MpfInterval {
        let cands = [
            (&self.lo, &other.lo),
            (&self.lo, &other.hi),
            (&self.hi, &other.lo),
            (&self.hi, &other.hi),
        ];
        let mut lo = Mpf::INFINITY;
        let mut hi = Mpf::NEG_INFINITY;
        let mut any_nan = false;
        for (a, b) in cands {
            let d = a.mul(b, Rm::Down);
            let u = a.mul(b, Rm::Up);
            if d.is_nan() || u.is_nan() {
                any_nan = true;
                continue;
            }
            if d.cmp_num(&lo) == Some(Ordering::Less) {
                lo = d;
            }
            if u.cmp_num(&hi) == Some(Ordering::Greater) {
                hi = u;
            }
        }
        if any_nan {
            return MpfInterval { lo: Mpf::NAN, hi: Mpf::NAN };
        }
        MpfInterval { lo, hi }
    }

    /// Outward-rounded division. If the divisor interval contains zero the
    /// result is the entire line `[-∞, +∞]`.
    #[must_use]
    pub fn div(&self, other: &MpfInterval) -> MpfInterval {
        let zero = Mpf::ZERO;
        let lo_sign = other.lo.cmp_num(&zero);
        let hi_sign = other.hi.cmp_num(&zero);
        let straddles = match (lo_sign, hi_sign) {
            (Some(a), Some(b)) => a != Ordering::Greater && b != Ordering::Less,
            _ => true, // NaN endpoint: unknown, be maximally conservative
        };
        if straddles {
            return MpfInterval { lo: Mpf::NEG_INFINITY, hi: Mpf::INFINITY };
        }
        let cands = [
            (&self.lo, &other.lo),
            (&self.lo, &other.hi),
            (&self.hi, &other.lo),
            (&self.hi, &other.hi),
        ];
        let mut lo = Mpf::INFINITY;
        let mut hi = Mpf::NEG_INFINITY;
        for (a, b) in cands {
            let d = a.div(b, Rm::Down);
            let u = a.div(b, Rm::Up);
            if d.is_nan() || u.is_nan() {
                return MpfInterval { lo: Mpf::NAN, hi: Mpf::NAN };
            }
            if d.cmp_num(&lo) == Some(Ordering::Less) {
                lo = d;
            }
            if u.cmp_num(&hi) == Some(Ordering::Greater) {
                hi = u;
            }
        }
        MpfInterval { lo, hi }
    }

    /// Outward-rounded square root; a negative lower endpoint yields a NaN
    /// lower bound, exactly like the paper's `sqrt([-1,1]) = [NaN, 1]`.
    #[must_use]
    pub fn sqrt(&self) -> MpfInterval {
        MpfInterval { lo: self.lo.sqrt(Rm::Down), hi: self.hi.sqrt(Rm::Up) }
    }

    /// Maximum against zero (the ReLU activation of the ffnn benchmark):
    /// exact, endpoint-monotonic. A NaN endpoint stays NaN.
    #[must_use]
    pub fn max_zero(&self) -> MpfInterval {
        let zero = Mpf::ZERO;
        let clamp = |e: &Mpf| {
            if e.is_nan() || e.cmp_num(&zero) != Some(Ordering::Less) {
                *e
            } else {
                zero
            }
        };
        MpfInterval { lo: clamp(&self.lo), hi: clamp(&self.hi) }
    }

    /// The tightest `f64` pair enclosing this interval: the lower
    /// endpoint rounded down to binary64, the upper rounded up. This is
    /// how the oracle reports results to the benchmark gauntlet, where
    /// every backend speaks f64 endpoints.
    pub fn to_f64_pair(&self) -> (f64, f64) {
        (self.lo.to_f64(Rm::Down), self.hi.to_f64(Rm::Up))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic_contains_truth() {
        let x = MpfInterval::from_f64(0.1);
        let three = MpfInterval::from_f64(3.0);
        let s = x.mul(&three);
        // The exact product of the double 0.1 by 3 needs only 55 bits, so
        // the 256-bit interval is a point containing it exactly.
        let exact = Mpf::from_f64(0.1).mul(&Mpf::from_f64(3.0), Rm::Nearest);
        assert!(s.contains(&exact));
        // The double-rounded f64 product differs from the exact value, so
        // it must NOT be in this ultra-tight interval (sanity check that
        // the oracle is tighter than f64):
        assert!(!s.contains_f64(0.1 * 3.0) || 0.1 * 3.0 == exact.to_f64(Rm::Nearest));
        let w = s.sub(&s);
        assert!(w.contains_f64(0.0));
    }

    #[test]
    fn division_by_zero_interval_is_entire() {
        let one = MpfInterval::from_f64(1.0);
        let z = MpfInterval::from_f64_pair(-1.0, 1.0);
        let q = one.div(&z);
        assert!(q.lo().is_infinite() && q.lo().is_sign_negative());
        assert!(q.hi().is_infinite() && !q.hi().is_sign_negative());
    }

    #[test]
    fn sqrt_of_mixed_interval_has_nan_lower() {
        let m = MpfInterval::from_f64_pair(-1.0, 1.0);
        let s = m.sqrt();
        assert!(s.lo().is_nan());
        assert_eq!(s.hi().to_f64(crate::Rm::Up), 1.0);
    }

    #[test]
    fn max_zero_is_relu() {
        let m = MpfInterval::from_f64_pair(-2.0, 3.0).max_zero();
        assert_eq!(m.to_f64_pair(), (0.0, 3.0));
        let n = MpfInterval::from_f64_pair(-2.0, -1.0).max_zero();
        assert_eq!(n.to_f64_pair(), (0.0, 0.0));
        let p = MpfInterval::from_f64_pair(1.0, 2.0).max_zero();
        assert_eq!(p.to_f64_pair(), (1.0, 2.0));
    }

    #[test]
    fn f64_pair_rounds_outward() {
        // 0.1 * 3 needs 55 bits: the 256-bit product is exact, and the
        // f64 pair must bracket it strictly.
        let p = MpfInterval::from_f64(0.1).mul(&MpfInterval::from_f64(3.0));
        let (lo, hi) = p.to_f64_pair();
        assert!(lo < hi);
        assert!(
            p.contains_f64(lo) || p.lo().cmp_num(&Mpf::from_f64(lo)) == Some(Ordering::Greater)
        );
        assert_eq!(igen_round::ulps_between(lo, hi), 1);
    }

    #[test]
    fn enclosure_ordering() {
        let a = MpfInterval::from_f64_pair(1.0, 2.0);
        let b = MpfInterval::from_f64_pair(0.5, 3.0);
        assert!(b.encloses(&a));
        assert!(!a.encloses(&b));
    }
}
