//! Width-provenance profiling through the interpreter: profiling must
//! never change computed values, and (when telemetry is compiled in and
//! recording) must attribute interval operations to real source lines
//! of the *original* program — the transformer forwards each
//! expression's location into the `ia_*` call that replaces it.

use igen_core::{Compiler, Config};
use igen_interp::{Interp, Value};
use igen_interval::F64I;

const SRC: &str = "\
double kernel(double x, double y) {
    double a = 1.05;
    double xx = x * x;
    double w = 1 - a * xx + y;
    return w * w - x;
}
";

fn interval_interp() -> Interp {
    let out = Compiler::new(Config::default()).compile_str(SRC).expect("compile");
    Interp::new(&out.unit)
}

fn run(interp: &mut Interp, x: F64I, y: F64I) -> F64I {
    interp.reset();
    interp
        .call("kernel", vec![Value::Interval(x), Value::Interval(y)])
        .expect("kernel runs")
        .as_interval()
        .expect("interval result")
}

#[test]
fn profiling_does_not_change_results() {
    let cases = [
        (F64I::new(0.4, 0.6).unwrap(), F64I::new(-0.1, 0.1).unwrap()),
        (F64I::point(1.25), F64I::point(-0.5)),
        (F64I::new(-2.0, 2.0).unwrap(), F64I::point(0.3)),
    ];
    let mut plain = interval_interp();
    let mut profiled = interval_interp();
    profiled.profile_start("interp.test.identity");
    for (x, y) in cases {
        let a = run(&mut plain, x, y);
        let b = run(&mut profiled, x, y);
        assert_eq!(a.lo().to_bits(), b.lo().to_bits(), "lo differs for {x} {y}");
        assert_eq!(a.hi().to_bits(), b.hi().to_bits(), "hi differs for {x} {y}");
    }
    profiled.profile_finish();
}

#[cfg(feature = "telemetry")]
#[test]
fn profile_rows_name_original_source_lines() {
    igen_telemetry::set_recording(true);
    let mut interp = interval_interp();
    interp.profile_start("interp.test.lines");
    run(&mut interp, F64I::new(0.9, 1.1).unwrap(), F64I::point(0.25));
    interp.profile_finish();
    igen_telemetry::set_recording(false);

    let rows: Vec<_> = igen_telemetry::profiles_snapshot()
        .into_iter()
        .filter(|r| r.unit == "interp.test.lines")
        .collect();
    assert!(!rows.is_empty(), "profiling recorded no rows");
    // `x * x` lives on line 3 of SRC; `1 - a * xx + y` on line 4.
    let mul3 = rows.iter().find(|r| r.line == 3 && r.op == "mul");
    assert!(mul3.is_some(), "no mul row for line 3: {rows:?}");
    assert!(rows.iter().any(|r| r.line == 4), "no rows for line 4: {rows:?}");
    // Every arithmetic row carries a known location and real samples.
    for r in rows.iter().filter(|r| matches!(r.op.as_str(), "mul" | "add" | "sub")) {
        assert!(r.line > 0, "unlocated arithmetic row {r:?}");
        assert!(r.count > 0, "sample-less row {r:?}");
    }
}
