//! Differential fuzzing with CONTROL FLOW: random programs with loops and
//! decidable branches, run in float and interval mode; the interval run
//! must enclose the float run (plain structural transformation: every
//! float op is enclosed by its interval op, so float containment holds —
//! unlike the reduction-transformed cases).

use igen_core::{Compiler, Config};
use igen_interp::{Interp, RtError, Value};
use igen_interval::F64I;
use proptest::prelude::*;

fn pipeline(src: &str) -> (Interp, Interp) {
    let orig = Interp::from_source(src).expect("parse original");
    let out = Compiler::new(Config::default()).compile_str(src).expect("compile");
    let tu = igen_cfront::parse(&out.c_source).expect("reparse transformed");
    (orig, Interp::new(&tu))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn looped_programs_are_sound(
        iters in 1usize..20,
        scale_num in 1i32..9,
        add_const in prop_oneof![Just("0.1"), Just("0.25"), Just("1.0"), Just("0.3")],
        a in -2.0f64..2.0,
    ) {
        // x = x * (num/10) + C, iterated; decidable loop bound on an int.
        let src = format!(
            "double f(double x) {{\n\
             for (int i = 0; i < {iters}; i++) {{\n\
             x = x * 0.{scale_num} + {add_const};\n\
             }}\n\
             return x;\n\
             }}"
        );
        let (mut orig, mut ivl) = pipeline(&src);
        let f = orig.call("f", vec![Value::F64(a)]).unwrap().as_f64().unwrap();
        let r = ivl
            .call("f", vec![Value::Interval(F64I::point(a))])
            .unwrap()
            .as_interval()
            .unwrap();
        prop_assert!(r.contains(f), "f({a}) = {f} outside {r}\n{src}");
        // Contractive maps keep plenty of bits even after the loop.
        prop_assert!(r.certified_bits() > 40.0, "{} bits\n{src}", r.certified_bits());
    }

    #[test]
    fn branched_programs_decidable_or_signal(
        threshold in prop_oneof![Just("0.5"), Just("-1.0"), Just("2.0")],
        a in -3.0f64..3.0,
    ) {
        let src = format!(
            "double f(double x) {{\n\
             double y = x * x;\n\
             if (y > {threshold}) {{ y = y - x; }} else {{ y = y + x; }}\n\
             return y;\n\
             }}"
        );
        let (mut orig, mut ivl) = pipeline(&src);
        let f = orig.call("f", vec![Value::F64(a)]).unwrap().as_f64().unwrap();
        match ivl.call("f", vec![Value::Interval(F64I::point(a))]) {
            Ok(v) => {
                let r = v.as_interval().unwrap();
                prop_assert!(r.contains(f), "f({a}) = {f} outside {r}");
            }
            // Point inputs can still be undecidable when y*y lands
            // exactly on the threshold's constant enclosure: signalling
            // is the correct sound behaviour, never silence.
            Err(RtError::UnknownBranch) => {}
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    #[test]
    fn elementary_function_programs_are_sound(
        f1 in prop_oneof![Just("sin"), Just("cos"), Just("atan"), Just("asin"), Just("acos")],
        f2 in prop_oneof![Just("exp"), Just("sqrt"), Just("fabs")],
        a in -4.0f64..4.0,
        b in 0.1f64..3.0,
    ) {
        // Composition of two libm calls with arithmetic between them; the
        // interpreter runs the float original against real libm, the
        // transformed program against the rigorous enclosures.
        let src = format!(
            "double f(double x, double y) {{\n\
             double t = {f1}(x * y) + 0.5;\n\
             return {f2}(t * t) - x;\n\
             }}"
        );
        let (mut orig, mut ivl) = pipeline(&src);
        let f = orig
            .call("f", vec![Value::F64(a), Value::F64(b)])
            .unwrap()
            .as_f64()
            .unwrap();
        let r = ivl
            .call("f", vec![Value::Interval(F64I::point(a)), Value::Interval(F64I::point(b))])
            .unwrap()
            .as_interval()
            .unwrap();
        if f.is_nan() {
            // Out-of-domain float runs (asin/acos/sqrt outside their
            // domains) must surface as NaN-poisoned intervals, not as
            // silently-finite enclosures.
            prop_assert!(r.has_nan(), "float NaN but interval {r}\n{src}");
        } else {
            prop_assert!(r.contains(f), "f({a},{b}) = {f} outside {r}\n{src}");
            prop_assert!(r.certified_bits() > 30.0, "{} bits\n{src}", r.certified_bits());
        }
    }

    #[test]
    fn nested_loop_array_programs(
        rows in 1usize..5,
        cols in 1usize..6,
        seed in 0u64..1000,
    ) {
        let src = format!(
            "void k(double* a, double* out) {{\n\
             for (int i = 0; i < {rows}; i++) {{\n\
             double s = 0.0;\n\
             for (int j = 0; j < {cols}; j++) {{\n\
             s = s + a[i * {cols} + j] * 0.125 + 0.1;\n\
             }}\n\
             out[i] = s;\n\
             }}\n\
             }}"
        );
        let (mut orig, mut ivl) = pipeline(&src);
        let data: Vec<f64> = (0..rows * cols)
            .map(|k| (((k as u64 + seed) * 2654435761 % 1000) as f64) / 250.0 - 2.0)
            .collect();
        let (ap, op) = (orig.alloc_f64(&data), orig.alloc_f64(&vec![0.0; rows]));
        orig.call("k", vec![ap, op.clone()]).unwrap();
        let of = orig.read_f64(&op, rows);
        let ai: Vec<F64I> = data.iter().map(|&v| F64I::point(v)).collect();
        let (ap, op) = (ivl.alloc_interval(&ai), ivl.alloc_interval(&vec![F64I::ZERO; rows]));
        ivl.call("k", vec![ap, op.clone()]).unwrap();
        let oi = ivl.read_interval(&op, rows);
        for i in 0..rows {
            prop_assert!(oi[i].contains(of[i]), "row {i}: {} outside {}", of[i], oi[i]);
        }
    }
}
