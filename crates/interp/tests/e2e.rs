//! End-to-end differential tests of the full IGen pipeline:
//! parse → compile → interpret, checking that the interval run encloses
//! the float run (and the 256-bit oracle's real-arithmetic run) on random
//! inputs. This is the whole-system soundness argument of the paper,
//! machine-checked.

use igen_core::{Compiler, Config, Precision};
use igen_interp::{Interp, RtError, Value};
use igen_mpf::{Mpf, Rm};
use proptest::prelude::*;

/// Compile `src` and return an interpreter holding BOTH the original
/// program (under its own names) and the transformed program (same names,
/// shadowing is avoided by using two interpreters instead).
fn pipeline(src: &str, cfg: Config) -> (Interp, Interp) {
    let orig = Interp::from_source(src).expect("parse original");
    let out = Compiler::new(cfg).compile_str(src).expect("compile");
    let tu = igen_cfront::parse(&out.c_source).expect("reparse transformed");
    (orig, Interp::new(&tu))
}

#[test]
fn fig2_foo_encloses() {
    let src = r#"
        double foo(double a, double b) {
            double c;
            c = a + b + 0.1;
            if (c > a) {
                c = a * c;
            }
            return c;
        }
    "#;
    let (mut orig, mut ivl) = pipeline(src, Config::default());
    for (a, b) in [(1.0, 2.0), (0.5, -0.25), (100.0, 3.5), (-7.25, -2.5)] {
        let f = orig.call("foo", vec![Value::F64(a), Value::F64(b)]).unwrap().as_f64().unwrap();
        let i = ivl
            .call(
                "foo",
                vec![
                    Value::Interval(igen_interval::F64I::point(a)),
                    Value::Interval(igen_interval::F64I::point(b)),
                ],
            )
            .unwrap()
            .as_interval()
            .unwrap();
        assert!(i.contains(f), "foo({a},{b}) = {f}, interval {i}");
        // And the *real-arithmetic* result (the paper's soundness claim):
        // c = a + b + 0.1 (real), then c = a*c only if the branch is taken.
        let c_real = Mpf::from_f64(a)
            .add(&Mpf::from_f64(b), Rm::Nearest)
            .add(&Mpf::from_i64(1).div(&Mpf::from_i64(10), Rm::Nearest), Rm::Nearest);
        let take = c_real.cmp_num(&Mpf::from_f64(a)) == Some(std::cmp::Ordering::Greater);
        let real = if take { c_real.mul(&Mpf::from_f64(a), Rm::Nearest) } else { c_real };
        let real_f = real.to_f64(Rm::Nearest);
        assert!(i.contains(real_f), "foo({a},{b}): real {real_f} outside {i}");
    }
}

#[test]
fn fig3_read_sensor_tolerance() {
    let src = r#"
        double read_sensor(double:0.125 a) {
            double c = 5.0 + 0.25t;
            return a + c;
        }
    "#;
    let (_, mut ivl) = pipeline(src, Config::default());
    let r = ivl.call("read_sensor", vec![Value::F64(1.0)]).unwrap().as_interval().unwrap();
    // a ∈ [0.875, 1.125], c ∈ [4.75, 5.25] → result ⊇ [5.625, 6.375].
    assert!(r.lo() <= 5.625 && 6.375 <= r.hi(), "{r}");
    assert!(r.lo() >= 5.62 && r.hi() <= 6.38, "{r}");
}

#[test]
fn fig7_mvm_reduction_end_to_end() {
    let src = r#"
        void mvm(double* A, double* x, double* y) {
            #pragma igen reduce y
            for (int i = 0; i < 4; i++)
                for (int j = 0; j < 8; j++)
                    y[i] = y[i] + A[i*8+j]*x[j];
        }
    "#;
    for reductions in [false, true] {
        let cfg = Config { reductions, ..Config::default() };
        let (mut orig, mut ivl) = pipeline(src, cfg);
        // Deterministic awkward inputs.
        let a: Vec<f64> =
            (0..32).map(|k| 0.1 * (k as f64 + 1.0) * if k % 3 == 0 { -1.0 } else { 1.0 }).collect();
        let x: Vec<f64> = (0..8).map(|k| 1.0 / (k as f64 + 3.0)).collect();
        let y0 = [0.5; 4];

        let (ap, xp, yp) = (orig.alloc_f64(&a), orig.alloc_f64(&x), orig.alloc_f64(&y0));
        orig.call("mvm", vec![ap, xp, yp.clone()]).unwrap();
        let yf = orig.read_f64(&yp, 4);

        let ai: Vec<_> = a.iter().map(|&v| igen_interval::F64I::point(v)).collect();
        let xi: Vec<_> = x.iter().map(|&v| igen_interval::F64I::point(v)).collect();
        let yi: Vec<_> = y0.iter().map(|&v| igen_interval::F64I::point(v)).collect();
        let (ap, xp, yp) =
            (ivl.alloc_interval(&ai), ivl.alloc_interval(&xi), ivl.alloc_interval(&yi));
        ivl.call("mvm", vec![ap, xp, yp.clone()]).unwrap();
        let yv = ivl.read_interval(&yp, 4);

        // The soundness contract is containment of the REAL result (the
        // reduction-transformed interval is tighter than the float run's
        // own rounding error, so the float value may fall outside).
        let mut y_real: Vec<Mpf> = y0.iter().map(|&v| Mpf::from_f64(v)).collect();
        for i in 0..4 {
            for j in 0..8 {
                let t = Mpf::from_f64(a[i * 8 + j]).mul(&Mpf::from_f64(x[j]), Rm::Nearest);
                y_real[i] = y_real[i].add(&t, Rm::Nearest);
            }
        }
        for (k, (r, i)) in y_real.iter().zip(&yv).enumerate() {
            let lo = r.to_f64(Rm::Down);
            let hi = r.to_f64(Rm::Up);
            assert!(
                i.contains(lo) || i.contains(hi),
                "reductions={reductions} y[{k}] real {lo} outside {i}"
            );
        }
        if !reductions {
            // Without the transformation, every op enclosed the float op,
            // so the float run is inside too.
            for (k, (f, i)) in yf.iter().zip(&yv).enumerate() {
                assert!(i.contains(*f), "y[{k}] = {f} outside {i}");
            }
        }
        if reductions {
            // The accumulator keeps the result much tighter than the
            // plain interval loop (compare widths).
            let cfg2 = Config { reductions: false, ..Config::default() };
            let (_, mut plain) = pipeline(src, cfg2);
            let (ap, xp, yp2) =
                (plain.alloc_interval(&ai), plain.alloc_interval(&xi), plain.alloc_interval(&yi));
            plain.call("mvm", vec![ap, xp, yp2.clone()]).unwrap();
            let yp2v = plain.read_interval(&yp2, 4);
            for (t, p) in yv.iter().zip(&yp2v) {
                assert!(t.width() <= p.width(), "transformed wider than plain");
            }
        }
    }
}

#[test]
fn unknown_branch_signals_exception() {
    let src = r#"
        double f(double x) {
            double y = 1.0;
            if (x > 0.0) {
                y = 2.0;
            }
            return y;
        }
    "#;
    let (_, mut ivl) = pipeline(src, Config::default());
    // x = [-1, 1] straddles 0: undecidable.
    let r = ivl.call("f", vec![Value::Interval(igen_interval::F64I::new(-1.0, 1.0).unwrap())]);
    assert_eq!(r.unwrap_err(), RtError::UnknownBranch);
    // Decidable input works.
    let r = ivl
        .call("f", vec![Value::Interval(igen_interval::F64I::point(3.0))])
        .unwrap()
        .as_interval()
        .unwrap();
    assert!(r.contains(2.0));
}

#[test]
fn join_policy_survives_unknown_branch() {
    let src = r#"
        double f(double x) {
            double y = 1.0;
            if (x > 0.0) {
                y = 2.0;
            } else {
                y = 3.0;
            }
            return y;
        }
    "#;
    let cfg = Config { branch_policy: igen_core::BranchPolicy::JoinBranches, ..Config::default() };
    let (_, mut ivl) = pipeline(src, cfg);
    let r = ivl
        .call("f", vec![Value::Interval(igen_interval::F64I::new(-1.0, 1.0).unwrap())])
        .unwrap()
        .as_interval()
        .unwrap();
    // Join of both branches: [2, 3].
    assert!(r.contains(2.0) && r.contains(3.0), "{r}");
    assert!(r.lo() >= 2.0 && r.hi() <= 3.0, "{r}");
}

#[test]
fn henon_map_interval_matches_paper_shape() {
    let src = r#"
        double henon_map(double x, double y, int iterations) {
            double a = 1.05;
            double b = 0.3;
            for (int i = 0; i < iterations; i++) {
                double xi = x;
                double yi = y;
                x = 1 - a*xi*xi + yi;
                y = b*xi;
            }
            return x;
        }
    "#;
    let (mut orig, mut ivl) = pipeline(src, Config::default());
    let f = orig
        .call("henon_map", vec![Value::F64(0.0), Value::F64(0.0), Value::Int(10)])
        .unwrap()
        .as_f64()
        .unwrap();
    let r = ivl
        .call(
            "henon_map",
            vec![
                Value::Interval(igen_interval::F64I::point(0.0)),
                Value::Interval(igen_interval::F64I::point(0.0)),
                Value::Int(10),
            ],
        )
        .unwrap()
        .as_interval()
        .unwrap();
    assert!(r.contains(f), "float {f} outside {r}");
    // Table VI: ~44 bits at 10 iterations for f64i.
    let bits = r.certified_bits();
    assert!(bits > 35.0 && bits < 53.0, "bits = {bits}");
}

#[test]
fn dd_precision_pipeline() {
    let src = r#"
        double dot3(double a0, double a1, double a2, double b0, double b1, double b2) {
            return a0*b0 + a1*b1 + a2*b2;
        }
    "#;
    let cfg = Config { precision: Precision::Dd, ..Config::default() };
    let (mut orig, mut ivl) = pipeline(src, cfg);
    let args_f: Vec<Value> =
        [0.1, 0.2, 0.3, 0.4, 0.5, 0.6].iter().map(|&v| Value::F64(v)).collect();
    let f = orig.call("dot3", args_f).unwrap().as_f64().unwrap();
    let args_i: Vec<Value> = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6]
        .iter()
        .map(|&v| Value::DdInterval(igen_interval::DdI::point_f64(v)))
        .collect();
    let r = ivl.call("dot3", args_i).unwrap().as_ddi().unwrap();
    assert!(r.contains_f64(f) || r.to_f64i().contains(f), "{f} outside {r}");
    // DD certifies the double-precision result (Section VII-A).
    assert!(r.certified_f64().is_some());
    assert!(r.certified_bits() > 100.0);
}

#[test]
fn simd_input_program_end_to_end() {
    let src = r#"
        void axpy4(double* x, double* y, double* out) {
            __m256d vx = _mm256_loadu_pd(x);
            __m256d vy = _mm256_loadu_pd(y);
            __m256d s = _mm256_mul_pd(vx, vy);
            __m256d r = _mm256_add_pd(s, vx);
            _mm256_storeu_pd(out, r);
        }
    "#;
    let (mut orig, mut ivl) = pipeline(src, Config::default());
    let x = [0.1, 0.2, 0.3, 0.4];
    let y = [1.5, -2.5, 3.5, -4.5];
    let (xp, yp, op) = (orig.alloc_f64(&x), orig.alloc_f64(&y), orig.alloc_f64(&[0.0; 4]));
    orig.call("axpy4", vec![xp, yp, op.clone()]).unwrap();
    let of = orig.read_f64(&op, 4);
    // Interval run: Table II maps each f64 lane to one interval (an
    // interval fills one __m128d), so the 4-double arrays become
    // 4-interval arrays and loads/stores move 4 intervals at a time.
    let xi: Vec<_> = x.iter().map(|&v| igen_interval::F64I::point(v)).collect();
    let yi: Vec<_> = y.iter().map(|&v| igen_interval::F64I::point(v)).collect();
    let (xp, yp, op) = (
        ivl.alloc_interval(&xi),
        ivl.alloc_interval(&yi),
        ivl.alloc_interval(&[igen_interval::F64I::ZERO; 4]),
    );
    ivl.call("axpy4", vec![xp, yp, op.clone()]).unwrap();
    let oi = ivl.read_interval(&op, 4);
    for k in 0..4 {
        assert!(oi[k].contains(of[k]), "lane {k}: {} outside {}", of[k], oi[k]);
        assert!(oi[k].certified_bits() > 50.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_straightline_programs_are_sound(
        ops in prop::collection::vec(0u8..6, 1..12),
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
    ) {
        // Build a random straight-line C function over x and y.
        let mut body = String::from("double t = x;\n");
        for (i, op) in ops.iter().enumerate() {
            let rhs = match op {
                0 => "t + y".to_string(),
                1 => "t - 0.1".to_string(),
                2 => "t * y".to_string(),
                3 => "t * 0.5 + 1.25".to_string(),
                4 => "t / 3.0".to_string(),
                _ => format!("t * {}.0", (i % 3) + 1),
            };
            body.push_str(&format!("t = {rhs};\n"));
        }
        let src = format!("double f(double x, double y) {{ {body} return t; }}");
        let (mut orig, mut ivl) = pipeline(&src, Config::default());
        let f = orig
            .call("f", vec![Value::F64(a), Value::F64(b)])
            .unwrap()
            .as_f64()
            .unwrap();
        let r = ivl
            .call("f", vec![
                Value::Interval(igen_interval::F64I::point(a)),
                Value::Interval(igen_interval::F64I::point(b)),
            ])
            .unwrap()
            .as_interval()
            .unwrap();
        prop_assert!(r.contains(f) || f.is_nan(), "f({a},{b}) = {f} outside {r}\n{src}");
        // The REAL-arithmetic evaluation (256-bit oracle) of the same
        // program — the soundness contract for both precisions.
        let mut t_real = Mpf::from_f64(a);
        let y_real = Mpf::from_f64(b);
        let tenth = Mpf::from_i64(1).div(&Mpf::from_i64(10), Rm::Nearest);
        for (i, op) in ops.iter().enumerate() {
            t_real = match op {
                0 => t_real.add(&y_real, Rm::Nearest),
                1 => t_real.sub(&tenth, Rm::Nearest),
                2 => t_real.mul(&y_real, Rm::Nearest),
                3 => t_real
                    .mul(&Mpf::from_f64(0.5), Rm::Nearest)
                    .add(&Mpf::from_f64(1.25), Rm::Nearest),
                4 => t_real.div(&Mpf::from_i64(3), Rm::Nearest),
                _ => t_real.mul(&Mpf::from_i64(((i % 3) + 1) as i64), Rm::Nearest),
            };
        }
        let real_f = t_real.to_f64(Rm::Nearest);
        if real_f.is_finite() {
            prop_assert!(r.contains(real_f), "real {real_f} outside f64i {r}\n{src}");
        }
        // DD pipeline: sound w.r.t. the real result and at least as tight.
        let cfg = Config { precision: Precision::Dd, ..Config::default() };
        let (_, mut ddl) = pipeline(&src, cfg);
        let rd = ddl
            .call("f", vec![
                Value::DdInterval(igen_interval::DdI::point_f64(a)),
                Value::DdInterval(igen_interval::DdI::point_f64(b)),
            ])
            .unwrap()
            .as_ddi()
            .unwrap();
        let rdf = rd.to_f64i();
        if real_f.is_finite() {
            prop_assert!(
                rdf.contains(real_f),
                "real {real_f} outside ddi {rdf}\n{src}"
            );
            prop_assert!(rdf.width() <= r.width() || r.width() == 0.0);
        }
    }

    #[test]
    fn elementary_program_soundness(x in -20.0f64..20.0) {
        let src = "double g(double x) { return sin(x)*sin(x) + cos(x)*cos(x) + exp(x/100.0); }";
        let (mut orig, mut ivl) = pipeline(src, Config::default());
        let f = orig.call("g", vec![Value::F64(x)]).unwrap().as_f64().unwrap();
        let r = ivl
            .call("g", vec![Value::Interval(igen_interval::F64I::point(x))])
            .unwrap()
            .as_interval()
            .unwrap();
        prop_assert!(r.contains(f), "g({x}) = {f} outside {r}");
        prop_assert!(r.width() < 1e-10, "enclosure too wide: {r}");
    }
}
