//! Differential soundness of the single-precision target
//! (`Precision::F32`): interval runs must enclose a true binary32
//! reference run. Each `ia_*_f32` op brackets its correctly-rounded f32
//! result between the directed f32 roundings, so the f32 float execution
//! stays inside the enclosure inductively.

use igen_core::{Compiler, Config, Precision};
use igen_interp::{Interp, Value};
use igen_interval::F32I;
use proptest::prelude::*;

fn f32_cfg() -> Config {
    Config { precision: Precision::F32, ..Config::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn f32_looped_programs_enclose_f32_reference(
        iters in 1usize..15,
        scale in prop_oneof![Just("0.5f"), Just("0.25f"), Just("0.75f")],
        addc in prop_oneof![Just("0.1f"), Just("0.25f"), Just("1.5f")],
        a in -2.0f32..2.0,
    ) {
        let src = format!(
            "float f(float x) {{\n\
             for (int i = 0; i < {iters}; i++) {{\n\
             x = x * {scale} + {addc};\n\
             }}\n\
             return x;\n\
             }}"
        );
        let out = Compiler::new(f32_cfg()).compile_str(&src).expect("compile");
        prop_assert!(out.c_source.contains("ia_mul_f32"), "{}", out.c_source);
        let mut run = Interp::new(&igen_cfront::parse(&out.c_source).expect("reparse"));
        let r = run.call("f", vec![Value::Interval32(F32I::point(a))]).unwrap();
        let Value::Interval32(got) = r else { panic!("{r:?}") };
        // True binary32 reference.
        let s: f32 = scale.trim_end_matches('f').parse().unwrap();
        let c: f32 = addc.trim_end_matches('f').parse().unwrap();
        let mut x = a;
        for _ in 0..iters {
            x = x * s + c;
        }
        prop_assert!(got.contains(x), "f({a}) = {x} outside [{}, {}]\n{src}", got.lo(), got.hi());
        // Contractive maps keep useful precision on the f32 grid.
        prop_assert!(got.certified_bits() > 15.0, "{} bits\n{src}", got.certified_bits());
    }

    #[test]
    fn f32_square_and_power(a in -8.0f32..8.0, n in 2i32..6) {
        let src = format!("float f(float x) {{ return pow(x, {n}); }}");
        let out = Compiler::new(f32_cfg()).compile_str(&src).expect("compile");
        prop_assert!(out.c_source.contains("ia_pow_f32"), "{}", out.c_source);
        let mut run = Interp::new(&igen_cfront::parse(&out.c_source).expect("reparse"));
        let r = run.call("f", vec![Value::Interval32(F32I::point(a))]).unwrap();
        let Value::Interval32(got) = r else { panic!("{r:?}") };
        // The enclosure must contain the real power (computed in f64,
        // well within f64's exact range for these inputs).
        let truth = (a as f64).powi(n);
        prop_assert!(
            got.to_f64i().contains(truth),
            "pow({a}, {n}) = {truth} outside [{}, {}]",
            got.lo(),
            got.hi()
        );
    }
}

#[test]
fn f32_constants_get_f32_grid_enclosures() {
    // 0.1 is inexact in binary32: the constant enclosure must be on the
    // f32 grid (width one f32 ulp), not the much finer f64 grid.
    let out =
        Compiler::new(f32_cfg()).compile_str("float f(float x) { return x + 0.1f; }").unwrap();
    let mut run = Interp::new(&igen_cfront::parse(&out.c_source).unwrap());
    let r = run.call("f", vec![Value::Interval32(F32I::point(0.0))]).unwrap();
    let Value::Interval32(got) = r else { panic!("{r:?}") };
    assert!(got.contains(0.1f32));
    assert!(got.to_f64i().contains(0.1f64), "encloses the real 0.1 too");
    assert!(got.width() <= 2.0 * f32::EPSILON * 0.1, "width {}", got.width());
}
