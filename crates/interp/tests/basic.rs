//! Unit-level interpreter tests: statements, control flow, memory,
//! unions, error handling, and the f32 pipeline.

use igen_core::{Compiler, Config, Precision};
use igen_interp::{Interp, RtError, Value};

fn run1(src: &str, f: &str, args: Vec<Value>) -> Value {
    Interp::from_source(src).unwrap().call(f, args).unwrap()
}

#[test]
fn arithmetic_and_precedence() {
    let v = run1("int f(void) { return 2 + 3 * 4 - 10 / 5; }", "f", vec![]);
    assert_eq!(v, Value::Int(12));
    let v = run1("double g(double x) { return -x * 2.0 + 1.0; }", "g", vec![Value::F64(3.0)]);
    assert_eq!(v, Value::F64(-5.0));
}

#[test]
fn control_flow() {
    let src = r#"
        int collatz_steps(int n) {
            int steps = 0;
            while (n != 1) {
                if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
                steps++;
            }
            return steps;
        }
    "#;
    assert_eq!(run1(src, "collatz_steps", vec![Value::Int(6)]), Value::Int(8));
    assert_eq!(run1(src, "collatz_steps", vec![Value::Int(27)]), Value::Int(111));
}

#[test]
fn break_continue_do_while() {
    let src = r#"
        int f(void) {
            int s = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2 == 0) continue;
                if (i > 10) break;
                s = s + i;
            }
            int j = 0;
            do { s = s + 100; j++; } while (j < 2);
            return s;
        }
    "#;
    // odd i in 1..=9: 1+3+5+7+9 = 25, plus 200.
    assert_eq!(run1(src, "f", vec![]), Value::Int(225));
}

#[test]
fn arrays_pointers_and_functions() {
    let src = r#"
        double sum(double* a, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) s = s + a[i];
            return s;
        }
        double mean(double* a, int n) {
            return sum(a, n) / (double)n;
        }
    "#;
    let mut it = Interp::from_source(src).unwrap();
    let p = it.alloc_f64(&[1.0, 2.0, 3.0, 4.0]);
    let v = it.call("mean", vec![p, Value::Int(4)]).unwrap();
    assert_eq!(v, Value::F64(2.5));
}

#[test]
fn local_array_declaration() {
    let src = r#"
        double f(void) {
            double a[3];
            a[0] = 1.5; a[1] = 2.5; a[2] = -1.0;
            return a[0] + a[1] + a[2];
        }
    "#;
    assert_eq!(run1(src, "f", vec![]), Value::F64(3.0));
}

#[test]
fn ternary_and_casts() {
    let src = "double f(int n) { return n > 0 ? (double)n : -1.0; }";
    assert_eq!(run1(src, "f", vec![Value::Int(5)]), Value::F64(5.0));
    assert_eq!(run1(src, "f", vec![Value::Int(-5)]), Value::F64(-1.0));
}

#[test]
fn runtime_errors() {
    let mut it = Interp::from_source("int f(int n) { return 1 / n; }").unwrap();
    assert!(matches!(it.call("f", vec![Value::Int(0)]), Err(RtError::Type(_))));
    assert!(matches!(it.call("nope", vec![]), Err(RtError::Missing(_))));
    let mut it = Interp::from_source("double f(double* a) { return a[5]; }").unwrap();
    let p = it.alloc_f64(&[1.0, 2.0]);
    assert!(matches!(it.call("f", vec![p]), Err(RtError::Bounds(_))));
}

#[test]
fn step_budget_stops_runaway_loops() {
    let mut it = Interp::from_source("int f(void) { while (1) { } return 0; }").unwrap();
    it.step_budget = 10_000;
    assert_eq!(it.call("f", vec![]), Err(RtError::StepBudget));
}

#[test]
fn f32_target_pipeline() {
    let src = r#"
        double madd(double a, double b, double c) {
            return a * b + c + 0.1;
        }
    "#;
    let cfg = Config { precision: Precision::F32, ..Config::default() };
    let out = Compiler::new(cfg).compile_str(src).unwrap();
    assert!(out.c_source.contains("f32i madd(f32i a, f32i b, f32i c)"), "{}", out.c_source);
    assert!(out.c_source.contains("ia_mul_f32"), "{}", out.c_source);
    let mut it = Interp::new(&igen_cfront::parse(&out.c_source).unwrap());
    let arg = |v: f32| Value::Interval32(igen_interval::F32I::point(v));
    let r = it.call("madd", vec![arg(1.5), arg(2.0), arg(0.25)]).unwrap();
    let Value::Interval32(i) = r else { panic!("{r:?}") };
    // Float-mode reference in f32 arithmetic.
    let truth = 1.5f32 * 2.0 + 0.25 + 0.1;
    assert!(i.contains(truth), "{truth} outside {i}");
    assert!(i.certified_bits() > 20.0, "{}", i.certified_bits());
}

#[test]
fn f32_elementary_and_sqrt() {
    let src = "double f(double x) { return sqrt(x) + sin(x); }";
    let cfg = Config { precision: Precision::F32, ..Config::default() };
    let out = Compiler::new(cfg).compile_str(src).unwrap();
    let mut it = Interp::new(&igen_cfront::parse(&out.c_source).unwrap());
    let r = it.call("f", vec![Value::Interval32(igen_interval::F32I::point(2.0))]).unwrap();
    let Value::Interval32(i) = r else { panic!("{r:?}") };
    let truth = 2.0f64.sqrt() + 2.0f64.sin();
    assert!(i.to_f64i().contains(truth), "{truth} outside {i}");
}

#[test]
fn nested_scopes_shadowing() {
    let src = r#"
        int f(void) {
            int x = 1;
            {
                int x = 2;
                x = x + 1;
            }
            return x;
        }
    "#;
    assert_eq!(run1(src, "f", vec![]), Value::Int(1));
}

#[test]
fn recursion() {
    let src = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }";
    assert_eq!(run1(src, "fib", vec![Value::Int(10)]), Value::Int(55));
}

#[test]
fn pointer_arithmetic() {
    let src = r#"
        double f(double* a) {
            double* p = a + 2;
            return *p + p[1];
        }
    "#;
    let mut it = Interp::from_source(src).unwrap();
    let p = it.alloc_f64(&[0.0, 1.0, 2.0, 3.0]);
    assert_eq!(it.call("f", vec![p]).unwrap(), Value::F64(5.0));
}

#[test]
fn simd_float_mode_roundtrip() {
    let src = r#"
        void scale(double* x, double* out) {
            __m256d v = _mm256_loadu_pd(x);
            __m256d k = _mm256_set1_pd(2.0);
            _mm256_storeu_pd(out, _mm256_mul_pd(v, k));
        }
    "#;
    let mut it = Interp::from_source(src).unwrap();
    let x = it.alloc_f64(&[1.0, 2.0, 3.0, 4.0]);
    let out = it.alloc_f64(&[0.0; 4]);
    it.call("scale", vec![x, out.clone()]).unwrap();
    assert_eq!(it.read_f64(&out, 4), vec![2.0, 4.0, 6.0, 8.0]);
}
