//! End-to-end double-double reduction pipeline: the compiler emits
//! `isum_*_dd` calls (Fig. 7 shape, DD target), the interpreter drives
//! the exact exponent-bucket accumulator, and the result certifies
//! double precision.

use igen_core::{Compiler, Config, Precision};
use igen_interp::Interp;
use igen_interval::DdI;

#[test]
fn dd_mvm_reduction_certifies() {
    let src = r#"
        void mvm(double* A, double* x, double* y) {
            #pragma igen reduce y
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 64; j++)
                    y[i] = y[i] + A[i*64+j]*x[j];
        }
    "#;
    let cfg = Config { precision: Precision::Dd, reductions: true, ..Config::default() };
    let out = Compiler::new(cfg).compile_str(src).unwrap();
    assert!(out.c_source.contains("acc_dd"), "{}", out.c_source);
    assert!(out.c_source.contains("isum_accumulate_dd"), "{}", out.c_source);
    let mut run = Interp::new(&igen_cfront::parse(&out.c_source).unwrap());

    let a: Vec<DdI> =
        (0..192).map(|k| DdI::point_f64(((k * 37 % 101) as f64 - 50.0) * 0.137)).collect();
    let x: Vec<DdI> = (0..64).map(|k| DdI::point_f64(1.0 / (k as f64 + 1.7))).collect();
    let y: Vec<DdI> = vec![DdI::point_f64(0.25); 3];
    let (ap, xp, yp) = (run.alloc_ddi(&a), run.alloc_ddi(&x), run.alloc_ddi(&y));
    run.call("mvm", vec![ap, xp, yp.clone()]).unwrap();
    let out = run.read_ddi(&yp, 3);
    for (i, v) in out.iter().enumerate() {
        assert!(v.certified_bits() > 100.0, "row {i}: {} bits", v.certified_bits());
        assert!(v.certified_f64().is_some(), "row {i} does not certify a double");
    }
    // Compare against a direct dd reference.
    for i in 0..3 {
        let mut r = igen_dd::Dd::from(0.25);
        for j in 0..64 {
            r = r + igen_dd::Dd::from(a[i * 64 + j].hi().to_f64())
                * igen_dd::Dd::from(x[j].hi().to_f64());
        }
        assert!(
            out[i].contains(r) || (out[i].hi() - r).abs().to_f64() < 1e-25,
            "row {i}: ref {r} vs {}",
            out[i]
        );
    }
}

#[test]
fn dd_scalar_reduction_over_two_loops() {
    let src = r#"
        double total(double* A) {
            double s = 0.0;
            #pragma igen reduce s
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++)
                    s = s + A[i*8+j];
            return s;
        }
    "#;
    let cfg = Config { precision: Precision::Dd, reductions: true, ..Config::default() };
    let out = Compiler::new(cfg).compile_str(src).unwrap();
    // Scalar s is carried by BOTH loops: init before the i-loop.
    let idx_init = out.c_source.find("isum_init_dd").unwrap();
    let idx_outer = out.c_source.find("for (int i").unwrap();
    assert!(idx_init < idx_outer, "{}", out.c_source);
    let mut run = Interp::new(&igen_cfront::parse(&out.c_source).unwrap());
    let a: Vec<DdI> = (0..64).map(|k| DdI::point_f64(0.1 * (k as f64 - 31.5))).collect();
    let ap = run.alloc_ddi(&a);
    let v = run.call("total", vec![ap]).unwrap().as_ddi().unwrap();
    // Sum of 0.1*(k-31.5) over k=0..63 = 0.1 * 0 = 0-ish (exact pairing).
    assert!(v.contains_f64(0.0) || v.hi().abs().to_f64() < 1e-12, "{v}");
    assert!(v.certified_bits() > 90.0);
}
