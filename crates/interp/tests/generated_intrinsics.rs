//! The full Fig. 4 loop in user compilations: intrinsics WITHOUT a
//! hand-optimized runtime kernel are lowered to their automatically
//! generated interval implementations, which the compiler appends to the
//! output unit and the interpreter executes like any user function.
#![allow(clippy::needless_range_loop, clippy::type_complexity)] // lane tables read clearer indexed

use igen_core::{Compiler, Config};
use igen_interp::{Interp, Value};
use igen_interval::F64I;

#[test]
fn unknown_intrinsic_is_diagnosed() {
    let src = r#"
        __m256d f(__m256d a) {
            return _mm256_permute_pd(a, 5);
        }
    "#;
    // _mm256_permute_pd is neither hand-optimized nor in the corpus: the
    // compiler must name it in the diagnostic.
    let err = Compiler::new(Config::default()).compile_str(src).unwrap_err();
    assert!(err.to_string().contains("_mm256_permute_pd"), "{err}");
}

#[test]
fn cvtps_pd_uses_generated_implementation() {
    let src = r#"
        __m256d widen(__m128 v) {
            return _mm256_cvtps_pd(v);
        }
    "#;
    let out = Compiler::new(Config::default()).compile_str(src).unwrap();
    // The generated implementation is appended and called.
    assert!(out.c_source.contains("_c_mm256_cvtps_pd(v)"), "{}", out.c_source);
    assert!(out.c_source.contains("m256di_2 _c_mm256_cvtps_pd"), "{}", out.c_source);
    assert!(out.c_source.contains("typedef union"), "{}", out.c_source);

    let mut run = Interp::new(&igen_cfront::parse(&out.c_source).unwrap());
    let lanes: Vec<F64I> =
        [0.5f32, -1.25, 3.0, 0.1].iter().map(|&v| F64I::point(v as f64)).collect();
    let r = run.call("widen", vec![Value::VecInterval(lanes)]).unwrap();
    let Value::VecInterval(got) = r else { panic!("{r:?}") };
    assert_eq!(got.len(), 4);
    for (k, &x) in [0.5f32, -1.25, 3.0, 0.1].iter().enumerate() {
        assert!(got[k].contains(x as f64), "lane {k}: {} outside {}", x, got[k]);
    }
}

#[test]
fn andnot_uses_generated_mask_implementation() {
    let src = r#"
        __m256d select(__m256d mask, __m256d x) {
            return _mm256_andnot_pd(mask, x);
        }
    "#;
    let out = Compiler::new(Config::default()).compile_str(src).unwrap();
    // Bitwise ops on the integer view become endpoint-wise interval mask
    // operations (Section V).
    assert!(out.c_source.contains("ia_and_f64(ia_not_f64("), "{}", out.c_source);
    let mut run = Interp::new(&igen_cfront::parse(&out.c_source).unwrap());
    let ones = F64I::from_neg_lo_hi(f64::from_bits(u64::MAX), f64::from_bits(u64::MAX));
    let zeros = F64I::from_neg_lo_hi(0.0, 0.0);
    let x: Vec<F64I> = [1.5, -2.5, 3.5, -4.5].iter().map(|&v| F64I::point(v)).collect();
    // andnot(mask, x) = (~mask) & x: ones-mask kills, zeros-mask passes.
    let mask = vec![ones, zeros, ones, zeros];
    let r = run.call("select", vec![Value::VecInterval(mask), Value::VecInterval(x)]).unwrap();
    let Value::VecInterval(got) = r else { panic!("{r:?}") };
    assert_eq!((got[0].lo(), got[0].hi()), (0.0, 0.0));
    assert_eq!((got[1].lo(), got[1].hi()), (-2.5, -2.5));
    assert_eq!((got[2].lo(), got[2].hi()), (0.0, 0.0));
    assert_eq!((got[3].lo(), got[3].hi()), (-4.5, -4.5));
}

#[test]
fn hand_optimized_intrinsics_stay_runtime_calls() {
    let src = "__m256d f(__m256d a, __m256d b) { return _mm256_add_pd(a, b); }";
    let out = Compiler::new(Config::default()).compile_str(src).unwrap();
    assert!(out.c_source.contains("ia_mm256_add_pd(a, b)"));
    assert!(!out.c_source.contains("_c_mm256_add_pd"), "{}", out.c_source);
}

#[test]
fn blendv_is_hand_optimized_not_generated() {
    // blendv's generated code is untransformable (raw bit shifts); the
    // compiler must use the hand-optimized runtime kernel.
    assert!(igen_core::hand_optimized("_mm256_blendv_pd"));
    let src = "__m256d f(__m256d m, __m256d a, __m256d b) { return _mm256_blendv_pd(a, b, m); }";
    let out = Compiler::new(Config::default()).compile_str(src).unwrap();
    assert!(out.c_source.contains("ia_mm256_blendv_pd"), "{}", out.c_source);
}

#[test]
fn float_pointer_widening_pipeline_compiles_and_runs() {
    // float* -> __m128 -> __m256d -> double*: loads single precision,
    // widens, stores double — all three intrinsics resolved, two of them
    // via generated implementations (_mm_loadu_ps, _mm256_cvtps_pd).
    let src = r#"
        void widen(float* x, double* out) {
            __m128 v = _mm_loadu_ps(x);
            __m256d d = _mm256_cvtps_pd(v);
            _mm256_storeu_pd(out, d);
        }
    "#;
    let out = Compiler::new(Config::default()).compile_str(src).unwrap();
    assert!(out.c_source.contains("_c_mm_loadu_ps"), "{}", out.c_source);
    assert!(out.c_source.contains("_c_mm256_cvtps_pd"), "{}", out.c_source);
    assert!(out.c_source.contains("ia_mm256_storeu_pd"), "{}", out.c_source);
    assert_eq!(out.intrinsics_used, ["_mm_loadu_ps", "_mm256_cvtps_pd", "_mm256_storeu_pd"]);

    let mut run = Interp::new(&igen_cfront::parse(&out.c_source).unwrap());
    let xs = [0.5f32, -1.25, 3.0, 0.1];
    let src_buf =
        run.alloc_interval(&xs.iter().map(|&v| F64I::point(v as f64)).collect::<Vec<_>>());
    let dst_buf = run.alloc_interval(&[F64I::point(0.0); 4]);
    run.call("widen", vec![src_buf, dst_buf.clone()]).unwrap();
    let got = run.read_interval(&dst_buf, 4);
    for (k, &x) in xs.iter().enumerate() {
        assert!(got[k].contains(x as f64), "lane {k}: {} outside {}", x, got[k]);
    }
}

#[test]
fn generated_ps_division_is_sound() {
    let src = r#"
        __m256 recip(__m256 a, __m256 b) {
            return _mm256_div_ps(a, b);
        }
    "#;
    let out = Compiler::new(Config::default()).compile_str(src).unwrap();
    assert!(out.c_source.contains("_c_mm256_div_ps"), "{}", out.c_source);
    let mut run = Interp::new(&igen_cfront::parse(&out.c_source).unwrap());
    let a: Vec<F64I> = (0..8).map(|i| F64I::point(i as f64 + 1.0)).collect();
    let b: Vec<F64I> = (0..8).map(|i| F64I::point(3.0 - i as f64 * 0.25)).collect();
    let r = run
        .call("recip", vec![Value::VecInterval(a.clone()), Value::VecInterval(b.clone())])
        .unwrap();
    let Value::VecInterval(got) = r else { panic!("{r:?}") };
    assert_eq!(got.len(), 8);
    for i in 0..8 {
        let exact = (i as f64 + 1.0) / (3.0 - i as f64 * 0.25);
        assert!(got[i].contains(exact), "lane {i}: {exact} outside {}", got[i]);
        assert!(got[i].width() < 1e-10, "lane {i} too wide: {}", got[i]);
    }
}

#[test]
fn generated_movedup_duplicates_interval_lanes() {
    let src = "__m256d f(__m256d a) { return _mm256_movedup_pd(a); }";
    let out = Compiler::new(Config::default()).compile_str(src).unwrap();
    assert!(out.c_source.contains("_c_mm256_movedup_pd"), "{}", out.c_source);
    let mut run = Interp::new(&igen_cfront::parse(&out.c_source).unwrap());
    let a: Vec<F64I> = [1.5, -2.5, 3.5, -4.5].iter().map(|&v| F64I::point(v)).collect();
    let r = run.call("f", vec![Value::VecInterval(a)]).unwrap();
    let Value::VecInterval(got) = r else { panic!("{r:?}") };
    let vals: Vec<f64> = got.iter().map(|i| i.hi()).collect();
    assert_eq!(vals, [1.5, 1.5, 3.5, 3.5]);
}
