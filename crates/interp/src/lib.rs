//! `igen-interp`: an interpreter for the IGen C subset.
//!
//! The paper compiles its output with GCC and runs it natively; this
//! workspace has no C compiler in the loop, so this crate *executes* the
//! `igen-cfront` AST directly:
//!
//! * the **original** program runs in float mode (`double` values,
//!   `__m256d` vectors, libm calls);
//! * the **transformed** program runs in interval mode — every `ia_*`,
//!   `isum_*` and `ia_mm*` call is bound one-to-one to the
//!   `igen-interval` runtime.
//!
//! Running both on the same inputs gives the end-to-end differential
//! soundness test of the whole compiler pipeline: the interval result
//! must always enclose the float result (and the oracle's real result).
//!
//! # Example
//!
//! ```
//! use igen_interp::{Interp, Value};
//!
//! let src = "double sq(double x) { return x * x; }";
//! let mut it = Interp::from_source(src).unwrap();
//! let out = it.call("sq", vec![Value::F64(3.0)]).unwrap();
//! assert_eq!(out, Value::F64(9.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builtins;
mod exec;
mod value;

pub use exec::{Interp, RtError};
pub use value::Value;
