//! The evaluator: statement execution, expression evaluation, lvalues,
//! the heap and the call machinery.

use crate::builtins;
use crate::value::Value;
use igen_cfront::{BinOp, Expr, Function, Item, Loc, Stmt, TranslationUnit, Type, UnOp};
use igen_interval::{DdI, SumAcc64, SumAccDd, TBool, F64I};
use std::collections::HashMap;

/// Runtime error.
#[derive(Debug, Clone, PartialEq)]
pub enum RtError {
    /// The paper's default policy for undecidable branches: an exception
    /// is signalled (Fig. 2 "It may signal exception").
    UnknownBranch,
    /// Type confusion or unsupported operation.
    Type(String),
    /// Unknown function or variable.
    Missing(String),
    /// Out-of-bounds heap access.
    Bounds(String),
    /// The configured step budget was exhausted (runaway loop guard).
    StepBudget,
}

impl core::fmt::Display for RtError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RtError::UnknownBranch => {
                write!(f, "interval branch condition is unknown (exception signalled)")
            }
            RtError::Type(m) => write!(f, "type error: {m}"),
            RtError::Missing(m) => write!(f, "unknown symbol: {m}"),
            RtError::Bounds(m) => write!(f, "out-of-bounds access: {m}"),
            RtError::StepBudget => write!(f, "step budget exhausted"),
        }
    }
}

impl std::error::Error for RtError {}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// Resolved assignment target.
enum Place {
    Var(String),
    Heap(usize, i64),
    /// Union lane: variable name holding a [`Value::Union`], lane index.
    UnionLane(Box<Place>, usize),
    /// Union bit view lane (reads/writes f64 lanes as integer bits).
    UnionBits(Box<Place>, usize),
    /// Whole union content from/to a vector value.
    UnionWhole(Box<Place>),
}

/// Width-provenance profiling state. Unlike the VM, whose instruction
/// count is known before execution, the interpreter discovers its sites
/// dynamically: each distinct (source location, operation) pair that
/// performs interval arithmetic is assigned a dense index on first use.
struct ProfState {
    prof: igen_telemetry::UnitProfiler,
    sites: HashMap<(u32, u32, String), usize>,
}

/// Relative width of an interval-valued `Value`, `None` for scalars.
fn value_rel_width(v: &Value) -> Option<f64> {
    let iv = match v {
        Value::Interval(i) => *i,
        Value::Interval32(i) => i.to_f64i(),
        Value::DdInterval(d) => d.to_f64i(),
        _ => return None,
    };
    Some(igen_telemetry::profile::rel_width(iv.lo(), iv.hi()))
}

/// Widest relative width across `vals` (NaN if any interval input has a
/// NaN endpoint; 0.0 when no input carries width).
fn max_rel_width(vals: &[Value]) -> f64 {
    let mut max_in = 0.0_f64;
    for v in vals {
        if let Some(w) = value_rel_width(v) {
            if w.is_nan() {
                return f64::NAN;
            }
            if w > max_in {
                max_in = w;
            }
        }
    }
    max_in
}

/// Mnemonic for an `ia_*` builtin: the `ia_` prefix and precision
/// suffix stripped, so interpreter profile rows line up with the VM's
/// instruction names (`ia_mul_f64` and the `mul` bytecode both say
/// `mul`).
fn ia_mnemonic(name: &str) -> &str {
    let s = name.strip_prefix("ia_").unwrap_or(name);
    s.strip_suffix("_f64")
        .or_else(|| s.strip_suffix("_f32"))
        .or_else(|| s.strip_suffix("_dd"))
        .unwrap_or(s)
}

/// The interpreter: owns the program, a heap of arrays, accumulator
/// stores and the scope stack of the current call.
pub struct Interp {
    functions: HashMap<String, Function>,
    heap: Vec<Vec<Value>>,
    accs64: Vec<SumAcc64>,
    accsdd: Vec<SumAccDd>,
    scopes: Vec<HashMap<String, Value>>,
    steps: u64,
    /// Maximum evaluation steps before aborting (defaults to 200M).
    pub step_budget: u64,
    prof: Option<ProfState>,
}

impl Interp {
    /// Builds an interpreter from a parsed translation unit.
    pub fn new(tu: &TranslationUnit) -> Interp {
        let mut functions = HashMap::new();
        for item in &tu.items {
            if let Item::Function(f) = item {
                if f.body.is_some() {
                    functions.insert(f.name.clone(), f.clone());
                }
            }
        }
        Interp {
            functions,
            heap: Vec::new(),
            accs64: Vec::new(),
            accsdd: Vec::new(),
            scopes: Vec::new(),
            steps: 0,
            step_budget: 200_000_000,
            prof: None,
        }
    }

    /// Parses C source and builds an interpreter.
    ///
    /// # Errors
    ///
    /// Propagates parse errors.
    pub fn from_source(src: &str) -> Result<Interp, igen_cfront::ParseError> {
        Ok(Interp::new(&igen_cfront::parse(src)?))
    }

    /// Merges additional functions (e.g. a transformed unit alongside the
    /// original under different names, or generated intrinsics).
    pub fn add_unit(&mut self, tu: &TranslationUnit) {
        for item in &tu.items {
            if let Item::Function(f) = item {
                if f.body.is_some() {
                    self.functions.insert(f.name.clone(), f.clone());
                }
            }
        }
    }

    /// Drops all heap arrays and accumulators and resets the step
    /// counter, keeping the loaded functions (and any active profile,
    /// which spans calls). Lets one interpreter be reused across many
    /// independent calls (e.g. per-item differential checks) without
    /// cross-item heap growth or budget carry-over.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.accs64.clear();
        self.accsdd.clear();
        self.scopes.clear();
        self.steps = 0;
    }

    /// Begins recording a width-provenance profile under `unit`. Every
    /// interval operation evaluated until [`Interp::profile_finish`] —
    /// `ia_*` builtin calls and direct operators on interval values —
    /// records its execution time and width amplification against its
    /// source location. Inert unless telemetry recording is on; never
    /// changes computed values.
    pub fn profile_start(&mut self, unit: &str) {
        self.prof = Some(ProfState {
            prof: igen_telemetry::UnitProfiler::start(unit, 0),
            sites: HashMap::new(),
        });
    }

    /// Stops profiling and merges the recorded rows into the global
    /// telemetry profile registry. No-op if profiling was never started.
    pub fn profile_finish(&mut self) {
        if let Some(ps) = self.prof.take() {
            ps.prof.finish();
        }
    }

    /// Dense site index for a (location, operation) pair, assigning the
    /// next index (and growing the profiler) on first sight.
    fn prof_site(&mut self, loc: Loc, op: &str) -> usize {
        let ps = self.prof.as_mut().expect("prof_site requires active profiling");
        let next = ps.sites.len();
        let key = (loc.line, loc.col, op.to_string());
        match ps.sites.get(&key) {
            Some(&i) => i,
            None => {
                ps.sites.insert(key, next);
                ps.prof.grow(next + 1);
                ps.prof.set_meta(next, loc.line, loc.col, op);
                next
            }
        }
    }

    /// Allocates a heap array of doubles; returns the pointer value.
    pub fn alloc_f64(&mut self, data: &[f64]) -> Value {
        self.heap.push(data.iter().map(|&v| Value::F64(v)).collect());
        Value::Ptr(self.heap.len() - 1, 0)
    }

    /// Allocates a heap array of intervals.
    pub fn alloc_interval(&mut self, data: &[F64I]) -> Value {
        self.heap.push(data.iter().map(|&v| Value::Interval(v)).collect());
        Value::Ptr(self.heap.len() - 1, 0)
    }

    /// Allocates a heap array of double-double intervals.
    pub fn alloc_ddi(&mut self, data: &[DdI]) -> Value {
        self.heap.push(data.iter().map(|&v| Value::DdInterval(v)).collect());
        Value::Ptr(self.heap.len() - 1, 0)
    }

    /// Reads back a heap array as doubles.
    ///
    /// # Panics
    ///
    /// Panics if the pointer is not a heap pointer or elements are not
    /// doubles.
    pub fn read_f64(&self, ptr: &Value, len: usize) -> Vec<f64> {
        let Value::Ptr(base, off) = ptr else { panic!("not a pointer") };
        (0..len)
            .map(|i| self.heap[*base][(*off + i as i64) as usize].as_f64().expect("double"))
            .collect()
    }

    /// Reads back a heap array as intervals.
    ///
    /// # Panics
    ///
    /// Panics on non-pointers / non-interval elements.
    pub fn read_interval(&self, ptr: &Value, len: usize) -> Vec<F64I> {
        let Value::Ptr(base, off) = ptr else { panic!("not a pointer") };
        (0..len)
            .map(|i| self.heap[*base][(*off + i as i64) as usize].as_interval().expect("interval"))
            .collect()
    }

    /// Reads back a heap array as double-double intervals.
    ///
    /// # Panics
    ///
    /// Panics on non-pointers / incompatible elements.
    pub fn read_ddi(&self, ptr: &Value, len: usize) -> Vec<DdI> {
        let Value::Ptr(base, off) = ptr else { panic!("not a pointer") };
        (0..len)
            .map(|i| self.heap[*base][(*off + i as i64) as usize].as_ddi().expect("ddi"))
            .collect()
    }

    /// Calls a function by name.
    ///
    /// # Errors
    ///
    /// [`RtError`] on runtime failures; notably [`RtError::UnknownBranch`]
    /// when an interval branch condition cannot be decided.
    pub fn call(&mut self, name: &str, args: Vec<Value>) -> Result<Value, RtError> {
        let f =
            self.functions.get(name).cloned().ok_or_else(|| RtError::Missing(name.to_string()))?;
        if f.params.len() != args.len() {
            return Err(RtError::Type(format!(
                "{name}: expected {} arguments, got {}",
                f.params.len(),
                args.len()
            )));
        }
        let mut scope = HashMap::new();
        for (p, a) in f.params.iter().zip(args) {
            scope.insert(p.name.clone(), a);
        }
        let depth = self.scopes.len();
        self.scopes.push(scope);
        let body = f.body.as_ref().expect("definition");
        let result = self.exec_block(body);
        self.scopes.truncate(depth);
        match result? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Unit),
        }
    }

    // --- scopes ---------------------------------------------------------

    fn get_var(&self, name: &str) -> Result<Value, RtError> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name))
            .cloned()
            .ok_or_else(|| RtError::Missing(name.to_string()))
    }

    fn set_var(&mut self, name: &str, v: Value) -> Result<(), RtError> {
        for s in self.scopes.iter_mut().rev() {
            if let Some(slot) = s.get_mut(name) {
                *slot = v;
                return Ok(());
            }
        }
        Err(RtError::Missing(name.to_string()))
    }

    fn declare(&mut self, name: &str, v: Value) {
        self.scopes.last_mut().expect("scope").insert(name.to_string(), v);
    }

    fn tick(&mut self) -> Result<(), RtError> {
        self.steps += 1;
        if self.steps > self.step_budget {
            return Err(RtError::StepBudget);
        }
        Ok(())
    }

    // --- statements -----------------------------------------------------

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<Flow, RtError> {
        self.scopes.push(HashMap::new());
        let mut flow = Flow::Normal;
        for s in stmts {
            flow = self.exec(s)?;
            if !matches!(flow, Flow::Normal) {
                break;
            }
        }
        self.scopes.pop();
        Ok(flow)
    }

    fn exec(&mut self, s: &Stmt) -> Result<Flow, RtError> {
        self.tick()?;
        match s {
            Stmt::Decl(d) => {
                let v = match &d.init {
                    Some(e) => self.eval(e)?,
                    None => self.default_value(&d.ty),
                };
                self.declare(&d.name, v);
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::Block(b) => self.exec_block(b),
            Stmt::If { cond, then_branch, else_branch } => {
                if self.eval_cond(cond)? {
                    self.exec(then_branch)
                } else if let Some(e) = else_branch {
                    self.exec(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::For { init, cond, step, body } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.exec(i)?;
                }
                let flow = loop {
                    self.tick()?;
                    if let Some(c) = cond {
                        if !self.eval_cond(c)? {
                            break Flow::Normal;
                        }
                    }
                    match self.exec(body)? {
                        Flow::Break => break Flow::Normal,
                        Flow::Return(v) => break Flow::Return(v),
                        _ => {}
                    }
                    if let Some(st) = step {
                        self.eval(st)?;
                    }
                };
                self.scopes.pop();
                Ok(flow)
            }
            Stmt::While { cond, body } => loop {
                self.tick()?;
                if !self.eval_cond(cond)? {
                    return Ok(Flow::Normal);
                }
                match self.exec(body)? {
                    Flow::Break => return Ok(Flow::Normal),
                    Flow::Return(v) => return Ok(Flow::Return(v)),
                    _ => {}
                }
            },
            Stmt::DoWhile { body, cond } => loop {
                self.tick()?;
                match self.exec(body)? {
                    Flow::Break => return Ok(Flow::Normal),
                    Flow::Return(v) => return Ok(Flow::Return(v)),
                    _ => {}
                }
                if !self.eval_cond(cond)? {
                    return Ok(Flow::Normal);
                }
            },
            Stmt::Switch { cond, arms } => {
                let v = self.eval(cond)?;
                let Some(n) = v.as_int() else {
                    return Err(RtError::Type(format!("switch on non-integer value {}", v.tag())));
                };
                // Find the matching case (or default), then execute with
                // C fallthrough until a break.
                let start = arms
                    .iter()
                    .position(|a| a.label == Some(n))
                    .or_else(|| arms.iter().position(|a| a.label.is_none()));
                let Some(start) = start else {
                    return Ok(Flow::Normal);
                };
                self.scopes.push(HashMap::new());
                let mut flow = Flow::Normal;
                'arms: for arm in &arms[start..] {
                    for st in &arm.body {
                        match self.exec(st)? {
                            Flow::Break => break 'arms,
                            Flow::Normal => {}
                            other => {
                                flow = other;
                                break 'arms;
                            }
                        }
                    }
                }
                self.scopes.pop();
                Ok(flow)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Value::Unit,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Pragma(_) | Stmt::Empty => Ok(Flow::Normal),
        }
    }

    fn default_value(&mut self, ty: &Type) -> Value {
        match ty {
            Type::Int | Type::UInt | Type::Long | Type::ULong => Value::Int(0),
            Type::Float | Type::Double => Value::F64(0.0),
            Type::Named(n) => match n.as_str() {
                "f64i" => Value::Interval(F64I::ZERO),
                "f32i" => Value::Interval32(igen_interval::F32I::ZERO),
                "ddi" => Value::DdInterval(DdI::ZERO),
                "tbool" => Value::TBool(TBool::Unknown),
                "acc_f64" => Value::Acc64(usize::MAX),
                "acc_dd" => Value::AccDd(usize::MAX),
                "__m128d" => Value::VecF64(vec![0.0; 2]),
                "__m256d" => Value::VecF64(vec![0.0; 4]),
                "__m128" => Value::VecF64(vec![0.0; 4]),
                "__m256" => Value::VecF64(vec![0.0; 8]),
                // m256di_k packs 2k intervals (k __m256d registers,
                // Table II); ddi_k packs k double-double intervals.
                "m256di_1" => Value::VecInterval(vec![F64I::ZERO; 2]),
                "m256di_2" => Value::VecInterval(vec![F64I::ZERO; 4]),
                "m256di_4" => Value::VecInterval(vec![F64I::ZERO; 8]),
                "ddi_2" => Value::VecDdInterval(vec![DdI::ZERO; 2]),
                "ddi_4" => Value::VecDdInterval(vec![DdI::ZERO; 4]),
                "ddi_8" => Value::VecDdInterval(vec![DdI::ZERO; 8]),
                // Union wrappers of the generated intrinsics: lane count
                // from the name.
                "vec128d" => Value::Union(vec![Value::F64(0.0); 2]),
                "vec256d" => Value::Union(vec![Value::F64(0.0); 4]),
                "vec128" => Value::Union(vec![Value::F64(0.0); 4]),
                "vec256" => Value::Union(vec![Value::F64(0.0); 8]),
                _ => Value::Unit,
            },
            Type::Array(inner, Some(n)) => {
                let elem = self.default_value(inner);
                self.heap.push(vec![elem; *n]);
                Value::Ptr(self.heap.len() - 1, 0)
            }
            Type::Ptr(_) | Type::Array(_, None) => Value::Ptr(usize::MAX, 0),
            Type::Void => Value::Unit,
        }
    }

    // --- conditions -----------------------------------------------------

    fn eval_cond(&mut self, e: &Expr) -> Result<bool, RtError> {
        let v = self.eval(e)?;
        match v {
            Value::TBool(t) => t.to_bool().map_err(|_| RtError::UnknownBranch),
            other => other
                .truthy()
                .ok_or_else(|| RtError::Type(format!("condition of type {}", other.tag()))),
        }
    }

    // --- expressions ----------------------------------------------------

    fn eval(&mut self, e: &Expr) -> Result<Value, RtError> {
        self.tick()?;
        match e {
            Expr::IntLit { value, .. } => Ok(Value::Int(*value)),
            Expr::FloatLit { value, .. } => Ok(Value::F64(*value)),
            Expr::Ident(name, _) => self.get_var(name),
            Expr::Unary(op, inner) => self.eval_unary(*op, inner),
            Expr::PostIncDec(inner, inc) => {
                let old = self.eval(inner)?;
                let delta = if *inc { 1 } else { -1 };
                let new = match &old {
                    Value::Int(v) => Value::Int(v + delta),
                    Value::F64(v) => Value::F64(v + delta as f64),
                    other => return Err(RtError::Type(format!("increment of {}", other.tag()))),
                };
                let place = self.resolve_place(inner)?;
                self.store(place, new)?;
                Ok(old)
            }
            Expr::Binary { op, lhs, rhs, loc } => {
                // Short-circuit logicals.
                if *op == BinOp::And {
                    return Ok(Value::Int((self.eval_cond(lhs)? && self.eval_cond(rhs)?) as i64));
                }
                if *op == BinOp::Or {
                    return Ok(Value::Int((self.eval_cond(lhs)? || self.eval_cond(rhs)?) as i64));
                }
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                self.eval_binop_at(*op, l, r, *loc)
            }
            Expr::Assign { op, lhs, rhs, loc } => {
                let rv = self.eval(rhs)?;
                let new = match op.bin_op() {
                    None => rv,
                    Some(bop) => {
                        let old = self.eval(lhs)?;
                        self.eval_binop_at(bop, old, rv, *loc)?
                    }
                };
                let place = self.resolve_place(lhs)?;
                self.store(place, new.clone())?;
                Ok(new)
            }
            Expr::Call { name, args, loc } => self.eval_call(name, args, *loc),
            Expr::Index(base, idx) => {
                let i = self
                    .eval(idx)?
                    .as_int()
                    .ok_or_else(|| RtError::Type("non-integer index".into()))?;
                // Union views: `u.f[i]` is the lane value, `u.i[i]` the
                // lane's bit pattern (Section V's integer array).
                if let Expr::Member { base: ub, field, .. } = &**base {
                    if field == "f" || field == "i" {
                        let u = self.eval(ub)?;
                        let Value::Union(lanes) = u else {
                            return Err(RtError::Type(format!("lane access on {}", u.tag())));
                        };
                        let lane = lanes
                            .get(i as usize)
                            .cloned()
                            .ok_or_else(|| RtError::Bounds(format!("union lane {i}")))?;
                        return if field == "i" {
                            match lane {
                                Value::F64(f) => Ok(Value::Int(f.to_bits() as i64)),
                                Value::Int(b) => Ok(Value::Int(b)),
                                other => Err(RtError::Type(format!("bit view of {}", other.tag()))),
                            }
                        } else {
                            Ok(lane)
                        };
                    }
                }
                let b = self.eval(base)?;
                match b {
                    Value::Ptr(obj, off) => self.heap_load(obj, off + i),
                    Value::Union(lanes) => lanes
                        .get(i as usize)
                        .cloned()
                        .ok_or_else(|| RtError::Bounds(format!("union lane {i}"))),
                    other => Err(RtError::Type(format!("indexing {}", other.tag()))),
                }
            }
            Expr::Member { base, field, .. } => {
                let b = self.eval(base)?;
                let Value::Union(lanes) = b else {
                    return Err(RtError::Type(format!("member access on {}", b.tag())));
                };
                match field.as_str() {
                    "v" => Ok(union_whole(&lanes)),
                    // `.f` / `.i` without an index: the enclosing Index
                    // expression extracts the lane; return the union so
                    // Index sees it.
                    "f" | "i" => Ok(Value::Union(lanes)),
                    other => Err(RtError::Missing(format!("union field {other}"))),
                }
            }
            Expr::Cast(ty, inner) => {
                let v = self.eval(inner)?;
                match (ty, v) {
                    (Type::Double | Type::Float, Value::Int(i)) => Ok(Value::F64(i as f64)),
                    (Type::Double, Value::F64(f)) => Ok(Value::F64(f)),
                    (Type::Float, Value::F64(f)) => Ok(Value::F64(f as f32 as f64)),
                    (Type::Int | Type::Long, Value::F64(f)) => Ok(Value::Int(f as i64)),
                    (Type::Int | Type::Long, Value::Int(i)) => Ok(Value::Int(i)),
                    (_, v) => Ok(v), // pointer casts etc.: transparent
                }
            }
            Expr::Cond(c, t, f) => {
                if self.eval_cond(c)? {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
        }
    }

    fn eval_unary(&mut self, op: UnOp, inner: &Expr) -> Result<Value, RtError> {
        match op {
            UnOp::Addr => {
                // Only used for accumulator arguments (&acc) and array
                // element pointers; represented as the place itself.
                match inner {
                    Expr::Ident(name, _) => Ok(self.get_var(name)?),
                    Expr::Index(base, idx) => {
                        let b = self.eval(base)?;
                        let i = self
                            .eval(idx)?
                            .as_int()
                            .ok_or_else(|| RtError::Type("non-integer index".into()))?;
                        match b {
                            Value::Ptr(obj, off) => Ok(Value::Ptr(obj, off + i)),
                            other => Err(RtError::Type(format!("&x[] on {}", other.tag()))),
                        }
                    }
                    _ => Err(RtError::Type("unsupported address-of".into())),
                }
            }
            UnOp::Deref => {
                let v = self.eval(inner)?;
                match v {
                    Value::Ptr(obj, off) => self.heap_load(obj, off),
                    other => Err(RtError::Type(format!("deref of {}", other.tag()))),
                }
            }
            UnOp::PreInc | UnOp::PreDec => {
                let old = self.eval(inner)?;
                let delta = if op == UnOp::PreInc { 1 } else { -1 };
                let new = match old {
                    Value::Int(v) => Value::Int(v + delta),
                    other => return Err(RtError::Type(format!("++ on {}", other.tag()))),
                };
                let place = self.resolve_place(inner)?;
                self.store(place, new.clone())?;
                Ok(new)
            }
            _ => {
                let v = self.eval(inner)?;
                match (op, v) {
                    (UnOp::Neg, Value::Int(i)) => Ok(Value::Int(-i)),
                    (UnOp::Neg, Value::F64(f)) => Ok(Value::F64(-f)),
                    (UnOp::Neg, Value::Interval(i)) => Ok(Value::Interval(-i)),
                    (UnOp::Neg, Value::Interval32(i)) => Ok(Value::Interval32(-i)),
                    (UnOp::Neg, Value::DdInterval(i)) => Ok(Value::DdInterval(-i)),
                    (UnOp::Plus, v) => Ok(v),
                    (UnOp::Not, Value::Int(i)) => Ok(Value::Int((i == 0) as i64)),
                    (UnOp::Not, Value::TBool(t)) => Ok(Value::TBool(t.not())),
                    (UnOp::BitNot, Value::Int(i)) => Ok(Value::Int(!i)),
                    (o, v) => Err(RtError::Type(format!("{o:?} on {}", v.tag()))),
                }
            }
        }
    }

    /// [`Interp::eval_binop`] with a source location, recording a
    /// profile sample when profiling is on and the operands carry
    /// intervals (direct operator arithmetic on interval values).
    fn eval_binop_at(&mut self, op: BinOp, l: Value, r: Value, loc: Loc) -> Result<Value, RtError> {
        use BinOp::*;
        let interval_args =
            matches!(l, Value::Interval(_) | Value::Interval32(_) | Value::DdInterval(_))
                || matches!(r, Value::Interval(_) | Value::Interval32(_) | Value::DdInterval(_));
        if self.prof.is_none() || !interval_args || !matches!(op, Add | Sub | Mul | Div) {
            return self.eval_binop(op, l, r);
        }
        let wl = value_rel_width(&l).unwrap_or(0.0);
        let wr = value_rel_width(&r).unwrap_or(0.0);
        let max_in = if wl.is_nan() || wr.is_nan() { f64::NAN } else { wl.max(wr) };
        let op_name = match op {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            _ => unreachable!(),
        };
        let site = self.prof_site(loc, op_name);
        let ps = self.prof.as_ref().expect("profiling active");
        let t0 = ps.prof.now_ns();
        let out = self.eval_binop(op, l, r)?;
        if let Some(ps) = self.prof.as_mut() {
            let dt = ps.prof.now_ns().saturating_sub(t0);
            ps.prof.add_time(site, dt);
            if let Some(out_rel) = value_rel_width(&out) {
                ps.prof.add_sample(site, max_in, out_rel);
            }
        }
        Ok(out)
    }

    fn eval_binop(&mut self, op: BinOp, l: Value, r: Value) -> Result<Value, RtError> {
        use BinOp::*;
        // Interval arithmetic via operators happens when kernels are
        // interpreted directly on interval values.
        if matches!(l, Value::Interval(_)) || matches!(r, Value::Interval(_)) {
            if let (Some(a), Some(b)) = (l.as_interval(), r.as_interval()) {
                return builtins::interval_binop(op, a, b);
            }
        }
        if matches!(l, Value::DdInterval(_)) || matches!(r, Value::DdInterval(_)) {
            if let (Some(a), Some(b)) = (l.as_ddi(), r.as_ddi()) {
                return builtins::ddi_binop(op, a, b);
            }
        }
        match (op, &l, &r) {
            (_, Value::Int(a), Value::Int(b)) => {
                let (a, b) = (*a, *b);
                Ok(match op {
                    Add => Value::Int(a.wrapping_add(b)),
                    Sub => Value::Int(a.wrapping_sub(b)),
                    Mul => Value::Int(a.wrapping_mul(b)),
                    Div => {
                        if b == 0 {
                            return Err(RtError::Type("integer division by zero".into()));
                        }
                        Value::Int(a / b)
                    }
                    Rem => {
                        if b == 0 {
                            return Err(RtError::Type("integer remainder by zero".into()));
                        }
                        Value::Int(a % b)
                    }
                    Shl => Value::Int(a.wrapping_shl(b as u32)),
                    Shr => Value::Int(((a as u64) >> (b as u32 & 63)) as i64),
                    BitAnd => Value::Int(a & b),
                    BitOr => Value::Int(a | b),
                    BitXor => Value::Int(a ^ b),
                    Lt => Value::Int((a < b) as i64),
                    Le => Value::Int((a <= b) as i64),
                    Gt => Value::Int((a > b) as i64),
                    Ge => Value::Int((a >= b) as i64),
                    Eq => Value::Int((a == b) as i64),
                    Ne => Value::Int((a != b) as i64),
                    And | Or => unreachable!("short-circuited"),
                })
            }
            (_, _, _) if l.as_f64().is_some() && r.as_f64().is_some() => {
                let (a, b) = (l.as_f64().unwrap(), r.as_f64().unwrap());
                Ok(match op {
                    Add => Value::F64(a + b),
                    Sub => Value::F64(a - b),
                    Mul => Value::F64(a * b),
                    Div => Value::F64(a / b),
                    Lt => Value::Int((a < b) as i64),
                    Le => Value::Int((a <= b) as i64),
                    Gt => Value::Int((a > b) as i64),
                    Ge => Value::Int((a >= b) as i64),
                    Eq => Value::Int((a == b) as i64),
                    Ne => Value::Int((a != b) as i64),
                    Rem => Value::F64(a % b),
                    other => return Err(RtError::Type(format!("{other:?} on doubles"))),
                })
            }
            (Add | Sub, Value::Ptr(obj, off), Value::Int(i)) => {
                let delta = if op == Add { *i } else { -*i };
                Ok(Value::Ptr(*obj, off + delta))
            }
            _ => Err(RtError::Type(format!("{op:?} on {} and {}", l.tag(), r.tag()))),
        }
    }

    fn eval_call(&mut self, name: &str, args: &[Expr], loc: Loc) -> Result<Value, RtError> {
        // Accumulator builtins take their first argument by address.
        if let Some(v) = builtins::try_accumulator_call(self, name, args)? {
            return Ok(v);
        }
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            // `&x` arguments to non-accumulator calls resolve to the
            // pointed-at value (pointers are first-class here).
            vals.push(self.eval(a)?);
        }
        // Profile `ia_*` builtins: in a transformed unit these ARE the
        // interval operations, and the call carries the source location
        // of the expression it replaced.
        if self.prof.is_some() && name.starts_with("ia_") {
            let max_in = max_rel_width(&vals);
            let site = self.prof_site(loc, ia_mnemonic(name));
            let t0 = self.prof.as_ref().expect("profiling active").prof.now_ns();
            if let Some(v) = builtins::try_builtin(self, name, &vals)? {
                if let Some(ps) = self.prof.as_mut() {
                    let dt = ps.prof.now_ns().saturating_sub(t0);
                    ps.prof.add_time(site, dt);
                    if let Some(out_rel) = value_rel_width(&v) {
                        ps.prof.add_sample(site, max_in, out_rel);
                    }
                }
                return Ok(v);
            }
        } else if let Some(v) = builtins::try_builtin(self, name, &vals)? {
            return Ok(v);
        }
        if self.functions.contains_key(name) {
            return self.call(name, vals);
        }
        Err(RtError::Missing(format!("function {name}")))
    }

    // --- heap & places ---------------------------------------------------

    pub(crate) fn heap_load(&self, obj: usize, idx: i64) -> Result<Value, RtError> {
        let arr = self.heap.get(obj).ok_or_else(|| RtError::Bounds(format!("object {obj}")))?;
        if idx < 0 || idx as usize >= arr.len() {
            return Err(RtError::Bounds(format!("index {idx} of {} elements", arr.len())));
        }
        Ok(arr[idx as usize].clone())
    }

    pub(crate) fn heap_store(&mut self, obj: usize, idx: i64, v: Value) -> Result<(), RtError> {
        let arr = self.heap.get_mut(obj).ok_or_else(|| RtError::Bounds(format!("object {obj}")))?;
        if idx < 0 || idx as usize >= arr.len() {
            return Err(RtError::Bounds(format!("index {idx} of {} elements", arr.len())));
        }
        arr[idx as usize] = v;
        Ok(())
    }

    fn resolve_place(&mut self, e: &Expr) -> Result<Place, RtError> {
        match e {
            Expr::Ident(name, _) => Ok(Place::Var(name.clone())),
            Expr::Index(base, idx) => {
                let i = self
                    .eval(idx)?
                    .as_int()
                    .ok_or_else(|| RtError::Type("non-integer index".into()))?;
                // `u.f[i]` / `u.i[i]`: member then index.
                if let Expr::Member { base: ub, field, .. } = &**base {
                    let inner = self.resolve_place(ub)?;
                    return match field.as_str() {
                        "f" => Ok(Place::UnionLane(Box::new(inner), i as usize)),
                        "i" => Ok(Place::UnionBits(Box::new(inner), i as usize)),
                        other => Err(RtError::Missing(format!("union field {other}"))),
                    };
                }
                let b = self.eval(base)?;
                match b {
                    Value::Ptr(obj, off) => Ok(Place::Heap(obj, off + i)),
                    _ => Err(RtError::Type(format!("assignment into {}", b.tag()))),
                }
            }
            Expr::Member { base, field, .. } => {
                let inner = self.resolve_place(base)?;
                match field.as_str() {
                    "v" => Ok(Place::UnionWhole(Box::new(inner))),
                    other => Err(RtError::Missing(format!("union field {other}"))),
                }
            }
            Expr::Unary(UnOp::Deref, inner) => {
                let v = self.eval(inner)?;
                match v {
                    Value::Ptr(obj, off) => Ok(Place::Heap(obj, off)),
                    other => Err(RtError::Type(format!("deref-assign of {}", other.tag()))),
                }
            }
            _ => Err(RtError::Type("unsupported assignment target".into())),
        }
    }

    fn load_place(&mut self, p: &Place) -> Result<Value, RtError> {
        match p {
            Place::Var(n) => self.get_var(n),
            Place::Heap(o, i) => self.heap_load(*o, *i),
            Place::UnionLane(inner, i) => {
                let v = self.load_place(inner)?;
                let Value::Union(lanes) = v else {
                    return Err(RtError::Type("lane access on non-union".into()));
                };
                lanes.get(*i).cloned().ok_or_else(|| RtError::Bounds(format!("lane {i}")))
            }
            Place::UnionBits(inner, i) => {
                let v = self.load_place(inner)?;
                let Value::Union(lanes) = v else {
                    return Err(RtError::Type("lane access on non-union".into()));
                };
                match lanes.get(*i) {
                    Some(Value::F64(f)) => Ok(Value::Int(f.to_bits() as i64)),
                    Some(Value::Int(b)) => Ok(Value::Int(*b)),
                    Some(other) => Err(RtError::Type(format!("bit view of {}", other.tag()))),
                    None => Err(RtError::Bounds(format!("lane {i}"))),
                }
            }
            Place::UnionWhole(inner) => {
                let v = self.load_place(inner)?;
                let Value::Union(lanes) = v else {
                    return Err(RtError::Type("`.v` on non-union".into()));
                };
                Ok(union_whole(&lanes))
            }
        }
    }

    fn store(&mut self, p: Place, v: Value) -> Result<(), RtError> {
        match p {
            Place::Var(n) => {
                // Declare-on-assign never happens (decls precede); mutate.
                self.set_var(&n, v)
            }
            Place::Heap(o, i) => self.heap_store(o, i, v),
            Place::UnionLane(inner, i) => {
                let mut u = self.load_place(&inner)?;
                {
                    let Value::Union(lanes) = &mut u else {
                        return Err(RtError::Type("lane store on non-union".into()));
                    };
                    if i >= lanes.len() {
                        return Err(RtError::Bounds(format!("lane {i}")));
                    }
                    lanes[i] = v;
                }
                self.store(*inner, u)
            }
            Place::UnionBits(inner, i) => {
                let mut u = self.load_place(&inner)?;
                {
                    let Value::Union(lanes) = &mut u else {
                        return Err(RtError::Type("bit store on non-union".into()));
                    };
                    if i >= lanes.len() {
                        return Err(RtError::Bounds(format!("lane {i}")));
                    }
                    let bits = v
                        .as_int()
                        .ok_or_else(|| RtError::Type("bit store of non-integer".into()))?;
                    lanes[i] = Value::F64(f64::from_bits(bits as u64));
                }
                self.store(*inner, u)
            }
            Place::UnionWhole(inner) => {
                let mut u = self.load_place(&inner)?;
                {
                    let Value::Union(lanes) = &mut u else {
                        return Err(RtError::Type("`.v` store on non-union".into()));
                    };
                    match v {
                        Value::VecF64(xs) => {
                            if xs.len() != lanes.len() {
                                return Err(RtError::Type("vector width mismatch".into()));
                            }
                            for (l, x) in lanes.iter_mut().zip(xs) {
                                *l = Value::F64(x);
                            }
                        }
                        Value::VecInterval(xs) => {
                            if xs.len() != lanes.len() {
                                return Err(RtError::Type("vector width mismatch".into()));
                            }
                            for (l, x) in lanes.iter_mut().zip(xs) {
                                *l = Value::Interval(x);
                            }
                        }
                        other => {
                            return Err(RtError::Type(format!("`.v` store of {}", other.tag())))
                        }
                    }
                }
                self.store(*inner, u)
            }
        }
    }

    // Accessors used by the builtin module.
    pub(crate) fn acc64_mut(&mut self) -> &mut Vec<SumAcc64> {
        &mut self.accs64
    }

    pub(crate) fn accdd_mut(&mut self) -> &mut Vec<SumAccDd> {
        &mut self.accsdd
    }

    pub(crate) fn var_value(&self, name: &str) -> Result<Value, RtError> {
        self.get_var(name)
    }

    pub(crate) fn var_set(&mut self, name: &str, v: Value) -> Result<(), RtError> {
        self.set_var(name, v)
    }

    pub(crate) fn eval_pub(&mut self, e: &Expr) -> Result<Value, RtError> {
        self.eval(e)
    }
}

/// The `.v` view of a union's lanes.
fn union_whole(lanes: &[Value]) -> Value {
    if lanes.iter().all(|l| matches!(l, Value::F64(_))) {
        Value::VecF64(lanes.iter().map(|l| l.as_f64().unwrap()).collect())
    } else if lanes.iter().all(|l| matches!(l, Value::Interval(_))) {
        Value::VecInterval(lanes.iter().map(|l| l.as_interval().unwrap()).collect())
    } else {
        // Mixed or default-initialized: treat as doubles.
        Value::VecF64(lanes.iter().map(|l| l.as_f64().unwrap_or(0.0)).collect())
    }
}
