//! Runtime values of the interpreter.

use igen_interval::{DdI, TBool, F64I};

/// A runtime value.
///
/// The same interpreter executes the *original* program (values are
/// [`Value::F64`], [`Value::VecF64`]…) and the IGen-*transformed* program
/// (values are [`Value::Interval`], [`Value::DdInterval`],
/// [`Value::VecInterval`]…), which is what enables end-to-end
/// differential soundness testing of the compiler.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Binary64 (float-mode program).
    F64(f64),
    /// Double-precision interval (`f64i`).
    Interval(F64I),
    /// Single-precision interval (`f32i`).
    Interval32(igen_interval::F32I),
    /// Double-double interval (`ddi`).
    DdInterval(DdI),
    /// Three-valued boolean (`tbool`).
    TBool(TBool),
    /// Pointer into the interpreter heap: `(object id, element offset)`.
    Ptr(usize, i64),
    /// A SIMD vector of doubles (`__m128d`/`__m256d` in float mode).
    VecF64(Vec<f64>),
    /// A packed interval vector (`m256di_k` / `ddi_k`).
    VecInterval(Vec<F64I>),
    /// A packed double-double interval vector.
    VecDdInterval(Vec<DdI>),
    /// A union-wrapped vector object (the `vec256d` locals of generated
    /// intrinsic implementations): lanes are elements, accessible as
    /// `.v` (whole), `.f[i]` (element) and `.i[i]` (bit view).
    Union(Vec<Value>),
    /// A reduction accumulator handle (`acc_f64`): index into the
    /// interpreter's accumulator store; `usize::MAX` = uninitialized.
    Acc64(usize),
    /// A double-double accumulator handle (`acc_dd`).
    AccDd(usize),
    /// No value (void).
    Unit,
}

impl Value {
    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// f64 view (ints promote).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Interval view (f64 and ints become points — used when mixing
    /// modes is convenient in tests).
    pub fn as_interval(&self) -> Option<F64I> {
        match self {
            Value::Interval(i) => Some(*i),
            Value::Interval32(i) => Some(i.to_f64i()),
            Value::F64(v) => Some(F64I::point(*v)),
            Value::Int(v) => Some(F64I::point(*v as f64)),
            _ => None,
        }
    }

    /// Double-double interval view.
    pub fn as_ddi(&self) -> Option<DdI> {
        match self {
            Value::DdInterval(i) => Some(*i),
            Value::Interval(i) => Some(DdI::from_f64i(i)),
            Value::F64(v) => Some(DdI::point_f64(*v)),
            Value::Int(v) => Some(DdI::point_f64(*v as f64)),
            _ => None,
        }
    }

    /// Truthiness for C conditions (integers and tbool conversions are
    /// handled by the evaluator; this is the final plain test).
    pub fn truthy(&self) -> Option<bool> {
        match self {
            Value::Int(v) => Some(*v != 0),
            Value::F64(v) => Some(*v != 0.0),
            _ => None,
        }
    }

    /// A short type tag for error messages.
    pub fn tag(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::F64(_) => "double",
            Value::Interval(_) => "f64i",
            Value::Interval32(_) => "f32i",
            Value::DdInterval(_) => "ddi",
            Value::TBool(_) => "tbool",
            Value::Ptr(..) => "pointer",
            Value::VecF64(_) => "simd vector",
            Value::VecInterval(_) => "interval vector",
            Value::VecDdInterval(_) => "ddi vector",
            Value::Union(_) => "union",
            Value::Acc64(_) => "acc_f64",
            Value::AccDd(_) => "acc_dd",
            Value::Unit => "void",
        }
    }
}
