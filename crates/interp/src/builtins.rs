//! Builtin bindings: libm and SIMD intrinsics for float-mode programs,
//! and the whole `ia_*` / `isum_*` runtime (backed by `igen-interval`)
//! for transformed programs.

use crate::exec::{Interp, RtError};
use crate::value::Value;
use igen_cfront::{BinOp, Expr, UnOp};
use igen_interval::{capi, DdI, SumAcc64, SumAccDd, TBool, F32I, F64I};

/// Width histogram of every interval produced by an interpreted
/// arithmetic operator (recorded only while a telemetry trace is on).
static WIDTH_OPS: igen_telemetry::WidthHist = igen_telemetry::WidthHist::new("width.interp.ops");

/// Records an arithmetic result's width and wraps it (inert without the
/// `telemetry` feature or outside an active trace).
#[inline]
fn record_interval(v: F64I) -> Value {
    if igen_telemetry::recording() {
        WIDTH_OPS.record(v.lo(), v.hi());
    }
    Value::Interval(v)
}

/// Interval semantics of a C binary operator (used when kernels are
/// interpreted directly over interval values).
pub fn interval_binop(op: BinOp, a: F64I, b: F64I) -> Result<Value, RtError> {
    Ok(match op {
        BinOp::Add => record_interval(a + b),
        BinOp::Sub => record_interval(a - b),
        BinOp::Mul => record_interval(a * b),
        BinOp::Div => record_interval(a / b),
        BinOp::Lt => Value::TBool(a.cmp_lt(&b)),
        BinOp::Le => Value::TBool(a.cmp_le(&b)),
        BinOp::Gt => Value::TBool(a.cmp_gt(&b)),
        BinOp::Ge => Value::TBool(a.cmp_ge(&b)),
        BinOp::Eq => Value::TBool(a.cmp_eq(&b)),
        BinOp::Ne => Value::TBool(a.cmp_ne(&b)),
        other => return Err(RtError::Type(format!("{other:?} on intervals"))),
    })
}

/// Double-double interval semantics of a C binary operator.
pub fn ddi_binop(op: BinOp, a: DdI, b: DdI) -> Result<Value, RtError> {
    Ok(match op {
        BinOp::Add => Value::DdInterval(a + b),
        BinOp::Sub => Value::DdInterval(a - b),
        BinOp::Mul => Value::DdInterval(a * b),
        BinOp::Div => Value::DdInterval(a / b),
        BinOp::Lt => Value::TBool(a.cmp_lt(&b)),
        BinOp::Gt => Value::TBool(a.cmp_gt(&b)),
        other => return Err(RtError::Type(format!("{other:?} on ddi"))),
    })
}

fn want_f32i(v: &Value) -> Result<F32I, RtError> {
    match v {
        Value::Interval32(i) => Ok(*i),
        Value::F64(x) => Ok(F32I::point(*x as f32)),
        Value::Int(x) => Ok(F32I::point(*x as f32)),
        other => Err(RtError::Type(format!("expected f32i, got {}", other.tag()))),
    }
}

fn want_interval(v: &Value) -> Result<F64I, RtError> {
    v.as_interval().ok_or_else(|| RtError::Type(format!("expected f64i, got {}", v.tag())))
}

fn want_ddi(v: &Value) -> Result<DdI, RtError> {
    v.as_ddi().ok_or_else(|| RtError::Type(format!("expected ddi, got {}", v.tag())))
}

fn want_f64(v: &Value) -> Result<f64, RtError> {
    v.as_f64().ok_or_else(|| RtError::Type(format!("expected double, got {}", v.tag())))
}

fn want_int(v: &Value) -> Result<i64, RtError> {
    v.as_int().ok_or_else(|| RtError::Type(format!("expected int, got {}", v.tag())))
}

fn want_tbool(v: &Value) -> Result<TBool, RtError> {
    match v {
        Value::TBool(t) => Ok(*t),
        other => Err(RtError::Type(format!("expected tbool, got {}", other.tag()))),
    }
}

fn want_vecf(v: &Value) -> Result<Vec<f64>, RtError> {
    match v {
        Value::VecF64(x) => Ok(x.clone()),
        other => Err(RtError::Type(format!("expected simd vector, got {}", other.tag()))),
    }
}

fn want_veci(v: &Value) -> Result<Vec<F64I>, RtError> {
    match v {
        Value::VecInterval(x) => Ok(x.clone()),
        other => Err(RtError::Type(format!("expected interval vector, got {}", other.tag()))),
    }
}

/// Accumulator calls need by-reference first arguments; handled before
/// ordinary evaluation.
pub fn try_accumulator_call(
    it: &mut Interp,
    name: &str,
    args: &[Expr],
) -> Result<Option<Value>, RtError> {
    if !name.starts_with("isum_") {
        return Ok(None);
    }
    let var = match args.first() {
        Some(Expr::Unary(UnOp::Addr, inner)) => match &**inner {
            Expr::Ident(n, _) => n.clone(),
            _ => return Err(RtError::Type("isum_* expects &accumulator".into())),
        },
        _ => return Err(RtError::Type("isum_* expects &accumulator".into())),
    };
    match name {
        "isum_init_f64" => {
            let init = want_interval(&it.eval_pub(&args[1])?)?;
            let idx = {
                let store = it.acc64_mut();
                store.push(SumAcc64::new(init));
                store.len() - 1
            };
            it.var_set(&var, Value::Acc64(idx))?;
            Ok(Some(Value::Unit))
        }
        "isum_accumulate_f64" => {
            let term = want_interval(&it.eval_pub(&args[1])?)?;
            let Value::Acc64(idx) = it.var_value(&var)? else {
                return Err(RtError::Type("accumulator not initialized".into()));
            };
            it.acc64_mut()[idx].accumulate(&term);
            Ok(Some(Value::Unit))
        }
        "isum_reduce_f64" => {
            let Value::Acc64(idx) = it.var_value(&var)? else {
                return Err(RtError::Type("accumulator not initialized".into()));
            };
            let r = it.acc64_mut()[idx].reduce();
            Ok(Some(Value::Interval(r)))
        }
        "isum_init_dd" => {
            let init = want_ddi(&it.eval_pub(&args[1])?)?;
            let idx = {
                let store = it.accdd_mut();
                store.push(SumAccDd::new(init));
                store.len() - 1
            };
            it.var_set(&var, Value::AccDd(idx))?;
            Ok(Some(Value::Unit))
        }
        "isum_accumulate_dd" => {
            let term = want_ddi(&it.eval_pub(&args[1])?)?;
            let Value::AccDd(idx) = it.var_value(&var)? else {
                return Err(RtError::Type("accumulator not initialized".into()));
            };
            it.accdd_mut()[idx].accumulate(&term);
            Ok(Some(Value::Unit))
        }
        "isum_reduce_dd" => {
            let Value::AccDd(idx) = it.var_value(&var)? else {
                return Err(RtError::Type("accumulator not initialized".into()));
            };
            let r = it.accdd_mut()[idx].reduce();
            Ok(Some(Value::DdInterval(r)))
        }
        other => Err(RtError::Missing(format!("accumulator function {other}"))),
    }
}

/// Dispatch table for value-level builtins. Returns `Ok(None)` when the
/// name is not a builtin (so user functions take over).
pub fn try_builtin(it: &mut Interp, name: &str, vals: &[Value]) -> Result<Option<Value>, RtError> {
    // --- interval runtime: f64i ---------------------------------------
    let v = match name {
        "ia_set_f64" => Value::Interval(capi::ia_set_f64(want_f64(&vals[0])?, want_f64(&vals[1])?)),
        "ia_set_tol_f64" => {
            Value::Interval(capi::ia_set_tol_f64(want_f64(&vals[0])?, want_f64(&vals[1])?))
        }
        "ia_set_int_f64" => Value::Interval(capi::ia_set_int_f64(want_int(&vals[0])?)),
        "ia_add_f64" => Value::Interval(want_interval(&vals[0])? + want_interval(&vals[1])?),
        "ia_sub_f64" => Value::Interval(want_interval(&vals[0])? - want_interval(&vals[1])?),
        "ia_mul_f64" => Value::Interval(want_interval(&vals[0])? * want_interval(&vals[1])?),
        "ia_div_f64" => Value::Interval(want_interval(&vals[0])? / want_interval(&vals[1])?),
        "ia_neg_f64" => Value::Interval(-want_interval(&vals[0])?),
        "ia_abs_f64" => Value::Interval(want_interval(&vals[0])?.abs()),
        "ia_sqrt_f64" => Value::Interval(want_interval(&vals[0])?.sqrt()),
        "ia_floor_f64" => Value::Interval(want_interval(&vals[0])?.floor()),
        "ia_ceil_f64" => Value::Interval(want_interval(&vals[0])?.ceil()),
        "ia_min_f64" => Value::Interval(want_interval(&vals[0])?.min_i(&want_interval(&vals[1])?)),
        "ia_max_f64" => Value::Interval(want_interval(&vals[0])?.max_i(&want_interval(&vals[1])?)),
        "ia_exp_f64" => Value::Interval(capi::ia_exp_f64(want_interval(&vals[0])?)),
        "ia_log_f64" => Value::Interval(capi::ia_log_f64(want_interval(&vals[0])?)),
        "ia_sin_f64" => Value::Interval(capi::ia_sin_f64(want_interval(&vals[0])?)),
        "ia_cos_f64" => Value::Interval(capi::ia_cos_f64(want_interval(&vals[0])?)),
        "ia_tan_f64" => Value::Interval(capi::ia_tan_f64(want_interval(&vals[0])?)),
        "ia_atan_f64" => Value::Interval(capi::ia_atan_f64(want_interval(&vals[0])?)),
        "ia_asin_f64" => Value::Interval(capi::ia_asin_f64(want_interval(&vals[0])?)),
        "ia_acos_f64" => Value::Interval(capi::ia_acos_f64(want_interval(&vals[0])?)),
        "ia_sqr_f64" => Value::Interval(want_interval(&vals[0])?.sqr()),
        "ia_pow_f64" => Value::Interval(
            want_interval(&vals[0])?
                .powi(want_int(&vals[1])?.clamp(i32::MIN as i64, i32::MAX as i64) as i32),
        ),
        "ia_and_f64" => {
            Value::Interval(capi::ia_and_f64(want_interval(&vals[0])?, want_interval(&vals[1])?))
        }
        "ia_or_f64" => {
            Value::Interval(capi::ia_or_f64(want_interval(&vals[0])?, want_interval(&vals[1])?))
        }
        "ia_not_f64" => Value::Interval(capi::ia_not_f64(want_interval(&vals[0])?)),
        "ia_xor_f64" => {
            Value::Interval(capi::ia_xor_f64(want_interval(&vals[0])?, want_interval(&vals[1])?))
        }
        "ia_join_f64" => {
            Value::Interval(capi::ia_join_f64(want_interval(&vals[0])?, want_interval(&vals[1])?))
        }
        "ia_cmplt_f64" => Value::TBool(want_interval(&vals[0])?.cmp_lt(&want_interval(&vals[1])?)),
        "ia_cmple_f64" => Value::TBool(want_interval(&vals[0])?.cmp_le(&want_interval(&vals[1])?)),
        "ia_cmpgt_f64" => Value::TBool(want_interval(&vals[0])?.cmp_gt(&want_interval(&vals[1])?)),
        "ia_cmpge_f64" => Value::TBool(want_interval(&vals[0])?.cmp_ge(&want_interval(&vals[1])?)),
        "ia_cmpeq_f64" => Value::TBool(want_interval(&vals[0])?.cmp_eq(&want_interval(&vals[1])?)),
        "ia_cmpne_f64" => Value::TBool(want_interval(&vals[0])?.cmp_ne(&want_interval(&vals[1])?)),

        // --- f32i (single-precision target) ----------------------------
        "ia_set_f32" => Value::Interval32(capi::ia_set_f32(
            want_f64(&vals[0])? as f32,
            want_f64(&vals[1])? as f32,
        )),
        "ia_set_tol_f32" => Value::Interval32(capi::ia_set_tol_f32(
            want_f64(&vals[0])? as f32,
            want_f64(&vals[1])? as f32,
        )),
        "ia_set_int_f32" => Value::Interval32(F32I::enclose_f64(want_int(&vals[0])? as f64)),
        "ia_add_f32" => Value::Interval32(want_f32i(&vals[0])? + want_f32i(&vals[1])?),
        "ia_sub_f32" => Value::Interval32(want_f32i(&vals[0])? - want_f32i(&vals[1])?),
        "ia_mul_f32" => Value::Interval32(want_f32i(&vals[0])? * want_f32i(&vals[1])?),
        "ia_div_f32" => Value::Interval32(want_f32i(&vals[0])? / want_f32i(&vals[1])?),
        "ia_neg_f32" => Value::Interval32(-want_f32i(&vals[0])?),
        "ia_sqrt_f32" => Value::Interval32(want_f32i(&vals[0])?.sqrt()),
        "ia_min_f32" => Value::Interval32(want_f32i(&vals[0])?.min_i(&want_f32i(&vals[1])?)),
        "ia_max_f32" => Value::Interval32(want_f32i(&vals[0])?.max_i(&want_f32i(&vals[1])?)),
        "ia_abs_f32" => {
            let x = want_f32i(&vals[0])?;
            Value::Interval32(x.max_i(&-x))
        }
        // Elementary functions on the f32 target: evaluate the f64
        // enclosure and demote outward (sound; CRlibm would do the same
        // at higher precision).
        "ia_exp_f32" => {
            Value::Interval32(F32I::from_f64i(&capi::ia_exp_f64(want_f32i(&vals[0])?.to_f64i())))
        }
        "ia_log_f32" => {
            Value::Interval32(F32I::from_f64i(&capi::ia_log_f64(want_f32i(&vals[0])?.to_f64i())))
        }
        "ia_sin_f32" => {
            Value::Interval32(F32I::from_f64i(&capi::ia_sin_f64(want_f32i(&vals[0])?.to_f64i())))
        }
        "ia_cos_f32" => {
            Value::Interval32(F32I::from_f64i(&capi::ia_cos_f64(want_f32i(&vals[0])?.to_f64i())))
        }
        "ia_tan_f32" => {
            Value::Interval32(F32I::from_f64i(&capi::ia_tan_f64(want_f32i(&vals[0])?.to_f64i())))
        }
        "ia_atan_f32" => {
            Value::Interval32(F32I::from_f64i(&capi::ia_atan_f64(want_f32i(&vals[0])?.to_f64i())))
        }
        "ia_asin_f32" => {
            Value::Interval32(F32I::from_f64i(&capi::ia_asin_f64(want_f32i(&vals[0])?.to_f64i())))
        }
        "ia_acos_f32" => {
            Value::Interval32(F32I::from_f64i(&capi::ia_acos_f64(want_f32i(&vals[0])?.to_f64i())))
        }
        "ia_pow_f32" => Value::Interval32(F32I::from_f64i(
            &want_f32i(&vals[0])?
                .to_f64i()
                .powi(want_int(&vals[1])?.clamp(i32::MIN as i64, i32::MAX as i64) as i32),
        )),
        "ia_floor_f32" => {
            Value::Interval32(F32I::from_f64i(&want_f32i(&vals[0])?.to_f64i().floor()))
        }
        "ia_ceil_f32" => Value::Interval32(F32I::from_f64i(&want_f32i(&vals[0])?.to_f64i().ceil())),
        "ia_cmplt_f32" => Value::TBool(want_f32i(&vals[0])?.cmp_lt(&want_f32i(&vals[1])?)),
        "ia_cmpgt_f32" => Value::TBool(want_f32i(&vals[0])?.cmp_gt(&want_f32i(&vals[1])?)),
        "ia_cmple_f32" => Value::TBool(want_f32i(&vals[1])?.cmp_gt(&want_f32i(&vals[0])?).not()),
        "ia_cmpge_f32" => Value::TBool(want_f32i(&vals[0])?.cmp_lt(&want_f32i(&vals[1])?).not()),
        "ia_cmpeq_f32" => {
            let (a, b) = (want_f32i(&vals[0])?.to_f64i(), want_f32i(&vals[1])?.to_f64i());
            Value::TBool(a.cmp_eq(&b))
        }
        "ia_cmpne_f32" => {
            let (a, b) = (want_f32i(&vals[0])?.to_f64i(), want_f32i(&vals[1])?.to_f64i());
            Value::TBool(a.cmp_ne(&b))
        }
        "ia_join_f32" => {
            let (a, b) = (want_f32i(&vals[0])?.to_f64i(), want_f32i(&vals[1])?.to_f64i());
            Value::Interval32(F32I::from_f64i(&a.join(&b)))
        }
        "ia_cvt_f32_f64" => Value::Interval(want_f32i(&vals[0])?.to_f64i()),
        "ia_cvt_f64_f32" => Value::Interval32(F32I::from_f64i(&want_interval(&vals[0])?)),

        // --- tbool ---------------------------------------------------
        "ia_cvt2bool_tb" => match want_tbool(&vals[0])?.to_bool() {
            Ok(b) => Value::Int(b as i64),
            Err(_) => return Err(RtError::UnknownBranch),
        },
        "ia_is_true_tb" => Value::Int(want_tbool(&vals[0])?.is_true() as i64),
        "ia_is_false_tb" => Value::Int(want_tbool(&vals[0])?.is_false() as i64),

        // --- interval runtime: ddi ------------------------------------
        "ia_set_dd" => Value::DdInterval(capi::ia_set_dd(want_f64(&vals[0])?, want_f64(&vals[1])?)),
        "ia_set_ddx" => Value::DdInterval(capi::ia_set_ddx(
            want_f64(&vals[0])?,
            want_f64(&vals[1])?,
            want_f64(&vals[2])?,
            want_f64(&vals[3])?,
        )),
        "ia_set_tol_dd" => Value::DdInterval(DdI::from_f64i(&capi::ia_set_tol_f64(
            want_f64(&vals[0])?,
            want_f64(&vals[1])?,
        ))),
        "ia_set_int_dd" => Value::DdInterval(capi::ia_set_int_dd(want_int(&vals[0])?)),
        "ia_add_dd" => Value::DdInterval(want_ddi(&vals[0])? + want_ddi(&vals[1])?),
        "ia_sub_dd" => Value::DdInterval(want_ddi(&vals[0])? - want_ddi(&vals[1])?),
        "ia_mul_dd" => Value::DdInterval(want_ddi(&vals[0])? * want_ddi(&vals[1])?),
        "ia_div_dd" => Value::DdInterval(want_ddi(&vals[0])? / want_ddi(&vals[1])?),
        "ia_neg_dd" => Value::DdInterval(-want_ddi(&vals[0])?),
        "ia_abs_dd" => Value::DdInterval(want_ddi(&vals[0])?.abs()),
        "ia_sqrt_dd" => Value::DdInterval(want_ddi(&vals[0])?.sqrt()),
        "ia_sqr_dd" => Value::DdInterval(want_ddi(&vals[0])?.sqr()),
        "ia_pow_dd" => Value::DdInterval(
            want_ddi(&vals[0])?
                .powi(want_int(&vals[1])?.clamp(i32::MIN as i64, i32::MAX as i64) as i32),
        ),
        "ia_min_dd" => Value::DdInterval(want_ddi(&vals[0])?.min_i(&want_ddi(&vals[1])?)),
        "ia_max_dd" => Value::DdInterval(want_ddi(&vals[0])?.max_i(&want_ddi(&vals[1])?)),
        "ia_join_dd" => Value::DdInterval(want_ddi(&vals[0])?.join(&want_ddi(&vals[1])?)),
        "ia_cmplt_dd" => Value::TBool(want_ddi(&vals[0])?.cmp_lt(&want_ddi(&vals[1])?)),
        "ia_cmpgt_dd" => Value::TBool(want_ddi(&vals[0])?.cmp_gt(&want_ddi(&vals[1])?)),
        "ia_cmple_dd" => Value::TBool(want_ddi(&vals[1])?.cmp_gt(&want_ddi(&vals[0])?).not()),
        "ia_cmpge_dd" => Value::TBool(want_ddi(&vals[0])?.cmp_lt(&want_ddi(&vals[1])?).not()),
        "ia_cvt_f64_dd" => Value::DdInterval(DdI::from_f64i(&want_interval(&vals[0])?)),
        "ia_cvt_dd_f64" => Value::Interval(want_ddi(&vals[0])?.to_f64i()),

        // --- float-mode libm -------------------------------------------
        "sqrt" => Value::F64(want_f64(&vals[0])?.sqrt()),
        "fabs" => Value::F64(want_f64(&vals[0])?.abs()),
        "sin" => Value::F64(want_f64(&vals[0])?.sin()),
        "cos" => Value::F64(want_f64(&vals[0])?.cos()),
        "tan" => Value::F64(want_f64(&vals[0])?.tan()),
        "atan" => Value::F64(want_f64(&vals[0])?.atan()),
        "asin" => Value::F64(want_f64(&vals[0])?.asin()),
        "acos" => Value::F64(want_f64(&vals[0])?.acos()),
        "pow" => Value::F64(want_f64(&vals[0])?.powf(want_f64(&vals[1])?)),
        "exp" => Value::F64(want_f64(&vals[0])?.exp()),
        "log" => Value::F64(want_f64(&vals[0])?.ln()),
        "floor" => Value::F64(want_f64(&vals[0])?.floor()),
        "ceil" => Value::F64(want_f64(&vals[0])?.ceil()),
        "fmin" => Value::F64(want_f64(&vals[0])?.min(want_f64(&vals[1])?)),
        "fmax" => Value::F64(want_f64(&vals[0])?.max(want_f64(&vals[1])?)),

        // --- float-mode SIMD intrinsics ---------------------------------
        _ if name.starts_with("_mm") => return simd_float(it, name, vals).map(Some),

        // --- interval-mode SIMD intrinsics -------------------------------
        _ if name.starts_with("ia_mm") => return simd_interval(it, name, vals).map(Some),

        _ => return Ok(None),
    };
    Ok(Some(v))
}

fn lanes_of(name: &str) -> usize {
    if name.contains("_mm256") {
        4
    } else {
        2
    }
}

/// Float-mode semantics of the supported SIMD intrinsics.
fn simd_float(it: &mut Interp, name: &str, vals: &[Value]) -> Result<Value, RtError> {
    let lanewise = |f: fn(f64, f64) -> f64, a: &Value, b: &Value| -> Result<Value, RtError> {
        let (x, y) = (want_vecf(a)?, want_vecf(b)?);
        Ok(Value::VecF64(x.iter().zip(&y).map(|(p, q)| f(*p, *q)).collect()))
    };
    match name {
        "_mm_add_pd" | "_mm256_add_pd" | "_mm_add_ps" | "_mm256_add_ps" => {
            lanewise(|a, b| a + b, &vals[0], &vals[1])
        }
        "_mm_sub_pd" | "_mm256_sub_pd" => lanewise(|a, b| a - b, &vals[0], &vals[1]),
        "_mm_mul_pd" | "_mm256_mul_pd" | "_mm256_mul_ps" => {
            lanewise(|a, b| a * b, &vals[0], &vals[1])
        }
        "_mm_div_pd" | "_mm256_div_pd" => lanewise(|a, b| a / b, &vals[0], &vals[1]),
        "_mm_min_pd" | "_mm256_min_pd" => lanewise(f64::min, &vals[0], &vals[1]),
        "_mm_max_pd" | "_mm256_max_pd" => lanewise(f64::max, &vals[0], &vals[1]),
        "_mm_sqrt_pd" | "_mm256_sqrt_pd" => {
            let x = want_vecf(&vals[0])?;
            Ok(Value::VecF64(x.iter().map(|v| v.sqrt()).collect()))
        }
        "_mm_set1_pd" | "_mm256_set1_pd" => {
            let v = want_f64(&vals[0])?;
            Ok(Value::VecF64(vec![v; lanes_of(name)]))
        }
        "_mm_setzero_pd" | "_mm256_setzero_pd" => Ok(Value::VecF64(vec![0.0; lanes_of(name)])),
        "_mm_loadu_pd" | "_mm_load_pd" | "_mm256_loadu_pd" | "_mm256_load_pd" => {
            let Value::Ptr(obj, off) = vals[0] else {
                return Err(RtError::Type("load from non-pointer".into()));
            };
            let n = lanes_of(name);
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(
                    it.heap_load(obj, off + i as i64)?
                        .as_f64()
                        .ok_or_else(|| RtError::Type("load of non-double".into()))?,
                );
            }
            Ok(Value::VecF64(out))
        }
        "_mm_storeu_pd" | "_mm_store_pd" | "_mm256_storeu_pd" | "_mm256_store_pd" => {
            let Value::Ptr(obj, off) = vals[0] else {
                return Err(RtError::Type("store to non-pointer".into()));
            };
            let x = want_vecf(&vals[1])?;
            for (i, v) in x.iter().enumerate() {
                it.heap_store(obj, off + i as i64, Value::F64(*v))?;
            }
            Ok(Value::Unit)
        }
        "_mm256_fmadd_pd" => {
            let (a, b, c) = (want_vecf(&vals[0])?, want_vecf(&vals[1])?, want_vecf(&vals[2])?);
            Ok(Value::VecF64(a.iter().zip(&b).zip(&c).map(|((x, y), z)| x * y + z).collect()))
        }
        "_mm256_hadd_pd" => {
            let (a, b) = (want_vecf(&vals[0])?, want_vecf(&vals[1])?);
            Ok(Value::VecF64(vec![a[0] + a[1], b[0] + b[1], a[2] + a[3], b[2] + b[3]]))
        }
        "_mm256_unpacklo_pd" => {
            let (a, b) = (want_vecf(&vals[0])?, want_vecf(&vals[1])?);
            Ok(Value::VecF64(vec![a[0], b[0], a[2], b[2]]))
        }
        "_mm256_unpackhi_pd" => {
            let (a, b) = (want_vecf(&vals[0])?, want_vecf(&vals[1])?);
            Ok(Value::VecF64(vec![a[1], b[1], a[3], b[3]]))
        }
        other => Err(RtError::Missing(format!("float intrinsic {other}"))),
    }
}

/// Interval-mode semantics of the SIMD intrinsics (`ia_mm…` — the
/// interval implementations of Section V).
fn simd_interval(it: &mut Interp, name: &str, vals: &[Value]) -> Result<Value, RtError> {
    // `ia_mm256_add_pd` corresponds to the intrinsic `_mm256_add_pd`.
    let base = format!("_{}", name.strip_prefix("ia_").expect("prefixed"));
    let base = base.as_str();
    // One interval per floating-point lane (Table II: an interval fills
    // one __m128d, so a __m256d operand becomes 4 packed intervals).
    let lanes = lanes_of(base);
    let lanewise = |f: fn(F64I, F64I) -> F64I, a: &Value, b: &Value| -> Result<Value, RtError> {
        let (x, y) = (want_veci(a)?, want_veci(b)?);
        Ok(Value::VecInterval(x.iter().zip(&y).map(|(p, q)| f(*p, *q)).collect()))
    };
    match base {
        "_mm_add_pd" | "_mm256_add_pd" => lanewise(|a, b| a + b, &vals[0], &vals[1]),
        "_mm_sub_pd" | "_mm256_sub_pd" => lanewise(|a, b| a - b, &vals[0], &vals[1]),
        "_mm_mul_pd" | "_mm256_mul_pd" => lanewise(|a, b| a * b, &vals[0], &vals[1]),
        "_mm_div_pd" | "_mm256_div_pd" => lanewise(|a, b| a / b, &vals[0], &vals[1]),
        "_mm_min_pd" | "_mm256_min_pd" => lanewise(|a, b| a.min_i(&b), &vals[0], &vals[1]),
        "_mm_max_pd" | "_mm256_max_pd" => lanewise(|a, b| a.max_i(&b), &vals[0], &vals[1]),
        "_mm_sqrt_pd" | "_mm256_sqrt_pd" => {
            let x = want_veci(&vals[0])?;
            Ok(Value::VecInterval(x.iter().map(|v| v.sqrt()).collect()))
        }
        "_mm_set1_pd" | "_mm256_set1_pd" => {
            let v = want_interval(&vals[0])?;
            Ok(Value::VecInterval(vec![v; lanes]))
        }
        "_mm_setzero_pd" | "_mm256_setzero_pd" => Ok(Value::VecInterval(vec![F64I::ZERO; lanes])),
        "_mm_loadu_pd" | "_mm_load_pd" | "_mm256_loadu_pd" | "_mm256_load_pd" => {
            let Value::Ptr(obj, off) = vals[0] else {
                return Err(RtError::Type("load from non-pointer".into()));
            };
            let mut out = Vec::with_capacity(lanes);
            for i in 0..lanes {
                out.push(
                    it.heap_load(obj, off + i as i64)?
                        .as_interval()
                        .ok_or_else(|| RtError::Type("load of non-interval".into()))?,
                );
            }
            Ok(Value::VecInterval(out))
        }
        "_mm_storeu_pd" | "_mm_store_pd" | "_mm256_storeu_pd" | "_mm256_store_pd" => {
            let Value::Ptr(obj, off) = vals[0] else {
                return Err(RtError::Type("store to non-pointer".into()));
            };
            let x = want_veci(&vals[1])?;
            for (i, v) in x.iter().enumerate() {
                it.heap_store(obj, off + i as i64, Value::Interval(*v))?;
            }
            Ok(Value::Unit)
        }
        "_mm256_fmadd_pd" => {
            let (a, b, c) = (want_veci(&vals[0])?, want_veci(&vals[1])?, want_veci(&vals[2])?);
            Ok(Value::VecInterval(
                a.iter().zip(&b).zip(&c).map(|((x, y), z)| *x * *y + *z).collect(),
            ))
        }
        "_mm256_hadd_pd" => {
            let (a, b) = (want_veci(&vals[0])?, want_veci(&vals[1])?);
            Ok(Value::VecInterval(vec![a[0] + a[1], b[0] + b[1], a[2] + a[3], b[2] + b[3]]))
        }
        other => Err(RtError::Missing(format!("interval intrinsic {other}"))),
    }
}
