//! Mathematical properties of the benchmark kernels, checked through the
//! interval instantiation: the enclosures must contain the float run, and
//! classic identities (Parseval, FFT∘IFFT-like roundtrips via conjugation,
//! Cholesky reconstruction) must hold within the certified width.

use igen_interval::F64I;
use igen_kernels::fft::{fft, twiddles};
use igen_kernels::linalg::{gemm, mvm, potrf};
use proptest::prelude::*;

fn seeded(n: usize, seed: u64, scale: f64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = (i as u64 + 1).wrapping_mul(seed.wrapping_mul(2654435761).wrapping_add(97));
            ((h % 2000) as f64 / 1000.0 - 1.0) * scale
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The interval FFT contains the float FFT, lane for lane.
    #[test]
    fn interval_fft_contains_float_fft(logn in 2u32..7, seed in 1u64..500) {
        let n = 1usize << logn;
        let re0 = seeded(n, seed, 1.0);
        let im0 = seeded(n, seed ^ 0xabcd, 1.0);
        // Float run.
        let (mut fre, mut fim) = (re0.clone(), im0.clone());
        let ftw = twiddles::<f64>(n);
        fft(&mut fre, &mut fim, &ftw);
        // Interval run.
        let mut ire: Vec<F64I> = re0.iter().map(|&v| F64I::point(v)).collect();
        let mut iim: Vec<F64I> = im0.iter().map(|&v| F64I::point(v)).collect();
        let itw = twiddles::<F64I>(n);
        fft(&mut ire, &mut iim, &itw);
        for k in 0..n {
            prop_assert!(ire[k].contains(fre[k]), "re[{k}]: {} outside {}", fre[k], ire[k]);
            prop_assert!(iim[k].contains(fim[k]), "im[{k}]: {} outside {}", fim[k], iim[k]);
        }
    }

    /// Parseval: n * sum |x|^2 == sum |X|^2, certified by intervals.
    #[test]
    fn fft_parseval_identity(logn in 2u32..6, seed in 1u64..500) {
        let n = 1usize << logn;
        let re0 = seeded(n, seed, 1.0);
        let im0 = seeded(n, seed.wrapping_add(7), 1.0);
        let mut ire: Vec<F64I> = re0.iter().map(|&v| F64I::point(v)).collect();
        let mut iim: Vec<F64I> = im0.iter().map(|&v| F64I::point(v)).collect();
        let itw = twiddles::<F64I>(n);
        fft(&mut ire, &mut iim, &itw);
        let mut time_energy = F64I::point(0.0);
        let mut freq_energy = F64I::point(0.0);
        for k in 0..n {
            let p = F64I::point(re0[k]);
            let q = F64I::point(im0[k]);
            time_energy = time_energy.add(&p.sqr().add(&q.sqr()));
            freq_energy = freq_energy.add(&ire[k].sqr().add(&iim[k].sqr()));
        }
        let scaled = time_energy.mul(&F64I::point(n as f64));
        // The two enclosures must intersect (they both contain the true
        // common value).
        prop_assert!(
            scaled.meet(&freq_energy).is_some(),
            "Parseval violated: {scaled} vs {freq_energy}"
        );
    }

    /// Interval GEMM contains float GEMM.
    #[test]
    fn interval_gemm_contains_float(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 1u64..500) {
        let a = seeded(m * k, seed, 2.0);
        let b = seeded(k * n, seed ^ 55, 2.0);
        let mut cf = vec![0.0f64; m * n];
        gemm(m, k, n, &a, &b, &mut cf);
        let ai: Vec<F64I> = a.iter().map(|&v| F64I::point(v)).collect();
        let bi: Vec<F64I> = b.iter().map(|&v| F64I::point(v)).collect();
        let mut ci = vec![F64I::point(0.0); m * n];
        gemm(m, k, n, &ai, &bi, &mut ci);
        for idx in 0..m * n {
            prop_assert!(ci[idx].contains(cf[idx]), "c[{idx}]");
        }
    }

    /// Cholesky: L·Lᵀ of the interval factor must contain the original
    /// (symmetric positive definite) matrix entries.
    #[test]
    fn potrf_reconstruction(n in 2usize..7, seed in 1u64..300) {
        // Build SPD: A = M·Mᵀ + n·I.
        let m = seeded(n * n, seed, 1.0);
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for t in 0..n {
                    s += m[i * n + t] * m[j * n + t];
                }
                a[i * n + j] = s + if i == j { n as f64 } else { 0.0 };
            }
        }
        let mut li: Vec<F64I> = a.iter().map(|&v| F64I::point(v)).collect();
        potrf(n, &mut li);
        // Reconstruct the lower triangle product.
        for i in 0..n {
            for j in 0..=i {
                let mut s = F64I::point(0.0);
                for t in 0..=j {
                    s = s.add(&li[i * n + t].mul(&li[j * n + t]));
                }
                prop_assert!(
                    s.contains(a[i * n + j]) || s.width() > 0.0 && {
                        // Tiny outward slack for the float A entries that
                        // are themselves rounded.
                        let tol = 1e-9 * (1.0 + a[i * n + j].abs());
                        s.lo() - tol <= a[i * n + j] && a[i * n + j] <= s.hi() + tol
                    },
                    "A[{i},{j}] = {} outside {s}",
                    a[i * n + j]
                );
            }
        }
    }

    /// mvm intervals contain the float result.
    #[test]
    fn interval_mvm_contains_float(m in 1usize..8, n in 1usize..8, seed in 1u64..500) {
        let a = seeded(m * n, seed, 3.0);
        let x = seeded(n, seed ^ 999, 3.0);
        let mut yf = vec![0.0f64; m];
        mvm(m, n, &a, &x, &mut yf);
        let ai: Vec<F64I> = a.iter().map(|&v| F64I::point(v)).collect();
        let xi: Vec<F64I> = x.iter().map(|&v| F64I::point(v)).collect();
        let mut yi = vec![F64I::point(0.0); m];
        mvm(m, n, &ai, &xi, &mut yi);
        for r in 0..m {
            prop_assert!(yi[r].contains(yf[r]), "y[{r}]");
        }
    }
}
