//! `igen-kernels`: the benchmark computations of the paper's evaluation
//! (Table IV plus the Section VI-B and VII-C benchmarks), written once
//! and instantiated at every arithmetic back end.
//!
//! | Benchmark | Paper's base implementation | Here |
//! |-----------|------------------------------|------|
//! | `fft`     | Spiral-generated             | [`fft`] iterative radix-2 (+ unrolled variants) |
//! | `gemm`    | ATLAS                        | [`linalg::gemm`] (+ unrolled) |
//! | `potrf`   | SLinGen                      | [`linalg::potrf`] (+ unrolled) |
//! | `ffnn`    | MNIST-trained dense network  | [`ffnn::Ffnn`] synthetic (documented substitution) |
//! | `mvm`     | double loop (Fig. 7)         | [`linalg::mvm`] + accumulator variants |
//! | Hénon map | Fig. 11                      | [`henon()`] (+ affine version) |
//!
//! The `ss`/`sv`/`vv` configurations of Fig. 8 map to the scalar kernels
//! and their 2-/4-lane unrolled variants: with software directed rounding
//! the packed-register benefit appears as independent EFT chains that the
//! compiler schedules in parallel, the same ILP the paper's SIMD output
//! exploits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ffnn;
pub mod fft;
pub mod henon;
pub mod linalg;
mod num;
pub mod workload;

pub use fft::{fft, fft_iops, fft_unrolled, twiddles};
pub use henon::{henon, henon_affine, henon_from, henon_iops};
pub use num::{LaneOrScalar, Numeric};
