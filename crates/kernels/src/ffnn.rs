//! The `ffnn` benchmark (Table IV): a fully-connected feedforward neural
//! network with nine hidden layers and `n` neurons per layer, with ReLU
//! activations.
//!
//! The paper's network is trained on MNIST; neither the dataset nor the
//! trained weights are available offline, so this module substitutes a
//! deterministic synthetic network and synthetic digit-like inputs
//! (documented in DESIGN.md). The substitution preserves everything the
//! evaluation measures: the compute shape (9 dense layers of `n×n`
//! matrix-vector products plus activations) and the error-accumulation
//! profile of deep multiply-add chains.

use crate::num::{LaneOrScalar, Numeric};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Number of hidden layers (the paper: nine).
pub const HIDDEN_LAYERS: usize = 9;

/// Input dimension of the synthetic "digit" inputs (MNIST is 28×28).
pub const INPUT_DIM: usize = 784;

/// A dense network: input layer `n×INPUT_DIM`, then `HIDDEN_LAYERS - 1`
/// hidden `n×n` layers, then a 10-way output layer.
#[derive(Debug, Clone)]
pub struct Ffnn {
    /// Neurons per hidden layer.
    pub width: usize,
    /// Row-major weight matrices.
    pub weights: Vec<Vec<f64>>,
    /// Bias vectors.
    pub biases: Vec<Vec<f64>>,
}

impl Ffnn {
    /// A deterministic synthetic network with `width` neurons per layer.
    /// Weights follow the usual 1/√fan_in scaling so activations stay in
    /// a realistic range through all nine layers.
    pub fn synthetic(width: usize, seed: u64) -> Ffnn {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dims = vec![INPUT_DIM];
        dims.extend(std::iter::repeat_n(width, HIDDEN_LAYERS));
        dims.push(10);
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for w in dims.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let scale = 1.0 / (fan_in as f64).sqrt();
            weights.push((0..fan_in * fan_out).map(|_| rng.random_range(-scale..scale)).collect());
            biases.push((0..fan_out).map(|_| rng.random_range(-0.1..0.1)).collect());
        }
        Ffnn { width, weights, biases }
    }

    /// A deterministic synthetic "digit" input in `[0, 1]^784` with a
    /// blob structure loosely resembling a drawn digit.
    pub fn synthetic_input(seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
        let cx = rng.random_range(8.0..20.0);
        let cy = rng.random_range(8.0..20.0);
        (0..INPUT_DIM)
            .map(|i| {
                let (x, y) = ((i % 28) as f64, (i / 28) as f64);
                let d2 = (x - cx).powi(2) + (y - cy).powi(2);
                ((-d2 / 40.0).exp() + rng.random_range(0.0..0.05)).min(1.0)
            })
            .collect()
    }

    /// Forward pass, generic over the numeric type — [`forward_lanes`]
    /// at width 1.
    ///
    /// [`forward_lanes`]: Ffnn::forward_lanes
    pub fn forward<T: Numeric>(&self, input: &[f64]) -> Vec<T> {
        self.forward_lanes::<T, T>(&[input]).pop().expect("one batch item")
    }

    /// Forward pass of `L::WIDTH` inputs at once, one batch item per
    /// lane: weights and biases are splat across the lanes (every lane
    /// multiplies by the same point constant) and the activation vector
    /// holds element `i` of all `WIDTH` items in one register. Each lane
    /// therefore executes exactly the scalar [`forward`] operation
    /// sequence for its own item, so every output is bit-identical to
    /// the scalar pass on that input (see [`LaneOrScalar`]).
    ///
    /// Returns one output vector per input, in order.
    ///
    /// [`forward`]: Ffnn::forward
    pub fn forward_lanes<T: Numeric, L: LaneOrScalar<T>>(&self, inputs: &[&[f64]]) -> Vec<Vec<T>> {
        assert_eq!(inputs.len(), L::WIDTH, "forward_lanes needs exactly WIDTH inputs");
        let dim = inputs[0].len();
        assert!(inputs.iter().all(|x| x.len() == dim), "inputs must share a dimension");
        let mut act: Vec<L> =
            (0..dim).map(|i| L::from_fn_l(|l| T::from_f64(inputs[l][i]))).collect();
        let layers = self.weights.len();
        for (li, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let fan_in = act.len();
            let fan_out = b.len();
            let mut next = Vec::with_capacity(fan_out);
            for o in 0..fan_out {
                let mut acc = L::splat_l(T::from_f64(b[o]));
                for (i, a) in act.iter().enumerate() {
                    acc = acc + L::splat_l(T::from_f64(w[o * fan_in + i])) * *a;
                }
                // ReLU on all but the output layer.
                next.push(if li + 1 == layers { acc } else { acc.relu_l() });
            }
            act = next;
        }
        (0..L::WIDTH).map(|l| act.iter().map(|v| v.lane_l(l)).collect()).collect()
    }

    /// Forward pass with the output-neuron loop unrolled by `LANES`.
    pub fn forward_unrolled<T: Numeric, const LANES: usize>(&self, input: &[f64]) -> Vec<T> {
        let mut act: Vec<T> = input.iter().map(|&v| T::from_f64(v)).collect();
        let layers = self.weights.len();
        for (li, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let fan_in = act.len();
            let fan_out = b.len();
            let last = li + 1 == layers;
            let mut next = vec![T::zero(); fan_out];
            let mut o = 0;
            while o + LANES <= fan_out {
                let mut acc = [T::zero(); LANES];
                for (l, slot) in acc.iter_mut().enumerate() {
                    *slot = T::from_f64(b[o + l]);
                }
                for (i, a) in act.iter().enumerate() {
                    for (l, slot) in acc.iter_mut().enumerate() {
                        *slot = *slot + T::from_f64(w[(o + l) * fan_in + i]) * *a;
                    }
                }
                for (l, slot) in acc.iter().enumerate() {
                    next[o + l] = if last { *slot } else { slot.relu() };
                }
                o += LANES;
            }
            while o < fan_out {
                let mut acc = T::from_f64(b[o]);
                for (i, a) in act.iter().enumerate() {
                    acc = acc + T::from_f64(w[o * fan_in + i]) * *a;
                }
                next[o] = if last { acc } else { acc.relu() };
                o += 1;
            }
            act = next;
        }
        act
    }

    /// Interval operations of one forward pass (mul+add per weight).
    pub fn iops(&self) -> u64 {
        self.weights.iter().map(|w| 2 * w.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igen_interval::F64I;

    #[test]
    fn deterministic_and_shaped() {
        let n1 = Ffnn::synthetic(40, 7);
        let n2 = Ffnn::synthetic(40, 7);
        assert_eq!(n1.weights[0], n2.weights[0]);
        assert_eq!(n1.weights.len(), HIDDEN_LAYERS + 1);
        assert_eq!(n1.biases.last().unwrap().len(), 10);
        let input = Ffnn::synthetic_input(3);
        assert_eq!(input.len(), INPUT_DIM);
        assert!(input.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn interval_forward_contains_float_forward() {
        let net = Ffnn::synthetic(40, 42);
        let input = Ffnn::synthetic_input(1);
        let f: Vec<f64> = net.forward::<f64>(&input);
        let iv: Vec<F64I> = net.forward::<F64I>(&input);
        assert_eq!(f.len(), 10);
        for (k, (fv, ivv)) in f.iter().zip(&iv).enumerate() {
            assert!(ivv.contains(*fv), "logit {k}: {fv} outside {ivv}");
        }
        // Paper (Fig. 9b): >17 certified bits in double precision.
        let worst = iv.iter().map(|i| i.certified_bits()).fold(53.0, f64::min);
        assert!(worst > 17.0, "bits = {worst}");
    }

    #[test]
    fn unrolled_matches_scalar() {
        let net = Ffnn::synthetic(24, 5);
        let input = Ffnn::synthetic_input(9);
        let a: Vec<F64I> = net.forward::<F64I>(&input);
        let b: Vec<F64I> = net.forward_unrolled::<F64I, 4>(&input);
        assert_eq!(a, b);
    }

    #[test]
    fn dd_certifies_double_result() {
        use igen_interval::DdI;
        let net = Ffnn::synthetic(24, 11);
        let input = Ffnn::synthetic_input(2);
        let dd: Vec<DdI> = net.forward::<DdI>(&input);
        for v in &dd {
            assert!(v.certified_bits() > 68.0, "bits = {}", v.certified_bits());
            assert!(v.certified_f64().is_some());
        }
    }
}
