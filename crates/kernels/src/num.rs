//! The numeric abstraction the benchmark kernels are written against.
//!
//! Each kernel (FFT, GEMM, Cholesky, FFNN, MVM, Hénon) is written once,
//! generically, and instantiated at:
//!
//! * `f64` — the paper's non-interval baseline;
//! * [`igen_interval::F64I`] — IGen double-precision intervals;
//! * [`igen_interval::DdI`] — IGen double-double intervals;
//! * `igen_baselines::{BoostI, FilibI, GaolI}` — the library baselines.
//!
//! This models exactly what the paper does: the same source computation
//! compiled against different arithmetic back ends.

use igen_baselines::{BoostI, FilibI, GaolI, NaiveI};
use igen_interval::{DdI, DdIx4, F64Ix4, LaneOps, F32I, F64I};

/// A sound (or plain) numeric type usable by the kernels.
pub trait Numeric:
    Copy
    + Clone
    + core::fmt::Debug
    + core::ops::Add<Output = Self>
    + core::ops::Sub<Output = Self>
    + core::ops::Mul<Output = Self>
    + core::ops::Div<Output = Self>
    + core::ops::Neg<Output = Self>
    + Send
    + Sync
    + 'static
{
    /// The widest lane vector available for this element type:
    /// [`F64Ix4`]/[`DdIx4`] for the IGen interval types, `Self` (one
    /// lane) for everything without a packed representation. Kernels
    /// written against [`LaneOrScalar`] instantiate at `T::Lane` to get
    /// the packed path and at `T` itself to get the scalar reference.
    type Lane: LaneOrScalar<Self>;

    /// Exact injection of a binary64 value (a point, for interval types).
    fn from_f64(v: f64) -> Self;

    /// Sound enclosure of a *real* constant whose nearest double is `v`
    /// (±1 ulp for interval types; plain value for `f64`). Used for
    /// twiddle factors and other transcendental constants.
    fn from_f64_enclose(v: f64) -> Self;

    /// Zero.
    fn zero() -> Self {
        Self::from_f64(0.0)
    }

    /// One.
    fn one() -> Self {
        Self::from_f64(1.0)
    }

    /// Sound enclosure of the exact rational `num/den` at the type's own
    /// precision (double-double types enclose at ~2^-106 relative — this
    /// is how decimal constants like 1.05 stay accurate in the `ddi`
    /// instantiations).
    fn from_rational(num: i64, den: i64) -> Self {
        Self::from_f64_enclose(num as f64 / den as f64)
    }

    /// Sound enclosure of `sin x` at the type's own precision (twiddle
    /// factors).
    fn enclose_sin(x: f64) -> Self {
        Self::from_f64_enclose(x.sin())
    }

    /// Sound enclosure of `cos x` at the type's own precision.
    fn enclose_cos(x: f64) -> Self {
        Self::from_f64_enclose(x.cos())
    }

    /// Square root (sound for interval types).
    fn sqrt_n(self) -> Self;

    /// Absolute value (sound for interval types).
    fn abs_n(self) -> Self;

    /// `x²`. The default multiplies; interval types with a
    /// sign-tracking square override it with the tighter kernel.
    fn sqr_n(self) -> Self {
        self * self
    }

    /// Pointwise minimum (for intervals: `[min lo, min hi]`).
    fn min_n(self, other: Self) -> Self;

    /// Pointwise maximum (for intervals: `[max lo, max hi]`).
    fn max_n(self, other: Self) -> Self;

    /// `max(0, x)` — the ReLU activation of the ffnn benchmark.
    fn relu(self) -> Self;

    /// The midpoint / representative value (for reporting).
    fn mid_f64(&self) -> f64;

    /// Certified accuracy in bits (53 for plain `f64` by convention —
    /// an unsound baseline "certifies" nothing, but the evaluation uses
    /// this accessor only on sound types).
    fn certified_bits_n(&self) -> f64;
}

/// One kernel source, two instantiations: a value that is either a
/// single [`Numeric`] element (`WIDTH == 1`) or a packed lane vector of
/// `WIDTH` elements. The generic kernels (`linalg::gemm_lanes`,
/// `Ffnn::forward_lanes`) are written once against this trait; at
/// `L = T` they *are* the scalar reference loop, and at `L = T::Lane`
/// every lane executes exactly that scalar loop's operation sequence on
/// its own element — which, with the packed `igen_round::simd` kernels
/// being lane-wise bit-identical to the scalar ops, makes the two
/// instantiations bit-identical element for element.
pub trait LaneOrScalar<T: Numeric>:
    Copy
    + core::ops::Add<Output = Self>
    + core::ops::Sub<Output = Self>
    + core::ops::Mul<Output = Self>
    + core::ops::Div<Output = Self>
    + core::ops::Neg<Output = Self>
    + Send
    + Sync
{
    /// Elements per value (1 for the scalar instantiation).
    const WIDTH: usize;

    /// Broadcasts one element to every lane.
    fn splat_l(v: T) -> Self;

    /// Builds a value lane by lane from `f(0), .., f(WIDTH - 1)`.
    fn from_fn_l(f: impl FnMut(usize) -> T) -> Self;

    /// Loads `WIDTH` consecutive elements from `src`.
    fn load_l(src: &[T]) -> Self;

    /// Stores the `WIDTH` elements to the front of `dst`.
    fn store_l(self, dst: &mut [T]);

    /// The `i`-th element (`i < WIDTH`).
    fn lane_l(self, i: usize) -> T;

    /// Per-lane ReLU (`max(0, x)`, sound for interval types).
    #[must_use]
    fn relu_l(self) -> Self;

    /// Per-lane square root.
    #[must_use]
    fn sqrt_l(self) -> Self;

    /// Per-lane absolute value.
    #[must_use]
    fn abs_l(self) -> Self;

    /// Per-lane square (the sign-tracking kernel where one exists).
    #[must_use]
    fn sqr_l(self) -> Self;

    /// Per-lane pointwise minimum.
    #[must_use]
    fn min_l(self, other: Self) -> Self;

    /// Per-lane pointwise maximum.
    #[must_use]
    fn max_l(self, other: Self) -> Self;
}

/// Every numeric element is itself a 1-wide "lane vector": the scalar
/// instantiation of the generic kernels.
impl<T: Numeric> LaneOrScalar<T> for T {
    const WIDTH: usize = 1;

    fn splat_l(v: T) -> T {
        v
    }
    fn from_fn_l(mut f: impl FnMut(usize) -> T) -> T {
        f(0)
    }
    fn load_l(src: &[T]) -> T {
        src[0]
    }
    fn store_l(self, dst: &mut [T]) {
        dst[0] = self;
    }
    fn lane_l(self, i: usize) -> T {
        debug_assert!(i == 0, "scalar LaneOrScalar has exactly one lane, got index {i}");
        self
    }
    fn relu_l(self) -> T {
        self.relu()
    }
    fn sqrt_l(self) -> T {
        self.sqrt_n()
    }
    fn abs_l(self) -> T {
        self.abs_n()
    }
    fn sqr_l(self) -> T {
        self.sqr_n()
    }
    fn min_l(self, other: T) -> T {
        self.min_n(other)
    }
    fn max_l(self, other: T) -> T {
        self.max_n(other)
    }
}

impl LaneOrScalar<F64I> for F64Ix4 {
    const WIDTH: usize = 4;

    fn splat_l(v: F64I) -> F64Ix4 {
        <F64Ix4 as LaneOps>::splat(v)
    }
    fn from_fn_l(f: impl FnMut(usize) -> F64I) -> F64Ix4 {
        <F64Ix4 as LaneOps>::from_lanes_fn(f)
    }
    fn load_l(src: &[F64I]) -> F64Ix4 {
        <F64Ix4 as LaneOps>::load(src)
    }
    fn store_l(self, dst: &mut [F64I]) {
        <F64Ix4 as LaneOps>::store(&self, dst);
    }
    fn lane_l(self, i: usize) -> F64I {
        <F64Ix4 as LaneOps>::lane(&self, i)
    }
    fn relu_l(self) -> F64Ix4 {
        <F64Ix4 as LaneOps>::relu(self)
    }
    fn sqrt_l(self) -> F64Ix4 {
        <F64Ix4 as LaneOps>::sqrt(self)
    }
    fn abs_l(self) -> F64Ix4 {
        <F64Ix4 as LaneOps>::abs(self)
    }
    fn sqr_l(self) -> F64Ix4 {
        <F64Ix4 as LaneOps>::sqr(self)
    }
    // min/max have no packed kernel: the lanes are independent, so the
    // lane-wise loop is bit-identical to the scalar instantiation (the
    // same argument as `LaneOps::relu` on the lane types without a
    // packed ReLU).
    fn min_l(self, other: F64Ix4) -> F64Ix4 {
        <F64Ix4 as LaneOps>::from_lanes_fn(|i| self.lane_l(i).min_i(&other.lane_l(i)))
    }
    fn max_l(self, other: F64Ix4) -> F64Ix4 {
        <F64Ix4 as LaneOps>::from_lanes_fn(|i| self.lane_l(i).max_i(&other.lane_l(i)))
    }
}

impl LaneOrScalar<DdI> for DdIx4 {
    const WIDTH: usize = 4;

    fn splat_l(v: DdI) -> DdIx4 {
        <DdIx4 as LaneOps>::splat(v)
    }
    fn from_fn_l(f: impl FnMut(usize) -> DdI) -> DdIx4 {
        <DdIx4 as LaneOps>::from_lanes_fn(f)
    }
    fn load_l(src: &[DdI]) -> DdIx4 {
        <DdIx4 as LaneOps>::load(src)
    }
    fn store_l(self, dst: &mut [DdI]) {
        <DdIx4 as LaneOps>::store(&self, dst);
    }
    fn lane_l(self, i: usize) -> DdI {
        <DdIx4 as LaneOps>::lane(&self, i)
    }
    fn relu_l(self) -> DdIx4 {
        <DdIx4 as LaneOps>::relu(self)
    }
    fn sqrt_l(self) -> DdIx4 {
        <DdIx4 as LaneOps>::sqrt(self)
    }
    fn abs_l(self) -> DdIx4 {
        <DdIx4 as LaneOps>::abs(self)
    }
    fn sqr_l(self) -> DdIx4 {
        <DdIx4 as LaneOps>::sqr(self)
    }
    fn min_l(self, other: DdIx4) -> DdIx4 {
        <DdIx4 as LaneOps>::from_lanes_fn(|i| self.lane_l(i).min_i(&other.lane_l(i)))
    }
    fn max_l(self, other: DdIx4) -> DdIx4 {
        <DdIx4 as LaneOps>::from_lanes_fn(|i| self.lane_l(i).max_i(&other.lane_l(i)))
    }
}

impl Numeric for f64 {
    type Lane = f64;

    fn from_f64(v: f64) -> f64 {
        v
    }
    fn from_f64_enclose(v: f64) -> f64 {
        v
    }
    fn from_rational(num: i64, den: i64) -> f64 {
        num as f64 / den as f64
    }
    fn sqrt_n(self) -> f64 {
        self.sqrt()
    }
    fn abs_n(self) -> f64 {
        self.abs()
    }
    fn min_n(self, other: f64) -> f64 {
        self.min(other)
    }
    fn max_n(self, other: f64) -> f64 {
        self.max(other)
    }
    fn relu(self) -> f64 {
        self.max(0.0)
    }
    fn mid_f64(&self) -> f64 {
        *self
    }
    fn certified_bits_n(&self) -> f64 {
        53.0
    }
}

impl Numeric for F64I {
    type Lane = F64Ix4;

    fn from_f64(v: f64) -> F64I {
        F64I::point(v)
    }
    fn from_f64_enclose(v: f64) -> F64I {
        F64I::enclose_decimal(v)
    }
    fn from_rational(num: i64, den: i64) -> F64I {
        F64I::point(num as f64) / F64I::point(den as f64)
    }
    fn enclose_sin(x: f64) -> F64I {
        let (lo, hi) = igen_interval::elem::sin_point(x);
        F64I::new(lo, hi).expect("ordered")
    }
    fn enclose_cos(x: f64) -> F64I {
        let (lo, hi) = igen_interval::elem::cos_point(x);
        F64I::new(lo, hi).expect("ordered")
    }
    fn sqrt_n(self) -> F64I {
        self.sqrt()
    }
    fn abs_n(self) -> F64I {
        self.abs()
    }
    fn sqr_n(self) -> F64I {
        self.sqr()
    }
    fn min_n(self, other: F64I) -> F64I {
        self.min_i(&other)
    }
    fn max_n(self, other: F64I) -> F64I {
        self.max_i(&other)
    }
    fn relu(self) -> F64I {
        self.max_i(&F64I::ZERO)
    }
    fn mid_f64(&self) -> f64 {
        self.mid()
    }
    fn certified_bits_n(&self) -> f64 {
        self.certified_bits()
    }
}

impl Numeric for DdI {
    type Lane = DdIx4;

    fn from_f64(v: f64) -> DdI {
        DdI::point_f64(v)
    }
    fn from_f64_enclose(v: f64) -> DdI {
        DdI::from_f64i(&F64I::enclose_decimal(v))
    }
    fn from_rational(num: i64, den: i64) -> DdI {
        DdI::point_f64(num as f64) / DdI::point_f64(den as f64)
    }
    fn enclose_sin(x: f64) -> DdI {
        let (lo, hi) = igen_interval::elem::sin_enclose_dd(x);
        DdI::new(lo, hi).expect("ordered")
    }
    fn enclose_cos(x: f64) -> DdI {
        let (lo, hi) = igen_interval::elem::cos_enclose_dd(x);
        DdI::new(lo, hi).expect("ordered")
    }
    fn sqrt_n(self) -> DdI {
        self.sqrt()
    }
    fn abs_n(self) -> DdI {
        self.abs()
    }
    fn sqr_n(self) -> DdI {
        self.sqr()
    }
    fn min_n(self, other: DdI) -> DdI {
        self.min_i(&other)
    }
    fn max_n(self, other: DdI) -> DdI {
        self.max_i(&other)
    }
    fn relu(self) -> DdI {
        self.max_i(&DdI::ZERO)
    }
    fn mid_f64(&self) -> f64 {
        0.5 * (self.lo().to_f64() + self.hi().to_f64())
    }
    fn certified_bits_n(&self) -> f64 {
        self.certified_bits()
    }
}

impl Numeric for F32I {
    type Lane = F32I;

    fn from_f64(v: f64) -> F32I {
        F32I::enclose_f64(v)
    }
    fn from_f64_enclose(v: f64) -> F32I {
        F32I::enclose_f64(v)
    }
    fn sqrt_n(self) -> F32I {
        self.sqrt()
    }
    fn abs_n(self) -> F32I {
        // Same roundtrip the interpreter's `ia_abs_f32` builtin uses:
        // the f64 kernel is exact on f32 endpoints.
        F32I::from_f64i(&self.to_f64i().abs())
    }
    fn min_n(self, other: F32I) -> F32I {
        self.min_i(&other)
    }
    fn max_n(self, other: F32I) -> F32I {
        self.max_i(&other)
    }
    fn relu(self) -> F32I {
        self.max_i(&F32I::ZERO)
    }
    fn mid_f64(&self) -> f64 {
        0.5 * (self.lo() as f64 + self.hi() as f64)
    }
    fn certified_bits_n(&self) -> f64 {
        self.certified_bits()
    }
}

impl Numeric for NaiveI {
    type Lane = NaiveI;

    fn from_f64(v: f64) -> NaiveI {
        NaiveI::point(v)
    }
    fn from_f64_enclose(v: f64) -> NaiveI {
        NaiveI::new(igen_round::next_down(v), igen_round::next_up(v))
    }
    fn sqrt_n(self) -> NaiveI {
        self.sqrt()
    }
    fn abs_n(self) -> NaiveI {
        let (l, h) = (self.lo(), self.hi());
        if l >= 0.0 {
            self
        } else if h <= 0.0 {
            NaiveI::new(-h, -l)
        } else {
            NaiveI::new(0.0, (-l).max(h))
        }
    }
    fn min_n(self, other: NaiveI) -> NaiveI {
        NaiveI::new(self.lo().min(other.lo()), self.hi().min(other.hi()))
    }
    fn max_n(self, other: NaiveI) -> NaiveI {
        NaiveI::new(self.lo().max(other.lo()), self.hi().max(other.hi()))
    }
    fn relu(self) -> NaiveI {
        self.max_zero()
    }
    fn mid_f64(&self) -> f64 {
        0.5 * (self.lo() + self.hi())
    }
    fn certified_bits_n(&self) -> f64 {
        self.certified_bits()
    }
}

impl Numeric for BoostI {
    type Lane = BoostI;

    fn from_f64(v: f64) -> BoostI {
        BoostI::point(v)
    }
    fn from_f64_enclose(v: f64) -> BoostI {
        BoostI::new(igen_round::next_down(v), igen_round::next_up(v))
    }
    fn sqrt_n(self) -> BoostI {
        self.sqrt()
    }
    fn abs_n(self) -> BoostI {
        let (l, h) = (self.lo(), self.hi());
        if l >= 0.0 {
            self
        } else if h <= 0.0 {
            BoostI::new(-h, -l)
        } else {
            BoostI::new(0.0, (-l).max(h))
        }
    }
    fn min_n(self, other: BoostI) -> BoostI {
        BoostI::new(self.lo().min(other.lo()), self.hi().min(other.hi()))
    }
    fn max_n(self, other: BoostI) -> BoostI {
        BoostI::new(self.lo().max(other.lo()), self.hi().max(other.hi()))
    }
    fn relu(self) -> BoostI {
        self.max_zero()
    }
    fn mid_f64(&self) -> f64 {
        0.5 * (self.lo() + self.hi())
    }
    fn certified_bits_n(&self) -> f64 {
        self.certified_bits()
    }
}

impl Numeric for FilibI {
    type Lane = FilibI;

    fn from_f64(v: f64) -> FilibI {
        FilibI::point(v)
    }
    fn from_f64_enclose(v: f64) -> FilibI {
        FilibI::new(igen_round::next_down(v), igen_round::next_up(v))
    }
    fn sqrt_n(self) -> FilibI {
        self.sqrt()
    }
    fn abs_n(self) -> FilibI {
        let (l, h) = (self.lo(), self.hi());
        if l >= 0.0 {
            self
        } else if h <= 0.0 {
            FilibI::new(-h, -l)
        } else {
            FilibI::new(0.0, (-l).max(h))
        }
    }
    fn min_n(self, other: FilibI) -> FilibI {
        FilibI::new(self.lo().min(other.lo()), self.hi().min(other.hi()))
    }
    fn max_n(self, other: FilibI) -> FilibI {
        FilibI::new(self.lo().max(other.lo()), self.hi().max(other.hi()))
    }
    fn relu(self) -> FilibI {
        self.max_zero()
    }
    fn mid_f64(&self) -> f64 {
        0.5 * (self.lo() + self.hi())
    }
    fn certified_bits_n(&self) -> f64 {
        self.certified_bits()
    }
}

impl Numeric for GaolI {
    type Lane = GaolI;

    fn from_f64(v: f64) -> GaolI {
        GaolI::point(v)
    }
    fn from_f64_enclose(v: f64) -> GaolI {
        GaolI::new(igen_round::next_down(v), igen_round::next_up(v))
    }
    fn sqrt_n(self) -> GaolI {
        self.sqrt()
    }
    fn abs_n(self) -> GaolI {
        let (l, h) = (self.lo(), self.hi());
        if l >= 0.0 {
            self
        } else if h <= 0.0 {
            GaolI::new(-h, -l)
        } else {
            GaolI::new(0.0, (-l).max(h))
        }
    }
    fn min_n(self, other: GaolI) -> GaolI {
        GaolI::new(self.lo().min(other.lo()), self.hi().min(other.hi()))
    }
    fn max_n(self, other: GaolI) -> GaolI {
        GaolI::new(self.lo().max(other.lo()), self.hi().max(other.hi()))
    }
    fn relu(self) -> GaolI {
        self.max_zero()
    }
    fn mid_f64(&self) -> f64 {
        0.5 * (self.lo() + self.hi())
    }
    fn certified_bits_n(&self) -> f64 {
        self.certified_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_formula<T: Numeric>(a: f64, b: f64, c: f64) -> T {
        // (-b + sqrt(b^2 - 4ac)) / (2a): exercises every trait op.
        let (a, b, c) = (T::from_f64(a), T::from_f64(b), T::from_f64(c));
        let four = T::from_f64(4.0);
        let two = T::from_f64(2.0);
        let disc = (b * b - four * a * c).sqrt_n();
        (-b + disc) / (two * a)
    }

    #[test]
    fn all_impls_agree_on_midpoints() {
        let truth: f64 = quad_formula::<f64>(1.0, -3.0, 2.0); // root 2
        assert_eq!(truth, 2.0);
        assert!((quad_formula::<F64I>(1.0, -3.0, 2.0).mid_f64() - 2.0).abs() < 1e-12);
        assert!((quad_formula::<DdI>(1.0, -3.0, 2.0).mid_f64() - 2.0).abs() < 1e-12);
        assert!((quad_formula::<BoostI>(1.0, -3.0, 2.0).mid_f64() - 2.0).abs() < 1e-12);
        assert!((quad_formula::<FilibI>(1.0, -3.0, 2.0).mid_f64() - 2.0).abs() < 1e-12);
        assert!((quad_formula::<GaolI>(1.0, -3.0, 2.0).mid_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn interval_impls_contain_f64_run() {
        let truth: f64 = quad_formula::<f64>(2.0, -7.3, 1.9);
        let iv = quad_formula::<F64I>(2.0, -7.3, 1.9);
        assert!(iv.contains(truth));
        let dd = quad_formula::<DdI>(2.0, -7.3, 1.9);
        assert!(dd.to_f64i().contains(truth));
    }

    #[test]
    fn f32_instantiation_is_sound_but_coarse() {
        let r32: F32I = quad_formula(2.0, -7.3, 1.9);
        let r64: F64I = quad_formula(2.0, -7.3, 1.9);
        // The f32 enclosure covers the f64 one, with far fewer bits.
        assert!((r32.lo() as f64) <= r64.lo() && r64.hi() <= (r32.hi() as f64));
        assert!(r32.certified_bits_n() <= 24.0);
        assert!(r32.certified_bits_n() > 15.0);
    }

    #[test]
    fn relu_and_enclose() {
        assert_eq!((-3.0f64).relu(), 0.0);
        let e = F64I::from_f64_enclose(std::f64::consts::PI);
        assert!(e.contains(std::f64::consts::PI));
        assert!(e.width() > 0.0);
    }
}
