//! Linear-algebra benchmarks: `gemm` (ATLAS-style matrix multiplication),
//! `potrf` (SLinGen-style Cholesky decomposition), and `mvm`
//! (matrix-vector product, the Section VI-B reduction benchmark).

use crate::num::{LaneOrScalar, Numeric};
use igen_interval::{DdI, SumAcc64, SumAccDd, F64I};

/// Dot product `Σ xᵢ·yᵢ` as a plain left-to-right fold — the per-row
/// reduction shared by `mvm` and `gemm`, exposed on its own as the unit
/// of the batched evaluation engine (`igen-batch`).
pub fn dot<T: Numeric>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len());
    let mut acc = T::zero();
    for (&xi, &yi) in x.iter().zip(y) {
        acc = acc + xi * yi;
    }
    acc
}

/// Interval operations of one dot product (1 mul + 1 add per element).
pub fn dot_iops(n: usize) -> u64 {
    2 * n as u64
}

/// `C += A·B` for row-major `m×k` times `k×n`, generic over the lane
/// width `L`: for each row of `C`, `L::WIDTH` adjacent columns evolve
/// together in one register — `acc += splat(a[i][p]) · b_cols[p]` — with
/// a scalar tail for `n mod WIDTH` columns. At `L = T` (width 1) this
/// *is* the classic scalar triple loop; at `L = T::Lane` each lane
/// executes exactly that scalar sequence for its own column, so both
/// instantiations agree bit for bit (see [`LaneOrScalar`]).
pub fn gemm_lanes<T: Numeric, L: LaneOrScalar<T>>(
    m: usize,
    k: usize,
    n: usize,
    a: &[T],
    b: &[T],
    c: &mut [T],
) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    for i in 0..m {
        let mut j = 0;
        while j + L::WIDTH <= n {
            let mut acc = L::load_l(&c[i * n + j..]);
            for p in 0..k {
                acc = acc + L::splat_l(a[i * k + p]) * L::load_l(&b[p * n + j..]);
            }
            acc.store_l(&mut c[i * n + j..]);
            j += L::WIDTH;
        }
        while j < n {
            let mut acc = c[i * n + j];
            for p in 0..k {
                acc = acc + a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
            j += 1;
        }
    }
}

/// `C += A·B` for row-major `m×k` times `k×n` — the scalar triple loop
/// (the `ss` configuration), i.e. [`gemm_lanes`] at width 1.
pub fn gemm<T: Numeric>(m: usize, k: usize, n: usize, a: &[T], b: &[T], c: &mut [T]) {
    gemm_lanes::<T, T>(m, k, n, a, b, c);
}

/// `C += A·B` on the widest lane type the element has ([`Numeric::Lane`]
/// — packed `F64Ix4`/`DdIx4` registers for the IGen interval types,
/// plain scalar otherwise). Bit-identical to [`gemm`].
pub fn gemm_packed<T: Numeric>(m: usize, k: usize, n: usize, a: &[T], b: &[T], c: &mut [T]) {
    gemm_lanes::<T, T::Lane>(m, k, n, a, b, c);
}

/// `C += A·B` with the inner loop unrolled by `LANES` along `j` —
/// independent accumulator chains map onto packed interval registers
/// (the `sv`/`vv` configurations).
pub fn gemm_unrolled<T: Numeric, const LANES: usize>(
    m: usize,
    k: usize,
    n: usize,
    a: &[T],
    b: &[T],
    c: &mut [T],
) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    for i in 0..m {
        let mut j = 0;
        while j + LANES <= n {
            let mut acc = [T::zero(); LANES];
            for (l, slot) in acc.iter_mut().enumerate() {
                *slot = c[i * n + j + l];
            }
            for p in 0..k {
                let av = a[i * k + p];
                for (l, slot) in acc.iter_mut().enumerate() {
                    *slot = *slot + av * b[p * n + j + l];
                }
            }
            for (l, slot) in acc.iter().enumerate() {
                c[i * n + j + l] = *slot;
            }
            j += LANES;
        }
        while j < n {
            let mut acc = c[i * n + j];
            for p in 0..k {
                acc = acc + a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
            j += 1;
        }
    }
}

/// Interval operations of a square gemm (1 mul + 1 add per inner step).
pub fn gemm_iops(n: usize) -> u64 {
    2 * (n as u64).pow(3)
}

/// Cholesky decomposition `A = L·Lᵀ` of a symmetric positive-definite
/// row-major `n×n` matrix; the lower triangle of `a` is overwritten with
/// `L` (the `potrf` benchmark).
pub fn potrf<T: Numeric>(n: usize, a: &mut [T]) {
    assert_eq!(a.len(), n * n);
    for j in 0..n {
        let mut d = a[j * n + j];
        for p in 0..j {
            let l = a[j * n + p];
            d = d - l * l;
        }
        let d = d.sqrt_n();
        a[j * n + j] = d;
        for i in j + 1..n {
            let mut s = a[i * n + j];
            for p in 0..j {
                s = s - a[i * n + p] * a[j * n + p];
            }
            a[i * n + j] = s / d;
        }
    }
}

/// Cholesky with the column-update loop unrolled by `LANES` (independent
/// rows per lane).
pub fn potrf_unrolled<T: Numeric, const LANES: usize>(n: usize, a: &mut [T]) {
    assert_eq!(a.len(), n * n);
    for j in 0..n {
        let mut d = a[j * n + j];
        for p in 0..j {
            let l = a[j * n + p];
            d = d - l * l;
        }
        let d = d.sqrt_n();
        a[j * n + j] = d;
        let mut i = j + 1;
        while i + LANES <= n {
            let mut s = [T::zero(); LANES];
            for (l, slot) in s.iter_mut().enumerate() {
                *slot = a[(i + l) * n + j];
            }
            for p in 0..j {
                let ljp = a[j * n + p];
                for (l, slot) in s.iter_mut().enumerate() {
                    *slot = *slot - a[(i + l) * n + p] * ljp;
                }
            }
            for (l, slot) in s.iter().enumerate() {
                a[(i + l) * n + j] = *slot / d;
            }
            i += LANES;
        }
        while i < n {
            let mut s = a[i * n + j];
            for p in 0..j {
                s = s - a[i * n + p] * a[j * n + p];
            }
            a[i * n + j] = s / d;
            i += 1;
        }
    }
}

/// Interval operations of potrf (~n³/3 mul+sub pairs).
pub fn potrf_iops(n: usize) -> u64 {
    let n = n as u64;
    2 * n * n * n / 3 + 2 * n * n
}

/// `y = A·x + y` for row-major `m×n` — the Section VI-B benchmark,
/// plain interval loop.
pub fn mvm<T: Numeric>(m: usize, n: usize, a: &[T], x: &[T], y: &mut [T]) {
    assert_eq!(a.len(), m * n);
    assert_eq!(x.len(), n);
    assert_eq!(y.len(), m);
    for i in 0..m {
        let mut acc = y[i];
        for j in 0..n {
            acc = acc + a[i * n + j] * x[j];
        }
        y[i] = acc;
    }
}

/// `y = A·x + y` with the double-precision reduction transformation:
/// each row accumulates in the double-double accumulator (Fig. 7's
/// generated shape).
pub fn mvm_acc_f64(m: usize, n: usize, a: &[F64I], x: &[F64I], y: &mut [F64I]) {
    assert_eq!(a.len(), m * n);
    for i in 0..m {
        let mut acc = SumAcc64::new(y[i]);
        for j in 0..n {
            acc.accumulate(&(a[i * n + j] * x[j]));
        }
        y[i] = acc.reduce();
    }
}

/// `y = A·x + y` in double-double with the exact exponent-bucket
/// accumulator (Section VI-B, DD target).
pub fn mvm_acc_dd(m: usize, n: usize, a: &[DdI], x: &[DdI], y: &mut [DdI]) {
    assert_eq!(a.len(), m * n);
    for i in 0..m {
        let mut acc = SumAccDd::new(y[i]);
        for j in 0..n {
            acc.accumulate(&(a[i * n + j] * x[j]));
        }
        y[i] = acc.reduce();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }

    #[test]
    fn gemm_matches_reference() {
        let (m, k, n) = (3, 4, 5);
        let a = seq(m * k, |i| (i as f64) * 0.5 - 2.0);
        let b = seq(k * n, |i| 1.0 / (i as f64 + 1.0));
        let mut c = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c);
        // Reference element (1,2).
        let want: f64 = (0..k).map(|p| a[k + p] * b[p * n + 2]).sum();
        assert!((c[n + 2] - want).abs() < 1e-12);
    }

    #[test]
    fn gemm_unrolled_bitwise_matches() {
        use igen_interval::F64I;
        let (m, k, n) = (4, 6, 7); // n=7 exercises the lane tail
        let a: Vec<F64I> =
            seq(m * k, |i| (i as f64 - 10.0) * 0.3).iter().map(|&v| F64I::point(v)).collect();
        let b: Vec<F64I> =
            seq(k * n, |i| 0.1 * (i as f64 + 1.0)).iter().map(|&v| F64I::point(v)).collect();
        let mut c1 = vec![F64I::ZERO; m * n];
        gemm(m, k, n, &a, &b, &mut c1);
        let mut c2 = vec![F64I::ZERO; m * n];
        gemm_unrolled::<F64I, 2>(m, k, n, &a, &b, &mut c2);
        let mut c4 = vec![F64I::ZERO; m * n];
        gemm_unrolled::<F64I, 4>(m, k, n, &a, &b, &mut c4);
        assert_eq!(c1, c2);
        assert_eq!(c1, c4);
    }

    #[test]
    fn potrf_reconstructs() {
        // SPD matrix A = M·Mᵀ + n·I.
        let n = 6;
        let mvals = seq(n * n, |i| ((i * 13 % 17) as f64) / 17.0 - 0.3);
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                for p in 0..n {
                    a[i * n + j] += mvals[i * n + p] * mvals[j * n + p];
                }
            }
            a[i * n + i] += n as f64;
        }
        let orig = a.clone();
        potrf(n, &mut a);
        // L·Lᵀ == original (lower triangle carries L).
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for p in 0..=j {
                    s += a[i * n + p] * a[j * n + p];
                }
                assert!((s - orig[i * n + j]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn potrf_interval_contains_float_and_unrolled_matches() {
        use igen_interval::F64I;
        let n = 10;
        let mut af = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                af[i * n + j] = 1.0 / ((i + j + 1) as f64) + if i == j { 2.0 } else { 0.0 };
            }
        }
        let mut f = af.clone();
        potrf(n, &mut f);
        let ai: Vec<F64I> = af.iter().map(|&v| F64I::point(v)).collect();
        let mut i1 = ai.clone();
        potrf(n, &mut i1);
        let mut i4 = ai.clone();
        potrf_unrolled::<F64I, 4>(n, &mut i4);
        assert_eq!(i1, i4);
        for r in 0..n {
            for c in 0..=r {
                assert!(
                    i1[r * n + c].contains(f[r * n + c]),
                    "L[{r},{c}] = {} outside {}",
                    f[r * n + c],
                    i1[r * n + c]
                );
            }
        }
    }

    #[test]
    fn mvm_accumulator_is_tighter() {
        use igen_interval::F64I;
        let (m, n) = (3, 200);
        let a: Vec<F64I> =
            (0..m * n).map(|i| F64I::point(0.05 * ((i * 7 % 23) as f64 - 11.0))).collect();
        let x: Vec<F64I> = (0..n).map(|i| F64I::point(1.0 / (i as f64 + 2.0))).collect();
        let y0: Vec<F64I> = vec![F64I::point(0.25); m];
        let mut y_plain = y0.clone();
        mvm(m, n, &a, &x, &mut y_plain);
        let mut y_acc = y0.clone();
        mvm_acc_f64(m, n, &a, &x, &mut y_acc);
        for i in 0..m {
            assert!(
                y_acc[i].certified_bits() >= y_plain[i].certified_bits(),
                "row {i}: acc {} < plain {}",
                y_acc[i].certified_bits(),
                y_plain[i].certified_bits()
            );
            // Both contain the dd-accurate reference.
            let mut r = igen_dd::Dd::from(0.25);
            for j in 0..n {
                r = r + igen_dd::Dd::from(a[i * n + j].mid()) * igen_dd::Dd::from(x[j].mid());
            }
            assert!(y_acc[i].contains(r.to_f64()));
            assert!(y_plain[i].contains(r.to_f64()));
        }
    }

    #[test]
    fn mvm_dd_accumulator_certifies() {
        use igen_interval::DdI;
        let (m, n) = (2, 500);
        let a: Vec<DdI> =
            (0..m * n).map(|i| DdI::point_f64(0.01 * ((i * 11 % 31) as f64 - 15.0))).collect();
        let x: Vec<DdI> = (0..n).map(|i| DdI::point_f64((i as f64 * 0.37).cos())).collect();
        let mut y = vec![DdI::ZERO; m];
        mvm_acc_dd(m, n, &a, &x, &mut y);
        for v in &y {
            assert!(v.certified_bits() > 95.0, "bits = {}", v.certified_bits());
        }
    }
}
