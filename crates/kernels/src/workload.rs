//! Workload generation per the paper's experimental setup (Section VII):
//! random inputs; interval inputs have width 1 ulp; for double-double
//! precision the width is `ulp(x_lo)` of a random double-double; the mvm
//! experiment draws magnitudes randomly with a controlled fraction of
//! negative values.

use igen_dd::Dd;
use igen_interval::{DdI, F64I};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded RNG for reproducible workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Random doubles in `[lo, hi)`.
pub fn random_points(rng: &mut StdRng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.random_range(lo..hi)).collect()
}

/// 1-ulp-wide interval around each point (`[x, next_up(x)]`) — the
/// paper's input intervals.
pub fn intervals_1ulp(points: &[f64]) -> Vec<F64I> {
    points.iter().map(|&x| F64I::new(x, igen_round::next_up(x)).expect("ordered")).collect()
}

/// Double-double intervals of width `ulp(x_lo)` around random
/// double-double values (Section VII: "the length of an input interval
/// is ulp(x_l), where x_l is the lower term of a random double-double").
pub fn dd_intervals_1ulp(rng: &mut StdRng, n: usize, lo: f64, hi: f64) -> Vec<DdI> {
    (0..n)
        .map(|_| {
            let xh = rng.random_range(lo..hi);
            let xl = rng.random_range(-0.49..0.49) * igen_round::ulp(xh);
            let x = Dd::new(xh, xl);
            let w = igen_round::ulp(x.lo().abs().max(f64::MIN_POSITIVE));
            let upper = igen_dd::add_dir::<igen_round::Ru>(x, Dd::from(w));
            DdI::new(x, upper).expect("ordered")
        })
        .collect()
}

/// The mvm experiment's inputs (Section VII-B): magnitudes drawn
/// randomly, with `pct_negative` percent of entries negated.
pub fn signed_magnitudes(rng: &mut StdRng, n: usize, pct_negative: u32) -> Vec<f64> {
    (0..n)
        .map(|_| {
            // Magnitudes "drawn randomly from the set of double precision
            // numbers": spread exponents over a wide but finite range so
            // sums stay finite.
            let e = rng.random_range(-30..30);
            let m = rng.random_range(1.0..2.0);
            let v = m * 2f64.powi(e);
            if rng.random_range(0..100) < pct_negative {
                -v
            } else {
                v
            }
        })
        .collect()
}

/// A random symmetric positive-definite matrix (for potrf): `MᵀM + n·I`.
pub fn spd_matrix(rng: &mut StdRng, n: usize) -> Vec<f64> {
    let m: Vec<f64> = (0..n * n).map(|_| rng.random_range(-1.0..1.0)).collect();
    let mut a = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for p in 0..n {
                s += m[i * n + p] * m[j * n + p];
            }
            a[i * n + j] = s;
        }
        a[i * n + i] += n as f64;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_have_1ulp_width() {
        let mut r = rng(1);
        let pts = random_points(&mut r, 100, -10.0, 10.0);
        for iv in intervals_1ulp(&pts) {
            assert_eq!(igen_round::ulps_between(iv.lo(), iv.hi()), 1);
        }
    }

    #[test]
    fn dd_intervals_are_tiny_but_nonzero() {
        let mut r = rng(2);
        for iv in dd_intervals_1ulp(&mut r, 50, 0.5, 2.0) {
            assert!(!iv.width().is_zero());
            assert!(iv.certified_bits() > 100.0);
        }
    }

    #[test]
    fn signed_fraction_respected() {
        let mut r = rng(3);
        let v = signed_magnitudes(&mut r, 10_000, 45);
        let neg = v.iter().filter(|&&x| x < 0.0).count();
        assert!((4000..5000).contains(&neg), "neg = {neg}");
        let v10 = signed_magnitudes(&mut r, 10_000, 10);
        let neg10 = v10.iter().filter(|&&x| x < 0.0).count();
        assert!((700..1300).contains(&neg10), "neg = {neg10}");
    }

    #[test]
    fn spd_is_choleskyable() {
        let mut r = rng(4);
        let n = 12;
        let mut a = spd_matrix(&mut r, n);
        crate::linalg::potrf(n, &mut a);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn workloads_are_reproducible() {
        let a = random_points(&mut rng(7), 10, 0.0, 1.0);
        let b = random_points(&mut rng(7), 10, 0.0, 1.0);
        assert_eq!(a, b);
    }
}
