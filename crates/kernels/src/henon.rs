//! The Hénon map (Fig. 11) — the Section VII-C dependency-problem
//! benchmark, with interval, double-double and affine instantiations.

use crate::num::Numeric;
use igen_affine::Aff;

/// The iterate count → final `x` value of the Hénon map
/// `x' = 1 - a·x² + y`, `y' = b·x` with `a = 1.05`, `b = 0.3`, from
/// `(x₀, y₀) = (0, 0)` (the paper's parameters).
pub fn henon<T: Numeric>(iterations: usize) -> T {
    henon_from(T::zero(), T::zero(), iterations)
}

/// The Hénon map from an arbitrary initial point — the orbit-ensemble
/// form used by `igen-batch` (many initial conditions evolved in
/// lock-step). `henon(n)` is exactly `henon_from(0, 0, n)`.
pub fn henon_from<T: Numeric>(x0: T, y0: T, iterations: usize) -> T {
    // The literals 1.05 and 0.3 are not exactly representable: sound
    // enclosures at the type's own precision.
    let a = T::from_rational(105, 100);
    let b = T::from_rational(3, 10);
    let one = T::one();
    let mut x = x0;
    let mut y = y0;
    for _ in 0..iterations {
        let xi = x;
        x = one - a * xi * xi + y;
        y = b * xi;
    }
    x
}

/// The same map in affine arithmetic (the YalAA comparison of Table VI).
pub fn henon_affine(iterations: usize) -> Aff {
    let a = Aff::with_tol(1.05, igen_round::ulp(1.05));
    let b = Aff::with_tol(0.3, igen_round::ulp(0.3));
    let one = Aff::constant(1.0);
    let mut x = Aff::constant(0.0);
    let mut y = Aff::constant(0.0);
    for _ in 0..iterations {
        let xi = x.clone();
        x = one.clone() - a.clone() * xi.clone() * xi.clone() + y.clone();
        y = b.clone() * xi;
    }
    x
}

/// Interval operations per Hénon iteration (2 mul + 1 sub + 1 add + 1
/// mul = 5).
pub fn henon_iops(iterations: usize) -> u64 {
    5 * iterations as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use igen_interval::{DdI, F64I};

    #[test]
    fn float_and_interval_agree_initially() {
        let f: f64 = henon(10);
        let iv: F64I = henon(10);
        assert!(iv.contains(f), "{f} outside {iv}");
    }

    #[test]
    fn table6_accuracy_shape() {
        // Table VI: f64i ~44 bits at 10 iterations, ~24 at 50, 0 at 130+;
        // ddi ~96 at 10, still >0 at 170; affine ~constant 44.
        let b10 = henon::<F64I>(10).certified_bits();
        let b50 = henon::<F64I>(50).certified_bits();
        let b130 = henon::<F64I>(130).certified_bits();
        assert!(b10 > 35.0, "f64i@10 = {b10}");
        assert!(b50 < b10 && b50 > 5.0, "f64i@50 = {b50}");
        assert!(b130 < 5.0, "f64i@130 = {b130}");

        let d10 = henon::<DdI>(10).certified_bits();
        let d170 = henon::<DdI>(170).certified_bits();
        assert!(d10 > 85.0, "ddi@10 = {d10}");
        assert!(d170 > 5.0 && d170 < d10, "ddi@170 = {d170}");

        let a10 = henon_affine(10).certified_bits();
        let a170 = henon_affine(170).certified_bits();
        assert!(a10 > 38.0, "aff@10 = {a10}");
        assert!(a170 > 38.0, "aff@170 = {a170}");
    }

    #[test]
    fn affine_encloses_float() {
        let f: f64 = henon(50);
        let (lo, hi) = henon_affine(50).to_interval();
        assert!(lo <= f && f <= hi, "{f} outside [{lo}, {hi}]");
    }
}
