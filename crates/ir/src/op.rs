//! Interval operation metadata: the opcode set of the IR, with the
//! endpoint-precision suffix, purity and cost of every operation.
//!
//! Every runtime call emitted by the compiler (`ia_*`, `isum_*`) is an
//! [`OpKind`] plus a [`Sfx`]; the mapping between opcodes and C names is
//! exact and bijective so that lowering a call name to an opcode and
//! printing it back reproduces the original spelling byte-for-byte.

/// Endpoint precision suffix of an interval operation (`_f32`, `_f64`,
/// `_dd`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sfx {
    /// Single precision endpoints (`f32i`).
    F32,
    /// Double precision endpoints (`f64i`).
    F64,
    /// Double-double endpoints (`ddi`).
    Dd,
}

impl Sfx {
    /// The C name suffix.
    pub fn as_str(self) -> &'static str {
        match self {
            Sfx::F32 => "f32",
            Sfx::F64 => "f64",
            Sfx::Dd => "dd",
        }
    }

    fn parse(s: &str) -> Option<Sfx> {
        match s {
            "f32" => Some(Sfx::F32),
            "f64" => Some(Sfx::F64),
            "dd" => Some(Sfx::Dd),
            _ => None,
        }
    }
}

/// The opcode of one interval runtime operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `ia_add_*`
    Add,
    /// `ia_sub_*`
    Sub,
    /// `ia_mul_*`
    Mul,
    /// `ia_div_*`
    Div,
    /// `ia_neg_*`
    Neg,
    /// `ia_sqr_*` — dependency-aware square.
    Sqr,
    /// `ia_pow_*` — integer power.
    Pow,
    /// `ia_sqrt_*`
    Sqrt,
    /// `ia_abs_*`
    Abs,
    /// `ia_floor_*`
    Floor,
    /// `ia_ceil_*`
    Ceil,
    /// `ia_exp_*`
    Exp,
    /// `ia_log_*`
    Log,
    /// `ia_sin_*`
    Sin,
    /// `ia_cos_*`
    Cos,
    /// `ia_tan_*`
    Tan,
    /// `ia_atan_*`
    Atan,
    /// `ia_asin_*`
    Asin,
    /// `ia_acos_*`
    Acos,
    /// `ia_min_*`
    Min,
    /// `ia_max_*`
    Max,
    /// `ia_join_*` — convex hull (join-branches policy).
    Join,
    /// `ia_set_*` — interval constant from two endpoint literals.
    Set,
    /// `ia_set_int_*` — exact conversion of an integer.
    SetInt,
    /// `ia_set_tol_*` — tolerance annotation (Fig. 3).
    SetTol,
    /// `ia_set_ddx` — double-double constant with four components.
    SetDdx,
    /// `ia_cmplt_*` → `tbool`
    CmpLt,
    /// `ia_cmple_*` → `tbool`
    CmpLe,
    /// `ia_cmpgt_*` → `tbool`
    CmpGt,
    /// `ia_cmpge_*` → `tbool`
    CmpGe,
    /// `ia_cmpeq_*` → `tbool`
    CmpEq,
    /// `ia_cmpne_*` → `tbool`
    CmpNe,
    /// `ia_cvt2bool_tb` — decide a three-valued boolean; **signals** on
    /// the unknown state, so it is never dead-code-eliminated.
    Cvt2Bool,
    /// `ia_is_true_tb`
    IsTrue,
    /// `ia_is_false_tb`
    IsFalse,
    /// `ia_and_*` — endpoint-wise mask and.
    And,
    /// `ia_or_*`
    Or,
    /// `ia_xor_*`
    Xor,
    /// `ia_not_*`
    Not,
    /// `isum_init_*` — accurate accumulator initialization (Fig. 7).
    SumInit,
    /// `isum_accumulate_*`
    SumAccumulate,
    /// `isum_reduce_*`
    SumReduce,
    /// A hand-optimized SIMD interval kernel `ia_mm…`; the payload is the
    /// full name tail after `ia_` (e.g. `mm256_add_pd`).
    Simd(String),
}

impl OpKind {
    /// The `_`-separated middle tag of suffixed `ia_` names, if this
    /// opcode uses that naming scheme.
    fn ia_tag(&self) -> Option<&'static str> {
        use OpKind::*;
        Some(match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            Neg => "neg",
            Sqr => "sqr",
            Pow => "pow",
            Sqrt => "sqrt",
            Abs => "abs",
            Floor => "floor",
            Ceil => "ceil",
            Exp => "exp",
            Log => "log",
            Sin => "sin",
            Cos => "cos",
            Tan => "tan",
            Atan => "atan",
            Asin => "asin",
            Acos => "acos",
            Min => "min",
            Max => "max",
            Join => "join",
            Set => "set",
            SetInt => "set_int",
            SetTol => "set_tol",
            CmpLt => "cmplt",
            CmpLe => "cmple",
            CmpGt => "cmpgt",
            CmpGe => "cmpge",
            CmpEq => "cmpeq",
            CmpNe => "cmpne",
            And => "and",
            Or => "or",
            Xor => "xor",
            Not => "not",
            _ => return None,
        })
    }

    fn from_ia_tag(tag: &str) -> Option<OpKind> {
        use OpKind::*;
        Some(match tag {
            "add" => Add,
            "sub" => Sub,
            "mul" => Mul,
            "div" => Div,
            "neg" => Neg,
            "sqr" => Sqr,
            "pow" => Pow,
            "sqrt" => Sqrt,
            "abs" => Abs,
            "floor" => Floor,
            "ceil" => Ceil,
            "exp" => Exp,
            "log" => Log,
            "sin" => Sin,
            "cos" => Cos,
            "tan" => Tan,
            "atan" => Atan,
            "asin" => Asin,
            "acos" => Acos,
            "min" => Min,
            "max" => Max,
            "join" => Join,
            "set" => Set,
            "set_int" => SetInt,
            "set_tol" => SetTol,
            "cmplt" => CmpLt,
            "cmple" => CmpLe,
            "cmpgt" => CmpGt,
            "cmpge" => CmpGe,
            "cmpeq" => CmpEq,
            "cmpne" => CmpNe,
            "and" => And,
            "or" => Or,
            "xor" => Xor,
            "not" => Not,
            _ => return None,
        })
    }

    /// Parses a runtime call name into `(opcode, suffix)`. Names outside
    /// the runtime interface return `None` and stay ordinary calls.
    /// Suffix-less operations (`ia_set_ddx`, the `_tb` queries, SIMD
    /// kernels) report [`Sfx::F64`]; printing ignores it for them.
    pub fn parse(name: &str) -> Option<(OpKind, Sfx)> {
        match name {
            "ia_set_ddx" => return Some((OpKind::SetDdx, Sfx::F64)),
            "ia_cvt2bool_tb" => return Some((OpKind::Cvt2Bool, Sfx::F64)),
            "ia_is_true_tb" => return Some((OpKind::IsTrue, Sfx::F64)),
            "ia_is_false_tb" => return Some((OpKind::IsFalse, Sfx::F64)),
            _ => {}
        }
        if let Some(tail) = name.strip_prefix("ia_mm") {
            return Some((OpKind::Simd(format!("mm{tail}")), Sfx::F64));
        }
        if let Some(rest) = name.strip_prefix("isum_") {
            let (tag, sfx) = rest.rsplit_once('_')?;
            let sfx = Sfx::parse(sfx)?;
            let op = match tag {
                "init" => OpKind::SumInit,
                "accumulate" => OpKind::SumAccumulate,
                "reduce" => OpKind::SumReduce,
                _ => return None,
            };
            return Some((op, sfx));
        }
        let rest = name.strip_prefix("ia_")?;
        let (tag, sfx) = rest.rsplit_once('_')?;
        let sfx = Sfx::parse(sfx)?;
        Some((OpKind::from_ia_tag(tag)?, sfx))
    }

    /// The exact C runtime name of this operation at the given precision
    /// (inverse of [`OpKind::parse`]).
    pub fn c_name(&self, sfx: Sfx) -> String {
        match self {
            OpKind::SetDdx => "ia_set_ddx".to_string(),
            OpKind::Cvt2Bool => "ia_cvt2bool_tb".to_string(),
            OpKind::IsTrue => "ia_is_true_tb".to_string(),
            OpKind::IsFalse => "ia_is_false_tb".to_string(),
            OpKind::Simd(tail) => format!("ia_{tail}"),
            OpKind::SumInit => format!("isum_init_{}", sfx.as_str()),
            OpKind::SumAccumulate => format!("isum_accumulate_{}", sfx.as_str()),
            OpKind::SumReduce => format!("isum_reduce_{}", sfx.as_str()),
            other => {
                let tag = other.ia_tag().expect("suffixed ia_ op");
                format!("ia_{tag}_{}", sfx.as_str())
            }
        }
    }

    /// Free of side effects: executing the operation changes no state
    /// other than producing its value. Accumulator operations mutate the
    /// accumulator; SIMD stores write memory.
    pub fn side_effect_free(&self) -> bool {
        match self {
            OpKind::SumInit | OpKind::SumAccumulate | OpKind::SumReduce => false,
            OpKind::Simd(tail) => !tail.contains("store"),
            _ => true,
        }
    }

    /// Safe to delete when the result is unused. Side-effecting
    /// operations are not, and neither is `ia_cvt2bool_tb`: it signals an
    /// exception on the unknown state, which deleting would suppress.
    pub fn removable_if_dead(&self) -> bool {
        self.side_effect_free() && *self != OpKind::Cvt2Bool
    }

    /// A deterministic pure function of its argument *values*: two
    /// occurrences with identical arguments produce identical results, so
    /// common-subexpression elimination may merge them. SIMD loads read
    /// memory through a pointer argument and are excluded.
    pub fn cse_safe(&self) -> bool {
        match self {
            OpKind::Simd(tail) => !tail.contains("store") && !tail.contains("load"),
            other => other.side_effect_free(),
        }
    }

    /// Abstract cost in units of one directed-rounding addition — the
    /// per-pass cost deltas of `--dump-passes` are sums of these. The
    /// figures follow the relative latencies of the paper's runtime,
    /// where every operation pays for software directed rounding via
    /// error-free transformations.
    pub fn cost(&self) -> u64 {
        use OpKind::*;
        match self {
            Set | SetInt | SetTol | SetDdx => 1,
            Cvt2Bool | IsTrue | IsFalse => 1,
            Add | Sub | Neg | Abs | Floor | Ceil | Min | Max | Join => 2,
            CmpLt | CmpLe | CmpGt | CmpGe | CmpEq | CmpNe => 2,
            And | Or | Xor | Not => 2,
            Mul | Sqr => 4,
            Div | Sqrt => 8,
            Pow => 12,
            Exp | Log | Sin | Cos | Tan | Atan | Asin | Acos => 20,
            SumInit => 4,
            SumAccumulate => 8,
            SumReduce => 12,
            Simd(_) => 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_round_trip() {
        for name in [
            "ia_add_f64",
            "ia_sub_f32",
            "ia_mul_dd",
            "ia_set_f64",
            "ia_set_int_f32",
            "ia_set_tol_f64",
            "ia_set_ddx",
            "ia_cmplt_f64",
            "ia_cvt2bool_tb",
            "ia_is_true_tb",
            "ia_is_false_tb",
            "ia_sqr_f64",
            "ia_pow_f64",
            "ia_join_dd",
            "ia_and_f64",
            "ia_not_f64",
            "isum_init_f64",
            "isum_accumulate_dd",
            "isum_reduce_f32",
            "ia_mm256_add_pd",
            "ia_mm_loadu_pd",
        ] {
            let (op, sfx) = OpKind::parse(name).unwrap_or_else(|| panic!("parse {name}"));
            assert_eq!(op.c_name(sfx), name);
        }
    }

    #[test]
    fn non_runtime_names_rejected() {
        for name in ["foo", "_c_mm256_unpacklo_pd", "_mm256_add_pd", "malloc", "ia_bogus_f64"] {
            assert!(OpKind::parse(name).is_none(), "{name}");
        }
    }

    #[test]
    fn purity_classes() {
        assert!(OpKind::Add.side_effect_free());
        assert!(OpKind::Add.removable_if_dead());
        assert!(OpKind::Add.cse_safe());
        assert!(!OpKind::SumAccumulate.side_effect_free());
        assert!(OpKind::Cvt2Bool.side_effect_free());
        assert!(!OpKind::Cvt2Bool.removable_if_dead());
        assert!(!OpKind::Simd("mm256_storeu_pd".into()).side_effect_free());
        assert!(!OpKind::Simd("mm256_loadu_pd".into()).cse_safe());
        assert!(OpKind::Simd("mm256_mul_pd".into()).cse_safe());
    }
}
