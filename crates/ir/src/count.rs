//! Operation counting: the op-count/cost statistics reported per pass by
//! `--dump-passes`. When directed rounding is done in software, every
//! interval operation pays for error-free transformations, so the static
//! op count is the quantity the optimization pipeline tries to shrink.

use crate::ir::{IrFunction, IrStmt, IrUnit};

/// Static operation statistics of a function or unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpStats {
    /// Number of interval runtime operations ([`crate::IrExpr::Op`]
    /// nodes).
    pub ops: usize,
    /// Sum of the abstract per-op costs ([`crate::OpKind::cost`]).
    pub cost: u64,
    /// Per-opcode counts, keyed by the `f64`-suffix C name, sorted by
    /// name for deterministic reports.
    pub per_op: Vec<(String, usize)>,
}

impl OpStats {
    fn add_op(&mut self, name: String, cost: u64) {
        self.ops += 1;
        self.cost += cost;
        match self.per_op.binary_search_by(|(n, _)| n.as_str().cmp(&name)) {
            Ok(i) => self.per_op[i].1 += 1,
            Err(i) => self.per_op.insert(i, (name, 1)),
        }
    }

    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: &OpStats) {
        self.ops += other.ops;
        self.cost += other.cost;
        for (name, n) in &other.per_op {
            match self.per_op.binary_search_by(|(m, _)| m.as_str().cmp(name)) {
                Ok(i) => self.per_op[i].1 += n,
                Err(i) => self.per_op.insert(i, (name.clone(), *n)),
            }
        }
    }
}

fn count_stmts(stmts: &[IrStmt], stats: &mut OpStats) {
    for s in stmts {
        s.walk_exprs(&mut |e| {
            if let crate::ir::IrExpr::Op { op, sfx, .. } = e {
                stats.add_op(op.c_name(*sfx), op.cost());
            }
        });
    }
}

/// Statistics for one function (empty for prototypes).
pub fn function_stats(f: &IrFunction) -> OpStats {
    let mut stats = OpStats::default();
    if let Some(body) = &f.body {
        count_stmts(body, &mut stats);
    }
    stats
}

/// Statistics for a whole unit (all function definitions).
pub fn unit_stats(unit: &IrUnit) -> OpStats {
    let mut stats = OpStats::default();
    for f in unit.functions() {
        stats.merge(&function_stats(f));
    }
    stats
}
