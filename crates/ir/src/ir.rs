//! The IR node types: a typed three-address form of interval programs.
//!
//! Statements mirror the structured control flow of the C subset; the
//! three-address discipline lives in [`IrStmt::Def`] — every
//! intermediate interval operation is bound to a numbered temporary
//! `t<N>` that is defined exactly once and never reassigned (SSA by
//! construction of the lowering, which materializes nested operations
//! into fresh temporaries as in Fig. 2 of the paper). Named program
//! variables remain mutable and are represented as [`IrExpr::Var`].

use crate::op::{OpKind, Sfx};
use igen_cfront::{AssignOp, BinOp, Loc, Param, Pragma, Type, Typedef, UnOp, VarDecl};

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum IrExpr {
    /// Integer literal (source spelling preserved).
    Int {
        /// Value.
        value: i64,
        /// Source spelling.
        text: String,
    },
    /// Floating literal (source spelling preserved).
    Float {
        /// Parsed binary64 value.
        value: f64,
        /// Source spelling (no suffix).
        text: String,
        /// `f` suffix.
        f32: bool,
        /// IGen tolerance suffix `t`.
        tol: bool,
    },
    /// A named program variable (parameter, local, global, accumulator).
    Var(String, Loc),
    /// A numbered SSA temporary `t<N>`.
    Temp(u32),
    /// An interval runtime operation (`ia_*` / `isum_*`).
    Op {
        /// Opcode.
        op: OpKind,
        /// Endpoint precision.
        sfx: Sfx,
        /// Operands.
        args: Vec<IrExpr>,
        /// Source location of the originating expression.
        loc: Loc,
    },
    /// Any other call (user functions, generated `_c_mm…` intrinsics).
    Call {
        /// Callee.
        name: String,
        /// Arguments.
        args: Vec<IrExpr>,
        /// Location.
        loc: Loc,
    },
    /// Unary operation on plain (non-interval) values.
    Unary(UnOp, Box<IrExpr>),
    /// Postfix `x++` / `x--`.
    PostIncDec(Box<IrExpr>, bool),
    /// Plain binary operation (integer arithmetic, index math).
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<IrExpr>,
        /// Right operand.
        rhs: Box<IrExpr>,
        /// Location.
        loc: Loc,
    },
    /// Assignment (a store when the target is a variable or memory).
    Assign {
        /// Operator.
        op: AssignOp,
        /// Target lvalue.
        lhs: Box<IrExpr>,
        /// Stored value.
        rhs: Box<IrExpr>,
        /// Location (preserved from the source assignment for the
        /// reduction pass's Polly-style report).
        loc: Loc,
    },
    /// `base[index]` — a memory access.
    Index(Box<IrExpr>, Box<IrExpr>),
    /// `base.field` / `base->field`.
    Member {
        /// Accessed object.
        base: Box<IrExpr>,
        /// Field.
        field: String,
        /// `->`.
        arrow: bool,
    },
    /// C cast.
    Cast(Type, Box<IrExpr>),
    /// Ternary conditional.
    Cond(Box<IrExpr>, Box<IrExpr>, Box<IrExpr>),
}

impl IrExpr {
    /// Convenience temp reference.
    pub fn temp(n: u32) -> IrExpr {
        IrExpr::Temp(n)
    }

    /// Convenience variable reference.
    pub fn var(name: &str) -> IrExpr {
        IrExpr::Var(name.to_string(), Loc::default())
    }

    /// Visits this expression and all sub-expressions, outside-in.
    pub fn walk(&self, f: &mut dyn FnMut(&IrExpr)) {
        f(self);
        match self {
            IrExpr::Op { args, .. } | IrExpr::Call { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            IrExpr::Unary(_, e) | IrExpr::PostIncDec(e, _) | IrExpr::Cast(_, e) => e.walk(f),
            IrExpr::Binary { lhs, rhs, .. } | IrExpr::Assign { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            IrExpr::Index(b, i) => {
                b.walk(f);
                i.walk(f);
            }
            IrExpr::Member { base, .. } => base.walk(f),
            IrExpr::Cond(c, t, e) => {
                c.walk(f);
                t.walk(f);
                e.walk(f);
            }
            _ => {}
        }
    }

    /// Mutably visits this expression and all sub-expressions,
    /// outside-in. The callback may rewrite nodes in place; rewritten
    /// children are still visited.
    pub fn walk_mut(&mut self, f: &mut dyn FnMut(&mut IrExpr)) {
        f(self);
        match self {
            IrExpr::Op { args, .. } | IrExpr::Call { args, .. } => {
                for a in args {
                    a.walk_mut(f);
                }
            }
            IrExpr::Unary(_, e) | IrExpr::PostIncDec(e, _) | IrExpr::Cast(_, e) => e.walk_mut(f),
            IrExpr::Binary { lhs, rhs, .. } | IrExpr::Assign { lhs, rhs, .. } => {
                lhs.walk_mut(f);
                rhs.walk_mut(f);
            }
            IrExpr::Index(b, i) => {
                b.walk_mut(f);
                i.walk_mut(f);
            }
            IrExpr::Member { base, .. } => base.walk_mut(f),
            IrExpr::Cond(c, t, e) => {
                c.walk_mut(f);
                t.walk_mut(f);
                e.walk_mut(f);
            }
            _ => {}
        }
    }

    /// Structural equality ignoring source locations and literal
    /// spellings (value-based).
    pub fn struct_eq(&self, other: &IrExpr) -> bool {
        use IrExpr::*;
        match (self, other) {
            (Int { value: a, .. }, Int { value: b, .. }) => a == b,
            (
                Float { value: a, f32: af, tol: at, .. },
                Float { value: b, f32: bf, tol: bt, .. },
            ) => a.to_bits() == b.to_bits() && af == bf && at == bt,
            (Var(a, _), Var(b, _)) => a == b,
            (Temp(a), Temp(b)) => a == b,
            (Op { op: o1, sfx: s1, args: a1, .. }, Op { op: o2, sfx: s2, args: a2, .. }) => {
                o1 == o2
                    && s1 == s2
                    && a1.len() == a2.len()
                    && a1.iter().zip(a2).all(|(x, y)| x.struct_eq(y))
            }
            (Call { name: n1, args: a1, .. }, Call { name: n2, args: a2, .. }) => {
                n1 == n2 && a1.len() == a2.len() && a1.iter().zip(a2).all(|(x, y)| x.struct_eq(y))
            }
            (Unary(o1, e1), Unary(o2, e2)) => o1 == o2 && e1.struct_eq(e2),
            (PostIncDec(e1, i1), PostIncDec(e2, i2)) => i1 == i2 && e1.struct_eq(e2),
            (Binary { op: o1, lhs: l1, rhs: r1, .. }, Binary { op: o2, lhs: l2, rhs: r2, .. }) => {
                o1 == o2 && l1.struct_eq(l2) && r1.struct_eq(r2)
            }
            (Assign { op: o1, lhs: l1, rhs: r1, .. }, Assign { op: o2, lhs: l2, rhs: r2, .. }) => {
                o1 == o2 && l1.struct_eq(l2) && r1.struct_eq(r2)
            }
            (Index(b1, i1), Index(b2, i2)) => b1.struct_eq(b2) && i1.struct_eq(i2),
            (
                Member { base: b1, field: f1, arrow: r1 },
                Member { base: b2, field: f2, arrow: r2 },
            ) => f1 == f2 && r1 == r2 && b1.struct_eq(b2),
            (Cast(t1, e1), Cast(t2, e2)) => t1 == t2 && e1.struct_eq(e2),
            (Cond(c1, t1, f1), Cond(c2, t2, f2)) => {
                c1.struct_eq(c2) && t1.struct_eq(t2) && f1.struct_eq(f2)
            }
            _ => false,
        }
    }

    /// True if the expression contains a memory access (index, deref or
    /// member) anywhere.
    pub fn touches_memory(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(
                e,
                IrExpr::Index(..) | IrExpr::Member { .. } | IrExpr::Unary(UnOp::Deref, _)
            ) {
                found = true;
            }
        });
        found
    }

    /// All named variables referenced anywhere in the expression.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let IrExpr::Var(n, _) = e {
                out.push(n.clone());
            }
        });
        out
    }
}

/// One `case`/`default` arm of a switch.
#[derive(Debug, Clone, PartialEq)]
pub struct IrArm {
    /// Label value; `None` for `default:`.
    pub label: Option<i64>,
    /// Arm body (C fallthrough semantics).
    pub body: Vec<IrStmt>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum IrStmt {
    /// Definition of an SSA temporary: `<ty> t<N> = <init>;`.
    Def {
        /// Temporary number.
        temp: u32,
        /// Declared type (`f64i`, `tbool`, `m256di_2`, …).
        ty: Type,
        /// The defining expression.
        init: IrExpr,
    },
    /// Declaration of a named variable.
    Decl {
        /// Declared type.
        ty: Type,
        /// Name.
        name: String,
        /// Optional initializer.
        init: Option<IrExpr>,
    },
    /// Expression statement (stores, side-effecting calls).
    Expr(IrExpr),
    /// `{ … }`.
    Block(Vec<IrStmt>),
    /// `if`/`else`.
    If {
        /// Condition.
        cond: IrExpr,
        /// Then branch.
        then_branch: Box<IrStmt>,
        /// Else branch.
        else_branch: Option<Box<IrStmt>>,
    },
    /// `for`.
    For {
        /// Init clause.
        init: Option<Box<IrStmt>>,
        /// Condition.
        cond: Option<IrExpr>,
        /// Step.
        step: Option<IrExpr>,
        /// Body.
        body: Box<IrStmt>,
    },
    /// `while`.
    While {
        /// Condition.
        cond: IrExpr,
        /// Body.
        body: Box<IrStmt>,
    },
    /// `do … while`.
    DoWhile {
        /// Body.
        body: Box<IrStmt>,
        /// Condition.
        cond: IrExpr,
    },
    /// `switch`.
    Switch {
        /// Controlling expression.
        cond: IrExpr,
        /// Arms in source order.
        arms: Vec<IrArm>,
    },
    /// `return`.
    Return(Option<IrExpr>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// A pragma kept in the stream. `#pragma igen reduce` markers survive
    /// lowering (when reductions are enabled) and are consumed by the
    /// reduction pass.
    Pragma(Pragma),
    /// `;`.
    Empty,
}

impl IrStmt {
    /// Visits every expression in this statement and its sub-statements.
    pub fn walk_exprs(&self, f: &mut dyn FnMut(&IrExpr)) {
        match self {
            IrStmt::Def { init, .. } => init.walk(f),
            IrStmt::Decl { init: Some(e), .. } => e.walk(f),
            IrStmt::Expr(e) => e.walk(f),
            IrStmt::Block(b) => {
                for s in b {
                    s.walk_exprs(f);
                }
            }
            IrStmt::If { cond, then_branch, else_branch } => {
                cond.walk(f);
                then_branch.walk_exprs(f);
                if let Some(e) = else_branch {
                    e.walk_exprs(f);
                }
            }
            IrStmt::For { init, cond, step, body } => {
                if let Some(i) = init {
                    i.walk_exprs(f);
                }
                if let Some(c) = cond {
                    c.walk(f);
                }
                if let Some(s) = step {
                    s.walk(f);
                }
                body.walk_exprs(f);
            }
            IrStmt::While { cond, body } => {
                cond.walk(f);
                body.walk_exprs(f);
            }
            IrStmt::DoWhile { body, cond } => {
                body.walk_exprs(f);
                cond.walk(f);
            }
            IrStmt::Switch { cond, arms } => {
                cond.walk(f);
                for arm in arms {
                    for s in &arm.body {
                        s.walk_exprs(f);
                    }
                }
            }
            IrStmt::Return(Some(e)) => e.walk(f),
            _ => {}
        }
    }

    /// Mutable variant of [`IrStmt::walk_exprs`].
    pub fn walk_exprs_mut(&mut self, f: &mut dyn FnMut(&mut IrExpr)) {
        match self {
            IrStmt::Def { init, .. } => init.walk_mut(f),
            IrStmt::Decl { init: Some(e), .. } => e.walk_mut(f),
            IrStmt::Expr(e) => e.walk_mut(f),
            IrStmt::Block(b) => {
                for s in b {
                    s.walk_exprs_mut(f);
                }
            }
            IrStmt::If { cond, then_branch, else_branch } => {
                cond.walk_mut(f);
                then_branch.walk_exprs_mut(f);
                if let Some(e) = else_branch {
                    e.walk_exprs_mut(f);
                }
            }
            IrStmt::For { init, cond, step, body } => {
                if let Some(i) = init {
                    i.walk_exprs_mut(f);
                }
                if let Some(c) = cond {
                    c.walk_mut(f);
                }
                if let Some(s) = step {
                    s.walk_mut(f);
                }
                body.walk_exprs_mut(f);
            }
            IrStmt::While { cond, body } => {
                cond.walk_mut(f);
                body.walk_exprs_mut(f);
            }
            IrStmt::DoWhile { body, cond } => {
                body.walk_exprs_mut(f);
                cond.walk_mut(f);
            }
            IrStmt::Switch { cond, arms } => {
                cond.walk_mut(f);
                for arm in arms {
                    for s in &mut arm.body {
                        s.walk_exprs_mut(f);
                    }
                }
            }
            IrStmt::Return(Some(e)) => e.walk_mut(f),
            _ => {}
        }
    }
}

/// A function in IR form.
#[derive(Debug, Clone, PartialEq)]
pub struct IrFunction {
    /// Return type (already promoted to interval types).
    pub ret: Type,
    /// Name.
    pub name: String,
    /// Parameters (promoted).
    pub params: Vec<Param>,
    /// Body; `None` for prototypes.
    pub body: Option<Vec<IrStmt>>,
}

/// Top-level items.
#[derive(Debug, Clone, PartialEq)]
pub enum IrItem {
    /// `#include` line.
    Include(String),
    /// Top-level pragma.
    Pragma(Pragma),
    /// Typedef (kept in AST form; passes do not touch types).
    Typedef(Typedef),
    /// Global variable (initializers are compile-time constants after
    /// lowering; passes do not touch them).
    Global(VarDecl),
    /// Function.
    Function(IrFunction),
}

/// A whole translation unit in IR form.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IrUnit {
    /// Items in output order.
    pub items: Vec<IrItem>,
}

impl IrUnit {
    /// Iterates all function definitions.
    pub fn functions(&self) -> impl Iterator<Item = &IrFunction> {
        self.items.iter().filter_map(|i| match i {
            IrItem::Function(f) if f.body.is_some() => Some(f),
            _ => None,
        })
    }

    /// Mutably iterates all function definitions.
    pub fn functions_mut(&mut self) -> impl Iterator<Item = &mut IrFunction> {
        self.items.iter_mut().filter_map(|i| match i {
            IrItem::Function(f) if f.body.is_some() => Some(f),
            _ => None,
        })
    }
}
