//! AST → IR conversion.
//!
//! The lowered AST produced by the compiler's first layer is already in
//! three-address shape (temporaries `t1, t2, …` hold every intermediate
//! interval operation), so building the IR is a faithful structural
//! conversion: runtime call names are decoded into [`OpKind`]s,
//! temporary declarations become [`IrStmt::Def`]s, and everything else
//! maps one-to-one. [`crate::emit`] is the exact inverse; a
//! build-then-emit round trip reproduces the input unit byte-for-byte
//! when printed.

use crate::ir::{IrArm, IrExpr, IrFunction, IrItem, IrStmt, IrUnit};
use crate::op::OpKind;
use igen_cfront::{Expr, Function, Item, Stmt, SwitchArm, TranslationUnit};

/// True for the compiler's temporary names `t1`, `t2`, ….
pub(crate) fn temp_number(name: &str) -> Option<u32> {
    let digits = name.strip_prefix('t')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Converts a lowered translation unit into IR.
pub fn build_unit(tu: &TranslationUnit) -> IrUnit {
    let items = tu
        .items
        .iter()
        .map(|item| match item {
            Item::Include(s) => IrItem::Include(s.clone()),
            Item::Pragma(p) => IrItem::Pragma(p.clone()),
            Item::Typedef(td) => IrItem::Typedef(td.clone()),
            Item::Global(d) => IrItem::Global(d.clone()),
            Item::Function(f) => IrItem::Function(build_function(f)),
        })
        .collect();
    IrUnit { items }
}

/// Converts one function.
pub fn build_function(f: &Function) -> IrFunction {
    IrFunction {
        ret: f.ret.clone(),
        name: f.name.clone(),
        params: f.params.clone(),
        body: f.body.as_ref().map(|b| b.iter().map(build_stmt).collect()),
    }
}

fn build_stmt(s: &Stmt) -> IrStmt {
    match s {
        Stmt::Decl(d) => match (temp_number(&d.name), &d.init) {
            (Some(n), Some(init)) => {
                IrStmt::Def { temp: n, ty: d.ty.clone(), init: build_expr(init) }
            }
            _ => IrStmt::Decl {
                ty: d.ty.clone(),
                name: d.name.clone(),
                init: d.init.as_ref().map(build_expr),
            },
        },
        Stmt::Expr(e) => IrStmt::Expr(build_expr(e)),
        Stmt::Block(b) => IrStmt::Block(b.iter().map(build_stmt).collect()),
        Stmt::If { cond, then_branch, else_branch } => IrStmt::If {
            cond: build_expr(cond),
            then_branch: Box::new(build_stmt(then_branch)),
            else_branch: else_branch.as_ref().map(|e| Box::new(build_stmt(e))),
        },
        Stmt::For { init, cond, step, body } => IrStmt::For {
            init: init.as_ref().map(|s| Box::new(build_stmt(s))),
            cond: cond.as_ref().map(build_expr),
            step: step.as_ref().map(build_expr),
            body: Box::new(build_stmt(body)),
        },
        Stmt::While { cond, body } => {
            IrStmt::While { cond: build_expr(cond), body: Box::new(build_stmt(body)) }
        }
        Stmt::DoWhile { body, cond } => {
            IrStmt::DoWhile { body: Box::new(build_stmt(body)), cond: build_expr(cond) }
        }
        Stmt::Switch { cond, arms } => IrStmt::Switch {
            cond: build_expr(cond),
            arms: arms
                .iter()
                .map(|SwitchArm { label, body }| IrArm {
                    label: *label,
                    body: body.iter().map(build_stmt).collect(),
                })
                .collect(),
        },
        Stmt::Return(e) => IrStmt::Return(e.as_ref().map(build_expr)),
        Stmt::Break => IrStmt::Break,
        Stmt::Continue => IrStmt::Continue,
        Stmt::Pragma(p) => IrStmt::Pragma(p.clone()),
        Stmt::Empty => IrStmt::Empty,
    }
}

/// Converts one expression (temporary `tN` identifiers become
/// [`IrExpr::Temp`], runtime calls become [`IrExpr::Op`]).
pub fn build_expr(e: &Expr) -> IrExpr {
    match e {
        Expr::IntLit { value, text } => IrExpr::Int { value: *value, text: text.clone() },
        Expr::FloatLit { value, text, f32, tol } => {
            IrExpr::Float { value: *value, text: text.clone(), f32: *f32, tol: *tol }
        }
        Expr::Ident(name, loc) => match temp_number(name) {
            Some(n) => IrExpr::Temp(n),
            None => IrExpr::Var(name.clone(), *loc),
        },
        Expr::Unary(op, inner) => IrExpr::Unary(*op, Box::new(build_expr(inner))),
        Expr::PostIncDec(inner, inc) => IrExpr::PostIncDec(Box::new(build_expr(inner)), *inc),
        Expr::Binary { op, lhs, rhs, loc } => IrExpr::Binary {
            op: *op,
            lhs: Box::new(build_expr(lhs)),
            rhs: Box::new(build_expr(rhs)),
            loc: *loc,
        },
        Expr::Assign { op, lhs, rhs, loc } => IrExpr::Assign {
            op: *op,
            lhs: Box::new(build_expr(lhs)),
            rhs: Box::new(build_expr(rhs)),
            loc: *loc,
        },
        Expr::Call { name, args, loc } => {
            let args: Vec<IrExpr> = args.iter().map(build_expr).collect();
            match OpKind::parse(name) {
                Some((op, sfx)) => IrExpr::Op { op, sfx, args, loc: *loc },
                None => IrExpr::Call { name: name.clone(), args, loc: *loc },
            }
        }
        Expr::Index(base, idx) => {
            IrExpr::Index(Box::new(build_expr(base)), Box::new(build_expr(idx)))
        }
        Expr::Member { base, field, arrow } => {
            IrExpr::Member { base: Box::new(build_expr(base)), field: field.clone(), arrow: *arrow }
        }
        Expr::Cast(ty, inner) => IrExpr::Cast(ty.clone(), Box::new(build_expr(inner))),
        Expr::Cond(c, t, f) => {
            IrExpr::Cond(Box::new(build_expr(c)), Box::new(build_expr(t)), Box::new(build_expr(f)))
        }
    }
}
