//! Deterministic renumbering of temporaries and accumulators.
//!
//! Optimization passes insert and delete [`IrStmt::Def`]s, which leaves
//! gaps and out-of-order numbers. Before emission the temporaries are
//! renumbered `t1, t2, …` in textual (declaration) order per function —
//! exactly the order the paper's single-pass rewriter would have
//! assigned — and accumulators `acc1, acc2, …` in textual order across
//! the unit (the accumulator counter is unit-global in the seed
//! compiler). The numbering depends only on the IR itself, never on hash
//! iteration order, so repeated compiles are byte-identical.

use crate::ir::{IrExpr, IrStmt, IrUnit};
use std::collections::HashMap;

/// Renumbers all temporaries (per function) and accumulators
/// (unit-global) in textual order.
pub fn renumber_unit(unit: &mut IrUnit) {
    let mut acc_map: HashMap<String, String> = HashMap::new();
    let mut next_acc = 0u32;
    // Accumulator declarations in textual order across the whole unit.
    for f in unit.functions() {
        for s in f.body.as_deref().unwrap_or_default() {
            collect_accs(s, &mut acc_map, &mut next_acc);
        }
    }
    for f in unit.functions_mut() {
        let body = f.body.as_mut().expect("definition");
        let mut tmp_map: HashMap<u32, u32> = HashMap::new();
        let mut next = 0u32;
        for s in body.iter() {
            collect_defs(s, &mut tmp_map, &mut next);
        }
        for s in body.iter_mut() {
            // Rename declarations (recursing through nested statements),
            // then rewrite every expression exactly once — walk_exprs_mut
            // already descends into nested statements, so the two
            // traversals stay separate to avoid remapping a name twice.
            rename_decls(s, &tmp_map, &acc_map);
            s.walk_exprs_mut(&mut |e| match e {
                IrExpr::Temp(n) => {
                    if let Some(m) = tmp_map.get(n) {
                        *n = *m;
                    }
                }
                IrExpr::Var(name, _) => {
                    if let Some(m) = acc_map.get(name) {
                        *name = m.clone();
                    }
                }
                _ => {}
            });
        }
    }
}

fn acc_number(name: &str) -> bool {
    name.strip_prefix("acc").is_some_and(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
}

fn collect_accs(s: &IrStmt, map: &mut HashMap<String, String>, next: &mut u32) {
    if let IrStmt::Decl { ty: igen_cfront::Type::Named(ty), name, .. } = s {
        if ty.starts_with("acc_") && acc_number(name) && !map.contains_key(name) {
            *next += 1;
            map.insert(name.clone(), format!("acc{next}"));
        }
    }
    each_child(s, &mut |c| collect_accs(c, map, next));
}

fn collect_defs(s: &IrStmt, map: &mut HashMap<u32, u32>, next: &mut u32) {
    if let IrStmt::Def { temp, .. } = s {
        if !map.contains_key(temp) {
            *next += 1;
            map.insert(*temp, *next);
        }
    }
    each_child(s, &mut |c| collect_defs(c, map, next));
}

/// Visits direct child statements in textual order.
fn each_child(s: &IrStmt, f: &mut dyn FnMut(&IrStmt)) {
    match s {
        IrStmt::Block(b) => b.iter().for_each(f),
        IrStmt::If { then_branch, else_branch, .. } => {
            f(then_branch);
            if let Some(e) = else_branch {
                f(e);
            }
        }
        IrStmt::For { init, body, .. } => {
            if let Some(i) = init {
                f(i);
            }
            f(body);
        }
        IrStmt::While { body, .. } | IrStmt::DoWhile { body, .. } => f(body),
        IrStmt::Switch { arms, .. } => {
            for arm in arms {
                arm.body.iter().for_each(&mut *f);
            }
        }
        _ => {}
    }
}

fn each_child_mut(s: &mut IrStmt, f: &mut dyn FnMut(&mut IrStmt)) {
    match s {
        IrStmt::Block(b) => b.iter_mut().for_each(f),
        IrStmt::If { then_branch, else_branch, .. } => {
            f(then_branch);
            if let Some(e) = else_branch {
                f(e);
            }
        }
        IrStmt::For { init, body, .. } => {
            if let Some(i) = init {
                f(i);
            }
            f(body);
        }
        IrStmt::While { body, .. } | IrStmt::DoWhile { body, .. } => f(body),
        IrStmt::Switch { arms, .. } => {
            for arm in arms {
                arm.body.iter_mut().for_each(&mut *f);
            }
        }
        _ => {}
    }
}

/// Renames `Def` temporaries and accumulator `Decl`s, recursing through
/// nested statements. Expressions are rewritten separately.
fn rename_decls(s: &mut IrStmt, tmp_map: &HashMap<u32, u32>, acc_map: &HashMap<String, String>) {
    if let IrStmt::Def { temp, .. } = s {
        if let Some(n) = tmp_map.get(temp) {
            *temp = *n;
        }
    }
    if let IrStmt::Decl { name, .. } = s {
        if let Some(n) = acc_map.get(name) {
            *name = n.clone();
        }
    }
    each_child_mut(s, &mut |c| rename_decls(c, tmp_map, acc_map));
}
