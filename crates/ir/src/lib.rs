//! `igen-ir`: a typed, SSA-style three-address intermediate
//! representation for IGen interval programs.
//!
//! The IGen compiler (CGO 2021) originally rewrote the AST in a single
//! monolithic pass. This crate is the middle of the refactored
//! three-layer pipeline:
//!
//! ```text
//! cfront AST --lower--> IrUnit --optimize (PassManager)--> IrUnit --emit--> cfront AST --print--> C
//! ```
//!
//! * [`build_unit`] converts a lowered AST into IR; [`emit_unit`] is its
//!   exact inverse, so an unoptimized round trip reproduces the paper's
//!   output byte-for-byte (the `-O0` contract pinned by the golden
//!   tests).
//! * [`OpKind`]/[`Sfx`] give every interval runtime operation (`ia_*`,
//!   `isum_*`) an opcode with purity and cost metadata — the basis for
//!   CSE, DCE and the per-pass cost reports.
//! * [`renumber_unit`] restores the paper's dense `t1, t2, …` numbering
//!   in textual order after passes insert or delete definitions, with no
//!   dependence on hash iteration order.
//! * [`dump_unit`] renders the IR for `--emit-ir`; [`unit_stats`]
//!   produces the op-count/cost figures for `--dump-passes`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod count;
mod dump;
mod emit;
mod ir;
mod op;
mod renumber;

pub use build::{build_expr, build_function, build_unit};
pub use count::{function_stats, unit_stats, OpStats};
pub use dump::{dump_function, dump_unit};
pub use emit::{emit_expr, emit_function, emit_unit};
pub use ir::{IrArm, IrExpr, IrFunction, IrItem, IrStmt, IrUnit};
pub use op::{OpKind, Sfx};
pub use renumber::renumber_unit;

#[cfg(test)]
mod tests {
    use super::*;
    use igen_cfront::{parse, print_unit};

    /// A lowered-style program exercising defs, ops, control flow and
    /// plain calls.
    const LOWERED: &str = r#"
        #include "igen_lib.h"

        f64i foo(f64i a, f64i b) {
            f64i c;
            f64i t1 = ia_add_f64(a, b);
            f64i t2 = ia_set_f64(0.09999999999999999, 0.1);
            c = ia_add_f64(t1, t2);
            tbool t3 = ia_cmpgt_f64(c, a);
            if (ia_cvt2bool_tb(t3))
            {
                c = ia_mul_f64(a, c);
            }
            for (int i = 0; i < 4; i++)
            {
                c = ia_sqrt_f64(c);
            }
            return helper(c);
        }
    "#;

    #[test]
    fn build_emit_round_trip_is_exact() {
        let tu = parse(LOWERED).unwrap();
        let ir = build_unit(&tu);
        let back = emit_unit(&ir);
        // Printed-byte equality is the -O0 contract; the ASTs differ only
        // in source locations ([`IrExpr::Temp`] carries none), which the
        // printer ignores.
        assert_eq!(print_unit(&tu), print_unit(&back));
        let reparsed = parse(&print_unit(&back)).unwrap();
        assert_eq!(print_unit(&back), print_unit(&reparsed));
    }

    #[test]
    fn ops_are_decoded() {
        let tu = parse(LOWERED).unwrap();
        let ir = build_unit(&tu);
        let stats = unit_stats(&ir);
        // add, set, add, cmpgt, cvt2bool, mul, sqrt — helper() is a plain
        // call, not an op.
        assert_eq!(stats.ops, 7);
        assert!(stats.cost > 0);
        assert!(stats.per_op.iter().any(|(n, c)| n == "ia_add_f64" && *c == 2));
        let names: Vec<&str> = stats.per_op.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "per-op table must be name-sorted");
    }

    #[test]
    fn renumber_restores_dense_textual_order() {
        let src = r#"
            f64i f(f64i x) {
                f64i t7 = ia_add_f64(x, x);
                f64i t3 = ia_mul_f64(t7, x);
                if (ia_cvt2bool_tb(ia_cmpgt_f64(t3, x)))
                {
                    f64i t9 = ia_sqrt_f64(t3);
                    return t9;
                }
                return t3;
            }
        "#;
        let tu = parse(src).unwrap();
        let mut ir = build_unit(&tu);
        renumber_unit(&mut ir);
        let out = print_unit(&emit_unit(&ir));
        assert!(out.contains("f64i t1 = ia_add_f64(x, x);"), "{out}");
        assert!(out.contains("f64i t2 = ia_mul_f64(t1, x);"), "{out}");
        assert!(out.contains("f64i t3 = ia_sqrt_f64(t2);"), "{out}");
        assert!(out.contains("return t3;"), "{out}");
    }

    #[test]
    fn renumber_accs_is_unit_global() {
        let src = r#"
            void f(f64i* x) {
                acc_f64 acc5;
                isum_init_f64(&acc5, x[0]);
            }
            void g(f64i* x) {
                acc_f64 acc9;
                isum_init_f64(&acc9, x[0]);
            }
        "#;
        let tu = parse(src).unwrap();
        let mut ir = build_unit(&tu);
        renumber_unit(&mut ir);
        let out = print_unit(&emit_unit(&ir));
        assert!(out.contains("acc_f64 acc1;"), "{out}");
        assert!(out.contains("isum_init_f64(&acc1, x[0]);"), "{out}");
        assert!(out.contains("acc_f64 acc2;"), "{out}");
        assert!(out.contains("isum_init_f64(&acc2, x[0]);"), "{out}");
    }

    #[test]
    fn dump_is_three_address_style() {
        let tu = parse(LOWERED).unwrap();
        let ir = build_unit(&tu);
        let text = dump_unit(&ir);
        assert!(text.contains("func foo(f64i a, f64i b) -> f64i {"), "{text}");
        assert!(text.contains("t1: f64i = add.f64 a, b"), "{text}");
        assert!(text.contains("t3: tbool = cmpgt.f64 c, a"), "{text}");
        assert!(text.contains("call helper(c)"), "{text}");
    }

    #[test]
    fn struct_eq_ignores_locations() {
        let a = parse("double f(double x) { return x + 1.0; }").unwrap();
        let b = parse("double f(double x)\n\n{ return x\n + 1.0; }").unwrap();
        let (ia, ib) = (build_unit(&a), build_unit(&b));
        let body_expr = |u: &IrUnit| match &u.functions().next().unwrap().body.as_ref().unwrap()[0]
        {
            IrStmt::Return(Some(e)) => e.clone(),
            other => panic!("{other:?}"),
        };
        assert!(body_expr(&ia).struct_eq(&body_expr(&ib)));
    }
}
