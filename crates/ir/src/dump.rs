//! Human-readable IR dump (`igen-cli compile --emit-ir`).
//!
//! The format is a typed three-address listing: one line per statement,
//! definitions as `t1: f64i = add.f64 a, b`, structured control flow
//! indented. It is for inspection only — the C emitter is the
//! authoritative output path.

use crate::ir::{IrExpr, IrFunction, IrItem, IrStmt, IrUnit};
use crate::op::OpKind;
use igen_cfront::Type;
use std::fmt::Write as _;

/// Dumps a whole unit.
pub fn dump_unit(unit: &IrUnit) -> String {
    let mut out = String::new();
    for item in &unit.items {
        match item {
            IrItem::Include(s) => {
                let _ = writeln!(out, "include {s}");
            }
            IrItem::Pragma(p) => {
                let _ = writeln!(out, "pragma {p:?}");
            }
            IrItem::Typedef(td) => {
                let name = match td {
                    igen_cfront::Typedef::Union { name, .. }
                    | igen_cfront::Typedef::Alias { name, .. } => name,
                };
                let _ = writeln!(out, "typedef {name}");
            }
            IrItem::Global(d) => {
                let _ = writeln!(out, "global {} {}", ty_str(&d.ty), d.name);
            }
            IrItem::Function(f) => {
                out.push_str(&dump_function(f));
            }
        }
    }
    out
}

/// Dumps one function.
pub fn dump_function(f: &IrFunction) -> String {
    let mut out = String::new();
    let params: Vec<String> =
        f.params.iter().map(|p| format!("{} {}", ty_str(&p.ty), p.name)).collect();
    let _ = writeln!(out, "func {}({}) -> {} {{", f.name, params.join(", "), ty_str(&f.ret));
    if let Some(body) = &f.body {
        for s in body {
            dump_stmt(s, 1, &mut out);
        }
    }
    out.push_str("}\n");
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn dump_stmt(s: &IrStmt, depth: usize, out: &mut String) {
    // Blocks add no line of their own; their statements print at the
    // same depth.
    if let IrStmt::Block(b) = s {
        for st in b {
            dump_stmt(st, depth, out);
        }
        return;
    }
    indent(depth, out);
    match s {
        IrStmt::Def { temp, ty, init } => {
            let _ = writeln!(out, "t{temp}: {} = {}", ty_str(ty), expr_str(init));
        }
        IrStmt::Decl { ty, name, init } => match init {
            Some(e) => {
                let _ = writeln!(out, "{name}: {} = {}", ty_str(ty), expr_str(e));
            }
            None => {
                let _ = writeln!(out, "{name}: {}", ty_str(ty));
            }
        },
        IrStmt::Expr(e) => {
            let _ = writeln!(out, "{}", expr_str(e));
        }
        IrStmt::Block(_) => unreachable!("handled above"),
        IrStmt::If { cond, then_branch, else_branch } => {
            let _ = writeln!(out, "if {} {{", expr_str(cond));
            dump_stmt(then_branch, depth + 1, out);
            if let Some(e) = else_branch {
                indent(depth, out);
                out.push_str("} else {\n");
                dump_stmt(e, depth + 1, out);
            }
            indent(depth, out);
            out.push_str("}\n");
        }
        IrStmt::For { init, cond, step, body } => {
            out.push_str("for ");
            if let Some(i) = init {
                let mut one = String::new();
                dump_stmt(i, 0, &mut one);
                out.push_str(one.trim_end());
            }
            out.push_str("; ");
            if let Some(c) = cond {
                out.push_str(&expr_str(c));
            }
            out.push_str("; ");
            if let Some(st) = step {
                out.push_str(&expr_str(st));
            }
            out.push_str(" {\n");
            dump_stmt(body, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        IrStmt::While { cond, body } => {
            let _ = writeln!(out, "while {} {{", expr_str(cond));
            dump_stmt(body, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        IrStmt::DoWhile { body, cond } => {
            out.push_str("do {\n");
            dump_stmt(body, depth + 1, out);
            indent(depth, out);
            let _ = writeln!(out, "}} while {}", expr_str(cond));
        }
        IrStmt::Switch { cond, arms } => {
            let _ = writeln!(out, "switch {} {{", expr_str(cond));
            for arm in arms {
                indent(depth, out);
                match arm.label {
                    Some(v) => {
                        let _ = writeln!(out, "case {v}:");
                    }
                    None => out.push_str("default:\n"),
                }
                for st in &arm.body {
                    dump_stmt(st, depth + 1, out);
                }
            }
            indent(depth, out);
            out.push_str("}\n");
        }
        IrStmt::Return(e) => match e {
            Some(e) => {
                let _ = writeln!(out, "return {}", expr_str(e));
            }
            None => out.push_str("return\n"),
        },
        IrStmt::Break => out.push_str("break\n"),
        IrStmt::Continue => out.push_str("continue\n"),
        IrStmt::Pragma(p) => {
            let _ = writeln!(out, "pragma {p:?}");
        }
        IrStmt::Empty => out.push_str(";\n"),
    }
}

fn ty_str(ty: &Type) -> String {
    match ty {
        Type::Void => "void".into(),
        Type::Int => "int".into(),
        Type::UInt => "unsigned".into(),
        Type::Long => "long".into(),
        Type::ULong => "unsigned long".into(),
        Type::Float => "float".into(),
        Type::Double => "double".into(),
        Type::Named(n) => n.clone(),
        Type::Ptr(t) => format!("{}*", ty_str(t)),
        Type::Array(t, Some(n)) => format!("{}[{n}]", ty_str(t)),
        Type::Array(t, None) => format!("{}[]", ty_str(t)),
    }
}

/// The `add.f64`-style mnemonic of an operation.
fn mnemonic(op: &OpKind, sfx: crate::op::Sfx) -> String {
    let name = op.c_name(sfx);
    let tail = name.strip_prefix("ia_").unwrap_or(&name);
    match tail.rsplit_once('_') {
        Some((tag, s)) if s == sfx.as_str() => format!("{tag}.{s}"),
        _ => tail.to_string(),
    }
}

fn expr_str(e: &IrExpr) -> String {
    match e {
        IrExpr::Int { text, .. } => text.clone(),
        IrExpr::Float { text, f32, tol, .. } => {
            format!("{text}{}{}", if *f32 { "f" } else { "" }, if *tol { "t" } else { "" })
        }
        IrExpr::Var(n, _) => n.clone(),
        IrExpr::Temp(n) => format!("t{n}"),
        IrExpr::Op { op, sfx, args, .. } => {
            let args: Vec<String> = args.iter().map(expr_str).collect();
            format!("{} {}", mnemonic(op, *sfx), args.join(", "))
        }
        IrExpr::Call { name, args, .. } => {
            let args: Vec<String> = args.iter().map(expr_str).collect();
            format!("call {name}({})", args.join(", "))
        }
        IrExpr::Unary(op, inner) => format!(
            "{}{}",
            match op {
                igen_cfront::UnOp::Neg => "-",
                igen_cfront::UnOp::Plus => "+",
                igen_cfront::UnOp::Not => "!",
                igen_cfront::UnOp::BitNot => "~",
                igen_cfront::UnOp::Deref => "*",
                igen_cfront::UnOp::Addr => "&",
                igen_cfront::UnOp::PreInc => "++",
                igen_cfront::UnOp::PreDec => "--",
            },
            expr_str(inner)
        ),
        IrExpr::PostIncDec(inner, inc) => {
            format!("{}{}", expr_str(inner), if *inc { "++" } else { "--" })
        }
        IrExpr::Binary { op, lhs, rhs, .. } => {
            format!("({} {} {})", expr_str(lhs), op.as_str(), expr_str(rhs))
        }
        IrExpr::Assign { op, lhs, rhs, .. } => {
            format!("{} {} {}", expr_str(lhs), op.as_str(), expr_str(rhs))
        }
        IrExpr::Index(base, idx) => format!("{}[{}]", expr_str(base), expr_str(idx)),
        IrExpr::Member { base, field, arrow } => {
            format!("{}{}{field}", expr_str(base), if *arrow { "->" } else { "." })
        }
        IrExpr::Cast(ty, inner) => format!("({}) {}", ty_str(ty), expr_str(inner)),
        IrExpr::Cond(c, t, f) => {
            format!("{} ? {} : {}", expr_str(c), expr_str(t), expr_str(f))
        }
    }
}
