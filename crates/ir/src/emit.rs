//! IR → AST conversion (the emit layer's front half): the exact inverse
//! of [`crate::build`]. The resulting unit is printed by the existing
//! `igen-cfront` printer, which keeps the paper's output style.

use crate::ir::{IrArm, IrExpr, IrFunction, IrItem, IrStmt, IrUnit};
use igen_cfront::{Expr, Function, Item, Loc, Stmt, SwitchArm, TranslationUnit, VarDecl};

/// Converts an IR unit back into a printable AST.
pub fn emit_unit(unit: &IrUnit) -> TranslationUnit {
    TranslationUnit {
        items: unit
            .items
            .iter()
            .map(|item| match item {
                IrItem::Include(s) => Item::Include(s.clone()),
                IrItem::Pragma(p) => Item::Pragma(p.clone()),
                IrItem::Typedef(td) => Item::Typedef(td.clone()),
                IrItem::Global(d) => Item::Global(d.clone()),
                IrItem::Function(f) => Item::Function(emit_function(f)),
            })
            .collect(),
    }
}

/// Converts one function.
pub fn emit_function(f: &IrFunction) -> Function {
    Function {
        ret: f.ret.clone(),
        name: f.name.clone(),
        params: f.params.clone(),
        body: f.body.as_ref().map(|b| b.iter().map(emit_stmt).collect()),
    }
}

fn emit_stmt(s: &IrStmt) -> Stmt {
    match s {
        IrStmt::Def { temp, ty, init } => Stmt::Decl(VarDecl {
            ty: ty.clone(),
            name: format!("t{temp}"),
            init: Some(emit_expr(init)),
        }),
        IrStmt::Decl { ty, name, init } => Stmt::Decl(VarDecl {
            ty: ty.clone(),
            name: name.clone(),
            init: init.as_ref().map(emit_expr),
        }),
        IrStmt::Expr(e) => Stmt::Expr(emit_expr(e)),
        IrStmt::Block(b) => Stmt::Block(b.iter().map(emit_stmt).collect()),
        IrStmt::If { cond, then_branch, else_branch } => Stmt::If {
            cond: emit_expr(cond),
            then_branch: Box::new(emit_stmt(then_branch)),
            else_branch: else_branch.as_ref().map(|e| Box::new(emit_stmt(e))),
        },
        IrStmt::For { init, cond, step, body } => Stmt::For {
            init: init.as_ref().map(|s| Box::new(emit_stmt(s))),
            cond: cond.as_ref().map(emit_expr),
            step: step.as_ref().map(emit_expr),
            body: Box::new(emit_stmt(body)),
        },
        IrStmt::While { cond, body } => {
            Stmt::While { cond: emit_expr(cond), body: Box::new(emit_stmt(body)) }
        }
        IrStmt::DoWhile { body, cond } => {
            Stmt::DoWhile { body: Box::new(emit_stmt(body)), cond: emit_expr(cond) }
        }
        IrStmt::Switch { cond, arms } => Stmt::Switch {
            cond: emit_expr(cond),
            arms: arms
                .iter()
                .map(|IrArm { label, body }| SwitchArm {
                    label: *label,
                    body: body.iter().map(emit_stmt).collect(),
                })
                .collect(),
        },
        IrStmt::Return(e) => Stmt::Return(e.as_ref().map(emit_expr)),
        IrStmt::Break => Stmt::Break,
        IrStmt::Continue => Stmt::Continue,
        IrStmt::Pragma(p) => Stmt::Pragma(p.clone()),
        IrStmt::Empty => Stmt::Empty,
    }
}

/// Converts one expression back to AST form.
pub fn emit_expr(e: &IrExpr) -> Expr {
    match e {
        IrExpr::Int { value, text } => Expr::IntLit { value: *value, text: text.clone() },
        IrExpr::Float { value, text, f32, tol } => {
            Expr::FloatLit { value: *value, text: text.clone(), f32: *f32, tol: *tol }
        }
        IrExpr::Var(name, loc) => Expr::Ident(name.clone(), *loc),
        IrExpr::Temp(n) => Expr::Ident(format!("t{n}"), Loc::default()),
        IrExpr::Op { op, sfx, args, loc } => Expr::Call {
            name: op.c_name(*sfx),
            args: args.iter().map(emit_expr).collect(),
            loc: *loc,
        },
        IrExpr::Call { name, args, loc } => {
            Expr::Call { name: name.clone(), args: args.iter().map(emit_expr).collect(), loc: *loc }
        }
        IrExpr::Unary(op, inner) => Expr::Unary(*op, Box::new(emit_expr(inner))),
        IrExpr::PostIncDec(inner, inc) => Expr::PostIncDec(Box::new(emit_expr(inner)), *inc),
        IrExpr::Binary { op, lhs, rhs, loc } => Expr::Binary {
            op: *op,
            lhs: Box::new(emit_expr(lhs)),
            rhs: Box::new(emit_expr(rhs)),
            loc: *loc,
        },
        IrExpr::Assign { op, lhs, rhs, loc } => Expr::Assign {
            op: *op,
            lhs: Box::new(emit_expr(lhs)),
            rhs: Box::new(emit_expr(rhs)),
            loc: *loc,
        },
        IrExpr::Index(base, idx) => {
            Expr::Index(Box::new(emit_expr(base)), Box::new(emit_expr(idx)))
        }
        IrExpr::Member { base, field, arrow } => {
            Expr::Member { base: Box::new(emit_expr(base)), field: field.clone(), arrow: *arrow }
        }
        IrExpr::Cast(ty, inner) => Expr::Cast(ty.clone(), Box::new(emit_expr(inner))),
        IrExpr::Cond(c, t, f) => {
            Expr::Cond(Box::new(emit_expr(c)), Box::new(emit_expr(t)), Box::new(emit_expr(f)))
        }
    }
}
