//! C code generation from intrinsic specifications (Fig. 4 "Code
//! generator", Fig. 5 example output).
//!
//! For each SIMD vector type a union wrapper (`vec256d` …) exposes the
//! vector as arrays of floats and integers; bit-range accesses are lowered
//! to element accesses after the symbolic width analysis, exactly as
//! Section V describes. The output is a `igen-cfront` AST, so it can be
//! printed as C *and* fed straight into the IGen compiler to produce the
//! interval version of each intrinsic.

use crate::pseudo::{self, linearize, Lin, PExpr, PLval, PStmt, PseudoError, RangeBase};
use crate::spec::IntrinsicSpec;
use igen_cfront::{
    BinOp, Expr, Function, Item, Param, Stmt, TranslationUnit, Type, Typedef, UnOp, VarDecl,
};
use std::collections::{BTreeMap, BTreeSet};

/// Code-generation failure for one intrinsic.
#[derive(Debug, Clone, PartialEq)]
pub enum GenError {
    /// The intrinsic uses a construct outside the supported subset
    /// (Section V "Limitations"), e.g. an undefined pseudo-function.
    Unsupported {
        /// Intrinsic name.
        intrinsic: String,
        /// What was not supported.
        reason: String,
    },
    /// The operation body did not parse.
    Pseudo(PseudoError),
}

impl core::fmt::Display for GenError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GenError::Unsupported { intrinsic, reason } => {
                write!(f, "unsupported intrinsic {intrinsic}: {reason}")
            }
            GenError::Pseudo(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GenError {}

impl From<PseudoError> for GenError {
    fn from(e: PseudoError) -> GenError {
        GenError::Pseudo(e)
    }
}

/// Element kind of a vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Elem {
    /// 64-bit double lanes (`_pd`).
    F64,
    /// 32-bit float lanes (`_ps`).
    F32,
}

impl Elem {
    fn bits(self) -> i64 {
        match self {
            Elem::F64 => 64,
            Elem::F32 => 32,
        }
    }
}

/// `(total bits, element kind)` of a vector C type, if it is one.
pub fn vec_kind(ty: &str) -> Option<(i64, Elem)> {
    match ty.trim() {
        "__m128d" => Some((128, Elem::F64)),
        "__m256d" => Some((256, Elem::F64)),
        "__m128" => Some((128, Elem::F32)),
        "__m256" => Some((256, Elem::F32)),
        _ => None,
    }
}

/// Union wrapper type name for a vector kind (`vec256d` in Fig. 5).
pub fn union_name(bits: i64, elem: Elem) -> String {
    match elem {
        Elem::F64 => format!("vec{bits}d"),
        Elem::F32 => format!("vec{bits}"),
    }
}

/// The union typedef for a vector kind (lines 1–5 of Fig. 5).
pub fn union_typedef(bits: i64, elem: Elem) -> Typedef {
    let lanes = (bits / elem.bits()) as usize;
    let (fty, ity, vty) = match elem {
        Elem::F64 => (Type::Double, Type::ULong, format!("__m{bits}d")),
        Elem::F32 => (Type::Float, Type::UInt, format!("__m{bits}")),
    };
    Typedef::Union {
        name: union_name(bits, elem),
        fields: vec![
            (Type::Named(vty), "v".to_string()),
            (Type::Array(Box::new(ity), Some(lanes)), "i".to_string()),
            (Type::Array(Box::new(fty), Some(lanes)), "f".to_string()),
        ],
    }
}

/// Generates the C implementation `_c<name>` of one intrinsic.
///
/// # Errors
///
/// [`GenError::Unsupported`] for constructs outside the subset (bit-level
/// writes, undefined pseudo-functions, integer intrinsics, …).
pub fn generate_c(spec: &IntrinsicSpec) -> Result<Function, GenError> {
    Gen::new(spec)?.run()
}

/// Generates a full translation unit: required union typedefs followed by
/// the C implementations of all convertible specs; failures are returned
/// alongside (the paper reports the same: some intrinsics need manual
/// treatment).
pub fn generate_unit(specs: &[IntrinsicSpec]) -> (TranslationUnit, Vec<(String, GenError)>) {
    let mut funcs = Vec::new();
    let mut errors = Vec::new();
    let mut kinds: BTreeSet<(i64, bool)> = BTreeSet::new();
    for spec in specs {
        match generate_c(spec) {
            Ok(f) => {
                for p in spec
                    .params
                    .iter()
                    .map(|p| p.ty.as_str())
                    .chain(std::iter::once(spec.rettype.as_str()))
                {
                    if let Some((bits, elem)) = vec_kind(p) {
                        kinds.insert((bits, elem == Elem::F64));
                    }
                }
                funcs.push(Item::Function(f));
            }
            Err(e) => errors.push((spec.name.clone(), e)),
        }
    }
    let mut items: Vec<Item> = kinds
        .into_iter()
        .map(|(bits, is_f64)| {
            Item::Typedef(union_typedef(bits, if is_f64 { Elem::F64 } else { Elem::F32 }))
        })
        .collect();
    items.extend(funcs);
    (TranslationUnit { items }, errors)
}

/// Per-assignment value domain, inferred from the operators used
/// (bitwise logic works on the integer view, arithmetic on the float
/// view — Section V: "the integer array is useful when … performing
/// bit-wise operations").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Domain {
    Float,
    Intish,
}

struct Gen<'a> {
    spec: &'a IntrinsicSpec,
    stmts: Vec<PStmt>,
    /// Vector operands (params + dst): name → (bits, elem).
    vecs: BTreeMap<String, (i64, Elem)>,
    /// Pointer params: name → element kind.
    ptrs: BTreeMap<String, Elem>,
    /// Integer scalar params.
    int_params: BTreeSet<String>,
    /// Float scalar params (e.g. `double a` of `set1`).
    f64_params: BTreeSet<String>,
    /// Discovered int locals (loop vars, index temps).
    int_locals: BTreeSet<String>,
    /// Discovered scalar double locals (`tmp[63:0]` style).
    f64_locals: BTreeSet<String>,
    /// Fresh-name counter for generated loop variables.
    fresh: u32,
    /// `MAX` substitution (dst top bit).
    max_bit: i64,
    dst: Option<(i64, Elem)>,
}

impl<'a> Gen<'a> {
    fn new(spec: &'a IntrinsicSpec) -> Result<Gen<'a>, GenError> {
        let stmts = pseudo::parse_operation(&spec.operation)?;
        let mut g = Gen {
            spec,
            stmts,
            vecs: BTreeMap::new(),
            ptrs: BTreeMap::new(),
            int_params: BTreeSet::new(),
            f64_params: BTreeSet::new(),
            int_locals: BTreeSet::new(),
            f64_locals: BTreeSet::new(),
            fresh: 0,
            max_bit: 255,
            dst: None,
        };
        let dst = vec_kind(&spec.rettype);
        if spec.rettype != "void" && dst.is_none() {
            return Err(g.unsupported("non-vector return type"));
        }
        g.dst = dst;
        if let Some((bits, elem)) = dst {
            g.max_bit = bits - 1;
            g.vecs.insert("dst".to_string(), (bits, elem));
        }
        for p in &spec.params {
            if let Some(k) = vec_kind(&p.ty) {
                g.vecs.insert(p.name.clone(), k);
            } else if p.ty.contains('*') {
                let elem = if p.ty.contains("double") {
                    Elem::F64
                } else if p.ty.contains("float") {
                    Elem::F32
                } else {
                    return Err(g.unsupported(format!("pointer type {}", p.ty)));
                };
                g.ptrs.insert(p.name.clone(), elem);
            } else if p.ty.contains("int") {
                g.int_params.insert(p.name.clone());
            } else if p.ty.trim() == "double" || p.ty.trim() == "float" {
                g.f64_params.insert(p.name.clone());
            } else {
                return Err(g.unsupported(format!("parameter type {}", p.ty)));
            }
        }
        Ok(g)
    }

    fn unsupported(&self, reason: impl Into<String>) -> GenError {
        GenError::Unsupported { intrinsic: self.spec.name.clone(), reason: reason.into() }
    }

    fn run(mut self) -> Result<Function, GenError> {
        let body_stmts = self.stmts.clone();
        let mut out = Vec::new();
        for s in &body_stmts {
            self.stmt(s, &mut out)?;
        }
        // Prologue: union locals for vector params and dst, loads of the
        // raw arguments (lines 8–9 of Fig. 5), declarations of scalar
        // locals.
        let mut prologue: Vec<Stmt> = Vec::new();
        for (name, (bits, elem)) in &self.vecs {
            prologue.push(Stmt::Decl(VarDecl {
                ty: Type::Named(union_name(*bits, *elem)),
                name: name.clone(),
                init: None,
            }));
        }
        for (name, _) in self.vecs.iter().filter(|(n, _)| n.as_str() != "dst") {
            prologue.push(Stmt::Expr(Expr::Assign {
                op: igen_cfront::AssignOp::Assign,
                lhs: Box::new(Expr::Member {
                    base: Box::new(Expr::ident(name)),
                    field: "v".into(),
                    arrow: false,
                }),
                rhs: Box::new(Expr::ident(&format!("_{name}"))),
                loc: Default::default(),
            }));
        }
        for v in &self.int_locals {
            prologue.push(Stmt::Decl(VarDecl { ty: Type::Int, name: v.clone(), init: None }));
        }
        for v in &self.f64_locals {
            prologue.push(Stmt::Decl(VarDecl { ty: Type::Double, name: v.clone(), init: None }));
        }
        prologue.extend(out);
        if self.dst.is_some() {
            prologue.push(Stmt::Return(Some(Expr::Member {
                base: Box::new(Expr::ident("dst")),
                field: "v".into(),
                arrow: false,
            })));
        }
        // Signature.
        let params = self
            .spec
            .params
            .iter()
            .map(|p| {
                let (ty, name) = if vec_kind(&p.ty).is_some() {
                    (Type::Named(p.ty.clone()), format!("_{}", p.name))
                } else if p.ty.contains('*') {
                    let base = if p.ty.contains("double") { Type::Double } else { Type::Float };
                    (Type::Ptr(Box::new(base)), p.name.clone())
                } else if p.ty.contains("int") {
                    (Type::Int, p.name.clone())
                } else if p.ty.trim() == "float" {
                    (Type::Float, p.name.clone())
                } else {
                    (Type::Double, p.name.clone())
                };
                Param { ty, name, tol: None }
            })
            .collect();
        let ret = match self.dst {
            Some(_) => Type::Named(self.spec.rettype.clone()),
            None => Type::Void,
        };
        Ok(Function { ret, name: format!("_c{}", self.spec.name), params, body: Some(prologue) })
    }

    fn fresh_var(&mut self) -> String {
        self.fresh += 1;
        let name = format!("_k{}", self.fresh);
        name
    }

    fn stmt(&mut self, s: &PStmt, out: &mut Vec<Stmt>) -> Result<(), GenError> {
        match s {
            PStmt::For { var, from, to, body } => {
                self.int_locals.insert(var.clone());
                let mut inner = Vec::new();
                for b in body {
                    self.stmt(b, &mut inner)?;
                }
                out.push(Stmt::For {
                    init: Some(Box::new(Stmt::Expr(Expr::Assign {
                        op: igen_cfront::AssignOp::Assign,
                        lhs: Box::new(Expr::ident(var)),
                        rhs: Box::new(self.int_expr(from)?),
                        loc: Default::default(),
                    }))),
                    cond: Some(Expr::Binary {
                        op: BinOp::Le,
                        lhs: Box::new(Expr::ident(var)),
                        rhs: Box::new(self.int_expr(to)?),
                        loc: Default::default(),
                    }),
                    step: Some(Expr::Unary(UnOp::PreInc, Box::new(Expr::ident(var)))),
                    body: Box::new(Stmt::Block(inner)),
                });
                Ok(())
            }
            PStmt::If { cond, then_body, else_body } => {
                let c = self.cond_expr(cond)?;
                let mut tb = Vec::new();
                for b in then_body {
                    self.stmt(b, &mut tb)?;
                }
                let mut eb = Vec::new();
                for b in else_body {
                    self.stmt(b, &mut eb)?;
                }
                out.push(Stmt::If {
                    cond: c,
                    then_branch: Box::new(Stmt::Block(tb)),
                    else_branch: if eb.is_empty() { None } else { Some(Box::new(Stmt::Block(eb))) },
                });
                Ok(())
            }
            PStmt::Assign { lhs, rhs } => self.assign(lhs, rhs, out),
        }
    }

    fn assign(&mut self, lhs: &PLval, rhs: &PExpr, out: &mut Vec<Stmt>) -> Result<(), GenError> {
        match lhs {
            PLval::Var(v) => {
                // Scalar integer temp (e.g. `i := j*64`).
                self.int_locals.insert(v.clone());
                let rhs = self.int_expr(rhs)?;
                out.push(assign_stmt(Expr::ident(v), rhs));
                Ok(())
            }
            PLval::Range { base, hi, lo } => {
                let Some(lo) = lo else {
                    return Err(self.unsupported("single-bit write"));
                };
                let hi_l =
                    self.lin(hi).ok_or_else(|| self.unsupported("non-linear high bit index"))?;
                let lo_l =
                    self.lin(lo).ok_or_else(|| self.unsupported("non-linear low bit index"))?;
                let width = hi_l
                    .sub(&lo_l)
                    .as_const()
                    .ok_or_else(|| self.unsupported("non-constant range width"))?
                    + 1;
                match base {
                    RangeBase::Mem => self.assign_mem(&lo_l, width, rhs, out),
                    RangeBase::Var(name) => self.assign_var(name, &lo_l, width, rhs, out),
                }
            }
        }
    }

    /// Store to memory: `MEM[ptr + lo + w - 1 : ptr + lo] := rhs`.
    fn assign_mem(
        &mut self,
        lo: &Lin,
        width: i64,
        rhs: &PExpr,
        out: &mut Vec<Stmt>,
    ) -> Result<(), GenError> {
        let (ptr, elem, lo_rest) = self.split_ptr(lo)?;
        if width == elem.bits() {
            let val = self.value_expr(rhs, Domain::Float)?;
            out.push(assign_stmt(
                Expr::Index(
                    Box::new(Expr::ident(&ptr)),
                    Box::new(div_expr(self.lin_expr(&lo_rest), elem.bits())),
                ),
                val,
            ));
            return Ok(());
        }
        if width % elem.bits() == 0 {
            // Block store: rhs must be a whole-register range.
            let PExpr::Range { base: RangeBase::Var(src), lo: Some(src_lo), .. } = rhs else {
                return Err(self.unsupported("block store of a non-register value"));
            };
            let src_lo =
                self.lin(src_lo).ok_or_else(|| self.unsupported("non-linear source index"))?;
            let lanes = width / elem.bits();
            let k = self.fresh_var();
            let body = assign_stmt(
                Expr::Index(
                    Box::new(Expr::ident(&ptr)),
                    Box::new(add_expr(
                        div_expr(self.lin_expr(&lo_rest), elem.bits()),
                        Expr::ident(&k),
                    )),
                ),
                Expr::Index(
                    Box::new(Expr::Member {
                        base: Box::new(Expr::ident(src)),
                        field: "f".into(),
                        arrow: false,
                    }),
                    Box::new(add_expr(
                        div_expr(self.lin_expr(&src_lo), elem.bits()),
                        Expr::ident(&k),
                    )),
                ),
            );
            out.push(counted_loop(&k, lanes, body));
            return Ok(());
        }
        Err(self.unsupported(format!("store width {width}")))
    }

    /// Assignment to a register or scalar-local bit range.
    fn assign_var(
        &mut self,
        name: &str,
        lo: &Lin,
        width: i64,
        rhs: &PExpr,
        out: &mut Vec<Stmt>,
    ) -> Result<(), GenError> {
        if let Some(&(bits, elem)) = self.vecs.get(name) {
            if let Some(lo_c) = lo.as_const() {
                if lo_c >= bits {
                    // `dst[MAX:256] := 0`: zeroing of nonexistent upper
                    // bits — a documented no-op.
                    return Ok(());
                }
            }
            if width == elem.bits() {
                let domain = self.domain_of(rhs);
                let val = self.value_expr(rhs, domain)?;
                let field = if domain == Domain::Intish { "i" } else { "f" };
                out.push(assign_stmt(
                    Expr::Index(
                        Box::new(Expr::Member {
                            base: Box::new(Expr::ident(name)),
                            field: field.into(),
                            arrow: false,
                        }),
                        Box::new(div_expr(self.lin_expr(lo), elem.bits())),
                    ),
                    val,
                ));
                return Ok(());
            }
            if width % elem.bits() == 0 {
                // Whole/multi-element assignment: block copy or zero fill.
                let lanes = width / elem.bits();
                let k = self.fresh_var();
                let dst_idx = add_expr(div_expr(self.lin_expr(lo), elem.bits()), Expr::ident(&k));
                let dst_e = Expr::Index(
                    Box::new(Expr::Member {
                        base: Box::new(Expr::ident(name)),
                        field: "f".into(),
                        arrow: false,
                    }),
                    Box::new(dst_idx),
                );
                let src_e = match rhs {
                    PExpr::Num(0) => {
                        Expr::FloatLit { value: 0.0, text: "0.0".into(), f32: false, tol: false }
                    }
                    PExpr::Range { base: RangeBase::Mem, lo: Some(src_lo), .. } => {
                        let src_lo = self
                            .lin(src_lo)
                            .ok_or_else(|| self.unsupported("non-linear source index"))?;
                        let (ptr, pelem, rest) = self.split_ptr(&src_lo)?;
                        Expr::Index(
                            Box::new(Expr::ident(&ptr)),
                            Box::new(add_expr(
                                div_expr(self.lin_expr(&rest), pelem.bits()),
                                Expr::ident(&k),
                            )),
                        )
                    }
                    PExpr::Range { base: RangeBase::Var(src), lo: Some(src_lo), .. } => {
                        let src_lo = self
                            .lin(src_lo)
                            .ok_or_else(|| self.unsupported("non-linear source index"))?;
                        Expr::Index(
                            Box::new(Expr::Member {
                                base: Box::new(Expr::ident(src)),
                                field: "f".into(),
                                arrow: false,
                            }),
                            Box::new(add_expr(
                                div_expr(self.lin_expr(&src_lo), elem.bits()),
                                Expr::ident(&k),
                            )),
                        )
                    }
                    _ => return Err(self.unsupported("multi-element assignment of an expression")),
                };
                out.push(counted_loop(&k, lanes, assign_stmt(dst_e, src_e)));
                return Ok(());
            }
            return Err(self.unsupported(format!("register write width {width}")));
        }
        // Scalar double local (`tmp[63:0] := …`).
        if width == 64 && lo.as_const() == Some(0) {
            self.f64_locals.insert(name.to_string());
            let val = self.value_expr(rhs, Domain::Float)?;
            out.push(assign_stmt(Expr::ident(name), val));
            return Ok(());
        }
        Err(self.unsupported(format!("write to unknown operand {name}")))
    }

    /// Splits a `MEM` index into (pointer name, pointee element, bit
    /// offset form).
    fn split_ptr(&self, lo: &Lin) -> Result<(String, Elem, Lin), GenError> {
        for (name, &elem) in &self.ptrs {
            if let Some(rest) = lo.without_var(name) {
                return Ok((name.clone(), elem, rest));
            }
        }
        Err(self.unsupported("memory operand without pointer base"))
    }

    /// Value domain of an expression: bitwise operators force the integer
    /// view.
    fn domain_of(&self, e: &PExpr) -> Domain {
        fn has_bitwise(e: &PExpr) -> bool {
            match e {
                PExpr::Bin(op, a, b) => {
                    matches!(*op, "AND" | "OR" | "XOR" | "<<" | ">>")
                        || has_bitwise(a)
                        || has_bitwise(b)
                }
                PExpr::Un(op, a) => *op == "NOT" || has_bitwise(a),
                _ => false,
            }
        }
        if has_bitwise(e) {
            Domain::Intish
        } else {
            Domain::Float
        }
    }

    /// Translates a value expression in the given domain.
    fn value_expr(&mut self, e: &PExpr, domain: Domain) -> Result<Expr, GenError> {
        match e {
            PExpr::Num(v) => Ok(if domain == Domain::Float {
                Expr::FloatLit {
                    value: *v as f64,
                    text: format!("{}.0", v),
                    f32: false,
                    tol: false,
                }
            } else {
                Expr::int(*v)
            }),
            PExpr::Var(v) => Ok(Expr::ident(v)),
            PExpr::MaxBit => Ok(Expr::int(self.max_bit)),
            PExpr::Range { base, hi, lo } => self.range_value(base, hi, lo.as_deref(), domain),
            PExpr::Un("-", a) => Ok(Expr::Unary(UnOp::Neg, Box::new(self.value_expr(a, domain)?))),
            PExpr::Un("NOT", a) => {
                Ok(Expr::Unary(UnOp::BitNot, Box::new(self.value_expr(a, Domain::Intish)?)))
            }
            PExpr::Un(op, _) => Err(self.unsupported(format!("unary {op}"))),
            PExpr::Bin(op, a, b) => {
                let c_op = match *op {
                    "+" => BinOp::Add,
                    "-" => BinOp::Sub,
                    "*" => BinOp::Mul,
                    "/" => BinOp::Div,
                    "%" => BinOp::Rem,
                    "AND" => BinOp::BitAnd,
                    "OR" => BinOp::BitOr,
                    "XOR" => BinOp::BitXor,
                    "<<" => BinOp::Shl,
                    ">>" => BinOp::Shr,
                    "<" => BinOp::Lt,
                    "<=" => BinOp::Le,
                    ">" => BinOp::Gt,
                    ">=" => BinOp::Ge,
                    "==" => BinOp::Eq,
                    "!=" => BinOp::Ne,
                    other => return Err(self.unsupported(format!("operator {other}"))),
                };
                let sub = if matches!(
                    c_op,
                    BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor | BinOp::Shl | BinOp::Shr
                ) {
                    Domain::Intish
                } else {
                    domain
                };
                Ok(Expr::Binary {
                    op: c_op,
                    lhs: Box::new(self.value_expr(a, sub)?),
                    rhs: Box::new(self.value_expr(b, sub)?),
                    loc: Default::default(),
                })
            }
            PExpr::Call(name, args) => {
                let c_args = args
                    .iter()
                    .map(|a| self.value_expr(a, Domain::Float))
                    .collect::<Result<Vec<_>, _>>()?;
                match name.as_str() {
                    "SQRT" => Ok(Expr::call("sqrt", c_args)),
                    "ABS" => Ok(Expr::call("fabs", c_args)),
                    "MIN" => Ok(Expr::call("fmin", c_args)),
                    "MAX" => Ok(Expr::call("fmax", c_args)),
                    // Conversions whose operation bodies the XML leaves
                    // undefined — implemented "manually" as the paper says.
                    "Convert_FP32_To_FP64" => {
                        Ok(Expr::Cast(Type::Double, Box::new(c_args.into_iter().next().unwrap())))
                    }
                    "Convert_FP64_To_FP32" => {
                        Ok(Expr::Cast(Type::Float, Box::new(c_args.into_iter().next().unwrap())))
                    }
                    other => Err(self.unsupported(format!("undefined pseudo-function {other}"))),
                }
            }
        }
    }

    /// Translates a bit-range read as a value.
    fn range_value(
        &mut self,
        base: &RangeBase,
        hi: &PExpr,
        lo: Option<&PExpr>,
        domain: Domain,
    ) -> Result<Expr, GenError> {
        let hi_l = self.lin(hi).ok_or_else(|| self.unsupported("non-linear index"))?;
        match lo {
            None => {
                // Single-bit read.
                let bit = hi_l;
                match base {
                    RangeBase::Var(name) => {
                        if self.int_params.contains(name) {
                            // (imm8 >> bit) & 1
                            Ok(bit_and_1(Expr::Binary {
                                op: BinOp::Shr,
                                lhs: Box::new(Expr::ident(name)),
                                rhs: Box::new(self.lin_expr(&bit)),
                                loc: Default::default(),
                            }))
                        } else if let Some(&(_, _elem)) = self.vecs.get(name) {
                            // (v.i[bit/64] >> (bit%64)) & 1
                            let idx = div_expr(self.lin_expr(&bit), 64);
                            let sh = rem_expr(self.lin_expr(&bit), 64);
                            Ok(bit_and_1(Expr::Binary {
                                op: BinOp::Shr,
                                lhs: Box::new(Expr::Index(
                                    Box::new(Expr::Member {
                                        base: Box::new(Expr::ident(name)),
                                        field: "i".into(),
                                        arrow: false,
                                    }),
                                    Box::new(idx),
                                )),
                                rhs: Box::new(sh),
                                loc: Default::default(),
                            }))
                        } else {
                            Err(self.unsupported(format!("bit access on {name}")))
                        }
                    }
                    RangeBase::Mem => Err(self.unsupported("bit access on memory")),
                }
            }
            Some(lo) => {
                let lo_l = self.lin(lo).ok_or_else(|| self.unsupported("non-linear index"))?;
                let width = hi_l
                    .sub(&lo_l)
                    .as_const()
                    .ok_or_else(|| self.unsupported("non-constant range width"))?
                    + 1;
                match base {
                    RangeBase::Mem => {
                        let (ptr, elem, rest) = self.split_ptr(&lo_l)?;
                        if width != elem.bits() {
                            return Err(self.unsupported(format!("memory read width {width}")));
                        }
                        Ok(Expr::Index(
                            Box::new(Expr::ident(&ptr)),
                            Box::new(div_expr(self.lin_expr(&rest), elem.bits())),
                        ))
                    }
                    RangeBase::Var(name) => {
                        if let Some(&(_, elem)) = self.vecs.get(name) {
                            if width != elem.bits() {
                                return Err(
                                    self.unsupported(format!("register read width {width}"))
                                );
                            }
                            let field = if domain == Domain::Intish { "i" } else { "f" };
                            Ok(Expr::Index(
                                Box::new(Expr::Member {
                                    base: Box::new(Expr::ident(name)),
                                    field: field.into(),
                                    arrow: false,
                                }),
                                Box::new(div_expr(self.lin_expr(&lo_l), elem.bits())),
                            ))
                        } else if self.f64_params.contains(name) || self.f64_locals.contains(name) {
                            // `a[63:0]` on a scalar double is the value.
                            if width != 64 || lo_l.as_const() != Some(0) {
                                return Err(self.unsupported("partial scalar access"));
                            }
                            Ok(Expr::ident(name))
                        } else {
                            Err(self.unsupported(format!("range access on {name}")))
                        }
                    }
                }
            }
        }
    }

    /// Condition expression with the `a == b == c` chain rewrite the
    /// paper mentions ("not the proper way to do it in C").
    fn cond_expr(&mut self, e: &PExpr) -> Result<Expr, GenError> {
        if let PExpr::Bin("==", a, c) = e {
            if let PExpr::Bin("==", _, b) = &**a {
                // (x == y) == z  ⇒  (x == y) && (y == z)
                let left = self.cond_expr(a)?;
                let right =
                    self.value_expr(&PExpr::Bin("==", b.clone(), c.clone()), Domain::Intish)?;
                return Ok(Expr::Binary {
                    op: BinOp::And,
                    lhs: Box::new(left),
                    rhs: Box::new(right),
                    loc: Default::default(),
                });
            }
        }
        self.value_expr(e, Domain::Intish)
    }

    /// Integer scalar expression (loop bounds, index temps).
    fn int_expr(&mut self, e: &PExpr) -> Result<Expr, GenError> {
        self.value_expr(e, Domain::Intish)
    }

    fn lin(&self, e: &PExpr) -> Option<Lin> {
        linearize(e, self.max_bit)
    }

    /// A linear form as a C integer expression.
    fn lin_expr(&self, l: &Lin) -> Expr {
        let mut parts: Vec<Expr> = Vec::new();
        for (v, c) in &l.coeffs {
            let var = Expr::ident(v);
            parts.push(if *c == 1 {
                var
            } else {
                Expr::Binary {
                    op: BinOp::Mul,
                    lhs: Box::new(var),
                    rhs: Box::new(Expr::int(*c)),
                    loc: Default::default(),
                }
            });
        }
        if l.konst != 0 || parts.is_empty() {
            parts.push(Expr::int(l.konst));
        }
        parts
            .into_iter()
            .reduce(|a, b| Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(a),
                rhs: Box::new(b),
                loc: Default::default(),
            })
            .unwrap()
    }
}

fn assign_stmt(lhs: Expr, rhs: Expr) -> Stmt {
    Stmt::Expr(Expr::Assign {
        op: igen_cfront::AssignOp::Assign,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
        loc: Default::default(),
    })
}

fn div_expr(e: Expr, k: i64) -> Expr {
    // Fold constant indices (`0 / 64` → `0`) for readable output.
    if let Expr::IntLit { value, .. } = e {
        return Expr::int(value / k);
    }
    Expr::Binary {
        op: BinOp::Div,
        lhs: Box::new(e),
        rhs: Box::new(Expr::int(k)),
        loc: Default::default(),
    }
}

fn rem_expr(e: Expr, k: i64) -> Expr {
    if let Expr::IntLit { value, .. } = e {
        return Expr::int(value % k);
    }
    Expr::Binary {
        op: BinOp::Rem,
        lhs: Box::new(e),
        rhs: Box::new(Expr::int(k)),
        loc: Default::default(),
    }
}

fn add_expr(a: Expr, b: Expr) -> Expr {
    if matches!(a, Expr::IntLit { value: 0, .. }) {
        return b;
    }
    if matches!(b, Expr::IntLit { value: 0, .. }) {
        return a;
    }
    Expr::Binary { op: BinOp::Add, lhs: Box::new(a), rhs: Box::new(b), loc: Default::default() }
}

fn bit_and_1(e: Expr) -> Expr {
    Expr::Binary {
        op: BinOp::BitAnd,
        lhs: Box::new(e),
        rhs: Box::new(Expr::int(1)),
        loc: Default::default(),
    }
}

/// `for (int k = 0; k < lanes; ++k) body`
fn counted_loop(var: &str, lanes: i64, body: Stmt) -> Stmt {
    Stmt::For {
        init: Some(Box::new(Stmt::Decl(VarDecl {
            ty: Type::Int,
            name: var.to_string(),
            init: Some(Expr::int(0)),
        }))),
        cond: Some(Expr::Binary {
            op: BinOp::Lt,
            lhs: Box::new(Expr::ident(var)),
            rhs: Box::new(Expr::int(lanes)),
            loc: Default::default(),
        }),
        step: Some(Expr::Unary(UnOp::PreInc, Box::new(Expr::ident(var)))),
        body: Box::new(Stmt::Block(vec![body])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_spec_xml;
    use igen_cfront::print_function;

    fn spec_named(name: &str) -> IntrinsicSpec {
        parse_spec_xml(crate::CORPUS)
            .unwrap()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} not in corpus"))
    }

    #[test]
    fn fig5_add_pd_shape() {
        let f = generate_c(&spec_named("_mm256_add_pd")).unwrap();
        let c = print_function(&f);
        assert!(c.contains("__m256d _c_mm256_add_pd(__m256d _a, __m256d _b)"), "{c}");
        assert!(c.contains("a.v = _a;"), "{c}");
        assert!(c.contains("for (j = 0; j <= 3; ++j)"), "{c}");
        assert!(c.contains("dst.f[i / 64] = a.f[i / 64] + b.f[i / 64];"), "{c}");
        assert!(c.contains("return dst.v;"), "{c}");
        // The MAX:256 no-op is dropped.
        assert!(!c.contains("[256") && !c.contains("255]"), "{c}");
    }

    #[test]
    fn bitwise_uses_integer_view() {
        let f = generate_c(&spec_named("_mm256_and_pd")).unwrap();
        let c = print_function(&f);
        assert!(c.contains("dst.i[i / 64] = a.i[i / 64] & b.i[i / 64];"), "{c}");
        let f = generate_c(&spec_named("_mm256_andnot_pd")).unwrap();
        let c = print_function(&f);
        assert!(c.contains("~a.i[i / 64] & b.i[i / 64]"), "{c}");
    }

    #[test]
    fn load_store_block_copies() {
        let f = generate_c(&spec_named("_mm256_loadu_pd")).unwrap();
        let c = print_function(&f);
        assert!(c.contains("dst.f["), "{c}");
        assert!(c.contains("mem_addr["), "{c}");
        let f = generate_c(&spec_named("_mm256_storeu_pd")).unwrap();
        let c = print_function(&f);
        assert!(c.contains("void _c_mm256_storeu_pd(double* mem_addr, __m256d _a)"), "{c}");
        assert!(c.contains("mem_addr["), "{c}");
    }

    #[test]
    fn broadcast_uses_scalar_local() {
        let f = generate_c(&spec_named("_mm256_broadcast_sd")).unwrap();
        let c = print_function(&f);
        assert!(c.contains("double tmp;"), "{c}");
        assert!(c.contains("tmp = mem_addr[0];"), "{c}");
        assert!(c.contains("dst.f[i / 64] = tmp;"), "{c}");
    }

    #[test]
    fn blend_reads_imm_bits() {
        let f = generate_c(&spec_named("_mm256_blend_pd")).unwrap();
        let c = print_function(&f);
        assert!(c.contains("imm8 >> j & 1"), "{c}");
        let f = generate_c(&spec_named("_mm256_blendv_pd")).unwrap();
        let c = print_function(&f);
        assert!(c.contains("mask.i[(i + 63) / 64] >> (i + 63) % 64 & 1"), "{c}");
    }

    #[test]
    fn sqrt_min_max_map_to_libm() {
        let c = print_function(&generate_c(&spec_named("_mm256_sqrt_pd")).unwrap());
        assert!(c.contains("sqrt(a.f[i / 64])"), "{c}");
        let c = print_function(&generate_c(&spec_named("_mm_min_pd")).unwrap());
        assert!(c.contains("fmin("), "{c}");
    }

    #[test]
    fn cvt_uses_cast_and_mixed_lanes() {
        let c = print_function(&generate_c(&spec_named("_mm256_cvtps_pd")).unwrap());
        assert!(c.contains("(double)a.f[i / 32]"), "{c}");
        assert!(c.contains("dst.f[k / 64]"), "{c}");
    }

    #[test]
    fn round_pd_is_unsupported() {
        let err = generate_c(&spec_named("_mm256_round_pd")).unwrap_err();
        assert!(
            matches!(err, GenError::Unsupported { ref reason, .. } if reason.contains("ROUND")),
            "{err}"
        );
    }

    #[test]
    fn unit_generates_and_reparses() {
        let specs = parse_spec_xml(crate::CORPUS).unwrap();
        let (tu, errors) = generate_unit(&specs);
        // Exactly the deliberate unsupported entry fails.
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert_eq!(errors[0].0, "_mm256_round_pd");
        assert!(tu.functions().count() >= 40);
        // The emitted C re-parses.
        let printed = igen_cfront::print_unit(&tu);
        let re = igen_cfront::parse(&printed)
            .unwrap_or_else(|e| panic!("generated C does not parse: {e}\n{printed}"));
        assert_eq!(igen_cfront::print_unit(&re), printed);
    }

    #[test]
    fn setzero_zero_fills() {
        let c = print_function(&generate_c(&spec_named("_mm256_setzero_pd")).unwrap());
        assert!(c.contains("= 0.0;"), "{c}");
    }

    #[test]
    fn hadd_constant_lanes() {
        let c = print_function(&generate_c(&spec_named("_mm256_hadd_pd")).unwrap());
        assert!(c.contains("dst.f[0] = a.f[1] + a.f[0];"), "{c}");
    }
}
