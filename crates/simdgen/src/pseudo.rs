//! Tokenizer, grammar and parser for the Intel pseudo-language used in
//! the `<operation>` element of the intrinsics specification (Section V,
//! Fig. 4 "Tokenizer" and "Parser").
//!
//! The language is line-oriented: `FOR j := 0 to 3 … ENDFOR`,
//! `IF cond … ELSE … FI`, assignments `dst[i+63:i] := a[i+63:i] + …`,
//! bit-range accesses `v[hi:lo]` (single indices `v[bit]` select one
//! bit), the `MAX` top-bit constant, and `MEM[addr+hi:addr+lo]` memory
//! operands.

use std::collections::BTreeMap;

/// Error while tokenizing/parsing an `<operation>` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PseudoError {
    /// 1-based line within the operation text.
    pub line: u32,
    /// Description.
    pub msg: String,
}

impl core::fmt::Display for PseudoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "pseudo-language error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for PseudoError {}

/// Tokens of the pseudo-language.
#[derive(Debug, Clone, PartialEq)]
pub enum PTok {
    /// Identifier or keyword.
    Id(String),
    /// Integer literal.
    Num(i64),
    /// `:=`
    Assign,
    /// Punctuation or operator.
    P(&'static str),
    /// Statement separator (newline).
    Nl,
    /// End of text.
    End,
}

/// Tokenizes an operation body.
pub fn tokenize(src: &str) -> Result<Vec<(PTok, u32)>, PseudoError> {
    let mut out = Vec::new();
    for (ln, line) in src.lines().enumerate() {
        let line_no = ln as u32 + 1;
        let mut rest = line.trim();
        // Strip comments (Intel uses none in our subset; support `//`).
        if let Some(idx) = rest.find("//") {
            rest = rest[..idx].trim_end();
        }
        let bytes = rest.as_bytes();
        let mut i = 0;
        let had_any = !rest.is_empty();
        while i < bytes.len() {
            let c = bytes[i];
            if c.is_ascii_whitespace() {
                i += 1;
                continue;
            }
            if c.is_ascii_alphabetic() || c == b'_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push((PTok::Id(rest[start..i].to_string()), line_no));
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'x') {
                    i += 1;
                }
                let text = &rest[start..i];
                let v = if let Some(hex) = text.strip_prefix("0x") {
                    i64::from_str_radix(hex, 16).map_err(|e| PseudoError {
                        line: line_no,
                        msg: format!("bad number {text}: {e}"),
                    })?
                } else {
                    text.parse().map_err(|e| PseudoError {
                        line: line_no,
                        msg: format!("bad number {text}: {e}"),
                    })?
                };
                out.push((PTok::Num(v), line_no));
                continue;
            }
            if rest[i..].starts_with(":=") {
                out.push((PTok::Assign, line_no));
                i += 2;
                continue;
            }
            let two = ["==", "!=", "<=", ">=", "<<", ">>"];
            if let Some(p) = two.iter().find(|p| rest[i..].starts_with(**p)) {
                out.push((PTok::P(p), line_no));
                i += 2;
                continue;
            }
            let one = ["+", "-", "*", "/", "%", "(", ")", "[", "]", ":", ",", "<", ">", "="];
            if let Some(p) = one.iter().find(|p| rest[i..].starts_with(**p)) {
                out.push((PTok::P(p), line_no));
                i += 1;
                continue;
            }
            return Err(PseudoError {
                line: line_no,
                msg: format!("unexpected character {:?}", c as char),
            });
        }
        if had_any {
            out.push((PTok::Nl, line_no));
        }
    }
    out.push((PTok::End, src.lines().count() as u32 + 1));
    Ok(out)
}

/// Base of a bit-range access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RangeBase {
    /// Named variable or parameter.
    Var(String),
    /// `MEM[…]` memory operand.
    Mem,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    /// Integer literal.
    Num(i64),
    /// Scalar variable.
    Var(String),
    /// `MAX` — the top bit index of the destination register.
    MaxBit,
    /// Bit-range access `base[hi:lo]`; `lo == None` selects the single
    /// bit `hi`.
    Range {
        /// Accessed base.
        base: RangeBase,
        /// High bit (inclusive).
        hi: Box<PExpr>,
        /// Low bit (inclusive); `None` for a single-bit access.
        lo: Option<Box<PExpr>>,
    },
    /// Unary operation (`-`, `NOT`).
    Un(&'static str, Box<PExpr>),
    /// Binary operation (`+ - * / % << >> < <= > >= == != AND OR XOR`).
    Bin(&'static str, Box<PExpr>, Box<PExpr>),
    /// Intrinsic pseudo-function call (`SQRT`, `ABS`, `MIN`, `MAX`, …).
    Call(String, Vec<PExpr>),
}

/// L-values.
#[derive(Debug, Clone, PartialEq)]
pub enum PLval {
    /// Whole scalar variable.
    Var(String),
    /// Bit-range of a register or memory.
    Range {
        /// Accessed base.
        base: RangeBase,
        /// High bit.
        hi: PExpr,
        /// Low bit (None = single bit).
        lo: Option<PExpr>,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum PStmt {
    /// `FOR v := a to b … ENDFOR` (inclusive bounds).
    For {
        /// Induction variable.
        var: String,
        /// Inclusive start.
        from: PExpr,
        /// Inclusive end.
        to: PExpr,
        /// Body.
        body: Vec<PStmt>,
    },
    /// `IF c … ELSE … FI`.
    If {
        /// Condition.
        cond: PExpr,
        /// Then branch.
        then_body: Vec<PStmt>,
        /// Else branch.
        else_body: Vec<PStmt>,
    },
    /// `lhs := rhs`.
    Assign {
        /// Target.
        lhs: PLval,
        /// Source expression.
        rhs: PExpr,
    },
}

/// Parses an operation body into statements.
///
/// # Errors
///
/// Returns [`PseudoError`] on malformed pseudo-code.
pub fn parse_operation(src: &str) -> Result<Vec<PStmt>, PseudoError> {
    let toks = tokenize(src)?;
    let mut p = PP { toks, pos: 0 };
    let body = p.stmts(&[])?;
    Ok(body)
}

struct PP {
    toks: Vec<(PTok, u32)>,
    pos: usize,
}

impl PP {
    fn peek(&self) -> &PTok {
        &self.toks[self.pos.min(self.toks.len() - 1)].0
    }

    fn line(&self) -> u32 {
        self.toks[self.pos.min(self.toks.len() - 1)].1
    }

    fn bump(&mut self) -> PTok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].0.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> PseudoError {
        PseudoError { line: self.line(), msg: msg.into() }
    }

    fn skip_nl(&mut self) {
        while matches!(self.peek(), PTok::Nl) {
            self.bump();
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), PTok::Id(s) if s == kw)
    }

    fn eat_p(&mut self, p: &str) -> Result<(), PseudoError> {
        if matches!(self.peek(), PTok::P(q) if *q == p) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {:?}", self.peek())))
        }
    }

    /// Parses statements until one of the terminator keywords or `End`.
    fn stmts(&mut self, until: &[&str]) -> Result<Vec<PStmt>, PseudoError> {
        let mut out = Vec::new();
        loop {
            self.skip_nl();
            if matches!(self.peek(), PTok::End) || until.iter().any(|k| self.at_kw(k)) {
                return Ok(out);
            }
            out.push(self.stmt()?);
        }
    }

    fn stmt(&mut self) -> Result<PStmt, PseudoError> {
        if self.at_kw("FOR") {
            self.bump();
            let PTok::Id(var) = self.bump() else {
                return Err(self.err("expected induction variable"));
            };
            if !matches!(self.bump(), PTok::Assign) {
                return Err(self.err("expected `:=` in FOR"));
            }
            let from = self.expr(0)?;
            if !self.at_kw("to") {
                return Err(self.err("expected `to` in FOR"));
            }
            self.bump();
            let to = self.expr(0)?;
            let body = self.stmts(&["ENDFOR"])?;
            if !self.at_kw("ENDFOR") {
                return Err(self.err("expected ENDFOR"));
            }
            self.bump();
            return Ok(PStmt::For { var, from, to, body });
        }
        if self.at_kw("IF") {
            self.bump();
            let cond = self.expr(0)?;
            // Optional THEN.
            if self.at_kw("THEN") {
                self.bump();
            }
            let then_body = self.stmts(&["ELSE", "FI"])?;
            let else_body = if self.at_kw("ELSE") {
                self.bump();
                self.stmts(&["FI"])?
            } else {
                Vec::new()
            };
            if !self.at_kw("FI") {
                return Err(self.err("expected FI"));
            }
            self.bump();
            return Ok(PStmt::If { cond, then_body, else_body });
        }
        // Assignment.
        let lhs = self.lvalue()?;
        if !matches!(self.bump(), PTok::Assign) {
            return Err(self.err("expected `:=`"));
        }
        let rhs = self.expr(0)?;
        Ok(PStmt::Assign { lhs, rhs })
    }

    fn lvalue(&mut self) -> Result<PLval, PseudoError> {
        let base = match self.bump() {
            PTok::Id(s) if s == "MEM" => RangeBase::Mem,
            PTok::Id(s) => RangeBase::Var(s),
            other => return Err(self.err(format!("expected lvalue, found {other:?}"))),
        };
        if matches!(self.peek(), PTok::P("[")) {
            self.bump();
            let hi = self.expr(0)?;
            let lo = if matches!(self.peek(), PTok::P(":")) {
                self.bump();
                Some(self.expr(0)?)
            } else {
                None
            };
            self.eat_p("]")?;
            Ok(PLval::Range { base, hi, lo })
        } else {
            match base {
                RangeBase::Var(s) => Ok(PLval::Var(s)),
                RangeBase::Mem => Err(self.err("MEM requires a range")),
            }
        }
    }

    fn binop_at(&self) -> Option<(&'static str, u8)> {
        match self.peek() {
            PTok::Id(s) if s == "OR" => Some(("OR", 1)),
            PTok::Id(s) if s == "XOR" => Some(("XOR", 2)),
            PTok::Id(s) if s == "AND" => Some(("AND", 3)),
            PTok::P("==") => Some(("==", 4)),
            PTok::P("!=") => Some(("!=", 4)),
            PTok::P("=") => Some(("==", 4)), // Intel sometimes writes `=`
            PTok::P("<") => Some(("<", 5)),
            PTok::P("<=") => Some(("<=", 5)),
            PTok::P(">") => Some((">", 5)),
            PTok::P(">=") => Some((">=", 5)),
            PTok::P("<<") => Some(("<<", 6)),
            PTok::P(">>") => Some((">>", 6)),
            PTok::P("+") => Some(("+", 7)),
            PTok::P("-") => Some(("-", 7)),
            PTok::P("*") => Some(("*", 8)),
            PTok::P("/") => Some(("/", 8)),
            PTok::P("%") => Some(("%", 8)),
            _ => None,
        }
    }

    fn expr(&mut self, min_prec: u8) -> Result<PExpr, PseudoError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = self.binop_at() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.expr(prec + 1)?;
            lhs = PExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<PExpr, PseudoError> {
        if matches!(self.peek(), PTok::P("-")) {
            self.bump();
            return Ok(PExpr::Un("-", Box::new(self.unary()?)));
        }
        if self.at_kw("NOT") {
            self.bump();
            return Ok(PExpr::Un("NOT", Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<PExpr, PseudoError> {
        match self.bump() {
            PTok::Num(v) => Ok(PExpr::Num(v)),
            PTok::P("(") => {
                let e = self.expr(0)?;
                self.eat_p(")")?;
                Ok(e)
            }
            PTok::Id(s) => {
                if s == "MAX" && !matches!(self.peek(), PTok::P("(")) {
                    return Ok(PExpr::MaxBit);
                }
                if matches!(self.peek(), PTok::P("(")) {
                    // Pseudo-function call.
                    self.bump();
                    let mut args = Vec::new();
                    if !matches!(self.peek(), PTok::P(")")) {
                        loop {
                            args.push(self.expr(0)?);
                            if matches!(self.peek(), PTok::P(",")) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat_p(")")?;
                    return Ok(PExpr::Call(s, args));
                }
                if matches!(self.peek(), PTok::P("[")) {
                    self.bump();
                    let hi = self.expr(0)?;
                    let lo = if matches!(self.peek(), PTok::P(":")) {
                        self.bump();
                        Some(Box::new(self.expr(0)?))
                    } else {
                        None
                    };
                    self.eat_p("]")?;
                    let base = if s == "MEM" { RangeBase::Mem } else { RangeBase::Var(s) };
                    return Ok(PExpr::Range { base, hi: Box::new(hi), lo });
                }
                Ok(PExpr::Var(s))
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

/// A linear form `Σ cᵢ·varᵢ + k` over the pseudo-code's integer
/// variables — the symbolic machinery used to derive bit widths
/// ("we first derive symbolically the number of bits accessed", §V).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Lin {
    /// Coefficients per variable.
    pub coeffs: BTreeMap<String, i64>,
    /// Constant term.
    pub konst: i64,
}

impl Lin {
    /// The constant `k`.
    pub fn constant(k: i64) -> Lin {
        Lin { coeffs: BTreeMap::new(), konst: k }
    }

    /// A single variable.
    pub fn var(name: &str) -> Lin {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(name.to_string(), 1);
        Lin { coeffs, konst: 0 }
    }

    /// Sum.
    #[must_use]
    pub fn add(&self, other: &Lin) -> Lin {
        let mut out = self.clone();
        out.konst += other.konst;
        for (v, c) in &other.coeffs {
            *out.coeffs.entry(v.clone()).or_insert(0) += c;
        }
        out.coeffs.retain(|_, c| *c != 0);
        out
    }

    /// Difference.
    #[must_use]
    pub fn sub(&self, other: &Lin) -> Lin {
        self.add(&other.scale(-1))
    }

    /// Scalar multiple.
    #[must_use]
    pub fn scale(&self, k: i64) -> Lin {
        Lin {
            coeffs: self
                .coeffs
                .iter()
                .filter(|(_, c)| **c * k != 0)
                .map(|(v, c)| (v.clone(), c * k))
                .collect(),
            konst: self.konst * k,
        }
    }

    /// The value if the form is constant.
    pub fn as_const(&self) -> Option<i64> {
        if self.coeffs.is_empty() {
            Some(self.konst)
        } else {
            None
        }
    }

    /// Removes one occurrence of `var` (coefficient 1); `None` if absent
    /// or with a different coefficient.
    pub fn without_var(&self, var: &str) -> Option<Lin> {
        if self.coeffs.get(var) != Some(&1) {
            return None;
        }
        let mut out = self.clone();
        out.coeffs.remove(var);
        Some(out)
    }
}

/// Evaluates an index expression to a linear form; `max_bit` substitutes
/// the `MAX` constant. Returns `None` for non-linear expressions.
pub fn linearize(e: &PExpr, max_bit: i64) -> Option<Lin> {
    match e {
        PExpr::Num(v) => Some(Lin::constant(*v)),
        PExpr::Var(v) => Some(Lin::var(v)),
        PExpr::MaxBit => Some(Lin::constant(max_bit)),
        PExpr::Un("-", inner) => Some(linearize(inner, max_bit)?.scale(-1)),
        PExpr::Bin("+", a, b) => Some(linearize(a, max_bit)?.add(&linearize(b, max_bit)?)),
        PExpr::Bin("-", a, b) => Some(linearize(a, max_bit)?.sub(&linearize(b, max_bit)?)),
        PExpr::Bin("*", a, b) => {
            let la = linearize(a, max_bit)?;
            let lb = linearize(b, max_bit)?;
            match (la.as_const(), lb.as_const()) {
                (Some(ka), _) => Some(lb.scale(ka)),
                (_, Some(kb)) => Some(la.scale(kb)),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ADD_PD: &str = "FOR j := 0 to 3\n\ti := j*64\n\tdst[i+63:i] := a[i+63:i] + b[i+63:i]\nENDFOR\ndst[MAX:256] := 0";

    #[test]
    fn parses_add_pd_operation() {
        let stmts = parse_operation(ADD_PD).unwrap();
        assert_eq!(stmts.len(), 2);
        let PStmt::For { var, from, to, body } = &stmts[0] else { panic!() };
        assert_eq!(var, "j");
        assert_eq!(from, &PExpr::Num(0));
        assert_eq!(to, &PExpr::Num(3));
        assert_eq!(body.len(), 2);
        let PStmt::Assign { lhs, rhs } = &body[1] else { panic!() };
        assert!(matches!(lhs, PLval::Range { base: RangeBase::Var(b), .. } if b == "dst"));
        assert!(matches!(rhs, PExpr::Bin("+", _, _)));
        // The tail zeroing of the upper (nonexistent) bits.
        let PStmt::Assign { lhs: PLval::Range { hi, lo, .. }, .. } = &stmts[1] else { panic!() };
        assert_eq!(hi, &PExpr::MaxBit);
        assert_eq!(lo.as_ref().unwrap(), &PExpr::Num(256));
    }

    #[test]
    fn parses_if_else() {
        let src = "FOR j := 0 to 3\n\ti := j*64\n\tIF imm8[j]\n\t\tdst[i+63:i] := b[i+63:i]\n\tELSE\n\t\tdst[i+63:i] := a[i+63:i]\n\tFI\nENDFOR";
        let stmts = parse_operation(src).unwrap();
        let PStmt::For { body, .. } = &stmts[0] else { panic!() };
        let PStmt::If { cond, then_body, else_body } = &body[1] else { panic!() };
        assert!(matches!(cond, PExpr::Range { lo: None, .. }));
        assert_eq!(then_body.len(), 1);
        assert_eq!(else_body.len(), 1);
    }

    #[test]
    fn parses_mem_and_calls() {
        let src = "FOR j := 0 to 3\n\ti := j*64\n\tdst[i+63:i] := SQRT(MEM[mem_addr+i+63:mem_addr+i])\nENDFOR";
        let stmts = parse_operation(src).unwrap();
        let PStmt::For { body, .. } = &stmts[0] else { panic!() };
        let PStmt::Assign { rhs: PExpr::Call(name, args), .. } = &body[1] else { panic!() };
        assert_eq!(name, "SQRT");
        assert!(matches!(&args[0], PExpr::Range { base: RangeBase::Mem, .. }));
    }

    #[test]
    fn linear_forms() {
        let stmts = parse_operation("dst[i+63:i] := a[i+63:i]").unwrap();
        let PStmt::Assign { lhs: PLval::Range { hi, lo, .. }, .. } = &stmts[0] else { panic!() };
        let h = linearize(hi, 255).unwrap();
        let l = linearize(lo.as_ref().unwrap(), 255).unwrap();
        let width = h.sub(&l).konst + 1;
        assert_eq!(width, 64);
        assert_eq!(h.sub(&l).coeffs.len(), 0);
    }

    #[test]
    fn linearize_products_and_max() {
        let e = parse_operation("x := 2*j*4 + MAX - 3").unwrap();
        let PStmt::Assign { rhs, .. } = &e[0] else { panic!() };
        let l = linearize(rhs, 255).unwrap();
        assert_eq!(l.coeffs.get("j"), Some(&8));
        assert_eq!(l.konst, 252);
    }

    #[test]
    fn errors_reported() {
        assert!(parse_operation("FOR j := 0 to").is_err());
        assert!(parse_operation("dst[1:0] :=").is_err());
        assert!(parse_operation("IF x\ny := 1").is_err()); // missing FI
    }

    #[test]
    fn equality_chain_quirk() {
        // Intel sometimes writes `a == b == c`; we parse it (left assoc)
        // like the paper notes — the generator rewrites it properly.
        let stmts = parse_operation("x := a == b == c").unwrap();
        let PStmt::Assign { rhs: PExpr::Bin("==", l, _), .. } = &stmts[0] else { panic!() };
        assert!(matches!(&**l, PExpr::Bin("==", _, _)));
    }
}
