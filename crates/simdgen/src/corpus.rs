//! The embedded intrinsics specification corpus.
//!
//! The real Intel Intrinsics Guide XML (`data-3.4.3.xml`, ~6000 entries)
//! is not redistributable in this repository, so this module embeds a
//! corpus in **exactly the same schema** covering the floating-point
//! intrinsics the paper's benchmarks and examples exercise: SSE2/AVX
//! arithmetic, min/max, bitwise logic, loads/stores, set/broadcast,
//! unpack/shuffle/blend, horizontal add, FMA and a float→double
//! conversion. One entry (`_mm256_round_pd`) deliberately uses an
//! undefined pseudo-function to exercise the generator's unsupported-
//! intrinsic diagnostics (Section V "Limitations").

/// The corpus document (Intel Intrinsics Guide schema).
pub const CORPUS: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<intrinsics_list version="3.4.3-mini">

<intrinsic rettype="__m128d" name="_mm_add_pd">
  <type>Floating Point</type><CPUID>SSE2</CPUID><category>Arithmetic</category>
  <parameter varname="a" type="__m128d"/><parameter varname="b" type="__m128d"/>
  <description>Add packed double-precision (64-bit) floating-point elements in "a" and "b", and store the results in "dst".</description>
  <operation>
FOR j := 0 to 1
	i := j*64
	dst[i+63:i] := a[i+63:i] + b[i+63:i]
ENDFOR
  </operation>
  <instruction name="addpd" form="xmm, xmm"/><header>emmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m128d" name="_mm_sub_pd">
  <type>Floating Point</type><CPUID>SSE2</CPUID><category>Arithmetic</category>
  <parameter varname="a" type="__m128d"/><parameter varname="b" type="__m128d"/>
  <description>Subtract packed double-precision elements.</description>
  <operation>
FOR j := 0 to 1
	i := j*64
	dst[i+63:i] := a[i+63:i] - b[i+63:i]
ENDFOR
  </operation>
  <instruction name="subpd" form="xmm, xmm"/><header>emmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m128d" name="_mm_mul_pd">
  <type>Floating Point</type><CPUID>SSE2</CPUID><category>Arithmetic</category>
  <parameter varname="a" type="__m128d"/><parameter varname="b" type="__m128d"/>
  <description>Multiply packed double-precision elements.</description>
  <operation>
FOR j := 0 to 1
	i := j*64
	dst[i+63:i] := a[i+63:i] * b[i+63:i]
ENDFOR
  </operation>
  <instruction name="mulpd" form="xmm, xmm"/><header>emmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m128d" name="_mm_div_pd">
  <type>Floating Point</type><CPUID>SSE2</CPUID><category>Arithmetic</category>
  <parameter varname="a" type="__m128d"/><parameter varname="b" type="__m128d"/>
  <description>Divide packed double-precision elements.</description>
  <operation>
FOR j := 0 to 1
	i := j*64
	dst[i+63:i] := a[i+63:i] / b[i+63:i]
ENDFOR
  </operation>
  <instruction name="divpd" form="xmm, xmm"/><header>emmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m128d" name="_mm_sqrt_pd">
  <type>Floating Point</type><CPUID>SSE2</CPUID><category>Elementary Math Functions</category>
  <parameter varname="a" type="__m128d"/>
  <description>Square root of packed double-precision elements.</description>
  <operation>
FOR j := 0 to 1
	i := j*64
	dst[i+63:i] := SQRT(a[i+63:i])
ENDFOR
  </operation>
  <instruction name="sqrtpd" form="xmm, xmm"/><header>emmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m128d" name="_mm_min_pd">
  <type>Floating Point</type><CPUID>SSE2</CPUID><category>Special Math Functions</category>
  <parameter varname="a" type="__m128d"/><parameter varname="b" type="__m128d"/>
  <description>Minimum of packed double-precision elements.</description>
  <operation>
FOR j := 0 to 1
	i := j*64
	dst[i+63:i] := MIN(a[i+63:i], b[i+63:i])
ENDFOR
  </operation>
  <instruction name="minpd" form="xmm, xmm"/><header>emmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m128d" name="_mm_max_pd">
  <type>Floating Point</type><CPUID>SSE2</CPUID><category>Special Math Functions</category>
  <parameter varname="a" type="__m128d"/><parameter varname="b" type="__m128d"/>
  <description>Maximum of packed double-precision elements.</description>
  <operation>
FOR j := 0 to 1
	i := j*64
	dst[i+63:i] := MAX(a[i+63:i], b[i+63:i])
ENDFOR
  </operation>
  <instruction name="maxpd" form="xmm, xmm"/><header>emmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m128d" name="_mm_and_pd">
  <type>Floating Point</type><CPUID>SSE2</CPUID><category>Logical</category>
  <parameter varname="a" type="__m128d"/><parameter varname="b" type="__m128d"/>
  <description>Bitwise AND of packed double-precision elements.</description>
  <operation>
FOR j := 0 to 1
	i := j*64
	dst[i+63:i] := (a[i+63:i] AND b[i+63:i])
ENDFOR
  </operation>
  <instruction name="andpd" form="xmm, xmm"/><header>emmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m128d" name="_mm_or_pd">
  <type>Floating Point</type><CPUID>SSE2</CPUID><category>Logical</category>
  <parameter varname="a" type="__m128d"/><parameter varname="b" type="__m128d"/>
  <description>Bitwise OR of packed double-precision elements.</description>
  <operation>
FOR j := 0 to 1
	i := j*64
	dst[i+63:i] := (a[i+63:i] OR b[i+63:i])
ENDFOR
  </operation>
  <instruction name="orpd" form="xmm, xmm"/><header>emmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m128d" name="_mm_xor_pd">
  <type>Floating Point</type><CPUID>SSE2</CPUID><category>Logical</category>
  <parameter varname="a" type="__m128d"/><parameter varname="b" type="__m128d"/>
  <description>Bitwise XOR of packed double-precision elements.</description>
  <operation>
FOR j := 0 to 1
	i := j*64
	dst[i+63:i] := (a[i+63:i] XOR b[i+63:i])
ENDFOR
  </operation>
  <instruction name="xorpd" form="xmm, xmm"/><header>emmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m128d" name="_mm_loadu_pd">
  <type>Floating Point</type><CPUID>SSE2</CPUID><category>Load</category>
  <parameter varname="mem_addr" type="double const*"/>
  <description>Load 128-bits (composed of 2 packed double-precision elements) from memory.</description>
  <operation>
dst[127:0] := MEM[mem_addr+127:mem_addr]
  </operation>
  <instruction name="movupd" form="xmm, m128"/><header>emmintrin.h</header>
</intrinsic>

<intrinsic rettype="void" name="_mm_storeu_pd">
  <type>Floating Point</type><CPUID>SSE2</CPUID><category>Store</category>
  <parameter varname="mem_addr" type="double*"/><parameter varname="a" type="__m128d"/>
  <description>Store 128-bits from "a" into memory.</description>
  <operation>
MEM[mem_addr+127:mem_addr] := a[127:0]
  </operation>
  <instruction name="movupd" form="m128, xmm"/><header>emmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m128d" name="_mm_set1_pd">
  <type>Floating Point</type><CPUID>SSE2</CPUID><category>Set</category>
  <parameter varname="a" type="double"/>
  <description>Broadcast double-precision value "a" to all elements of "dst".</description>
  <operation>
FOR j := 0 to 1
	i := j*64
	dst[i+63:i] := a[63:0]
ENDFOR
  </operation>
  <instruction name="" form=""/><header>emmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m128d" name="_mm_setzero_pd">
  <type>Floating Point</type><CPUID>SSE2</CPUID><category>Set</category>
  <description>Return vector with all elements set to zero.</description>
  <operation>
dst[MAX:0] := 0
  </operation>
  <instruction name="xorpd" form="xmm, xmm"/><header>emmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m128d" name="_mm_unpacklo_pd">
  <type>Floating Point</type><CPUID>SSE2</CPUID><category>Swizzle</category>
  <parameter varname="a" type="__m128d"/><parameter varname="b" type="__m128d"/>
  <description>Unpack and interleave double-precision elements from the low half of "a" and "b".</description>
  <operation>
dst[63:0] := a[63:0]
dst[127:64] := b[63:0]
  </operation>
  <instruction name="unpcklpd" form="xmm, xmm"/><header>emmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m128d" name="_mm_unpackhi_pd">
  <type>Floating Point</type><CPUID>SSE2</CPUID><category>Swizzle</category>
  <parameter varname="a" type="__m128d"/><parameter varname="b" type="__m128d"/>
  <description>Unpack and interleave double-precision elements from the high half of "a" and "b".</description>
  <operation>
dst[63:0] := a[127:64]
dst[127:64] := b[127:64]
  </operation>
  <instruction name="unpckhpd" form="xmm, xmm"/><header>emmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m128d" name="_mm_shuffle_pd">
  <type>Floating Point</type><CPUID>SSE2</CPUID><category>Swizzle</category>
  <parameter varname="a" type="__m128d"/><parameter varname="b" type="__m128d"/><parameter varname="imm8" type="const int"/>
  <description>Shuffle double-precision elements using the control in "imm8".</description>
  <operation>
IF imm8[0]
	dst[63:0] := a[127:64]
ELSE
	dst[63:0] := a[63:0]
FI
IF imm8[1]
	dst[127:64] := b[127:64]
ELSE
	dst[127:64] := b[63:0]
FI
  </operation>
  <instruction name="shufpd" form="xmm, xmm, imm8"/><header>emmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_add_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Arithmetic</category>
  <parameter varname="a" type="__m256d"/><parameter varname="b" type="__m256d"/>
  <description>Add packed double-precision (64-bit) floating-point elements in "a" and "b", and store the results in "dst".</description>
  <operation>
FOR j := 0 to 3
	i := j*64
	dst[i+63:i] := a[i+63:i] + b[i+63:i]
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vaddpd" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_sub_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Arithmetic</category>
  <parameter varname="a" type="__m256d"/><parameter varname="b" type="__m256d"/>
  <description>Subtract packed double-precision elements.</description>
  <operation>
FOR j := 0 to 3
	i := j*64
	dst[i+63:i] := a[i+63:i] - b[i+63:i]
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vsubpd" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_mul_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Arithmetic</category>
  <parameter varname="a" type="__m256d"/><parameter varname="b" type="__m256d"/>
  <description>Multiply packed double-precision elements.</description>
  <operation>
FOR j := 0 to 3
	i := j*64
	dst[i+63:i] := a[i+63:i] * b[i+63:i]
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vmulpd" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_div_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Arithmetic</category>
  <parameter varname="a" type="__m256d"/><parameter varname="b" type="__m256d"/>
  <description>Divide packed double-precision elements.</description>
  <operation>
FOR j := 0 to 3
	i := j*64
	dst[i+63:i] := a[i+63:i] / b[i+63:i]
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vdivpd" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_sqrt_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Elementary Math Functions</category>
  <parameter varname="a" type="__m256d"/>
  <description>Square root of packed double-precision elements.</description>
  <operation>
FOR j := 0 to 3
	i := j*64
	dst[i+63:i] := SQRT(a[i+63:i])
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vsqrtpd" form="ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_min_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Special Math Functions</category>
  <parameter varname="a" type="__m256d"/><parameter varname="b" type="__m256d"/>
  <description>Minimum of packed double-precision elements.</description>
  <operation>
FOR j := 0 to 3
	i := j*64
	dst[i+63:i] := MIN(a[i+63:i], b[i+63:i])
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vminpd" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_max_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Special Math Functions</category>
  <parameter varname="a" type="__m256d"/><parameter varname="b" type="__m256d"/>
  <description>Maximum of packed double-precision elements.</description>
  <operation>
FOR j := 0 to 3
	i := j*64
	dst[i+63:i] := MAX(a[i+63:i], b[i+63:i])
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vmaxpd" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_and_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Logical</category>
  <parameter varname="a" type="__m256d"/><parameter varname="b" type="__m256d"/>
  <description>Bitwise AND of packed double-precision elements.</description>
  <operation>
FOR j := 0 to 3
	i := j*64
	dst[i+63:i] := (a[i+63:i] AND b[i+63:i])
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vandpd" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_or_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Logical</category>
  <parameter varname="a" type="__m256d"/><parameter varname="b" type="__m256d"/>
  <description>Bitwise OR of packed double-precision elements.</description>
  <operation>
FOR j := 0 to 3
	i := j*64
	dst[i+63:i] := (a[i+63:i] OR b[i+63:i])
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vorpd" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_xor_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Logical</category>
  <parameter varname="a" type="__m256d"/><parameter varname="b" type="__m256d"/>
  <description>Bitwise XOR of packed double-precision elements.</description>
  <operation>
FOR j := 0 to 3
	i := j*64
	dst[i+63:i] := (a[i+63:i] XOR b[i+63:i])
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vxorpd" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_andnot_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Logical</category>
  <parameter varname="a" type="__m256d"/><parameter varname="b" type="__m256d"/>
  <description>Bitwise NOT of "a" then AND with "b".</description>
  <operation>
FOR j := 0 to 3
	i := j*64
	dst[i+63:i] := ((NOT a[i+63:i]) AND b[i+63:i])
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vandnpd" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_loadu_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Load</category>
  <parameter varname="mem_addr" type="double const*"/>
  <description>Load 256-bits (composed of 4 packed double-precision elements) from memory (unaligned).</description>
  <operation>
dst[255:0] := MEM[mem_addr+255:mem_addr]
dst[MAX:256] := 0
  </operation>
  <instruction name="vmovupd" form="ymm, m256"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_load_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Load</category>
  <parameter varname="mem_addr" type="double const*"/>
  <description>Load 256-bits from memory (aligned).</description>
  <operation>
dst[255:0] := MEM[mem_addr+255:mem_addr]
dst[MAX:256] := 0
  </operation>
  <instruction name="vmovapd" form="ymm, m256"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="void" name="_mm256_storeu_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Store</category>
  <parameter varname="mem_addr" type="double*"/><parameter varname="a" type="__m256d"/>
  <description>Store 256-bits from "a" into memory (unaligned).</description>
  <operation>
MEM[mem_addr+255:mem_addr] := a[255:0]
  </operation>
  <instruction name="vmovupd" form="m256, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="void" name="_mm256_store_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Store</category>
  <parameter varname="mem_addr" type="double*"/><parameter varname="a" type="__m256d"/>
  <description>Store 256-bits from "a" into memory (aligned).</description>
  <operation>
MEM[mem_addr+255:mem_addr] := a[255:0]
  </operation>
  <instruction name="vmovapd" form="m256, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_set1_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Set</category>
  <parameter varname="a" type="double"/>
  <description>Broadcast double-precision value "a" to all elements of "dst".</description>
  <operation>
FOR j := 0 to 3
	i := j*64
	dst[i+63:i] := a[63:0]
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="" form=""/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_setzero_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Set</category>
  <description>Return vector with all elements set to zero.</description>
  <operation>
dst[MAX:0] := 0
  </operation>
  <instruction name="vxorpd" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_broadcast_sd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Load</category>
  <parameter varname="mem_addr" type="double const*"/>
  <description>Broadcast a double-precision element from memory to all elements of "dst".</description>
  <operation>
tmp[63:0] := MEM[mem_addr+63:mem_addr]
FOR j := 0 to 3
	i := j*64
	dst[i+63:i] := tmp[63:0]
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vbroadcastsd" form="ymm, m64"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_unpacklo_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Swizzle</category>
  <parameter varname="a" type="__m256d"/><parameter varname="b" type="__m256d"/>
  <description>Unpack and interleave double-precision elements from the low half of each 128-bit lane.</description>
  <operation>
dst[63:0] := a[63:0]
dst[127:64] := b[63:0]
dst[191:128] := a[191:128]
dst[255:192] := b[191:128]
dst[MAX:256] := 0
  </operation>
  <instruction name="vunpcklpd" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_unpackhi_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Swizzle</category>
  <parameter varname="a" type="__m256d"/><parameter varname="b" type="__m256d"/>
  <description>Unpack and interleave double-precision elements from the high half of each 128-bit lane.</description>
  <operation>
dst[63:0] := a[127:64]
dst[127:64] := b[127:64]
dst[191:128] := a[255:192]
dst[255:192] := b[255:192]
dst[MAX:256] := 0
  </operation>
  <instruction name="vunpckhpd" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_blend_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Swizzle</category>
  <parameter varname="a" type="__m256d"/><parameter varname="b" type="__m256d"/><parameter varname="imm8" type="const int"/>
  <description>Blend packed double-precision elements using control mask "imm8".</description>
  <operation>
FOR j := 0 to 3
	i := j*64
	IF imm8[j]
		dst[i+63:i] := b[i+63:i]
	ELSE
		dst[i+63:i] := a[i+63:i]
	FI
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vblendpd" form="ymm, ymm, ymm, imm8"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_blendv_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Swizzle</category>
  <parameter varname="a" type="__m256d"/><parameter varname="b" type="__m256d"/><parameter varname="mask" type="__m256d"/>
  <description>Blend packed double-precision elements using "mask".</description>
  <operation>
FOR j := 0 to 3
	i := j*64
	IF mask[i+63]
		dst[i+63:i] := b[i+63:i]
	ELSE
		dst[i+63:i] := a[i+63:i]
	FI
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vblendvpd" form="ymm, ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_hadd_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Arithmetic</category>
  <parameter varname="a" type="__m256d"/><parameter varname="b" type="__m256d"/>
  <description>Horizontally add adjacent pairs of double-precision elements.</description>
  <operation>
dst[63:0] := a[127:64] + a[63:0]
dst[127:64] := b[127:64] + b[63:0]
dst[191:128] := a[255:192] + a[191:128]
dst[255:192] := b[255:192] + b[191:128]
dst[MAX:256] := 0
  </operation>
  <instruction name="vhaddpd" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_fmadd_pd">
  <type>Floating Point</type><CPUID>FMA</CPUID><category>Arithmetic</category>
  <parameter varname="a" type="__m256d"/><parameter varname="b" type="__m256d"/><parameter varname="c" type="__m256d"/>
  <description>Multiply packed elements in "a" and "b", add the intermediate result to "c".</description>
  <operation>
FOR j := 0 to 3
	i := j*64
	dst[i+63:i] := (a[i+63:i] * b[i+63:i]) + c[i+63:i]
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vfmadd132pd" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_fmsub_pd">
  <type>Floating Point</type><CPUID>FMA</CPUID><category>Arithmetic</category>
  <parameter varname="a" type="__m256d"/><parameter varname="b" type="__m256d"/><parameter varname="c" type="__m256d"/>
  <description>Multiply packed elements in "a" and "b", subtract "c" from the intermediate result.</description>
  <operation>
FOR j := 0 to 3
	i := j*64
	dst[i+63:i] := (a[i+63:i] * b[i+63:i]) - c[i+63:i]
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vfmsub132pd" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_cvtps_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Convert</category>
  <parameter varname="a" type="__m128"/>
  <description>Convert packed single-precision elements to packed double-precision elements.</description>
  <operation>
FOR j := 0 to 3
	i := j*32
	k := j*64
	dst[k+63:k] := Convert_FP32_To_FP64(a[i+31:i])
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vcvtps2pd" form="ymm, xmm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_round_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Special Math Functions</category>
  <parameter varname="a" type="__m256d"/><parameter varname="rounding" type="int"/>
  <description>Round packed double-precision elements using the rounding parameter.</description>
  <operation>
FOR j := 0 to 3
	i := j*64
	dst[i+63:i] := ROUND(a[i+63:i], rounding)
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vroundpd" form="ymm, ymm, imm8"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256" name="_mm256_add_ps">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Arithmetic</category>
  <parameter varname="a" type="__m256"/><parameter varname="b" type="__m256"/>
  <description>Add packed single-precision (32-bit) floating-point elements.</description>
  <operation>
FOR j := 0 to 7
	i := j*32
	dst[i+31:i] := a[i+31:i] + b[i+31:i]
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vaddps" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256" name="_mm256_mul_ps">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Arithmetic</category>
  <parameter varname="a" type="__m256"/><parameter varname="b" type="__m256"/>
  <description>Multiply packed single-precision (32-bit) floating-point elements.</description>
  <operation>
FOR j := 0 to 7
	i := j*32
	dst[i+31:i] := a[i+31:i] * b[i+31:i]
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vmulps" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m128" name="_mm_add_ps">
  <type>Floating Point</type><CPUID>SSE</CPUID><category>Arithmetic</category>
  <parameter varname="a" type="__m128"/><parameter varname="b" type="__m128"/>
  <description>Add packed single-precision (32-bit) floating-point elements.</description>
  <operation>
FOR j := 0 to 3
	i := j*32
	dst[i+31:i] := a[i+31:i] + b[i+31:i]
ENDFOR
  </operation>
  <instruction name="addps" form="xmm, xmm, xmm"/><header>xmmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256" name="_mm256_sub_ps">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Arithmetic</category>
  <parameter varname="a" type="__m256"/><parameter varname="b" type="__m256"/>
  <description>Subtract packed single-precision (32-bit) floating-point elements.</description>
  <operation>
FOR j := 0 to 7
	i := j*32
	dst[i+31:i] := a[i+31:i] - b[i+31:i]
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vsubps" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256" name="_mm256_div_ps">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Arithmetic</category>
  <parameter varname="a" type="__m256"/><parameter varname="b" type="__m256"/>
  <description>Divide packed single-precision (32-bit) floating-point elements.</description>
  <operation>
FOR j := 0 to 7
	i := j*32
	dst[i+31:i] := a[i+31:i] / b[i+31:i]
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vdivps" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256" name="_mm256_sqrt_ps">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Elementary Math Functions</category>
  <parameter varname="a" type="__m256"/>
  <description>Square root of packed single-precision elements.</description>
  <operation>
FOR j := 0 to 7
	i := j*32
	dst[i+31:i] := SQRT(a[i+31:i])
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vsqrtps" form="ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256" name="_mm256_max_ps">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Special Math Functions</category>
  <parameter varname="a" type="__m256"/><parameter varname="b" type="__m256"/>
  <description>Maximum of packed single-precision elements.</description>
  <operation>
FOR j := 0 to 7
	i := j*32
	dst[i+31:i] := MAX(a[i+31:i], b[i+31:i])
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vmaxps" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256" name="_mm256_min_ps">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Special Math Functions</category>
  <parameter varname="a" type="__m256"/><parameter varname="b" type="__m256"/>
  <description>Minimum of packed single-precision elements.</description>
  <operation>
FOR j := 0 to 7
	i := j*32
	dst[i+31:i] := MIN(a[i+31:i], b[i+31:i])
ENDFOR
dst[MAX:256] := 0
  </operation>
  <instruction name="vminps" form="ymm, ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

<intrinsic rettype="__m128" name="_mm_mul_ps">
  <type>Floating Point</type><CPUID>SSE</CPUID><category>Arithmetic</category>
  <parameter varname="a" type="__m128"/><parameter varname="b" type="__m128"/>
  <description>Multiply packed single-precision (32-bit) floating-point elements.</description>
  <operation>
FOR j := 0 to 3
	i := j*32
	dst[i+31:i] := a[i+31:i] * b[i+31:i]
ENDFOR
  </operation>
  <instruction name="mulps" form="xmm, xmm"/><header>xmmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m128" name="_mm_sub_ps">
  <type>Floating Point</type><CPUID>SSE</CPUID><category>Arithmetic</category>
  <parameter varname="a" type="__m128"/><parameter varname="b" type="__m128"/>
  <description>Subtract packed single-precision (32-bit) floating-point elements.</description>
  <operation>
FOR j := 0 to 3
	i := j*32
	dst[i+31:i] := a[i+31:i] - b[i+31:i]
ENDFOR
  </operation>
  <instruction name="subps" form="xmm, xmm"/><header>xmmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m128" name="_mm_loadu_ps">
  <type>Floating Point</type><CPUID>SSE</CPUID><category>Load</category>
  <parameter varname="mem_addr" type="float const*"/>
  <description>Load 128-bits (composed of 4 packed single-precision elements) from memory.</description>
  <operation>
dst[127:0] := MEM[mem_addr+127:mem_addr]
  </operation>
  <instruction name="movups" form="xmm, m128"/><header>xmmintrin.h</header>
</intrinsic>

<intrinsic rettype="void" name="_mm_storeu_ps">
  <type>Floating Point</type><CPUID>SSE</CPUID><category>Store</category>
  <parameter varname="mem_addr" type="float*"/><parameter varname="a" type="__m128"/>
  <description>Store 128-bits of single-precision elements into memory.</description>
  <operation>
MEM[mem_addr+127:mem_addr] := a[127:0]
  </operation>
  <instruction name="movups" form="m128, xmm"/><header>xmmintrin.h</header>
</intrinsic>

<intrinsic rettype="__m256d" name="_mm256_movedup_pd">
  <type>Floating Point</type><CPUID>AVX</CPUID><category>Swizzle</category>
  <parameter varname="a" type="__m256d"/>
  <description>Duplicate even-indexed double-precision elements.</description>
  <operation>
dst[63:0] := a[63:0]
dst[127:64] := a[63:0]
dst[191:128] := a[191:128]
dst[255:192] := a[191:128]
dst[MAX:256] := 0
  </operation>
  <instruction name="vmovddup" form="ymm, ymm"/><header>immintrin.h</header>
</intrinsic>

</intrinsics_list>
"#;
