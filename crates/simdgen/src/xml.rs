//! A minimal XML parser — just enough for the Intel Intrinsics Guide
//! data file format (elements, attributes, text; no namespaces, CDATA or
//! processing instructions).

/// An XML element.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlNode {
    /// Tag name.
    pub tag: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements.
    pub children: Vec<XmlNode>,
    /// Concatenated text content (entity-decoded, children's text
    /// excluded).
    pub text: String,
}

impl XmlNode {
    /// First attribute with the given name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// All children with the given tag.
    pub fn children_named<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a XmlNode> {
        self.children.iter().filter(move |c| c.tag == tag)
    }

    /// First child with the given tag.
    pub fn child(&self, tag: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.tag == tag)
    }
}

/// XML parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// Description.
    pub msg: String,
}

impl core::fmt::Display for XmlError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "xml error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for XmlError {}

/// Parses a document and returns its root element. A leading
/// `<?xml … ?>` declaration and comments are skipped.
///
/// # Errors
///
/// Returns [`XmlError`] on malformed input.
pub fn parse_xml(src: &str) -> Result<XmlNode, XmlError> {
    let mut p = P { src: src.as_bytes(), pos: 0 };
    p.skip_misc();
    let node = p.element()?;
    p.skip_misc();
    Ok(node)
}

struct P<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, msg: impl Into<String>) -> XmlError {
        XmlError { offset: self.pos, msg: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos.min(self.src.len())..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                if let Some(end) = find(self.src, self.pos, "?>") {
                    self.pos = end + 2;
                    continue;
                }
            }
            if self.starts_with("<!--") {
                if let Some(end) = find(self.src, self.pos, "-->") {
                    self.pos = end + 3;
                    continue;
                }
            }
            if self.starts_with("<!DOCTYPE") {
                if let Some(end) = find(self.src, self.pos, ">") {
                    self.pos = end + 1;
                    continue;
                }
            }
            return;
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b':')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected name"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn element(&mut self) -> Result<XmlNode, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected `<`"));
        }
        self.pos += 1;
        let tag = self.name()?;
        let mut node = XmlNode { tag, ..Default::default() };
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected `>` after `/`"));
                    }
                    self.pos += 1;
                    return Ok(node); // self-closing
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected `=` in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek().ok_or_else(|| self.err("eof in attribute"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.err("expected quoted attribute value"));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    let val = decode_entities(&String::from_utf8_lossy(&self.src[start..self.pos]));
                    self.pos += 1; // closing quote
                    node.attrs.push((key, val));
                }
                None => return Err(self.err("eof in tag")),
            }
        }
        // Content.
        loop {
            if self.starts_with("<!--") {
                if let Some(end) = find(self.src, self.pos, "-->") {
                    self.pos = end + 3;
                    continue;
                }
                return Err(self.err("unterminated comment"));
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != node.tag {
                    return Err(self.err(format!(
                        "mismatched close tag: expected </{}>, got </{close}>",
                        node.tag
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected `>`"));
                }
                self.pos += 1;
                return Ok(node);
            }
            match self.peek() {
                Some(b'<') => {
                    node.children.push(self.element()?);
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'<') {
                        self.pos += 1;
                    }
                    let chunk = String::from_utf8_lossy(&self.src[start..self.pos]);
                    node.text.push_str(&decode_entities(&chunk));
                }
                None => return Err(self.err(format!("eof inside <{}>", node.tag))),
            }
        }
    }
}

fn find(src: &[u8], from: usize, needle: &str) -> Option<usize> {
    let n = needle.as_bytes();
    (from..src.len().saturating_sub(n.len() - 1)).find(|&i| src[i..].starts_with(n))
}

fn decode_entities(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_intrinsic_shape() {
        let src = r#"<?xml version="1.0"?>
<intrinsics_list>
  <!-- a comment -->
  <intrinsic rettype="__m256d" name="_mm256_add_pd">
    <type>Floating Point</type>
    <CPUID>AVX</CPUID>
    <parameter varname="a" type="__m256d"/>
    <parameter varname="b" type="__m256d"/>
    <operation>
FOR j := 0 to 3
	i := j*64
	dst[i+63:i] := a[i+63:i] + b[i+63:i]
ENDFOR
    </operation>
  </intrinsic>
</intrinsics_list>"#;
        let root = parse_xml(src).unwrap();
        assert_eq!(root.tag, "intrinsics_list");
        let intr = root.child("intrinsic").unwrap();
        assert_eq!(intr.attr("name"), Some("_mm256_add_pd"));
        assert_eq!(intr.attr("rettype"), Some("__m256d"));
        assert_eq!(intr.children_named("parameter").count(), 2);
        let op = intr.child("operation").unwrap();
        assert!(op.text.contains("FOR j := 0 to 3"));
    }

    #[test]
    fn entities_decoded() {
        let root = parse_xml(r#"<a x="1 &lt; 2">a &amp;&amp; b</a>"#).unwrap();
        assert_eq!(root.attr("x"), Some("1 < 2"));
        assert_eq!(root.text.trim(), "a && b");
    }

    #[test]
    fn errors() {
        assert!(parse_xml("<a><b></a>").is_err());
        assert!(parse_xml("<a").is_err());
        assert!(parse_xml("plain").is_err());
    }

    #[test]
    fn self_closing_and_nesting() {
        let root = parse_xml("<a><b/><c><d/></c></a>").unwrap();
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[1].children[0].tag, "d");
    }
}
