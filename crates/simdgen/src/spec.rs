//! Intrinsic specifications extracted from the vendor XML (Fig. 4 "XML
//! parser": name, return type, parameter list and the operation text).

use crate::xml::{parse_xml, XmlError, XmlNode};

/// One parameter of an intrinsic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecParam {
    /// C type as spelled in the XML (`__m256d`, `double const*`, `int`).
    pub ty: String,
    /// Parameter name.
    pub name: String,
}

/// A parsed intrinsic specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntrinsicSpec {
    /// Intrinsic name (`_mm256_add_pd`).
    pub name: String,
    /// Return type as spelled in the XML.
    pub rettype: String,
    /// The `<type>` element (e.g. "Floating Point").
    pub data_type: String,
    /// Required CPUID feature (e.g. "AVX").
    pub cpuid: String,
    /// Category (e.g. "Arithmetic").
    pub category: String,
    /// Parameters in order.
    pub params: Vec<SpecParam>,
    /// Human description.
    pub description: String,
    /// The pseudo-language operation body.
    pub operation: String,
}

/// Error while extracting specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// Underlying XML problem.
    Xml(XmlError),
    /// An `<intrinsic>` element missing required pieces.
    Malformed(String),
}

impl core::fmt::Display for SpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpecError::Xml(e) => write!(f, "{e}"),
            SpecError::Malformed(m) => write!(f, "malformed intrinsic spec: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<XmlError> for SpecError {
    fn from(e: XmlError) -> SpecError {
        SpecError::Xml(e)
    }
}

/// Parses an intrinsics XML document into specifications.
///
/// Only floating-point intrinsics are considered, like the paper ("we
/// only consider intrinsics that perform floating-point operations").
///
/// # Errors
///
/// Returns [`SpecError`] on malformed XML or incomplete entries.
pub fn parse_spec_xml(src: &str) -> Result<Vec<IntrinsicSpec>, SpecError> {
    let root = parse_xml(src)?;
    let mut out = Vec::new();
    for intr in root.children_named("intrinsic") {
        let spec = parse_one(intr)?;
        if spec.data_type.contains("Floating Point") {
            out.push(spec);
        }
    }
    Ok(out)
}

fn parse_one(n: &XmlNode) -> Result<IntrinsicSpec, SpecError> {
    let name =
        n.attr("name").ok_or_else(|| SpecError::Malformed("missing name".into()))?.to_string();
    let rettype = n
        .attr("rettype")
        .ok_or_else(|| SpecError::Malformed(format!("{name}: missing rettype")))?
        .to_string();
    let params = n
        .children_named("parameter")
        .map(|p| {
            Ok(SpecParam {
                ty: p
                    .attr("type")
                    .ok_or_else(|| SpecError::Malformed(format!("{name}: parameter type")))?
                    .to_string(),
                name: p
                    .attr("varname")
                    .ok_or_else(|| SpecError::Malformed(format!("{name}: parameter varname")))?
                    .to_string(),
            })
        })
        .collect::<Result<Vec<_>, SpecError>>()?;
    let text_of = |tag: &str| n.child(tag).map(|c| c.text.trim().to_string()).unwrap_or_default();
    Ok(IntrinsicSpec {
        name,
        rettype,
        data_type: text_of("type"),
        cpuid: text_of("CPUID"),
        category: text_of("category"),
        params,
        description: text_of("description"),
        operation: text_of("operation"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parses_completely() {
        let specs = parse_spec_xml(crate::CORPUS).unwrap();
        assert!(specs.len() >= 30, "corpus has {} specs", specs.len());
        let add = specs.iter().find(|s| s.name == "_mm256_add_pd").unwrap();
        assert_eq!(add.rettype, "__m256d");
        assert_eq!(add.params.len(), 2);
        assert!(add.operation.contains("FOR j := 0 to 3"));
        assert_eq!(add.cpuid, "AVX");
    }

    #[test]
    fn non_fp_filtered() {
        let src = r#"<root>
            <intrinsic rettype="__m256i" name="_mm256_add_epi64">
              <type>Integer</type>
              <parameter varname="a" type="__m256i"/>
              <operation>x := 0</operation>
            </intrinsic>
        </root>"#;
        let specs = parse_spec_xml(src).unwrap();
        assert!(specs.is_empty());
    }

    #[test]
    fn malformed_rejected() {
        let src = r#"<root><intrinsic name="_mm_x"><type>Floating Point</type></intrinsic></root>"#;
        assert!(matches!(parse_spec_xml(src), Err(SpecError::Malformed(_))));
    }
}
