//! `igen-simdgen`: automatic support for SIMD intrinsics (Section V).
//!
//! Reproduces the paper's generator pipeline (Fig. 4):
//!
//! 1. an [`xml`] parser reads the vendor specification document;
//! 2. `spec` extracts per-intrinsic name/types/parameters/operation;
//! 3. [`pseudo`] tokenizes and parses the Intel pseudo-language with a
//!    symbolic linear-form analysis for bit-range widths;
//! 4. `cgen` emits plain C implementing each intrinsic (`SIMD2C`),
//!    using per-vector-type unions so elements are accessible as float
//!    and integer arrays (Fig. 5).
//!
//! The real `data-3.4.3.xml` is not redistributable, so [`CORPUS`] embeds
//! a faithful subset in the same schema (see `corpus.rs`). The IGen
//! compiler (`igen-core`) then translates the generated C to interval
//! code, completing the Fig. 4 pipeline.
//!
//! # Example
//!
//! ```
//! use igen_simdgen::{corpus_specs, generate_c};
//! let specs = corpus_specs();
//! let add = specs.iter().find(|s| s.name == "_mm256_add_pd").unwrap();
//! let f = generate_c(add).unwrap();
//! let c = igen_cfront::print_function(&f);
//! assert!(c.contains("_c_mm256_add_pd"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cgen;
mod corpus;
pub mod pseudo;
mod spec;
pub mod xml;

pub use cgen::{generate_c, generate_unit, union_name, union_typedef, vec_kind, Elem, GenError};
pub use corpus::CORPUS;
pub use spec::{parse_spec_xml, IntrinsicSpec, SpecError, SpecParam};

/// Parses the embedded corpus.
///
/// # Panics
///
/// Never in practice — the corpus is validated by the test suite.
pub fn corpus_specs() -> Vec<IntrinsicSpec> {
    parse_spec_xml(CORPUS).expect("embedded corpus is well-formed")
}
