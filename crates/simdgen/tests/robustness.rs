//! Robustness tests of the intrinsics toolchain: malformed XML and
//! pseudo-code never panic, and every corpus entry either generates valid
//! C or reports a precise unsupported-construct error.

use igen_simdgen::{corpus_specs, generate_c, parse_spec_xml, pseudo, xml};
use proptest::prelude::*;

#[test]
fn corpus_every_entry_accounted_for() {
    let specs = corpus_specs();
    let mut ok = 0;
    let mut errs = Vec::new();
    for s in &specs {
        match generate_c(s) {
            Ok(f) => {
                ok += 1;
                // Generated functions re-print and re-parse.
                let c = igen_cfront::print_function(&f);
                assert!(c.contains(&format!("_c{}", s.name)), "{c}");
            }
            Err(e) => errs.push((s.name.clone(), e.to_string())),
        }
    }
    assert_eq!(ok + errs.len(), specs.len());
    assert_eq!(errs.len(), 1, "{errs:?}");
    assert!(errs[0].1.contains("ROUND"));
}

#[test]
fn corpus_coverage_by_category() {
    // The corpus spans the categories the paper's benchmarks touch.
    let specs = corpus_specs();
    for cat in ["Arithmetic", "Logical", "Load", "Store", "Set", "Swizzle", "Convert"] {
        assert!(specs.iter().any(|s| s.category == cat), "no {cat} intrinsic in the corpus");
    }
    // Both SSE and AVX generations, both element widths.
    assert!(specs.iter().any(|s| s.cpuid == "SSE2"));
    assert!(specs.iter().any(|s| s.cpuid == "AVX"));
    assert!(specs.iter().any(|s| s.name.ends_with("_ps")));
    assert!(specs.iter().any(|s| s.name.ends_with("_pd")));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn xml_parser_never_panics(s in "[ -~\\n]{0,300}") {
        let _ = xml::parse_xml(&s);
    }

    #[test]
    fn pseudo_parser_never_panics(s in "[a-zA-Z0-9 :=\\[\\]()+\\-*/\\n\\t]{0,200}") {
        let _ = pseudo::parse_operation(&s);
    }

    #[test]
    fn pseudo_roundtripish(j in 0i64..8, w in prop_oneof![Just(32i64), Just(64)]) {
        // Structured generation: FOR loops with element accesses always
        // parse and linearize.
        let hi = w - 1;
        let src = format!(
            "FOR j := 0 to {j}\n\ti := j*{w}\n\tdst[i+{hi}:i] := a[i+{hi}:i] + b[i+{hi}:i]\nENDFOR"
        );
        let stmts = pseudo::parse_operation(&src).unwrap();
        let pseudo::PStmt::For { body, .. } = &stmts[0] else { panic!() };
        let pseudo::PStmt::Assign { lhs: pseudo::PLval::Range { hi: h, lo, .. }, .. } = &body[1]
        else { panic!() };
        let hl = pseudo::linearize(h, 255).unwrap();
        let ll = pseudo::linearize(lo.as_ref().unwrap(), 255).unwrap();
        prop_assert_eq!(hl.sub(&ll).as_const(), Some(w - 1));
    }
}

#[test]
fn malformed_specs_rejected_cleanly() {
    // Missing operation -> pseudo error at generation, not a panic.
    let src = r#"<r><intrinsic rettype="__m256d" name="_mm_x">
        <type>Floating Point</type>
        <parameter varname="a" type="__m256d"/>
        <operation>dst[63:0] := UNKNOWN_FN(a[63:0])</operation>
    </intrinsic></r>"#;
    let specs = parse_spec_xml(src).unwrap();
    let err = generate_c(&specs[0]).unwrap_err();
    assert!(err.to_string().contains("UNKNOWN_FN"), "{err}");

    // Integer vector types are out of scope (the paper: FP only).
    let src = r#"<r><intrinsic rettype="__m256i" name="_mm_y">
        <type>Floating Point</type>
        <parameter varname="a" type="__m256i"/>
        <operation>dst[63:0] := a[63:0]</operation>
    </intrinsic></r>"#;
    let specs = parse_spec_xml(src).unwrap();
    assert!(generate_c(&specs[0]).is_err());
}

#[test]
fn single_bit_write_is_unsupported() {
    let src = r#"<r><intrinsic rettype="__m256d" name="_mm_z">
        <type>Floating Point</type>
        <parameter varname="a" type="__m256d"/>
        <operation>dst[0] := 1</operation>
    </intrinsic></r>"#;
    let specs = parse_spec_xml(src).unwrap();
    let err = generate_c(&specs[0]).unwrap_err();
    assert!(err.to_string().contains("single-bit write"), "{err}");
}
